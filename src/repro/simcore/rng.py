"""Deterministic random-number utilities for reproducible simulations.

All stochastic behaviour in the reproduction (noise in per-task costs,
synthetic input frames, arrival jitter) flows through seeded
:class:`numpy.random.Generator` streams.  Child streams are derived from a
``(root seed, string key)`` pair so the same experiment configuration always
sees the same randomness regardless of the order in which subsystems ask for
their stream.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["make_rng", "child_rng", "spawn_rngs"]


def make_rng(seed: int | None = 0) -> np.random.Generator:
    """Create the root generator for a simulation run.

    ``seed=None`` yields OS entropy; every experiment driver in this
    repository passes an explicit integer so results are reproducible.
    """
    return np.random.default_rng(seed)


def child_rng(seed: int, key: str) -> np.random.Generator:
    """Derive an independent stream keyed by ``(seed, key)``.

    The key is CRC-hashed into the seed sequence, so cost-noise and
    data-synthesis streams stay decoupled: drawing more numbers from one
    never perturbs the other.
    """
    return np.random.default_rng([seed & 0x7FFFFFFF, zlib.crc32(key.encode("utf-8"))])


def spawn_rngs(parent: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Spawn *n* statistically independent child generators from *parent*."""
    seq = parent.bit_generator.seed_seq  # type: ignore[attr-defined]
    return [np.random.default_rng(s) for s in seq.spawn(n)]
