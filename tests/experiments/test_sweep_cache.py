"""Content-addressed sweep-cache correctness.

The cache must be invisible except for speed: a hit returns the
bit-identical ``RunResult`` the simulation would have produced, every
observable cell field perturbs the digest, damaged entries degrade to
misses, and the serial / parallel / cached paths all agree exactly.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.apps import PulseDoppler
from repro.audit import diff_results
from repro.experiments import (
    CACHE_ENV,
    SweepCache,
    cell_digest,
    configure_cache,
    resolve_cache,
    run_once,
    sweep_rates,
)
from repro.experiments.cache import DEFAULT_CACHE_DIR, UncacheableCell
from repro.platforms import zcu102
from repro.runtime import RuntimeConfig
from repro.workload import WorkloadEntry, WorkloadSpec


def _workload(batch: int = 2, count: int = 1) -> WorkloadSpec:
    return WorkloadSpec(
        name="cache-test",
        entries=(WorkloadEntry(PulseDoppler(batch=batch), count),),
    )


def _cell(**overrides) -> tuple:
    base = {
        "platform": zcu102(n_cpu=2, n_fft=1),
        "workload": _workload(),
        "mode": "api",
        "rate": 200.0,
        "scheduler": "rr",
        "seed": 0,
        "execute": False,
        "config": None,
    }
    base.update(overrides)
    return (
        base["platform"], base["workload"], base["mode"], base["rate"],
        base["scheduler"], base["seed"], base["execute"], base["config"],
    )


# --------------------------------------------------------------------- #
# keying
# --------------------------------------------------------------------- #

def test_digest_is_stable():
    assert cell_digest(_cell())[0] == cell_digest(_cell())[0]


@pytest.mark.parametrize("field_name,overrides", [
    ("platform", {"platform": zcu102(n_cpu=3, n_fft=1)}),
    ("platform-timing", {"platform": dataclasses.replace(
        zcu102(n_cpu=2, n_fft=1),
        timing=dataclasses.replace(zcu102(n_cpu=2, n_fft=1).timing,
                                   fabric_setup_us=19.0))}),
    ("workload", {"workload": _workload(batch=4)}),
    ("workload-count", {"workload": _workload(count=2)}),
    ("mode", {"mode": "dag"}),
    ("rate", {"rate": 250.0}),
    ("scheduler", {"scheduler": "etf"}),
    ("seed", {"seed": 1}),
    ("execute", {"execute": True}),
    ("config", {"config": RuntimeConfig(scheduler="rr", sched_period_s=0.002)}),
])
def test_digest_sensitive_to_every_cell_field(field_name, overrides):
    """Any observable difference in any cell component changes the digest."""
    assert cell_digest(_cell())[0] != cell_digest(_cell(**overrides))[0], (
        f"digest ignored a change in {field_name}"
    )


def test_ndarray_app_state_is_cacheable_and_keyed():
    """Apps holding precomputed arrays (LaneDetection's Gaussian/Sobel
    kernels) must key on the array *contents* — fig10's run_trials cells
    were silently uncacheable before ndarray support."""
    from repro.apps import LaneDetection

    def ld_workload(height: int) -> WorkloadSpec:
        return WorkloadSpec(
            name="ld",
            entries=(WorkloadEntry(LaneDetection(height=height, width=64), 1),),
        )

    base = cell_digest(_cell(workload=ld_workload(64)))[0]
    assert base == cell_digest(_cell(workload=ld_workload(64)))[0]
    assert base != cell_digest(_cell(workload=ld_workload(128)))[0]
    # perturb one kernel coefficient: same shapes, different contents
    spec = ld_workload(64)
    spec.entries[0].app.kernels["blur"] = (
        spec.entries[0].app.kernels["blur"] * 1.001
    )
    assert base != cell_digest(_cell(workload=spec))[0]


def test_memo_state_does_not_perturb_digest():
    """TimingModel's _cost_cache is compare=False memoization; filling it
    (as every simulated run does) must leave the digest untouched."""
    cell = _cell()
    before = cell_digest(cell)[0]
    platform = cell[0]
    platform.timing.estimate("fft", {"n": 128, "batch": 1},
                             platform.build(seed=0).pes[0])
    assert platform.timing._cost_cache  # the memo actually filled
    assert cell_digest(cell)[0] == before


def test_uncacheable_cell_raises_and_counts(tmp_path):
    cell = _cell(config=lambda: None)  # a callable cannot be keyed
    with pytest.raises(UncacheableCell):
        cell_digest(cell)
    cache = SweepCache(tmp_path)
    assert cache.get(cell) is None
    assert cache.stats.uncacheable == 1 and cache.stats.misses == 1
    result = run_once(*_cell()[:5], seed=0)
    assert cache.put(cell, result) is False
    assert cache.stats.uncacheable == 2 and cache.stats.stores == 0


# --------------------------------------------------------------------- #
# hit / miss / store round trip
# --------------------------------------------------------------------- #

def test_round_trip_hit_is_bit_identical(tmp_path):
    cache = SweepCache(tmp_path)
    cell = _cell()
    assert cache.get(cell) is None
    assert cache.stats.misses == 1 and cache.stats.hits == 0
    result = run_once(*cell[:5], seed=0, execute=False, config=None)
    assert cache.put(cell, result) is True
    assert cache.stats.stores == 1
    loaded = cache.get(cell)
    # field-by-field diff (repro.audit.oracle): names any drifted field
    assert diff_results(loaded, result) == []
    assert cache.stats.hits == 1 and cache.stats.misses == 1


def test_telemetry_results_stay_uncached(tmp_path):
    cache = SweepCache(tmp_path)
    cell = _cell()
    result = run_once(*cell[:5], seed=0)
    tainted = dataclasses.replace(result, telemetry={"metrics": {}})
    assert cache.put(cell, tainted) is False
    assert cache.stats.uncacheable == 1
    assert cache.get(cell) is None


def test_corrupted_entry_recovers_to_miss(tmp_path):
    cache = SweepCache(tmp_path)
    cell = _cell()
    result = run_once(*cell[:5], seed=0)
    cache.put(cell, result)
    [entry] = list(tmp_path.glob("*.json"))
    entry.write_text("{ not json", encoding="utf-8")
    assert cache.get(cell) is None
    assert cache.stats.corrupt == 1
    assert not entry.exists(), "corrupted entry should be deleted"
    # the slot is usable again
    assert cache.put(cell, result) is True
    assert cache.get(cell) == result


def test_mismatched_key_degrades_to_miss(tmp_path):
    """A digest collision (or encoder bug) can never surface wrong data:
    the stored canonical key is re-checked on load."""
    cache = SweepCache(tmp_path)
    cell = _cell()
    cache.put(cell, run_once(*cell[:5], seed=0))
    [entry] = list(tmp_path.glob("*.json"))
    payload = json.loads(entry.read_text(encoding="utf-8"))
    payload["key"] = ["something", "else"]
    entry.write_text(json.dumps(payload), encoding="utf-8")
    assert cache.get(cell) is None
    assert cache.stats.corrupt == 1


# --------------------------------------------------------------------- #
# sweep integration
# --------------------------------------------------------------------- #

def test_warm_sweep_re_simulates_nothing_and_matches_serial(tmp_path):
    platform = zcu102(n_cpu=2, n_fft=1)
    workload = _workload()
    rates = [100.0, 300.0]
    cold_cache = SweepCache(tmp_path)
    cold = sweep_rates(platform, workload, "api", rates, "rr",
                       trials=2, cache=cold_cache)
    assert cold_cache.stats.misses == 4 and cold_cache.stats.stores == 4
    warm_cache = SweepCache(tmp_path)
    warm = sweep_rates(platform, workload, "api", rates, "rr",
                       trials=2, cache=warm_cache)
    assert warm_cache.stats.hits == 4
    assert warm_cache.stats.misses == 0, "warm sweep re-simulated cells"
    uncached = sweep_rates(platform, workload, "api", rates, "rr",
                           trials=2, cache=False)
    assert warm == cold == uncached
    assert repr(warm) == repr(uncached)


def test_grid_growth_costs_only_new_cells(tmp_path):
    """Adding a rate point to a cached grid only simulates the new column."""
    platform = zcu102(n_cpu=2, n_fft=1)
    workload = _workload()
    sweep_rates(platform, workload, "api", [100.0], "rr",
                trials=2, cache=SweepCache(tmp_path))
    grown_cache = SweepCache(tmp_path)
    sweep_rates(platform, workload, "api", [100.0, 300.0], "rr",
                trials=2, cache=grown_cache)
    assert grown_cache.stats.hits == 2 and grown_cache.stats.misses == 2


def test_cached_parallel_sweep_identical_to_cold_serial(tmp_path):
    """Cache + process pool together still reproduce the serial bits."""
    platform = zcu102(n_cpu=2, n_fft=1)
    workload = _workload()
    rates = [100.0, 300.0]
    serial = sweep_rates(platform, workload, "api", rates, "rr",
                         trials=2, n_jobs=1, cache=False)
    cached_parallel = sweep_rates(platform, workload, "api", rates, "rr",
                                  trials=2, n_jobs=3,
                                  cache=SweepCache(tmp_path))
    assert cached_parallel == serial
    # second parallel pass: all hits, still identical
    warm_cache = SweepCache(tmp_path)
    warm = sweep_rates(platform, workload, "api", rates, "rr",
                       trials=2, n_jobs=3, cache=warm_cache)
    assert warm_cache.stats.misses == 0
    assert warm == serial


# --------------------------------------------------------------------- #
# resolution knobs
# --------------------------------------------------------------------- #

def test_resolve_cache_env_off_values(monkeypatch):
    for value in ("", "0", "false", "off", "no"):
        monkeypatch.setenv(CACHE_ENV, value)
        assert resolve_cache(None) is None


def test_resolve_cache_env_on_uses_default_dir(monkeypatch):
    monkeypatch.setenv(CACHE_ENV, "1")
    cache = resolve_cache(None)
    assert isinstance(cache, SweepCache)
    assert str(cache.root) == DEFAULT_CACHE_DIR


def test_resolve_cache_env_path(monkeypatch, tmp_path):
    monkeypatch.setenv(CACHE_ENV, str(tmp_path / "mycache"))
    cache = resolve_cache(None)
    assert isinstance(cache, SweepCache)
    assert cache.root == tmp_path / "mycache"


def test_configure_cache_override_beats_env(monkeypatch, tmp_path):
    monkeypatch.setenv(CACHE_ENV, "1")
    pinned = SweepCache(tmp_path)
    previous = configure_cache(pinned)
    try:
        assert resolve_cache(None) is pinned
        configure_cache(False)
        assert resolve_cache(None) is None
    finally:
        configure_cache(previous)


def test_explicit_argument_beats_override(tmp_path):
    mine = SweepCache(tmp_path)
    previous = configure_cache(False)
    try:
        assert resolve_cache(mine) is mine
        assert resolve_cache(False) is None
    finally:
        configure_cache(previous)


def test_resolve_cache_rejects_junk():
    with pytest.raises(TypeError, match="SweepCache"):
        resolve_cache("yes-please")
