"""WiFi TX: the paper's communications application.

Per Section III: "generates packets of 64 bits and prepares for
transmission ... through scrambler, encoder, modulation, and forward error
correction processes" with a 128-point IFFT per packet - 100 packets (and
thus ~100 IFFTs) per frame.  The baseband stages are real 802.11a-style
kernels from :mod:`repro.kernels.wifi`; only the IFFT is accelerable, which
makes WiFi TX the workload with the highest non-kernel-to-kernel ratio -
exactly why DAG-based CEDR's "whole application divided into tasks"
inflates its ready queue relative to the API form.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from repro.core.handles import wait_all
from repro.dag import DagBuilder, DagProgram
from repro.kernels import wifi
from repro.kernels.fft import ifft as cpu_ifft

from .base import CedrApplication, Variant, chunk_slices, work_for_elems

__all__ = ["WifiTx"]

#: per-bit cost of scramble+encode+interleave+modulate at 1 GHz (seconds);
#: dominated by the convolutional encoder's shift-register update.
_BASEBAND_NS_PER_BIT = 2400.0


class WifiTx(CedrApplication):
    """WiFi transmit chain for a frame of 64-bit packets."""

    name = "TX"

    def __init__(
        self,
        n_packets: int = 100,
        batch: int = 1,
        scheme: str = "qpsk",
        cp_len: int = 32,
        scrambler_seed: int = 0b1011101,
    ) -> None:
        if wifi.N_SUBCARRIERS % 2:
            raise ValueError("subcarrier count must be even")
        self.n_packets = n_packets
        self.batch = batch
        self.scheme = scheme
        self.cp_len = cp_len
        self.scrambler_seed = scrambler_seed
        self.payload_bits = 64

    @property
    def frame_mb(self) -> float:
        """Transmitted complex64 samples per frame, in megabits."""
        samples = self.n_packets * (wifi.N_SUBCARRIERS + self.cp_len)
        return samples * 8 * 8 / 1e6

    def make_input(self, rng: np.random.Generator) -> dict[str, Any]:
        bits = rng.integers(0, 2, (self.n_packets, self.payload_bits)).astype(np.uint8)
        return {"bits": bits}

    # -- baseband stages shared by all three forms ------------------------- #

    def _packet_grid(self, payload: np.ndarray) -> np.ndarray:
        """bits -> frequency-domain OFDM symbol (everything but the IFFT)."""
        scrambled = wifi.scramble(payload, self.scrambler_seed)
        coded = wifi.conv_encode(scrambled, terminate=False)
        interleaved = wifi.interleave(coded, coded.size)
        symbols = wifi.modulate(interleaved, self.scheme)
        return wifi.ofdm_modulate(symbols)

    def _grids(self, bits: np.ndarray) -> np.ndarray:
        return np.stack([self._packet_grid(row) for row in bits])

    def _baseband_work(self, n_packets: int) -> float:
        return n_packets * self.payload_bits * 2 * _BASEBAND_NS_PER_BIT * 1e-9

    def reference(self, inputs: dict[str, Any]) -> np.ndarray:
        """(n_packets, 160) complex time-domain frame (CP included)."""
        grids = self._grids(inputs["bits"])
        time_syms = cpu_ifft(grids)
        return wifi.add_cyclic_prefix(time_syms, self.cp_len)

    # ------------------------------------------------------------------ #
    # API-based form
    # ------------------------------------------------------------------ #

    def api_main(
        self, lib, inputs: dict[str, Any], variant: Variant = "blocking"
    ) -> Generator:
        bits = inputs["bits"]
        ex = lib.executes
        n = wifi.N_SUBCARRIERS
        slices = chunk_slices(self.n_packets, self.batch)

        grid_chunks = []
        for sl in slices:
            count = sl.stop - sl.start
            yield from lib.local_work(self._baseband_work(count))
            if ex:
                grid_chunks.append(self._grids(bits[sl]))
            else:
                grid_chunks.append(np.empty((count, n), dtype=np.complex128))

        if variant == "blocking":
            time_chunks = []
            for grid in grid_chunks:
                time_chunks.append(self._or_fallback((yield from lib.ifft(grid)), grid, ex))
        else:
            reqs = []
            for grid in grid_chunks:
                reqs.append((yield from lib.ifft_nb(grid)))
            outs = yield from wait_all(reqs)
            time_chunks = [self._or_fallback(o, g, ex) for o, g in zip(outs, grid_chunks)]

        yield from lib.local_work(work_for_elems(self.n_packets * (n + self.cp_len)))
        if not ex:
            return None
        return wifi.add_cyclic_prefix(np.vstack(time_chunks), self.cp_len)

    # ------------------------------------------------------------------ #
    # DAG-based form
    # ------------------------------------------------------------------ #

    def build_dag(self, inputs: dict[str, Any]) -> tuple[DagProgram, dict[str, Any]]:
        bits = inputs["bits"]
        n = wifi.N_SUBCARRIERS
        slices = chunk_slices(self.n_packets, self.batch)
        state: dict[str, Any] = {}
        for i, sl in enumerate(slices):
            state[f"bits_{i}"] = bits[sl]

        b = DagBuilder("TX")
        cp_names = []
        for i, sl in enumerate(slices):
            count = sl.stop - sl.start

            def baseband(st, i=i):
                st[f"grid_{i}"] = self._grids(st[f"bits_{i}"])

            b.cpu(f"bb_{i}", baseband, self._baseband_work(count))
            b.kernel(
                f"ifft_{i}", "ifft", {"n": n, "batch": count},
                [f"grid_{i}"], f"time_{i}", after=[f"bb_{i}"],
            )

            def add_cp(st, i=i):
                st[f"tx_{i}"] = wifi.add_cyclic_prefix(st[f"time_{i}"], self.cp_len)

            cp_names.append(
                b.cpu(
                    f"cp_{i}", add_cp,
                    work_for_elems(count * (n + self.cp_len)), after=[f"ifft_{i}"],
                )
            )

        def assemble(st, n_chunks=len(slices)):
            st["frame"] = np.vstack([st[f"tx_{i}"] for i in range(n_chunks)])

        b.cpu("assemble", assemble, work_for_elems(self.n_packets * (n + self.cp_len)), after=cp_names)
        return b.build(), state
