"""The Fig.-2 control-flow collapse transformation.

The paper motivates CEDR-API with a structural limitation of the DAG
format: a loop over kernels (``for i: Kernel1; Kernel2; Kernel3``) cannot be
expressed with conditional/iterative edges, so "this entire for-loop
structure must be collapsed to a single DAG node", which is then CPU-only
because no accelerator implements the fused sequence.

:func:`collapse_subgraph` performs exactly that transformation on a
(spec, bindings) pair: the named nodes are replaced by one ``cpu_op`` node
whose callable executes the sub-DAG topologically with the CPU kernel
implementations and whose timing cost is the sum of the members' CPU costs.
The control-flow example and the fig2 granularity benchmark use this to
quantify what the collapse costs.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.kernels.registry import implementation_for
from repro.platforms.pe import CPU_ONLY_API, PEKind
from repro.platforms.timing import TimingModel

from .schema import DagValidationError, validate_spec

__all__ = ["collapse_subgraph"]


def collapse_subgraph(
    spec: Mapping[str, Any],
    bindings: Mapping[str, Callable],
    members: list[str],
    collapsed_name: str,
    timing: TimingModel,
) -> tuple[dict[str, Any], dict[str, Callable]]:
    """Replace ``members`` with a single CPU-only node.

    Requirements: every member exists, and no path between two members
    leaves the member set (otherwise the collapse would create a cycle).
    Returns a new (spec, bindings) pair; the inputs are not mutated.
    """
    validate_spec(spec, bindings)
    nodes = dict(spec["nodes"])
    member_set = set(members)
    missing = member_set - nodes.keys()
    if missing:
        raise DagValidationError(f"unknown members to collapse: {sorted(missing)}")
    if collapsed_name in nodes.keys() - member_set:
        raise DagValidationError(f"collapsed name {collapsed_name!r} already exists")

    # External predecessors of the group, and the member sub-topology.
    external_preds: set[str] = set()
    for m in members:
        for pred in nodes[m].get("after", []):
            if pred not in member_set:
                external_preds.add(pred)
    # Collapse-induced cycles (a member -> non-member -> member path) are
    # caught by the re-validation of the rewritten spec at the end.
    member_topo = _topo_of_members(nodes, members)
    total_work = sum(
        timing.cpu_seconds(nodes[m]["api"], nodes[m].get("params", {}))
        for m in member_topo
    ) * timing.cpu_clock_ghz  # convert back to seconds-at-1GHz

    member_specs = {m: dict(nodes[m]) for m in member_topo}
    member_bindings = {m: bindings[m] for m in member_topo if m in bindings}

    def fused(state: dict) -> None:
        """Run the collapsed members sequentially with CPU implementations."""
        for m in member_topo:
            node = member_specs[m]
            api = node["api"]
            if api == CPU_ONLY_API:
                member_bindings[m](state)
            else:
                impl = implementation_for(api, PEKind.CPU)
                inputs = [state[k] for k in node["inputs"]]
                payload = inputs[0] if len(inputs) == 1 else tuple(inputs)
                state[node["output"]] = impl(payload)

    new_nodes = {n: dict(v) for n, v in nodes.items() if n not in member_set}
    new_nodes[collapsed_name] = {
        "api": CPU_ONLY_API,
        "params": {"work_1ghz": total_work},
        "after": sorted(external_preds),
    }
    # Rewire external successors of any member onto the collapsed node.
    for name, node in new_nodes.items():
        if name == collapsed_name:
            continue
        after = node.get("after", [])
        if any(p in member_set for p in after):
            node["after"] = sorted({p for p in after if p not in member_set} | {collapsed_name})

    new_bindings = {k: v for k, v in bindings.items() if k not in member_set}
    new_bindings[collapsed_name] = fused
    new_spec = {"name": spec["name"], "nodes": new_nodes}
    validate_spec(new_spec, new_bindings)  # catches collapse-induced cycles
    return new_spec, new_bindings


def _topo_of_members(nodes: Mapping[str, Any], members: list[str]) -> list[str]:
    member_set = set(members)
    indeg = {
        m: sum(1 for p in set(nodes[m].get("after", [])) if p in member_set) for m in members
    }
    succs: dict[str, list[str]] = {m: [] for m in members}
    for m in members:
        for p in set(nodes[m].get("after", [])):
            if p in member_set:
                succs[p].append(m)
    frontier = [m for m in members if indeg[m] == 0]
    topo: list[str] = []
    while frontier:
        m = frontier.pop(0)
        topo.append(m)
        for s in succs[m]:
            indeg[s] -= 1
            if indeg[s] == 0:
                frontier.append(s)
    if len(topo) != len(members):
        raise DagValidationError("member subgraph contains a cycle")
    return topo
