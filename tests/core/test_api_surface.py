"""Registry-generated API surface: parity with the hand-written signatures,
plus the :func:`wait_any` synchronization primitive."""

import inspect

import numpy as np
import pytest

from repro.core import (
    API_SPECS,
    CedrClient,
    Request,
    StandaloneCedr,
    payload_bytes,
    run_standalone,
    wait_all,
    wait_any,
)
from repro.core.handles import CedrRequest, ImmediateRequest
from repro.platforms import zcu102
from repro.runtime import API_MODE, AppInstance, CedrRuntime, RuntimeConfig


def run_api_app(main_factory, scheduler="eft", seed=3, **cfg):
    platform = zcu102(n_cpu=3, n_fft=1).build(seed=seed)
    runtime = CedrRuntime(platform, RuntimeConfig(scheduler=scheduler, **cfg))
    runtime.start()
    app = AppInstance(name="t", mode=API_MODE, frame_mb=0.1, main_factory=main_factory)
    runtime.submit(app, at=0.0)
    runtime.seal()
    runtime.run()
    return app, runtime


# --------------------------------------------------------------------- #
# generated surface parity
# --------------------------------------------------------------------- #

def test_spec_table_covers_the_paper_apis():
    assert set(API_SPECS) == {"fft", "ifft", "zip", "gemm"}
    assert API_SPECS["fft"].arity == 1
    assert API_SPECS["zip"].arity == 2
    assert API_SPECS["gemm"].arity == 2


@pytest.mark.parametrize("cls", [CedrClient, StandaloneCedr])
def test_generated_methods_keep_the_handwritten_signatures(cls):
    for name, spec in API_SPECS.items():
        expected = ["self", "x"] if spec.arity == 1 else ["self", "a", "b"]
        for method_name in (name, f"{name}_nb"):
            method = getattr(cls, method_name)
            params = list(inspect.signature(method).parameters)
            assert params == expected, f"{cls.__name__}.{method_name}"
            assert method.__name__ == method_name
            assert method.__qualname__ == f"{cls.__name__}.{method_name}"
            assert method.__doc__  # help() keeps working on generated methods


def test_every_spec_has_both_variants_on_both_classes():
    for name in API_SPECS:
        for cls in (CedrClient, StandaloneCedr):
            assert callable(getattr(cls, name))
            assert callable(getattr(cls, f"{name}_nb"))


def test_payload_bytes_unknown_api_is_free():
    assert payload_bytes("warp_drive", {"n": 64}) == 0.0
    assert payload_bytes("fft", {"n": 64, "batch": 1}) > 0.0


def test_handles_share_one_protocol_base():
    assert issubclass(CedrRequest, Request)
    assert issubclass(ImmediateRequest, Request)
    with pytest.raises(TypeError):
        Request()  # abstract


# --------------------------------------------------------------------- #
# wait_any
# --------------------------------------------------------------------- #

def test_wait_any_empty_window_raises():
    gen = wait_any([])
    with pytest.raises(ValueError, match="at least one"):
        next(gen)


def test_wait_any_returns_first_completion(rng):
    small = rng.normal(size=64) + 0j
    big = rng.normal(size=2048) + 0j

    def main(lib):
        reqs = []
        for x in (big, small, big):
            reqs.append((yield from lib.fft_nb(x)))
        idx, first = yield from wait_any(reqs)
        assert reqs[idx].test()
        rest = yield from wait_all(r for i, r in enumerate(reqs) if i != idx)
        return idx, first, rest

    app, _ = run_api_app(main, execute_kernels=False)
    idx, first, rest = app.result
    assert 0 <= idx < 3
    assert len(rest) == 2


def test_wait_any_ties_resolve_to_lowest_index(rng):
    x = rng.normal(size=64) + 0j

    def main(lib):
        r1 = yield from lib.fft_nb(x)
        r2 = yield from lib.fft_nb(x)
        yield from wait_all([r1, r2])  # both already complete
        idx, _ = yield from wait_any([r2, r1])
        return idx

    app, _ = run_api_app(main)
    assert app.result == 0


def test_wait_any_result_is_correct(rng):
    x = rng.normal(size=128) + 0j

    def main(lib):
        req = yield from lib.fft_nb(x)
        idx, out = yield from wait_any([req])
        return idx, out

    app, _ = run_api_app(main)
    idx, out = app.result
    assert idx == 0
    assert np.allclose(out, np.fft.fft(x), atol=1e-8)


def test_wait_any_standalone_parity(rng):
    """The exact same main works in standalone mode (lowest-index done)."""
    x = rng.normal(size=64) + 1j * rng.normal(size=64)

    def main(lib):
        reqs = []
        for data in (x, 2 * x):
            reqs.append((yield from lib.fft_nb(data)))
        idx, first = yield from wait_any(reqs)
        rest = yield from wait_all(r for i, r in enumerate(reqs) if i != idx)
        return idx, first, rest[0]

    s_idx, s_first, s_rest = run_standalone(main)
    assert s_idx == 0  # ImmediateRequests are all done: lowest index wins
    app, _ = run_api_app(main)
    r_idx, r_first, r_rest = app.result
    # results cover the same pair regardless of completion order
    got_s = sorted([np.abs(s_first).sum(), np.abs(s_rest).sum()])
    got_r = sorted([np.abs(r_first).sum(), np.abs(r_rest).sum()])
    assert np.allclose(got_s, got_r, atol=1e-8)
