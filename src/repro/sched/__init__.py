"""CEDR scheduling heuristics.

The paper's evaluation uses RR, EFT, ETF, and HEFT_RT
(:data:`PAPER_SCHEDULERS`); the wider CEDR ecosystem's scheduler studies
also include MET and random mapping, provided here for the ablation
benches.  Importing this package registers everything; instantiate by name
through :func:`make_scheduler`.
"""

from .base import (
    Scheduler,
    SchedulerError,
    available_schedulers,
    make_scheduler,
    register_scheduler,
)
from .eft import EarliestFinishTime
from .etf import EarliestTaskFirst
from .heft_rt import HeftRT, upward_ranks
from .met import MinimumExecutionTime
from .random_sched import RandomScheduler
from .rr import RoundRobin

#: Scheduler names in the order the paper's figures present them.
PAPER_SCHEDULERS = ("rr", "eft", "etf", "heft_rt")

#: Extra heuristics from the wider CEDR scheduler repertoire [12].
EXTRA_SCHEDULERS = ("met", "random")

__all__ = [
    "Scheduler",
    "SchedulerError",
    "register_scheduler",
    "make_scheduler",
    "available_schedulers",
    "RoundRobin",
    "EarliestFinishTime",
    "EarliestTaskFirst",
    "HeftRT",
    "MinimumExecutionTime",
    "RandomScheduler",
    "upward_ranks",
    "PAPER_SCHEDULERS",
    "EXTRA_SCHEDULERS",
]
