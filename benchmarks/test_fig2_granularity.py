"""Ablation bench: the Fig.-2 control-flow granularity penalty.

The paper motivates CEDR-API with a structural argument: iterated kernels
must collapse into one CPU-only DAG node, losing per-kernel scheduling.
This bench quantifies that loss: the same iterated FFT/ZIP/IFFT filter as
(a) a collapsed single-node DAG and (b) an API-mode loop, on a Jetson
whose GPU executes FFT-class kernels an order of magnitude faster than its
CPUs, under the heterogeneity-aware HEFT_RT scheduler.  The collapsed form
is structurally CPU-only, so it cannot touch the GPU at all; the API form
keeps every kernel schedulable, reaches the GPU, and finishes far sooner.
"""

import numpy as np

from repro.dag import DagBuilder, collapse_subgraph, parse_dag
from repro.platforms import jetson, zcu102
from repro.runtime import AppInstance, CedrRuntime, RuntimeConfig

N = 1024
ITERATIONS = 8
INSTANCES = 6


def collapsed_dag_instance():
    b = DagBuilder("loop")
    b.cpu("init", lambda s: None, 1e-6)
    prev = "init"
    members = []
    for i in range(ITERATIONS):
        src = "y" if i == 0 else f"y_{i-1}"
        f = b.kernel(f"fft_{i}", "fft", {"n": N}, [src], f"F_{i}", after=[prev])
        z = b.kernel(f"zip_{i}", "zip", {"n": N}, [f"F_{i}", "h"], f"P_{i}", after=[f])
        iv = b.kernel(f"ifft_{i}", "ifft", {"n": N}, [f"P_{i}"], f"y_{i}", after=[z])
        members += [f, z, iv]
        prev = iv
    spec, bindings = b.build_raw()
    spec, bindings = collapse_subgraph(spec, bindings, members, "fused", zcu102().timing)
    return AppInstance(name="loop-dag", mode="dag", frame_mb=0.1,
                       dag=parse_dag(spec, bindings), initial_state={})


def api_instance():
    def main(lib):
        y = np.empty((N,), dtype=complex)
        h = y
        for _ in range(ITERATIONS):
            spec = yield from lib.fft(y)
            prod = yield from lib.zip(spec if lib.executes else y, h)
            y = yield from lib.ifft(prod if lib.executes else y)
            y = y if lib.executes else h
        return None
    return AppInstance(name="loop-api", mode="api", frame_mb=0.1, main_factory=main)


def run_fleet(make_instance):
    platform = jetson(n_cpu=3, n_gpu=1).build(seed=3)
    runtime = CedrRuntime(platform, RuntimeConfig(scheduler="heft_rt", execute_kernels=False))
    runtime.start()
    instances = [make_instance() for _ in range(INSTANCES)]
    for inst in instances:
        runtime.submit(inst, at=0.0)
    runtime.seal()
    runtime.run()
    mean_exec = float(np.mean([i.execution_time for i in instances]))
    return mean_exec, runtime.counters.tasks_completed, runtime.logbook.tasks_by_pe()


def test_fig2_collapse_penalty(benchmark):
    def both():
        return run_fleet(collapsed_dag_instance), run_fleet(api_instance)

    (dag_exec, dag_tasks, dag_pes), (api_exec, api_tasks, api_pes) = benchmark.pedantic(
        both, rounds=1, iterations=1
    )
    print(f"\ncollapsed DAG: exec/app {dag_exec*1e3:8.2f} ms, "
          f"{dag_tasks} tasks, placement {dag_pes}")
    print(f"API loop     : exec/app {api_exec*1e3:8.2f} ms, "
          f"{api_tasks} tasks, placement {api_pes}")

    # the API form exposes every kernel as a schedulable task
    assert api_tasks == INSTANCES * ITERATIONS * 3
    assert dag_tasks == INSTANCES * 2  # init + fused node per instance
    # collapsed loops can only run on CPUs
    assert all(name.startswith("cpu") for name in dag_pes)
    # the accelerator is reachable only from the API form...
    assert any(name.startswith("gpu") for name in api_pes)
    # ...and per-kernel scheduling beats the monolithic CPU-only node
    assert api_exec < 0.7 * dag_exec
