"""Fig. 9 - the autonomous-vehicle workload on both platforms (API-CEDR).

Setup (paper Section IV-B): one long-latency Lane Detection instance plus
dynamically arriving Pulse Doppler and WiFi TX instances, executed by
API-based CEDR on (a) the ZCU102 scaled up to 8 FFT accelerators and
(b) the Jetson with 7 CPU workers + GPU, swept over injection rates.

Expected reproduction: execution time rises to saturation earlier than the
lighter Fig. 6 workload (paper: ~100 Mbps on the ZCU102); the Jetson copes
far better (paper: saturated ~600-700 ms vs ~2000 ms on the ZCU102); RR is
the worst scheduler on both platforms because it cannot exploit the larger
heterogeneous pool.

Lane Detection's 1-D FFT rows are batched ``batch`` rows per task (default
64) to keep the sweep tractable; ``batch=1`` is the paper's granularity
(see DESIGN.md scale note).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.apps import LaneDetection, PulseDoppler, WifiTx
from repro.metrics import FigureSeries
from repro.platforms import jetson, zcu102
from repro.sched import paper_schedulers
from repro.workload import autonomous_vehicle_workload, paper_injection_rates

from .common import sweep_rates

__all__ = ["run_fig9", "av_workload_scaled"]


def av_workload_scaled(ld_batch: int = 64, app_batch: int = 4):
    """The autonomous-vehicle workload with adjustable task granularity.

    ``app_batch`` groups PD/TX kernel rows (paper granularity is 1) - the
    heavy LD workload makes batch=1 sweeps expensive, and the Fig. 9/10
    trends are insensitive to PD/TX granularity.
    """
    return autonomous_vehicle_workload(
        ld=LaneDetection(batch=ld_batch),
        pd=PulseDoppler(batch=app_batch),
        tx=WifiTx(batch=app_batch),
    )


def run_fig9(
    rates: Optional[Sequence[float]] = None,
    trials: int = 1,
    seed: int = 0,
    schedulers: Sequence[str] = paper_schedulers(),
    ld_batch: int = 64,
    n_jobs: Optional[int] = None,
) -> dict[str, FigureSeries]:
    """Regenerate Fig. 9(a,b); returns {panel id: FigureSeries}."""
    rates = list(rates) if rates is not None else list(paper_injection_rates(n=6))
    workload = av_workload_scaled(ld_batch=ld_batch)
    panels = {
        "fig9a": FigureSeries(
            "fig9a", "Execution time, API-CEDR, AV workload (ZCU102 3 CPU + 8 FFT)",
            "injection rate (Mbps)", "execution time per app (s)",
        ),
        "fig9b": FigureSeries(
            "fig9b", "Execution time, API-CEDR, AV workload (Jetson 7 CPU + 1 GPU)",
            "injection rate (Mbps)", "execution time per app (s)",
        ),
    }
    for platform, panel in ((zcu102(n_cpu=3, n_fft=8), "fig9a"), (jetson(n_cpu=7), "fig9b")):
        for scheduler in schedulers:
            sweep = sweep_rates(
                platform, workload, "api", rates, scheduler, trials=trials,
                base_seed=seed, n_jobs=n_jobs,
            )
            xs, ys = sweep.series("exec_time")
            panels[panel].add(scheduler.upper(), xs, ys)
    return panels
