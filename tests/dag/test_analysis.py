"""DAG analysis tests: critical path, width, work/span."""

import numpy as np
import pytest

from repro.apps import PulseDoppler
from repro.dag import DagBuilder
from repro.dag.analysis import (
    critical_path,
    parallelism_profile,
    summarize,
    to_networkx,
)
from repro.platforms import zcu102_timing


def chain_spec(n=4):
    b = DagBuilder("chain")
    prev = b.kernel("k0", "fft", {"n": 64}, ["x0"], "x1")
    for i in range(1, n):
        prev = b.kernel(f"k{i}", "fft", {"n": 64}, [f"x{i}"], f"x{i+1}", after=[prev])
    return b.spec()


def diamond_spec():
    b = DagBuilder("diamond")
    b.kernel("src", "fft", {"n": 64}, ["x"], "a")
    b.kernel("left", "fft", {"n": 256}, ["a"], "b", after=["src"])   # heavy
    b.kernel("right", "fft", {"n": 64}, ["a"], "c", after=["src"])   # light
    b.kernel("sink", "zip", {"n": 64}, ["b", "c"], "d", after=["left", "right"])
    return b.spec()


def test_to_networkx_structure():
    graph = to_networkx(diamond_spec())
    assert graph.number_of_nodes() == 4
    assert graph.number_of_edges() == 4
    assert set(graph.successors("src")) == {"left", "right"}
    assert graph.nodes["left"]["api"] == "fft"


def test_unweighted_critical_path_is_depth():
    path, length = critical_path(chain_spec(5))
    assert length == 5
    assert path == [f"k{i}" for i in range(5)]


def test_weighted_critical_path_takes_the_heavy_branch():
    path, length = critical_path(diamond_spec(), zcu102_timing())
    assert path == ["src", "left", "sink"]
    t = zcu102_timing()
    expected = (
        t.cpu_seconds("fft", {"n": 64})
        + t.cpu_seconds("fft", {"n": 256})
        + t.cpu_seconds("zip", {"n": 64})
    )
    assert length == pytest.approx(expected)


def test_parallelism_profile():
    assert parallelism_profile(chain_spec(3)) == [1, 1, 1]
    assert parallelism_profile(diamond_spec()) == [1, 2, 1]


def test_summary_brent_bounds():
    s = summarize(diamond_spec(), zcu102_timing())
    assert s.n_nodes == 4 and s.n_edges == 4
    assert s.max_width == 2
    assert s.work_s > s.span_s                   # some parallelism exists
    assert 1.0 < s.parallelism < s.max_width + 1  # bounded by the width-ish
    assert s.critical_path == ("src", "left", "sink")


def test_chain_has_no_parallelism():
    s = summarize(chain_spec(6), zcu102_timing())
    assert s.parallelism == pytest.approx(1.0)
    assert s.max_width == 1


def test_pd_dag_analysis_matches_runtime_intuition(rng):
    """PD at batch=1 is wide (per-pulse fan-out) but has a real sequential
    spine (fft -> zip -> ifft -> corner turn -> doppler -> detect)."""
    pd = PulseDoppler(batch=1)
    program, _ = pd.build_dag(pd.make_input(rng))
    s = summarize(program.spec, zcu102_timing())
    assert s.n_nodes == program.n_nodes
    assert s.max_width >= 128          # the per-pulse fan-out
    assert s.parallelism > 20          # plenty for the paper's PE pools...
    assert len(s.critical_path) >= 6   # ...but a genuine sequential spine
    # Brent: a runtime can never beat span; our simulated makespan respects it
    from repro.platforms import zcu102
    from repro.runtime import AppInstance, CedrRuntime, RuntimeConfig

    platform = zcu102(n_cpu=3, n_fft=2).build(seed=0)
    runtime = CedrRuntime(platform, RuntimeConfig(scheduler="heft_rt",
                                                  execute_kernels=False))
    runtime.start()
    app = AppInstance(name="PD", mode="dag", frame_mb=pd.frame_mb, dag=program)
    runtime.submit(app, at=0.0)
    runtime.seal()
    runtime.run()
    assert app.execution_time > s.span_s * 0.5  # span is a hard-ish floor
