"""Emulated DSSoC platforms: PEs, timing models, ZCU102 and Jetson presets."""

from .pe import CPU_ONLY_API, PE, PEDescriptor, PEKind, SUPPORT_MATRIX
from .platform import (
    PlatformConfig,
    PlatformInstance,
    jetson,
    zcu102,
    zcu102_biglittle,
)
from .registry import (
    PLATFORMS,
    PlatformEntry,
    available_platforms,
    make_platform,
    register_platform,
)
from .energy import (
    JETSON_POWER,
    ZCU102_POWER,
    EnergyBreakdown,
    PowerModel,
    estimate_energy,
)
from .timing import AccelCost, CostTable, TimingModel, jetson_timing, zcu102_timing

__all__ = [
    "PE",
    "PEDescriptor",
    "PEKind",
    "SUPPORT_MATRIX",
    "CPU_ONLY_API",
    "PlatformConfig",
    "PlatformInstance",
    "zcu102",
    "zcu102_biglittle",
    "jetson",
    "PLATFORMS",
    "PlatformEntry",
    "register_platform",
    "make_platform",
    "available_platforms",
    "TimingModel",
    "AccelCost",
    "CostTable",
    "zcu102_timing",
    "jetson_timing",
    "PowerModel",
    "EnergyBreakdown",
    "estimate_energy",
    "ZCU102_POWER",
    "JETSON_POWER",
]
