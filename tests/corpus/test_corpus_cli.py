"""The `repro corpus` CLI verbs, in-process through cli.main."""

import json

import pytest

from repro.cli import main
from repro.scenario import load_scenario


def test_generate_writes_valid_documents(tmp_path, capsys):
    out = tmp_path / "specs"
    rc = main([
        "corpus", "generate", "--n", "3", "--seed", "0",
        "--platforms", "zcu102", "--out", str(out),
    ])
    assert rc == 0
    files = sorted(out.glob("*.json"))
    assert len(files) == 3
    lines = capsys.readouterr().out.strip().splitlines()
    assert len(lines) == 3
    for path, line in zip(files, lines):
        spec = load_scenario(path)  # validates
        assert line.startswith(spec.digest()[:12])


def test_generate_kind_filter(tmp_path):
    out = tmp_path / "specs"
    assert main([
        "corpus", "generate", "--n", "3", "--kind", "serve", "--out", str(out),
    ]) == 0
    assert all(
        load_scenario(p).kind == "serve" for p in out.glob("*.json")
    )


def test_generate_env_scales_n(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CORPUS_N", "2")
    out = tmp_path / "specs"
    assert main(["corpus", "generate", "--out", str(out)]) == 0
    assert len(list(out.glob("*.json"))) == 2


def test_run_and_report(tmp_path, capsys):
    specs = tmp_path / "specs"
    report = tmp_path / "report.json"
    assert main([
        "corpus", "generate", "--n", "2", "--kind", "run",
        "--platforms", "zcu102", "--out", str(specs),
    ]) == 0
    rc = main([
        "corpus", "run", "--specs", str(specs), "--schedulers", "rr,etf",
        "--report", str(report), "--artifacts", str(tmp_path / "artifacts"),
    ])
    assert rc == 0
    doc = json.loads(report.read_text())
    assert doc["schema"] == "repro.corpus/1"
    assert doc["schedulers"] == ["rr", "etf"]
    capsys.readouterr()
    assert main(["corpus", "report", str(report)]) == 0
    out = capsys.readouterr().out
    assert "invariant violations: none" in out
    assert main(["corpus", "report", str(report), "--json"]) == 0
    assert json.loads(capsys.readouterr().out)["schema"] == "repro.corpus/1"


def test_run_minimizes_violations(tmp_path, capsys, evil_scheduler):
    specs = tmp_path / "specs"
    artifacts = tmp_path / "artifacts"
    assert main([
        "corpus", "generate", "--n", "1", "--kind", "run",
        "--platforms", "zcu102", "--out", str(specs),
    ]) == 0
    rc = main([
        "corpus", "run", "--specs", str(specs),
        "--schedulers", f"rr,{evil_scheduler}",
        "--report", str(tmp_path / "report.json"),
        "--artifacts", str(artifacts),
    ])
    assert rc == 1  # violations fail the run
    out = capsys.readouterr().out
    assert "queue-accounting" in out
    cell_dirs = [p for p in artifacts.iterdir() if p.is_dir()]
    assert len(cell_dirs) == 1
    assert (cell_dirs[0] / "minimized.json").exists()
    assert (cell_dirs[0] / "repro.txt").exists()


def test_minimize_verb(tmp_path, capsys, evil_scheduler):
    specs = tmp_path / "specs"
    assert main([
        "corpus", "generate", "--n", "1", "--kind", "run",
        "--platforms", "zcu102", "--out", str(specs),
    ]) == 0
    spec_path = next(specs.glob("*.json"))
    rc = main([
        "corpus", "minimize", str(spec_path),
        "--scheduler", evil_scheduler,
        "--artifacts", str(tmp_path / "artifacts"),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "queue-accounting" in out
    assert "repro scenario run" in out


def test_minimize_healthy_spec_exits_nonzero(tmp_path):
    specs = tmp_path / "specs"
    assert main([
        "corpus", "generate", "--n", "1", "--kind", "run",
        "--platforms", "zcu102", "--out", str(specs),
    ]) == 0
    with pytest.raises(SystemExit, match="does not fail"):
        main(["corpus", "minimize", str(next(specs.glob("*.json")))])


def test_run_rejects_unknown_scheduler(tmp_path):
    with pytest.raises(SystemExit, match="did you mean"):
        main([
            "corpus", "run", "--n", "1", "--platforms", "zcu102",
            "--schedulers", "hefd_rt",
            "--report", str(tmp_path / "r.json"),
        ])
