"""Measurement, trial statistics, and figure-series reporting."""

from .gantt import render_gantt
from .measures import RunResult
from .report import FigureSeries, Series, format_series_table, print_series_table
from .stats import TrialStats, aggregate_trials, saturated_mean

__all__ = [
    "RunResult",
    "render_gantt",
    "TrialStats",
    "aggregate_trials",
    "saturated_mean",
    "Series",
    "FigureSeries",
    "format_series_table",
    "print_series_table",
]
