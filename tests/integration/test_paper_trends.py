"""Integration: the paper's headline trends at reduced scale.

These are fast (timing-only, single-seed) versions of the assertions the
benchmarks make at full scale - run on every `pytest tests/` invocation so
a regression in any mechanism (spinners, polling dispatch, queue feedback,
overhead charging) is caught immediately.
"""

import pytest

from repro.experiments import run_once
from repro.experiments.fig9_versatility import av_workload_scaled
from repro.platforms import jetson, zcu102
from repro.workload import radar_comms_workload

RC = radar_comms_workload()
SAT_RATE = 1000.0  # comfortably in the oversubscribed region


@pytest.fixture(scope="module")
def zcu_fig6_runs():
    plat = zcu102(n_cpu=3, n_fft=1, n_mmult=1)
    out = {}
    for mode in ("dag", "api"):
        for sched in ("rr", "etf"):
            out[(mode, sched)] = run_once(plat, RC, mode, SAT_RATE, sched, seed=1)
    return out


def test_fig5_trend_api_overhead_below_dag(zcu_fig6_runs):
    dag = zcu_fig6_runs[("dag", "rr")].runtime_overhead_per_app
    api = zcu_fig6_runs[("api", "rr")].runtime_overhead_per_app
    reduction = (dag - api) / dag
    assert 0.05 < reduction < 0.45  # paper: 19.52%


def test_fig5_trend_overhead_decreases_with_rate():
    plat = zcu102(n_cpu=3, n_fft=1)
    low = run_once(plat, RC, "api", 10.0, "rr", seed=1).runtime_overhead_per_app
    high = run_once(plat, RC, "api", SAT_RATE, "rr", seed=1).runtime_overhead_per_app
    assert low > 1.25 * high


def test_fig7_trend_etf_queue_cost_collapses_in_api_mode(zcu_fig6_runs):
    dag_etf = zcu_fig6_runs[("dag", "etf")].sched_overhead_per_app
    api_etf = zcu_fig6_runs[("api", "etf")].sched_overhead_per_app
    assert dag_etf > 20 * api_etf  # paper: 70 ms -> 1.15 ms (~60x)
    # and the non-ETF schedulers never pay queue-quadratic costs
    dag_rr = zcu_fig6_runs[("dag", "rr")].sched_overhead_per_app
    assert dag_etf > 20 * dag_rr


def test_fig6_trend_etf_dag_execution_is_the_outlier(zcu_fig6_runs):
    assert (zcu_fig6_runs[("dag", "etf")].mean_exec_time
            > 1.5 * zcu_fig6_runs[("dag", "rr")].mean_exec_time)


def test_fig6_trend_api_exec_above_dag_on_zcu102(zcu_fig6_runs):
    """Thread contention on 3 cores: API-based exec time exceeds DAG-based
    for the fair (RR) scheduler (paper: 350 vs 200 ms)."""
    assert (zcu_fig6_runs[("api", "rr")].mean_exec_time
            > 1.1 * zcu_fig6_runs[("dag", "rr")].mean_exec_time)


def test_fig6_trend_exec_time_rises_to_saturation():
    plat = zcu102(n_cpu=3, n_fft=1, n_mmult=1)
    low = run_once(plat, RC, "dag", 20.0, "rr", seed=1).mean_exec_time
    high = run_once(plat, RC, "dag", SAT_RATE, "rr", seed=1).mean_exec_time
    assert high > 1.5 * low


def test_fig8_trend_api_beats_dag_on_jetson():
    plat = jetson(n_cpu=3, n_gpu=1)
    dag = run_once(plat, RC, "dag", SAT_RATE, "rr", seed=1).mean_exec_time
    api = run_once(plat, RC, "api", SAT_RATE, "rr", seed=1).mean_exec_time
    assert api < dag


def test_fig9_trend_jetson_copes_better_than_zcu():
    wl = av_workload_scaled(ld_batch=64)
    zcu = run_once(zcu102(n_cpu=3, n_fft=8), wl, "api", 300.0, "heft_rt", seed=1)
    jet = run_once(jetson(n_cpu=7), wl, "api", 500.0, "heft_rt", seed=1)
    assert jet.mean_exec_time < zcu.mean_exec_time / 2  # paper: ~650 vs ~2000 ms


def test_fig10a_trend_fft_accelerators_hurt_on_3_cores():
    wl = av_workload_scaled(ld_batch=64)
    exec_at = {
        n: run_once(zcu102(n_cpu=3, n_fft=n), wl, "api", 300.0, "rr", seed=1).mean_exec_time
        for n in (0, 8)
    }
    assert exec_at[8] > 1.3 * exec_at[0]  # more accels, worse exec time


def test_fig10a_trend_rr_degrades_fastest():
    wl = av_workload_scaled(ld_batch=64)
    plat = zcu102(n_cpu=3, n_fft=8)
    rr = run_once(plat, wl, "api", 300.0, "rr", seed=1).mean_exec_time
    heft = run_once(plat, wl, "api", 300.0, "heft_rt", seed=1).mean_exec_time
    assert rr > heft


def test_fig10b_trend_polynomial_minimum_in_cpu_count():
    wl = av_workload_scaled(ld_batch=64)
    exec_at = {
        n: run_once(jetson(n_cpu=n), wl, "api", 500.0, "rr", seed=1).mean_exec_time
        for n in (1, 5, 7)
    }
    assert exec_at[5] < exec_at[1]  # concurrency gain first
    assert exec_at[5] < exec_at[7]  # then worker/app-thread crowding


def test_fig5_reduction_stable_across_seeds():
    """The headline 19.5%-band overhead reduction is not a seed artifact."""
    plat = zcu102(n_cpu=3, n_fft=1)
    for seed in (1, 42, 2026):
        dag = run_once(plat, RC, "dag", SAT_RATE, "rr", seed=seed)
        api = run_once(plat, RC, "api", SAT_RATE, "rr", seed=seed)
        reduction = (dag.runtime_overhead_per_app - api.runtime_overhead_per_app) \
            / dag.runtime_overhead_per_app
        assert 0.05 < reduction < 0.45, f"seed {seed}: {reduction:.1%}"


def test_etf_collapse_stable_across_seeds():
    plat = zcu102(n_cpu=3, n_fft=1, n_mmult=1)
    for seed in (7, 99):
        dag = run_once(plat, RC, "dag", SAT_RATE, "etf", seed=seed)
        api = run_once(plat, RC, "api", SAT_RATE, "etf", seed=seed)
        assert dag.sched_overhead_per_app > 20 * api.sched_overhead_per_app, seed
