"""Fault-kind registry: what each injectable failure mode *does*.

The fault model (:mod:`repro.faults.model`) decides *when* a fault lands
and on *which* PE; this registry decides what landing means.  Each
:class:`FaultKindEntry` carries the enum member (the type the fault log
and cache codecs encode), whether the effect needs a live task on the PE
(idle-PE transients/hangs are dropped - see the injector), and the applier
the injector fires.  ``FaultConfig.parse_kinds`` and the injector's
dispatch both route through here, so ``repro list`` and scenario-spec
validation always agree with what the injector can actually do.

A new fault kind registers an applier under a new name (plus a
:class:`~repro.faults.model.FaultKind` member so logs and cache digests
can encode it); the ``repro.fault_kinds`` entry-point group does the same
from a third-party distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.registry import Registry

from .model import FaultKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.platforms import PE

    from .inject import FaultInjector

__all__ = [
    "FAULT_KINDS",
    "FaultKindEntry",
    "register_fault_kind",
    "available_fault_kinds",
]

#: applier signature: mutate PE / runtime state for one landed fault.
ApplyFn = Callable[["FaultInjector", "PE"], None]


@dataclass(frozen=True)
class FaultKindEntry:
    """One registered failure mode."""

    kind: FaultKind
    apply: ApplyFn
    #: the effect corrupts live task state: a stream fault landing on an
    #: *idle* PE is dropped (scripted faults are forced through anyway)
    needs_live_task: bool = False
    summary: str = ""


FAULT_KINDS: Registry[FaultKindEntry] = Registry(
    "fault kind", entry_point_group="repro.fault_kinds"
)


def register_fault_kind(
    kind: FaultKind, *, needs_live_task: bool = False, summary: str = ""
):
    """Decorator registering the applier of one fault kind."""

    def deco(apply: ApplyFn) -> ApplyFn:
        FAULT_KINDS.register(
            kind.value,
            FaultKindEntry(
                kind=kind,
                apply=apply,
                needs_live_task=needs_live_task,
                summary=summary,
            ),
        )
        return apply

    return deco


def available_fault_kinds() -> tuple[str, ...]:
    """Registered fault-kind names, sorted."""
    return FAULT_KINDS.names()


@register_fault_kind(
    FaultKind.TRANSIENT,
    needs_live_task=True,
    summary="next completed task on the PE fails and is retried",
)
def _apply_transient(injector: "FaultInjector", pe: "PE") -> None:
    pe.transient_pending += 1


@register_fault_kind(
    FaultKind.HANG,
    needs_live_task=True,
    summary="next task on the PE wedges until the watchdog recovers it",
)
def _apply_hang(injector: "FaultInjector", pe: "PE") -> None:
    pe.hang_pending += 1


@register_fault_kind(
    FaultKind.FAILSTOP,
    summary="the PE dies permanently; queued tasks bounce back",
)
def _apply_failstop(injector: "FaultInjector", pe: "PE") -> None:
    pe.dead = True
    pe.available = False
    injector.runtime.post(("pe_dead", pe))


@register_fault_kind(
    FaultKind.SLOWDOWN,
    summary="the PE silently degrades for slowdown_s (thermal throttling)",
)
def _apply_slowdown(injector: "FaultInjector", pe: "PE") -> None:
    runtime = injector.runtime
    pe.slow_epoch += 1
    pe.fault_slow_factor = injector.config.slowdown_factor
    epoch = pe.slow_epoch
    runtime.engine.call_at(
        runtime.engine.now + injector.config.slowdown_s,
        lambda: injector.end_slowdown(pe, epoch),
    )
