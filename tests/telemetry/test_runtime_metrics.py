"""Instrumentation integration: the runtime writes what the catalog promises."""

import pytest

from repro.apps import PulseDoppler
from repro.experiments import run_once
from repro.faults import FaultConfig
from repro.runtime import RuntimeConfig
from repro.telemetry import CedrTelemetry, TelemetryConfig
from repro.workload import WorkloadEntry, WorkloadSpec

PD1 = WorkloadSpec("pd1", (WorkloadEntry(PulseDoppler(batch=8), 1),))


def run_metered(platform, workload=PD1, interval=0.0, faults=None, seed=3):
    config = RuntimeConfig(
        scheduler="eft", execute_kernels=False, faults=faults,
        telemetry=TelemetryConfig(sample_interval_s=interval),
    )
    return run_once(platform, workload, "api", 200.0, "eft", seed=seed, config=config)


def _series(result, name):
    return {tuple(s["labels"].values()): s
            for s in result.telemetry["metrics"][name]["series"]}


def test_catalog_shape_is_run_invariant():
    # a zero-task telemetry object already exports every family
    t = CedrTelemetry(TelemetryConfig(), pe_names=("cpu0", "fft0"))
    names = [f.name for f in t.registry.families()]
    assert len(names) == len(set(names)) == 22
    assert set(_series_keys(t, "cedr_pe_dispatch_total")) == {("cpu0",), ("fft0",)}


def _series_keys(telemetry, name):
    return [key for key, _ in telemetry.registry.get(name).series()]


def test_runtime_counts_match_run_result(zcu_small):
    result = run_metered(zcu_small)
    metrics = result.telemetry["metrics"]

    def scalar(name):
        (entry,) = metrics[name]["series"]
        return entry["value"]

    assert scalar("cedr_tasks_completed") == result.tasks_completed
    assert scalar("cedr_sched_rounds") == result.sched_rounds
    assert scalar("cedr_apps_completed") == result.n_apps
    assert scalar("cedr_api_inflight_requests") == 0  # all calls settled
    # per-PE dispatches sum to the global task count and mirror placement
    dispatch = _series(result, "cedr_pe_dispatch_total")
    assert sum(e["value"] for e in dispatch.values()) == result.tasks_completed
    for pe, count in result.pe_task_histogram.items():
        assert dispatch[(pe,)]["value"] == count


def test_api_call_instrumentation(zcu_small):
    result = run_metered(zcu_small)
    calls = _series(result, "cedr_api_calls_total")
    assert calls, "no API calls recorded"
    assert {mode for _, mode in calls} <= {"blocking", "nonblocking"}
    latency = _series(result, "cedr_api_call_latency_seconds")
    for key, entry in calls.items():
        assert latency[key]["count"] == entry["value"]
        assert latency[key]["sum"] > 0.0


def test_sched_latency_histogram_counts_every_assignment(zcu_small):
    result = run_metered(zcu_small)
    (lat,) = result.telemetry["metrics"]["cedr_sched_latency_seconds"]["series"]
    assert lat["count"] == result.tasks_completed


def test_periodic_sampler_tick_spacing(zcu_small):
    interval = 0.005
    result = run_metered(zcu_small, interval=interval)
    ts = [s["t"] for s in result.telemetry["samples"]]
    assert len(ts) >= 3
    assert ts == sorted(ts)
    # interior samples land exactly on the interval grid; the last one is
    # the shutdown-time final snapshot at the makespan
    for i, t in enumerate(ts[:-1]):
        assert t == pytest.approx((i + 1) * interval)
    assert ts[-1] == pytest.approx(result.makespan)


def test_final_snapshot_always_taken_without_interval(zcu_small):
    result = run_metered(zcu_small, interval=0.0)
    samples = result.telemetry["samples"]
    assert len(samples) == 1
    assert samples[0]["values"]["cedr_tasks_completed"] == result.tasks_completed


def test_pe_utilization_derived_at_snapshot(zcu_small):
    result = run_metered(zcu_small)
    util = _series(result, "cedr_pe_utilization")
    busy = _series(result, "cedr_pe_busy_seconds_total")
    for key, entry in util.items():
        assert 0.0 <= entry["value"] <= 1.0 + 1e-9
        assert entry["value"] == pytest.approx(
            busy[key]["value"] / result.makespan
        )


def test_fault_layer_bridges_into_registry(zcu_small):
    result = run_metered(
        zcu_small, interval=0.0,
        faults=FaultConfig(rate=40.0, seed=11),
    )
    metrics = result.telemetry["metrics"]
    injected = sum(
        s["value"] for s in metrics["cedr_faults_injected_total"]["series"]
    )
    assert injected == result.faults_injected > 0
    failures = sum(
        s["value"] for s in metrics["cedr_task_failures_total"]["series"]
    )
    assert failures == result.task_failures
    (retries,) = metrics["cedr_task_retries_total"]["series"]
    assert retries["value"] == result.retries


def test_labels_lookups_are_o1_per_run(zcu_small, monkeypatch):
    """Hot paths pre-bind their label children: the number of
    ``MetricFamily.labels()`` probes in a run is a function of the catalog
    (PE names at construction, distinct (api, mode) pairs on first sight),
    not of how many tasks or libCEDR calls the run processes."""
    from repro.telemetry import registry as registry_mod

    counter = {"n": 0}
    real = registry_mod.MetricFamily.labels

    def counted(self, *values):
        counter["n"] += 1
        return real(self, *values)

    monkeypatch.setattr(registry_mod.MetricFamily, "labels", counted)
    small = WorkloadSpec("pd1", (WorkloadEntry(PulseDoppler(batch=8), 1),))
    big = WorkloadSpec("pd4", (WorkloadEntry(PulseDoppler(batch=8), 4),))

    counter["n"] = 0
    r_small = run_metered(zcu_small, workload=small)
    n_small = counter["n"]
    counter["n"] = 0
    r_big = run_metered(zcu_small, workload=big)
    n_big = counter["n"]

    assert r_big.tasks_completed > r_small.tasks_completed
    assert n_small > 0  # construction still binds through labels()
    assert n_big == n_small
