"""Content-addressed cache of sweep cells: never simulate the same run twice.

A grid cell is a pure function of its inputs - ``(platform, workload, mode,
rate, scheduler, seed, execute, config)`` fully determine the
:class:`~repro.metrics.RunResult` (the engine owns its RNG, seeded from
``seed``; nothing leaks between runs).  That purity is what makes parallel
sweeps bit-identical to serial ones, and it equally makes every cell
*memoizable*: hash the inputs, look the digest up on disk, and only
simulate the cells the store has never seen.  Re-running a figure with one
more rate point, extra trials, or after an unrelated code change then costs
only the new cells - see "Incremental sweeps" in EXPERIMENTS.md.

Keying is **content-addressed**, not argument-spelling-addressed: the cell
is canonically encoded (dataclasses by field, mappings sorted, enums by
qualified name, floats by exact ``repr`` round-trip) and the SHA-256 of
that encoding names the entry.  Two configs that compare equal produce the
same digest no matter how they were constructed; any observable difference
- a timing-model coefficient, a fault-script entry, one runtime cost knob -
produces a different digest.  There is deliberately no "close enough":
a cache hit returns the bit-identical ``RunResult`` the simulation would
have produced.

Entries are one JSON file per digest under the cache root (default
``.repro-cache/``), written atomically (temp file + ``os.replace``) so a
killed sweep never leaves a torn entry, and self-describing: each carries
the schema tag and its full canonical key, which is re-checked on load so
a hash collision or encoder bug degrades to a miss, never to wrong data.
Corrupted or unreadable entries are deleted and re-simulated.

Cells that cannot be keyed or stored faithfully are *uncacheable*, not
errors: an exotic object in the key that the canonical encoder refuses, or
a result carrying a telemetry export (whose payload does not round-trip
through JSON unchanged).  Those cells simply run every time.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import math
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Optional

import numpy as np

from repro.metrics import RunResult

__all__ = [
    "CACHE_SCHEMA",
    "DEFAULT_CACHE_DIR",
    "CacheStats",
    "ResultCodec",
    "RUN_CODEC",
    "SweepCache",
    "UncacheableCell",
    "cell_digest",
]

#: entry format version; bump on any change to the canonical encoding or
#: the stored-result layout, which invalidates every existing entry (the
#: schema tag participates in the digest).
CACHE_SCHEMA = "repro.sweep-cache/1"

#: cache root used when caching is enabled without an explicit directory.
DEFAULT_CACHE_DIR = ".repro-cache"


class UncacheableCell(TypeError):
    """The cell key contains a value the canonical encoder cannot commit to."""


def _canon(obj: Any) -> Any:
    """Canonical JSON-ready encoding of one key component.

    The encoding must be *injective on observable state* (different
    configs -> different encodings) and *stable* (same config -> same
    encoding, across processes and dict orderings).  Dataclasses encode by
    declared field only, so derived caches living in non-field attributes
    (e.g. ``TimingModel``'s memo table) never perturb the key.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # JSON floats round-trip exactly via repr, but inf/nan are not JSON
        if math.isfinite(obj):
            return obj
        return {"!float": repr(obj)}
    if isinstance(obj, enum.Enum):
        cls = type(obj)
        return {"!enum": f"{cls.__module__}.{cls.__qualname__}", "name": obj.name}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        # compare=False fields are excluded, mirroring dataclass equality:
        # derived memo tables (e.g. TimingModel._cost_cache) are not
        # observable state and must not perturb the digest
        cls = type(obj)
        return {
            "!dc": f"{cls.__module__}.{cls.__qualname__}",
            "fields": {
                f.name: _canon(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
                if f.compare
            },
        }
    if isinstance(obj, Mapping):
        items = [[_canon(k), _canon(v)] for k, v in obj.items()]
        items.sort(key=lambda kv: json.dumps(kv[0], sort_keys=True))
        return {"!map": items}
    if isinstance(obj, (list, tuple)):
        return [_canon(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        encoded = [_canon(v) for v in obj]
        encoded.sort(key=lambda v: json.dumps(v, sort_keys=True))
        return {"!set": encoded}
    if isinstance(obj, np.ndarray):
        # apps may precompute array state (e.g. LaneDetection's Gaussian
        # kernel); dtype + shape + raw C-order bytes is exact and stable
        arr = np.ascontiguousarray(obj)
        return {
            "!ndarray": arr.dtype.str,
            "shape": list(arr.shape),
            "data": arr.tobytes().hex(),
        }
    if isinstance(obj, np.generic):
        return _canon(obj.item())
    if hasattr(obj, "__dict__") and not callable(obj):
        # plain config-style object (e.g. a CedrApplication): class identity
        # plus every instance attribute is its observable state
        cls = type(obj)
        return {
            "!obj": f"{cls.__module__}.{cls.__qualname__}",
            "attrs": _canon(vars(obj)),
        }
    raise UncacheableCell(
        f"cannot canonically encode {type(obj).__name__!r} value {obj!r} "
        f"for cache keying"
    )


def cell_digest(cell: tuple) -> tuple[str, Any]:
    """(sha256 hex digest, canonical key) of one sweep cell.

    Raises :class:`UncacheableCell` when the cell cannot be keyed.
    """
    key = [CACHE_SCHEMA, _canon(cell)]
    blob = json.dumps(key, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest(), key


def _encode_result(result: RunResult) -> dict:
    """JSON-ready encoding of a RunResult (telemetry-free by contract)."""
    return {
        "n_apps": result.n_apps,
        "n_cancelled": result.n_cancelled,
        "exec_times": list(result.exec_times),
        "exec_times_by_app": {
            k: list(v) for k, v in result.exec_times_by_app.items()
        },
        "runtime_overhead_s": result.runtime_overhead_s,
        "sched_overhead_s": result.sched_overhead_s,
        "sched_rounds": result.sched_rounds,
        "ready_depth_mean": result.ready_depth_mean,
        "ready_depth_max": result.ready_depth_max,
        "makespan": result.makespan,
        "tasks_completed": result.tasks_completed,
        "pe_task_histogram": dict(result.pe_task_histogram),
        "n_failed": result.n_failed,
        "faults_injected": result.faults_injected,
        "task_failures": result.task_failures,
        "retries": result.retries,
        "tasks_lost": result.tasks_lost,
        "mean_time_to_recovery": result.mean_time_to_recovery,
    }


def _decode_result(data: dict) -> RunResult:
    """Inverse of :func:`_encode_result`; restores the tuple-typed fields."""
    return RunResult(
        n_apps=int(data["n_apps"]),
        n_cancelled=int(data["n_cancelled"]),
        exec_times=tuple(float(t) for t in data["exec_times"]),
        exec_times_by_app={
            str(k): tuple(float(t) for t in v)
            for k, v in data["exec_times_by_app"].items()
        },
        runtime_overhead_s=float(data["runtime_overhead_s"]),
        sched_overhead_s=float(data["sched_overhead_s"]),
        sched_rounds=int(data["sched_rounds"]),
        ready_depth_mean=float(data["ready_depth_mean"]),
        ready_depth_max=int(data["ready_depth_max"]),
        makespan=float(data["makespan"]),
        tasks_completed=int(data["tasks_completed"]),
        pe_task_histogram={
            str(k): int(v) for k, v in data["pe_task_histogram"].items()
        },
        n_failed=int(data["n_failed"]),
        faults_injected=int(data["faults_injected"]),
        task_failures=int(data["task_failures"]),
        retries=int(data["retries"]),
        tasks_lost=int(data["tasks_lost"]),
        mean_time_to_recovery=float(data["mean_time_to_recovery"]),
        telemetry=None,
    )


@dataclass(frozen=True)
class ResultCodec:
    """How one result type round-trips through a cache entry.

    The cache stores whatever a codec encodes; ``kind`` tags the entry so a
    digest can never decode under the wrong codec (kind participates in the
    load-time recheck, like the stored key).  ``cacheable`` is the storage
    gate - results that would not survive a JSON round trip bit-identically
    must return False and simply run every time.  The default
    :data:`RUN_CODEC` handles batch :class:`RunResult` cells and keeps the
    original entry layout exactly (its kind is the implicit default, so
    pre-codec entries stay valid); the serve tier registers its own codec
    for :class:`~repro.serve.driver.ServeResult` cells.
    """

    kind: str
    encode: Any
    decode: Any
    cacheable: Any = staticmethod(lambda result: True)


#: the original batch-sweep codec; entries it writes omit the ``kind`` field
#: so every pre-codec cache entry on disk still decodes under it.
RUN_CODEC = ResultCodec(
    kind="run/1",
    encode=_encode_result,
    decode=_decode_result,
    cacheable=lambda result: result.telemetry is None,
)


@dataclass
class CacheStats:
    """Counters for one cache handle's lifetime (reported by the CLI)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    uncacheable: int = 0
    corrupt: int = 0

    def summary(self) -> str:
        parts = [f"{self.hits} hits", f"{self.misses} misses"]
        if self.uncacheable:
            parts.append(f"{self.uncacheable} uncacheable")
        if self.corrupt:
            parts.append(f"{self.corrupt} corrupt entries dropped")
        return ", ".join(parts)


#: sentinel distinguishing "no probe supplied" from "probe said uncacheable"
_UNPROBED = object()


class SweepCache:
    """On-disk content-addressed store of sweep-cell results."""

    def __init__(self, root: "str | os.PathLike[str]" = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.stats = CacheStats()

    def _path(self, digest: str) -> Path:
        return self.root / f"{digest}.json"

    def probe(self, cell: tuple) -> Optional[tuple[str, Any]]:
        """Key *cell* once: ``(digest, canonical key)``, or None if uncacheable.

        Pass the probe to both :meth:`get` and :meth:`put` so the lookup and
        the store agree on the digest even if the cell's objects are mutated
        (e.g. by lazy memoization) while the simulation runs in between.
        """
        try:
            return cell_digest(cell)
        except UncacheableCell:
            self.stats.uncacheable += 1
            return None

    def get(
        self, cell: tuple, probe: Any = _UNPROBED, codec: Optional[ResultCodec] = None
    ) -> Optional[RunResult]:
        """Stored result for *cell*, or ``None`` (counted as a miss)."""
        if codec is None:
            codec = RUN_CODEC
        if probe is _UNPROBED:
            probe = self.probe(cell)
        if probe is None:
            self.stats.misses += 1
            return None
        digest, key = probe
        path = self._path(digest)
        try:
            raw = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except OSError:
            self._drop_corrupt(path)
            return None
        try:
            entry = json.loads(raw)
            if entry["schema"] != CACHE_SCHEMA or entry["key"] != key:
                # schema drift, hash collision, or encoder bug: the stored
                # key is re-checked so none of those can surface wrong data
                raise ValueError("cache entry does not match its cell")
            if entry.get("kind", RUN_CODEC.kind) != codec.kind:
                raise ValueError("cache entry kind does not match its codec")
            result = codec.decode(entry["result"])
        except (ValueError, KeyError, TypeError):
            self._drop_corrupt(path)
            return None
        self.stats.hits += 1
        return result

    def put(
        self,
        cell: tuple,
        result: RunResult,
        probe: Any = _UNPROBED,
        codec: Optional[ResultCodec] = None,
    ) -> bool:
        """Persist *result* under *cell*'s digest; True if stored."""
        if codec is None:
            codec = RUN_CODEC
        if not codec.cacheable(result):
            # e.g. telemetry exports carry tuples that do not survive a
            # JSON round trip bit-identically; such runs stay uncached
            self.stats.uncacheable += 1
            return False
        if probe is _UNPROBED:
            probe = self.probe(cell)
        if probe is None:
            return False
        digest, key = probe
        entry = {"schema": CACHE_SCHEMA, "key": key, "result": codec.encode(result)}
        if codec.kind != RUN_CODEC.kind:
            entry["kind"] = codec.kind
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(digest)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry, fh, separators=(",", ":"))
            os.replace(tmp, path)  # atomic: readers see old or new, never torn
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        return True

    def _drop_corrupt(self, path: Path) -> None:
        self.stats.corrupt += 1
        self.stats.misses += 1
        try:
            path.unlink()
        except OSError:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SweepCache {self.root} {self.stats.summary()}>"
