"""Vectorized-vs-scalar scheduler parity.

Every heuristic must produce *bit-identical* decisions whether its
``estimate`` argument is the runtime's columnar
:class:`~repro.platforms.timing.CostTable` (the batched fast path) or a
plain scalar callable (the reference path) - same assignments in the same
order, and the same ``expected_free`` floats, with fault masks active or
not.  The table computes each row once through the very same
``TimingModel.estimate`` calls the scalar path makes, so equality here is
exact (``==`` on floats), not approximate.
"""

from __future__ import annotations

import pytest

from repro.platforms import PE, PEDescriptor, PEKind, jetson, zcu102
from repro.platforms.timing import CostTable, zcu102_timing
from repro.runtime.task import Task
from repro.sched import SchedulerError, make_scheduler

SCHEDULERS = ("rr", "eft", "etf", "met", "heft_rt", "random")

PLATFORMS = {
    "zcu102": lambda: zcu102(n_cpu=3, n_fft=1, n_mmult=1),
    "jetson": lambda: jetson(n_cpu=4),
}

#: (api, params) mixture covering CPU-only, fabric, and GPU-eligible shapes
_SHAPES = (
    ("fft", {"n": 128, "batch": 1}),
    ("fft", {"n": 256, "batch": 1}),
    ("ifft", {"n": 128, "batch": 1}),
    ("zip", {"n": 256}),
    ("gemm", {"m": 8, "k": 8, "n": 8}),
    ("cpu_op", {"work_1ghz": 1.28e-4}),
)

SCENARIOS = ("clean", "quarantine", "bans", "quarantine+bans")


def _make_batch(n: int = 36) -> list[Task]:
    tasks = []
    for i in range(n):
        api, params = _SHAPES[i % len(_SHAPES)]
        task = Task(api=api, params=params, app_id=i, name=f"t{i}")
        # distinct, shuffled ranks so HEFT_RT's sort actually reorders
        task.rank = float((i * 7) % n)
        tasks.append(task)
    return tasks


def _apply_scenario(scenario: str, tasks: list[Task], pes: list[PE]) -> None:
    if "quarantine" in scenario:
        # knock out one accelerator and one CPU; every API keeps at least
        # one live CPU so no task needs parking
        pes[-1].available = False
        pes[1].available = False
    if "bans" in scenario:
        cpu_idx = [pe.index for pe in pes if pe.kind is PEKind.CPU]
        all_idx = [pe.index for pe in pes]
        tasks[0].banned_pes = frozenset(cpu_idx[:1])
        tasks[3].banned_pes = frozenset(cpu_idx)
        # every PE banned: the better-a-suspect-PE fallback must kick in
        tasks[5].banned_pes = frozenset(all_idx)
        tasks[7].banned_pes = frozenset(cpu_idx[1:])


def _run_path(sched_name: str, platform_key: str, scenario: str, columnar: bool):
    """One scheduling round; returns (assignment positions, expected_free)."""
    instance = PLATFORMS[platform_key]().build(seed=0)
    pes = instance.pes
    tasks = _make_batch()
    _apply_scenario(scenario, tasks, pes)
    if columnar:
        estimate = CostTable(instance.timing, pes)
    else:
        timing = instance.timing

        def estimate(task, pe):
            return timing.estimate(task.api, task.params, pe)

    scheduler = make_scheduler(sched_name)
    position = {id(t): i for i, t in enumerate(tasks)}
    out = scheduler.schedule(tasks, pes, now=0.5, estimate=estimate)
    order = [(position[id(task)], pe.index) for task, pe in out]
    return order, [pe.expected_free for pe in pes]


@pytest.mark.parametrize("scenario", SCENARIOS)
@pytest.mark.parametrize("platform_key", sorted(PLATFORMS))
@pytest.mark.parametrize("sched_name", SCHEDULERS)
def test_columnar_equals_scalar(sched_name, platform_key, scenario):
    columnar = _run_path(sched_name, platform_key, scenario, columnar=True)
    scalar = _run_path(sched_name, platform_key, scenario, columnar=False)
    assert columnar[0] == scalar[0], "assignment order/placement diverged"
    # expected_free must match to the bit, not within a tolerance
    assert columnar[1] == scalar[1], "PE backlog accounting diverged"


def _fft_only_pes():
    desc = PEDescriptor(name="fft0", kind=PEKind.FFT, clock_ghz=0.3)
    return [PE(index=0, desc=desc)]


@pytest.mark.parametrize("columnar", (False, True), ids=("scalar", "columnar"))
@pytest.mark.parametrize("sched_name", SCHEDULERS)
def test_unsupported_api_error_parity(sched_name, columnar):
    """No supporting PE raises the same SchedulerError through both paths."""
    pes = _fft_only_pes()
    tasks = [Task(api="zip", params={"n": 64}, app_id=0)]
    estimate = (
        CostTable(zcu102_timing(), pes) if columnar else (lambda t, p: 1.0)
    )
    with pytest.raises(SchedulerError, match="no PE supports"):
        make_scheduler(sched_name).schedule(tasks, pes, 0.0, estimate)


@pytest.mark.parametrize("columnar", (False, True), ids=("scalar", "columnar"))
@pytest.mark.parametrize("sched_name", SCHEDULERS)
def test_no_live_pe_error_parity(sched_name, columnar):
    """All-quarantined candidates raise identically through both paths."""
    instance = zcu102(n_cpu=2, n_fft=1).build(seed=0)
    pes = instance.pes
    for pe in pes:
        if pe.kind is PEKind.CPU:
            pe.available = False
    tasks = [Task(api="zip", params={"n": 64}, app_id=0)]  # CPU-only API
    timing = instance.timing
    estimate = (
        CostTable(timing, pes)
        if columnar
        else (lambda t, p: timing.estimate(t.api, t.params, p))
    )
    with pytest.raises(SchedulerError, match="no live PE"):
        make_scheduler(sched_name).schedule(tasks, pes, 0.0, estimate)


def test_cost_table_requires_aligned_indices():
    """Column j of every row is pes[j]; misaligned PE lists are rejected."""
    desc = PEDescriptor(name="cpu9", kind=PEKind.CPU, clock_ghz=1.0)
    with pytest.raises(ValueError, match="index-aligned"):
        CostTable(zcu102_timing(), [PE(index=9, desc=desc)])


def test_stale_row_from_another_table_reinterned():
    """A task interned by one runtime's table is re-interned by another's
    (the per-table token guards against trusting foreign row ids)."""
    instance_a = zcu102(n_cpu=3, n_fft=1).build(seed=0)
    instance_b = jetson(n_cpu=4).build(seed=0)
    table_a = CostTable(instance_a.timing, instance_a.pes)
    table_b = CostTable(instance_b.timing, instance_b.pes)
    task = Task(api="fft", params={"n": 128, "batch": 1}, app_id=0)
    # intern a few extra rows in A so the row ids cannot happen to coincide
    table_a.row("zip", {"n": 64})
    table_a.row("zip", {"n": 128})
    row_a = table_a.task_row(task)
    est_a = table_a.lookup(task, 0)
    row_b = table_b.task_row(task)
    est_b = table_b.lookup(task, 0)
    assert task.cost_token == table_b.token
    assert est_a == instance_a.timing.estimate("fft", {"n": 128, "batch": 1},
                                               instance_a.pes[0])
    assert est_b == instance_b.timing.estimate("fft", {"n": 128, "batch": 1},
                                               instance_b.pes[0])
    # and going back to A re-interns again rather than trusting B's stamp
    assert table_a.task_row(task) == row_a
    assert row_b == 0
