"""End-to-end fault-injection tests, one per fault kind (scripted faults)."""

import numpy as np
import pytest

from repro.apps import PulseDoppler
from repro.faults import FaultConfig, FaultKind, FaultSpec
from repro.metrics import RunResult
from repro.platforms import zcu102
from repro.runtime import CedrRuntime, RuntimeConfig


def scripted(*specs, **kwargs):
    return FaultConfig(script=tuple(specs), **kwargs)


def run_pd(config, scheduler="rr", seed=3, n_cpu=3, n_fft=1, execute=False,
           mode="api", apps=1):
    platform = zcu102(n_cpu=n_cpu, n_fft=n_fft).build(seed=seed)
    runtime = CedrRuntime(
        platform,
        RuntimeConfig(scheduler=scheduler, execute_kernels=execute, faults=config),
    )
    runtime.start()
    rng = np.random.default_rng(seed)
    for i in range(apps):
        runtime.submit(PulseDoppler(batch=4).make_instance(mode, rng), at=i * 1e-3)
    runtime.seal()
    runtime.run()
    return runtime


def all_pe_specs(kind, at=0.0, n_cpu=3, n_fft=1):
    names = [f"cpu{i}" for i in range(n_cpu)] + [f"fft{i}" for i in range(n_fft)]
    return [FaultSpec(at=at, pe=n, kind=kind) for n in names]


def test_transient_fault_is_detected_and_retried():
    # a forced transient on every PE: the retried task is banned from each
    # PE it failed on, so it deterministically absorbs every pending
    # transient - the budget must cover all of them for a clean finish
    runtime = run_pd(scripted(*all_pe_specs(FaultKind.TRANSIENT), max_retries=8))
    c = runtime.counters
    assert c.failures_by_kind.get("transient", 0) >= 1
    assert c.retries >= 1
    assert c.tasks_lost == 0
    result = RunResult.from_runtime(runtime)
    assert result.n_apps == 1 and result.n_failed == 0
    assert result.goodput == 1.0
    assert result.mean_time_to_recovery > 0.0


def test_transient_recovery_with_functional_execution():
    # same scenario with kernels actually executing: the retried task's
    # completion handle must still deliver a result to the app thread
    runtime = run_pd(scripted(*all_pe_specs(FaultKind.TRANSIENT), max_retries=8),
                     execute=True)
    assert runtime.counters.retries >= 1
    app = next(iter(runtime.apps.values()))
    assert app.finished and not app.failed
    assert app.tasks_done == app.tasks_total


def test_hang_fault_recovers_via_watchdog_or_timeout():
    runtime = run_pd(scripted(*all_pe_specs(FaultKind.HANG), max_retries=8))
    c = runtime.counters
    kinds = set(c.failures_by_kind)
    assert kinds & {"hang", "watchdog"}
    assert c.retries >= 1
    result = RunResult.from_runtime(runtime)
    assert result.n_apps == 1 and result.n_failed == 0


def test_failstop_kills_pe_permanently():
    spec = FaultSpec(at=0.0, pe="fft0", kind=FaultKind.FAILSTOP)
    runtime = run_pd(scripted(spec), scheduler="eft")
    fft0 = next(pe for pe in runtime.platform.pes if pe.name == "fft0")
    assert fft0.dead and not fft0.available
    result = RunResult.from_runtime(runtime)
    assert result.n_apps == 1 and result.n_failed == 0
    assert result.pe_task_histogram.get("fft0", 0) == 0


def test_slowdown_stretches_makespan():
    base = run_pd(None, n_cpu=1, n_fft=0)
    slow = run_pd(
        scripted(FaultSpec(at=0.0, pe="cpu0", kind=FaultKind.SLOWDOWN),
                 slowdown_factor=8.0, slowdown_s=0.5),
        n_cpu=1, n_fft=0,
    )
    assert slow.metrics.makespan > base.metrics.makespan * 1.5
    assert slow.counters.faults_by_kind.get("slowdown", 0) == 1
    # the degradation window ended (or the run outlived it): factor reset
    cpu0 = next(pe for pe in slow.platform.pes if pe.name == "cpu0")
    assert slow.counters.tasks_completed > 0
    assert cpu0.fault_slow_factor in (1.0, 8.0)


def test_injector_logs_applied_faults():
    runtime = run_pd(scripted(*all_pe_specs(FaultKind.TRANSIENT), max_retries=8))
    records = runtime.faults.records
    assert records, "forced scripted faults must be logged"
    assert all(r.kind is FaultKind.TRANSIENT for r in records)
    assert runtime.faults.retry_records, "a retry re-dispatch must be logged"
    t, tid, attempt, pe_name = runtime.faults.retry_records[0]
    assert attempt >= 1 and t >= 0.0


def test_scripted_fault_on_unknown_pe_is_rejected():
    platform = zcu102(n_cpu=3, n_fft=1).build(seed=0)
    cfg = scripted(FaultSpec(at=0.0, pe="gpu7", kind=FaultKind.TRANSIENT))
    runtime = CedrRuntime(platform, RuntimeConfig(scheduler="rr", faults=cfg))
    with pytest.raises(ValueError, match="unknown PE 'gpu7'"):
        runtime.start()


def test_stream_faults_on_idle_pes_are_dropped():
    # a rate-driven transient landing on an idle PE has no task to corrupt;
    # an empty runtime must absorb the whole stream without any failure
    platform = zcu102(n_cpu=3, n_fft=1).build(seed=0)
    cfg = FaultConfig(rate=200.0, seed=1,
                      kinds=(FaultKind.TRANSIENT, FaultKind.HANG))
    runtime = CedrRuntime(platform, RuntimeConfig(scheduler="rr", faults=cfg))
    runtime.start()
    runtime.seal()
    runtime.run()
    assert runtime.counters.faults_injected == 0
    assert runtime.counters.task_failures == 0
