"""Resilience sweep - execution time and goodput vs fault rate.

This figure has no counterpart in the paper: it exercises the
``repro.faults`` subsystem, which extends the reproduced CEDR runtime with
deterministic fault injection and task-level recovery (see
docs/INTERNALS.md, "Fault model & recovery").

Setup: the paper's radar/comms workload (5x Pulse Doppler + 5x WiFi TX) on
the ZCU102 with 3 ARM cores and 1 FFT accelerator, API mode, pinned at a
saturated 200 Mbps injection rate.  The x-axis sweeps the per-PE fault
rate (faults per simulated second per PE) over all paper schedulers:

* ``resilience_exec`` - average execution time of *surviving* applications;
* ``resilience_goodput`` - fraction of applications that completed despite
  injected faults (failed apps count against it, cancelled apps do not).

Expected shape: execution time rises with fault rate (retries, reroutes
and slowdown windows stretch every queue) while goodput holds near 1.0 for
moderate rates - the watchdog + retry machinery absorbs the faults - then
collapses once the fault inter-arrival time approaches task service times
and retry budgets exhaust.

Every (scheduler, fault rate, trial) cell is an independent unit of work
sharded across the PR-1 process pool; the fault schedule is a pure
function of ``(platform, fault config, seed)``, so ``n_jobs > 1`` is
bit-identical to the serial sweep.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.faults import FaultConfig
from repro.metrics import FigureSeries, aggregate_trials
from repro.platforms import zcu102
from repro.runtime import RuntimeConfig
from repro.sched import paper_schedulers
from repro.workload import radar_comms_workload

from .common import _run_cells, resolve_cache, resolve_jobs, trial_seeds

__all__ = ["run_fig_resilience", "FAULT_RATES", "RESILIENCE_RATE_MBPS"]

#: per-PE fault rates (faults/s/PE) swept on the x-axis
FAULT_RATES = (0.0, 5.0, 10.0, 20.0, 50.0, 100.0)
#: saturated injection rate the workload is pinned at (Mbps)
RESILIENCE_RATE_MBPS = 200.0


def run_fig_resilience(
    fault_rates: Optional[Sequence[float]] = None,
    trials: int = 2,
    seed: int = 0,
    fault_seed: Optional[int] = None,
    schedulers: Sequence[str] = paper_schedulers(),
    n_jobs: Optional[int] = None,
) -> dict[str, FigureSeries]:
    """Sweep fault rate x scheduler; returns {panel id: FigureSeries}.

    ``fault_seed=None`` derives each run's fault schedule from its trial
    seed (schedules vary across trials); a fixed integer pins the same
    schedule for every trial, isolating scheduler behaviour.
    """
    fault_rates = tuple(float(r) for r in (fault_rates if fault_rates is not None else FAULT_RATES))
    platform = zcu102(n_cpu=3, n_fft=1)
    workload = radar_comms_workload()
    setup = "ZCU102 3C+1FFT, 5xPD + 5xTX @ 200 Mbps, API mode"
    panels = {
        "resilience_exec": FigureSeries(
            "resilience_exec", f"Execution time under fault injection ({setup})",
            "fault rate (faults/s/PE)", "execution time per surviving app (s)",
        ),
        "resilience_goodput": FigureSeries(
            "resilience_goodput", f"Goodput under fault injection ({setup})",
            "fault rate (faults/s/PE)", "goodput (completed / submitted apps)",
        ),
    }
    seeds = trial_seeds(trials, seed)
    for scheduler in schedulers:
        cells = []
        for rate in fault_rates:
            faults = FaultConfig(rate=rate, seed=fault_seed) if rate > 0.0 else None
            config = RuntimeConfig(scheduler=scheduler, faults=faults)
            cells.extend(
                (platform, workload, "api", RESILIENCE_RATE_MBPS, scheduler,
                 s, False, config)
                for s in seeds
            )
        results = _run_cells(cells, resolve_jobs(n_jobs), resolve_cache(None))
        exec_ys, goodput_ys = [], []
        for i in range(len(fault_rates)):
            stats = aggregate_trials(results[i * trials:(i + 1) * trials])
            exec_ys.append(stats["exec_time"].mean)
            goodput_ys.append(stats["goodput"].mean)
        panels["resilience_exec"].add(scheduler.upper(), fault_rates, exec_ys)
        panels["resilience_goodput"].add(scheduler.upper(), fault_rates, goodput_ys)
    return panels
