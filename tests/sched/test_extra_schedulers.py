"""Tests for the extra CEDR-repertoire heuristics: MET and random."""

import pytest

from repro.platforms import PE, PEDescriptor, PEKind
from repro.runtime.task import Task
from repro.sched import EXTRA_SCHEDULERS, SchedulerError, make_scheduler


def make_pes(*kinds):
    return [
        PE(index=i, desc=PEDescriptor(name=f"{kind.value}{i}", kind=kind, clock_ghz=1.0))
        for i, kind in enumerate(kinds)
    ]


def make_tasks(*apis):
    return [Task(api=api, params={"n": 64}, app_id=0, name=f"t{i}")
            for i, api in enumerate(apis)]


def accel_fast(task, pe):
    return 0.25 if pe.kind.is_accelerator else 1.0


def test_extra_schedulers_registered():
    for name in EXTRA_SCHEDULERS:
        assert make_scheduler(name).name == name


def test_met_picks_fastest_pe_type():
    sched = make_scheduler("met")
    pes = make_pes(PEKind.CPU, PEKind.CPU, PEKind.FFT)
    out = sched.schedule(make_tasks("fft"), pes, 0.0, accel_fast)
    assert out[0][1].kind is PEKind.FFT


def test_met_is_queue_blind():
    """MET ignores backlog entirely - its defining (mis)feature."""
    sched = make_scheduler("met")
    pes = make_pes(PEKind.CPU, PEKind.FFT)
    pes[1].expected_free = 100.0  # hopelessly backlogged accelerator
    out = sched.schedule(make_tasks("fft"), pes, 0.0, accel_fast)
    assert out[0][1].kind is PEKind.FFT  # still the "fastest" type


def test_met_round_robins_over_equal_replicas():
    sched = make_scheduler("met")
    pes = make_pes(PEKind.CPU, PEKind.FFT, PEKind.FFT, PEKind.FFT)
    tasks = make_tasks("fft", "fft", "fft", "fft", "fft", "fft")
    out = sched.schedule(tasks, pes, 0.0, accel_fast)
    counts = {}
    for _, pe in out:
        counts[pe.name] = counts.get(pe.name, 0) + 1
    assert counts == {"fft1": 2, "fft2": 2, "fft3": 2}


def test_met_unsupported_api_raises():
    sched = make_scheduler("met")
    with pytest.raises(SchedulerError):
        sched.schedule(make_tasks("zip"), make_pes(PEKind.FFT), 0.0, accel_fast)


def test_random_only_picks_supporting_pes():
    sched = make_scheduler("random", seed=42)
    pes = make_pes(PEKind.CPU, PEKind.FFT, PEKind.MMULT)
    tasks = make_tasks(*(["zip"] * 20))
    out = sched.schedule(tasks, pes, 0.0, accel_fast)
    assert all(pe.kind is PEKind.CPU for _, pe in out)


def test_random_is_seed_reproducible():
    def run(seed):
        sched = make_scheduler("random", seed=seed)
        pes = make_pes(PEKind.CPU, PEKind.CPU, PEKind.FFT)
        return [pe.name for _, pe in
                sched.schedule(make_tasks(*(["fft"] * 10)), pes, 0.0, accel_fast)]

    assert run(1) == run(1)
    assert run(1) != run(2)


def test_random_eventually_uses_every_pe():
    sched = make_scheduler("random", seed=0)
    pes = make_pes(PEKind.CPU, PEKind.CPU, PEKind.FFT)
    out = sched.schedule(make_tasks(*(["fft"] * 60)), pes, 0.0, accel_fast)
    assert {pe.name for _, pe in out} == {"cpu0", "cpu1", "fft2"}


def test_extra_schedulers_work_end_to_end(rng):
    """MET and random drive the real runtime to correct results."""
    import numpy as np

    from repro.platforms import zcu102
    from repro.runtime import API_MODE, AppInstance, CedrRuntime, RuntimeConfig

    data = rng.normal(size=64) + 1j * rng.normal(size=64)

    def main(lib):
        spec = yield from lib.fft(data)
        return (yield from lib.ifft(spec))

    for name in EXTRA_SCHEDULERS:
        platform = zcu102(n_cpu=3, n_fft=1).build(seed=0)
        runtime = CedrRuntime(platform, RuntimeConfig(scheduler=name))
        runtime.start()
        app = AppInstance(name="t", mode=API_MODE, frame_mb=0.1, main_factory=main)
        runtime.submit(app, at=0.0)
        runtime.seal()
        runtime.run()
        assert np.allclose(app.result, data, atol=1e-9), name
