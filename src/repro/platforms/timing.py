"""Calibrated per-kernel cost model for the emulated platforms.

The paper measures wall-clock on real silicon; this reproduction charges
simulated time from the analytic model below.  Coefficients are expressed
in *cycles* (so clock rates translate them to seconds) plus DMA/memcpy
per-byte costs.  Magnitudes sit in the envelope of published numbers for
these devices and were calibrated end-to-end so the saturated-region values
of Figs 5-10 land near the paper's (EXPERIMENTS.md records the
paper-vs-measured comparison); the *shape* of every figure comes from the
queueing/contention mechanics, not from these constants.

Accelerator dispatch model - the load-bearing calibration choice
----------------------------------------------------------------

CEDR drives its fabric accelerators through *driverless memory-mapped I/O*:
the management thread builds DMA descriptors, stages the transfer, and
polls the device for completion.  All of that is CPU-resident work on the
management thread's host core.  The paper's own scalability analysis
(Fig. 10a: execution time is best with *zero* FFT accelerators and degrades
as more are added) only makes sense in this regime: an accelerator does not
add free compute capacity, it adds a CPU-hungry thread to an already
contended core pool.  Accordingly :meth:`TimingModel.accel_parts` returns
three *CPU-resident* phases for fabric accelerators -

``setup``
    descriptor/cache maintenance before the device is acquired;
``busy``
    DMA streaming + polling while the device is held exclusively (device
    occupancy equals the management thread's wall time here);
``teardown``
    completion/cache work, still holding the device.

On the ZCU102 the end-to-end accelerator cost is deliberately calibrated
near CPU parity for the paper's FFT sizes (DMA at ~80 MB/s effective with
cache maintenance, matching the narrative above).  On the Jetson the GPU
path is genuinely fast (high-bandwidth ``cudaMemcpy``, short kernels), so
the GPU provides the real speedup the paper's Jetson figures show.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field, replace
from typing import Mapping, Optional, Sequence

import numpy as np

from .pe import PE, PEKind

__all__ = ["AccelCost", "TimingModel", "CostTable", "zcu102_timing", "jetson_timing"]

#: bytes per complex128 element streamed to/from an accelerator
_BYTES_PER_ELEM = 16.0


@dataclass(frozen=True)
class AccelCost:
    """Three-part management-thread cost of one accelerator dispatch.

    All three parts are CPU-resident on the management thread's host core;
    the device itself is held exclusively for the ``busy`` + ``teardown``
    phases (see :mod:`repro.runtime.worker`).
    """

    setup: float
    busy: float
    teardown: float

    @property
    def total(self) -> float:
        return self.setup + self.busy + self.teardown


def _log2(n: float) -> float:
    return math.log2(max(2.0, float(n)))


@dataclass(frozen=True)
class TimingModel:
    """Analytic kernel-cost model for one platform."""

    cpu_clock_ghz: float
    accel_clock_ghz: dict[PEKind, float] = field(default_factory=dict)

    # -- CPU (portable C/C++ implementations) ---------------------------- #
    fft_cpu_cycles_per_unit: float = 96.0     # x n*log2(n)
    zip_cpu_cycles_per_elem: float = 6.0
    gemm_cpu_cycles_per_flop: float = 2.0     # x 2*m*k*n flops
    conv2d_cpu_cycles_per_mac: float = 2.5    # x h*w*kh*kw

    # -- fabric accelerators (FFT / MMULT IP over AXI DMA, polled) -------- #
    fabric_setup_us: float = 18.0             # descriptors + cache flush
    fabric_teardown_us: float = 8.0
    fabric_dma_ns_per_byte: float = 26.0      # ~80 MB/s effective, 2x payload
    fft_accel_cycles_per_elem: float = 3.0    # IP pipeline fill + drain
    fft_accel_max_points: int = 2048          # Xilinx IP configuration limit
    mmult_accel_cycles_per_flop: float = 0.5

    # -- GPU (CUDA kernels over cudaMemcpy; synchronous, CPU-resident) ---- #
    gpu_launch_us: float = 15.0               # launch + driver + sync path
    gpu_memcpy_ns_per_byte: float = 0.15      # ~6.6 GB/s effective
    gpu_fft_cycles_per_unit: float = 0.3
    gpu_zip_cycles_per_elem: float = 0.12
    gpu_teardown_us: float = 5.0

    #: multiplicative log-normal jitter for *sampled* costs; 0 disables.
    noise_sigma: float = 0.0

    #: memoized (api, params, kind) -> cost lookups.  Workloads repeat a
    #: handful of kernel shapes across thousands of tasks, and the worker
    #: threads re-derive the analytic cost for every single dispatch; the
    #: cache turns that into one dict probe (the profiling-table analogue of
    #: :meth:`CedrRuntime._estimate`, but shared by *all* consumers of the
    #: model).  Excluded from eq/hash/repr: it is pure memoization state.
    _cost_cache: dict = field(default_factory=dict, compare=False, repr=False)

    # ------------------------------------------------------------------ #

    def cpu_seconds(self, api: str, params: Mapping[str, float]) -> float:
        """Dedicated-core seconds for *api* on this platform's CPU (memoized)."""
        key = (api, tuple(sorted(params.items())), PEKind.CPU)
        cached = self._cost_cache.get(key)
        if cached is None:
            cached = self._cpu_seconds(api, params)
            self._cost_cache[key] = cached
        return cached

    def _cpu_seconds(self, api: str, params: Mapping[str, float]) -> float:
        ghz = self.cpu_clock_ghz
        if api in ("fft", "ifft"):
            n = float(params["n"])
            batch = float(params.get("batch", 1))
            return batch * self.fft_cpu_cycles_per_unit * n * _log2(n) / (ghz * 1e9)
        if api == "zip":
            return self.zip_cpu_cycles_per_elem * float(params["n"]) / (ghz * 1e9)
        if api == "gemm":
            flops = 2.0 * params["m"] * params["k"] * params["n"]
            return self.gemm_cpu_cycles_per_flop * flops / (ghz * 1e9)
        if api == "conv2d":
            macs = params["h"] * params["w"] * params["kh"] * params["kw"]
            return self.conv2d_cpu_cycles_per_mac * macs / (ghz * 1e9)
        if api == "cpu_op":
            # Non-kernel application regions carry their cost directly as
            # seconds-at-1GHz, scaled by the platform clock.
            return float(params["work_1ghz"]) / ghz
        raise KeyError(f"no CPU cost model for API {api!r}")

    def accel_parts(self, api: str, params: Mapping[str, float], kind: PEKind) -> AccelCost:
        """Management-thread dispatch cost of *api* on accelerator *kind*
        (memoized per (api, params, kind))."""
        key = (api, tuple(sorted(params.items())), kind)
        cached = self._cost_cache.get(key)
        if cached is None:
            cached = self._accel_parts(api, params, kind)
            self._cost_cache[key] = cached
        return cached

    def _accel_parts(self, api: str, params: Mapping[str, float], kind: PEKind) -> AccelCost:
        if kind is PEKind.FFT and api in ("fft", "ifft"):
            n = float(params["n"])
            if n > self.fft_accel_max_points:
                raise ValueError(
                    f"{int(n)}-point FFT exceeds the {self.fft_accel_max_points}-point "
                    "FFT IP configuration"
                )
            batch = float(params.get("batch", 1))
            nbytes = _BYTES_PER_ELEM * n * batch
            ghz = self.accel_clock_ghz[PEKind.FFT]
            busy = (
                2.0 * nbytes * self.fabric_dma_ns_per_byte * 1e-9  # in + out DMA
                + batch * self.fft_accel_cycles_per_elem * n / (ghz * 1e9)
            )
            return AccelCost(
                setup=self.fabric_setup_us * 1e-6,
                busy=busy,
                teardown=self.fabric_teardown_us * 1e-6,
            )
        if kind is PEKind.MMULT and api == "gemm":
            flops = 2.0 * params["m"] * params["k"] * params["n"]
            nbytes = _BYTES_PER_ELEM * (
                params["m"] * params["k"] + params["k"] * params["n"] + params["m"] * params["n"]
            )
            ghz = self.accel_clock_ghz[PEKind.MMULT]
            busy = (
                nbytes * self.fabric_dma_ns_per_byte * 1e-9
                + self.mmult_accel_cycles_per_flop * flops / (ghz * 1e9)
            )
            return AccelCost(
                setup=self.fabric_setup_us * 1e-6,
                busy=busy,
                teardown=self.fabric_teardown_us * 1e-6,
            )
        if kind is PEKind.GPU and api in ("fft", "ifft", "zip"):
            n = float(params["n"])
            batch = float(params.get("batch", 1))
            nbytes = _BYTES_PER_ELEM * n * batch
            memcpy = self.gpu_memcpy_ns_per_byte * nbytes * 1e-9
            ghz = self.accel_clock_ghz[PEKind.GPU]
            if api == "zip":
                kernel = self.gpu_zip_cycles_per_elem * n * batch / (ghz * 1e9)
                memcpy *= 2.0  # two input operands
            else:
                kernel = self.gpu_fft_cycles_per_unit * n * _log2(n) * batch / (ghz * 1e9)
            return AccelCost(
                setup=self.gpu_launch_us * 1e-6 + memcpy,
                busy=kernel,
                teardown=self.gpu_teardown_us * 1e-6 + memcpy,
            )
        raise KeyError(f"no accelerator cost model for API {api!r} on {kind}")

    # ------------------------------------------------------------------ #

    def estimate(self, api: str, params: Mapping[str, float], pe: PE) -> float:
        """Expected end-to-end seconds of *api* on *pe* (scheduler view).

        Deterministic, dedicated-core assumption: CEDR's profiling tables
        are collected on an unloaded system, which is precisely why the
        heuristics underestimate contention - the effect the paper's
        scalability section documents.
        """
        if pe.kind is PEKind.CPU:
            return self.cpu_seconds(api, params)
        return self.accel_parts(api, params, pe.kind).total

    def sample_factor(self, rng: Optional[np.random.Generator]) -> float:
        """Draw the multiplicative jitter factor for one executed task."""
        if rng is None or self.noise_sigma <= 0.0:
            return 1.0
        return float(np.exp(rng.normal(0.0, self.noise_sigma)))

    def with_noise(self, sigma: float) -> "TimingModel":
        return replace(self, noise_sigma=sigma)


#: per-process CostTable serials; tasks stamp the serial of the table that
#: interned them so a stale row id from another table is never trusted.
_table_tokens = itertools.count()


class CostTable:
    """Columnar profile table: per-(api, params) rows of per-PE estimates.

    Real CEDR consults static execution-time profiling tables; this is the
    columnar analogue for the simulated schedulers.  Each unique
    ``(api, params)`` shape is *interned* to a row id, and two parallel
    arrays hold the row data:

    * ``est[row]`` - float64 vector of :meth:`TimingModel.estimate` values
      per PE, ``+inf`` where the PE kind does not support the API;
    * ``support[row]`` - boolean vector of the (API, PE-kind) matrix.

    Batched gathers (:meth:`estimate_rows` / :meth:`support_rows`) feed the
    vectorized scheduler rounds; the instance is also callable as a scalar
    ``estimate(task, pe)`` so it plugs into the existing
    :class:`~repro.sched.base.Scheduler` interface unchanged.  Values are
    computed once per row by the scalar reference path, so both paths see
    bit-identical floats.

    Row ids are cached on the tasks themselves (``task.cost_row``), guarded
    by a per-table token (``task.cost_token``) so a task interned by one
    runtime's table is safely re-interned by another's.
    """

    def __init__(self, timing: TimingModel, pes: Sequence[PE]) -> None:
        self.timing = timing
        self.pes = list(pes)
        for j, pe in enumerate(self.pes):
            if pe.index != j:
                # column j of every row is pes[j]; the schedulers address
                # columns by pe.index, so the two must coincide (they do for
                # every platform built by PlatformConfig.build)
                raise ValueError(
                    f"PE {pe.name} has index {pe.index} at position {j}; "
                    "CostTable requires index-aligned PE lists"
                )
        self.n_pes = len(self.pes)
        self.token = next(_table_tokens)
        self._row_ids: dict[tuple, int] = {}
        self.n_rows = 0
        cap = 16
        self._est = np.full((cap, self.n_pes), np.inf)
        self._support = np.zeros((cap, self.n_pes), dtype=bool)

    # -- interning ------------------------------------------------------- #

    def row(self, api: str, params: Mapping[str, float]) -> int:
        """Intern one (api, params) shape; returns its row id."""
        key = (api, tuple(sorted(params.items())))
        row = self._row_ids.get(key)
        if row is None:
            row = self._add_row(api, params, key)
        return row

    def _add_row(self, api: str, params: Mapping[str, float], key: tuple) -> int:
        row = self.n_rows
        if row == len(self._est):
            grown_est = np.full((2 * row, self.n_pes), np.inf)
            grown_est[:row] = self._est
            grown_sup = np.zeros((2 * row, self.n_pes), dtype=bool)
            grown_sup[:row] = self._support
            self._est, self._support = grown_est, grown_sup
        for j, pe in enumerate(self.pes):
            if pe.supports(api):
                self._support[row, j] = True
                self._est[row, j] = self.timing.estimate(api, params, pe)
        self.n_rows += 1
        self._row_ids[key] = row
        return row

    def task_row(self, task) -> int:
        """Row id for *task*, interning and stamping it on first sight."""
        if task.cost_token != self.token:
            task.cost_row = self.row(task.api, task.params)
            task.cost_token = self.token
        return task.cost_row

    def rows_for(self, tasks: Sequence) -> np.ndarray:
        """Row-id vector for a ready batch (interning as needed)."""
        task_row = self.task_row
        return np.fromiter(
            (task_row(t) for t in tasks), dtype=np.intp, count=len(tasks)
        )

    # -- batched access (the vectorized scheduler fast path) -------------- #

    def estimate_rows(self, tasks: Sequence) -> np.ndarray:
        """(n, p) float64 estimates for a ready batch; +inf = unsupported."""
        return self._est[self.rows_for(tasks)]

    def support_rows(self, tasks: Sequence) -> np.ndarray:
        """(n, p) boolean support mask for a ready batch."""
        return self._support[self.rows_for(tasks)]

    def support_row(self, task) -> np.ndarray:
        """(p,) boolean support vector of one task (a read-only view)."""
        return self._support[self.task_row(task)]

    def support_cells(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Element-wise support probe: ``support[rows[i], cols[i]]``.

        One fancy-indexed gather - the online auditor validates a whole
        round's (task row, PE column) pairs at vector speed with it.
        """
        return self._support[rows, cols]

    def mean_estimate(self, api: str, params: Mapping[str, float]) -> float:
        """Mean estimate over supporting PEs (HEFT_RT rank seed)."""
        row = self.row(api, params)
        sup = self._support[row]
        if not sup.any():
            raise ValueError(f"no PE supports API {api!r}")
        return float(np.mean(self._est[row][sup]))

    # -- scalar reference path ------------------------------------------- #

    def lookup(self, task, pe_index: int) -> float:
        """Scalar estimate by PE index (one array probe once interned)."""
        return float(self._est[self.task_row(task), pe_index])

    def __call__(self, task, pe: PE) -> float:
        """EstimateFn-compatible scalar form used by the schedulers."""
        return float(self._est[self.task_row(task), pe.index])


def zcu102_timing() -> TimingModel:
    """Cost model for the Xilinx ZCU102 emulation (Section III).

    4x ARM Cortex-A53 @ 1.2 GHz; FFT/MMULT IP in fabric @ 300 MHz reached
    through AXI4-Stream DMA driven (and polled) by the management thread.
    """
    return TimingModel(
        cpu_clock_ghz=1.2,
        accel_clock_ghz={PEKind.FFT: 0.3, PEKind.MMULT: 0.3},
    )


def jetson_timing() -> TimingModel:
    """Cost model for the NVIDIA Jetson AGX Xavier emulation (Section III).

    8x Carmel @ 2.3 GHz; Volta GPU @ 1.3 GHz reached through ``cudaMemcpy``
    with synchronous (CPU-resident) dispatch.
    """
    return TimingModel(
        cpu_clock_ghz=2.3,
        accel_clock_ghz={PEKind.GPU: 1.3},
    )
