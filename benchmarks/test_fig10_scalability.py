"""Bench: regenerate Fig. 10 - scalability over the PE pool (API-CEDR).

Paper results asserted here:

* (a) ZCU102 @300 Mbps: the least execution time is at 0 FFT accelerators
  and the trend is upward as FFTs are added (each accelerator adds a
  CPU-hungry management thread to 3 shared cores); RR degrades the most,
  the heterogeneity-aware heuristics the least;
* (b) Jetson @500 Mbps: execution time vs CPU-worker count is polynomial
  with an interior minimum (paper: at 5 CPU + 1 GPU) - concurrency gains
  first, worker/application-thread crowding after.
"""

from repro.experiments import run_fig10a, run_fig10b
from repro.metrics import print_series_table


def test_fig10a_zcu_fft_scaling(benchmark, ld_batch):
    fig = benchmark.pedantic(
        run_fig10a,
        kwargs={"fft_counts": [0, 1, 2, 4, 8], "trials": 1, "ld_batch": ld_batch},
        rounds=1, iterations=1,
    )
    print_series_table(fig, y_scale=1e3, y_fmt="{:10.1f}")

    for sched in ("RR", "EFT", "ETF", "HEFT_RT"):
        s = fig.get(sched)
        # 0 FFTs is (within noise) the best configuration...
        assert s.ys[0] <= 1.05 * min(s.ys), f"{sched}: 0 FFTs must be ~best"
        # ...and the trend with added FFT accelerators is clearly upward
        assert s.ys[-1] > 1.2 * s.ys[0], f"{sched}: adding FFTs must hurt"

    # scheduler ordering at the 8-FFT end: RR worst, smart heuristics best
    rr8 = fig.get("RR").y_at(8.0)
    for sched in ("EFT", "ETF", "HEFT_RT"):
        assert rr8 > fig.get(sched).y_at(8.0)
    print(f"\n8-FFT exec/app: RR {rr8*1e3:.0f} ms vs HEFT_RT "
          f"{fig.get('HEFT_RT').y_at(8.0)*1e3:.0f} ms - fairness maximizes "
          "management-thread contention")


def test_fig10b_jetson_cpu_scaling(benchmark, ld_batch):
    fig = benchmark.pedantic(
        run_fig10b,
        kwargs={"cpu_counts": [1, 2, 3, 4, 5, 6, 7], "trials": 1, "ld_batch": ld_batch},
        rounds=1, iterations=1,
    )
    print_series_table(fig, y_scale=1e3, y_fmt="{:10.1f}")

    # RR shows the paper's clean polynomial: an interior minimum
    rr_ys = fig.get("RR").ys
    rr_best = rr_ys.index(min(rr_ys))
    assert 0 < rr_best < len(rr_ys) - 1, f"RR minimum at endpoint {rr_best}"
    # every scheduler is past its optimum by 7 CPU workers: the added
    # workers crowd the application threads (the paper's upswing)
    for sched in ("RR", "EFT", "ETF", "HEFT_RT"):
        ys = fig.get(sched).ys
        assert ys[-1] > 1.3 * min(ys), f"{sched}: no upswing at 7 CPUs"
    cpus = fig.get("RR").xs
    mins = {s: cpus[fig.get(s).ys.index(min(fig.get(s).ys))]
            for s in ("RR", "EFT", "ETF", "HEFT_RT")}
    print(f"\noptimal CPU-worker counts: {mins} (paper: 5 CPU + 1 GPU)")
