"""Determinism contracts: rate-0 bit-identity, seeded faults, pool parity."""

from repro.apps import PulseDoppler, WifiTx
from repro.experiments import run_once, run_trials
from repro.faults import FaultConfig
from repro.runtime import RuntimeConfig
from repro.workload import WorkloadEntry, WorkloadSpec

TINY = WorkloadSpec(
    "tiny",
    (WorkloadEntry(PulseDoppler(batch=8), 2), WorkloadEntry(WifiTx(batch=5), 2)),
)

FAULTY = RuntimeConfig(scheduler="eft", execute_kernels=False,
                       faults=FaultConfig(rate=40.0, seed=11))


def test_fault_rate_zero_is_bit_identical_to_no_fault_config(zcu_small):
    plain = run_once(zcu_small, TINY, "api", 200.0, "eft", seed=3)
    gated = run_once(
        zcu_small, TINY, "api", 200.0, "eft", seed=3,
        config=RuntimeConfig(scheduler="eft", execute_kernels=False,
                             faults=FaultConfig(rate=0.0)),
    )
    assert plain == gated


def test_faulty_run_reproduces_with_fixed_fault_seed(zcu_small):
    a = run_once(zcu_small, TINY, "api", 200.0, "eft", seed=3, config=FAULTY)
    b = run_once(zcu_small, TINY, "api", 200.0, "eft", seed=3, config=FAULTY)
    assert a == b
    assert a.faults_injected > 0


def test_fault_seed_changes_outcome_fault_free_seed_does_not(zcu_small):
    base = run_once(zcu_small, TINY, "api", 200.0, "eft", seed=3, config=FAULTY)
    other_cfg = RuntimeConfig(scheduler="eft", execute_kernels=False,
                              faults=FaultConfig(rate=40.0, seed=12))
    other = run_once(zcu_small, TINY, "api", 200.0, "eft", seed=3, config=other_cfg)
    assert base != other


def test_faulty_process_pool_sweep_matches_serial(zcu_small):
    serial = run_trials(zcu_small, TINY, "api", 200.0, "eft",
                        trials=3, base_seed=0, config=FAULTY, n_jobs=1)
    pooled = run_trials(zcu_small, TINY, "api", 200.0, "eft",
                        trials=3, base_seed=0, config=FAULTY, n_jobs=2)
    assert serial == pooled
    assert any(r.task_failures > 0 for r in serial)


def test_engine_seed_drives_faults_when_fault_seed_unset(zcu_small):
    cfg = RuntimeConfig(scheduler="eft", execute_kernels=False,
                        faults=FaultConfig(rate=40.0, seed=None))
    a = run_once(zcu_small, TINY, "api", 200.0, "eft", seed=3, config=cfg)
    b = run_once(zcu_small, TINY, "api", 200.0, "eft", seed=3, config=cfg)
    assert a == b
