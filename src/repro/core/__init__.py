"""CEDR-API: the paper's contribution - the API-based programming model.

``CedrClient`` is the runtime-linked libCEDR (blocking + non-blocking
APIs), ``StandaloneCedr`` the static CPU library for functional bring-up,
``CedrRequest``/``wait_all`` the non-blocking synchronization surface, and
``ModuleSet`` the per-platform accelerator module configuration.
"""

from .api import CedrClient
from .handles import CedrRequest, ImmediateRequest, wait_all
from .modules import STANDARD_MODULES, Module, ModuleSet, build_api_map
from .standalone import StandaloneCedr, run_standalone

__all__ = [
    "CedrClient",
    "StandaloneCedr",
    "run_standalone",
    "CedrRequest",
    "ImmediateRequest",
    "wait_all",
    "Module",
    "ModuleSet",
    "STANDARD_MODULES",
    "build_api_map",
]
