"""Discrete-event simulation core: threads, processor-sharing cores, sync.

This package is the hardware-substitution substrate for the CEDR-API
reproduction (see DESIGN.md section 1): it supplies the simulated pthreads,
CPU cores, and accelerator devices on which both the DAG-based and API-based
CEDR runtimes execute.
"""

from .cores import CompletionIndex, Core, Device
from .engine import CORE_IMPLS, DEFAULT_CORE_IMPL, Engine
from .errors import SimDeadlock, SimError, SimStateError, SimTimeError
from .process import (
    AcquireDevice,
    Block,
    Compute,
    Request,
    Sleep,
    SimThread,
    ThreadState,
    UseDevice,
    Yield,
)
from .rng import child_rng, make_rng, spawn_rngs
from .sync import Condition, Mutex, Semaphore, SimQueue
from .timerwheel import (
    DEFAULT_EVENT_CORE,
    EVENT_CORES,
    HeapTimerQueue,
    TimerWheel,
    make_timer_queue,
)

__all__ = [
    "Engine",
    "Core",
    "CompletionIndex",
    "Device",
    "TimerWheel",
    "HeapTimerQueue",
    "make_timer_queue",
    "EVENT_CORES",
    "DEFAULT_EVENT_CORE",
    "CORE_IMPLS",
    "DEFAULT_CORE_IMPL",
    "SimThread",
    "ThreadState",
    "Request",
    "Compute",
    "Sleep",
    "Block",
    "Yield",
    "UseDevice",
    "AcquireDevice",
    "Mutex",
    "Condition",
    "Semaphore",
    "SimQueue",
    "SimError",
    "SimDeadlock",
    "SimStateError",
    "SimTimeError",
    "make_rng",
    "child_rng",
    "spawn_rngs",
]
