"""GEMM kernel backing the MMULT accelerator PE.

The ZCU102 configurations in the paper's Fig. 6/7 include one MMULT
accelerator.  :func:`gemm` is the production implementation; the explicitly
looped/blocked :func:`gemm_blocked` exists as an independently-written
reference that tests use to validate it (and as the stand-in for the naive
portable-C path a real libCEDR module would ship).
"""

from __future__ import annotations

import numpy as np

__all__ = ["gemm", "gemm_blocked"]


def gemm(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None = None,
    alpha: float = 1.0,
    beta: float = 0.0,
) -> np.ndarray:
    """General matrix multiply: ``alpha * a @ b + beta * c``.

    ``a`` is (m, k), ``b`` is (k, n); ``c`` when given must be (m, n) and is
    never modified in place.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError(f"gemm expects 2-D operands, got {a.ndim}-D and {b.ndim}-D")
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"inner dimensions disagree: {a.shape} @ {b.shape}")
    out = alpha * (a @ b)
    if beta != 0.0:
        if c is None:
            raise ValueError("beta != 0 requires a c operand")
        c = np.asarray(c)
        if c.shape != out.shape:
            raise ValueError(f"c has shape {c.shape}, expected {out.shape}")
        out = out + beta * c
    return out


def gemm_blocked(a: np.ndarray, b: np.ndarray, block: int = 32) -> np.ndarray:
    """Cache-blocked matrix multiply written without ``@``.

    Kept deliberately independent of :func:`gemm` so the two can validate
    each other; the block loop mirrors how the fabric MMULT IP tiles its
    operand streams.
    """
    a = np.asarray(a, dtype=np.result_type(a, b, np.float64))
    b = np.asarray(b, dtype=a.dtype)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"bad operand shapes: {a.shape} @ {b.shape}")
    m, k = a.shape
    n = b.shape[1]
    out = np.zeros((m, n), dtype=a.dtype)
    for i0 in range(0, m, block):
        for j0 in range(0, n, block):
            acc = np.zeros((min(block, m - i0), min(block, n - j0)), dtype=a.dtype)
            for k0 in range(0, k, block):
                a_blk = a[i0 : i0 + block, k0 : k0 + block]
                b_blk = b[k0 : k0 + block, j0 : j0 + block]
                # einsum keeps this a true triple loop semantically while
                # staying vectorized per block.
                acc += np.einsum("ik,kj->ij", a_blk, b_blk)
            out[i0 : i0 + block, j0 : j0 + block] = acc
    return out
