"""ZIP and GEMM kernel tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.mmult import gemm, gemm_blocked
from repro.kernels.zip_ import zip_conj_product, zip_product

dims = st.integers(min_value=1, max_value=40)


def test_zip_product_basic(rng):
    a = rng.normal(size=100) + 1j * rng.normal(size=100)
    b = rng.normal(size=100) + 1j * rng.normal(size=100)
    assert np.allclose(zip_product(a, b), a * b)


def test_zip_shape_mismatch_rejected(rng):
    with pytest.raises(ValueError):
        zip_product(np.zeros(4), np.zeros(5))
    with pytest.raises(ValueError):
        zip_conj_product(np.zeros((2, 3)), np.zeros((3, 2)))


def test_zip_no_silent_broadcast():
    with pytest.raises(ValueError):
        zip_product(np.zeros((4, 8)), np.zeros(8))


def test_zip_conj_product_conjugates_second(rng):
    a = rng.normal(size=16) + 1j * rng.normal(size=16)
    b = rng.normal(size=16) + 1j * rng.normal(size=16)
    assert np.allclose(zip_conj_product(a, b), a * np.conj(b))


def test_zip_2d_matches_elementwise(rng):
    a = rng.normal(size=(5, 7))
    b = rng.normal(size=(5, 7))
    assert np.allclose(zip_product(a, b), a * b)


@given(m=dims, k=dims, n=dims, seed=st.integers(0, 2**31))
@settings(max_examples=40, deadline=None)
def test_gemm_matches_blocked_reference(m, k, n, seed):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(m, k))
    b = rng.normal(size=(k, n))
    assert np.allclose(gemm(a, b), gemm_blocked(a, b), atol=1e-9)


def test_gemm_identity(rng):
    a = rng.normal(size=(6, 6))
    assert np.allclose(gemm(a, np.eye(6)), a)


def test_gemm_alpha_beta(rng):
    a = rng.normal(size=(4, 5))
    b = rng.normal(size=(5, 3))
    c = rng.normal(size=(4, 3))
    out = gemm(a, b, c=c, alpha=2.0, beta=-0.5)
    assert np.allclose(out, 2.0 * (a @ b) - 0.5 * c)


def test_gemm_beta_requires_c(rng):
    with pytest.raises(ValueError):
        gemm(np.zeros((2, 2)), np.zeros((2, 2)), beta=1.0)


def test_gemm_shape_errors():
    with pytest.raises(ValueError):
        gemm(np.zeros((2, 3)), np.zeros((4, 5)))
    with pytest.raises(ValueError):
        gemm(np.zeros(3), np.zeros((3, 2)))
    with pytest.raises(ValueError):
        gemm(np.zeros((2, 3)), np.zeros((3, 2)), c=np.zeros((3, 3)), beta=1.0)


def test_gemm_does_not_mutate_c(rng):
    a = rng.normal(size=(3, 3))
    b = rng.normal(size=(3, 3))
    c = rng.normal(size=(3, 3))
    c_copy = c.copy()
    gemm(a, b, c=c, beta=1.0)
    assert np.array_equal(c, c_copy)


def test_gemm_blocked_non_multiple_of_block(rng):
    a = rng.normal(size=(33, 47))
    b = rng.normal(size=(47, 29))
    assert np.allclose(gemm_blocked(a, b, block=16), a @ b, atol=1e-9)


def test_gemm_blocked_shape_errors():
    with pytest.raises(ValueError):
        gemm_blocked(np.zeros((2, 3)), np.zeros((4, 5)))
