"""Shared experiment machinery: single runs, trials, and rate sweeps.

Every figure driver funnels through :func:`run_once`: build the platform,
start a CEDR runtime with the requested scheduler/mode, submit the workload
at the requested injection rate, run the simulation to completion, and
extract a :class:`~repro.metrics.RunResult`.  Sweeps layer trials and rate
grids on top.

Figure benchmarks run timing-only (``execute=False``): kernels are not
numerically evaluated, which changes nothing about queueing or contention
(all costs come from the timing model) but keeps full sweeps fast.
Integration tests run the same paths with ``execute=True`` to pin the
functional behaviour.

Parallel sweeps
---------------

A run is a pure function of ``(platform, workload, mode, rate, scheduler,
seed, execute, config)``: the engine owns its RNG, seeded from ``seed``, and
no state leaks between runs.  :func:`run_trials` and :func:`sweep_rates`
therefore accept ``n_jobs`` and shard their (rate, trial-seed) cells across
a :class:`~concurrent.futures.ProcessPoolExecutor` - results are collected
in grid order, so the output is **bit-identical** to the serial path (a
property the determinism tests pin).  ``n_jobs=None`` reads the
``REPRO_JOBS`` environment variable (default 1, i.e. serial); ``n_jobs<=-1``
means one worker per CPU.  This is what makes the paper's full 29-rate x
25-trial grids tractable - see EXPERIMENTS.md.

Incremental sweeps
------------------

The same purity that makes sweeps parallelizable makes them cacheable:
when a :class:`~repro.experiments.cache.SweepCache` is active, every grid
cell is looked up by content digest before any work is sharded to the
pool, and only the missing cells are simulated (then stored).  Enable it
with ``REPRO_CACHE=1`` (or a directory path), the ``--cache``/
``--cache-dir`` CLI flags, or by passing ``cache=SweepCache(...)`` to
:func:`run_trials`/:func:`sweep_rates`.  Hits return the bit-identical
``RunResult`` the simulation would have produced, so cached, parallel,
and serial sweeps all agree byte-for-byte.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.experiments.cache import DEFAULT_CACHE_DIR, SweepCache
from repro.metrics import RunResult, TrialStats, aggregate_trials
from repro.platforms import PlatformConfig
from repro.runtime import CedrRuntime, RuntimeConfig
from repro.workload import WorkloadSpec

__all__ = [
    "run_once",
    "run_trials",
    "RateSweep",
    "sweep_rates",
    "resolve_jobs",
    "configure_cache",
    "resolve_cache",
    "audit_from_env",
]

#: environment variable holding the default worker-process count
JOBS_ENV = "REPRO_JOBS"

#: environment variable forcing the online schedule auditor on for every
#: run ("1"/"true"/a path -> on, ""/"0"/"false"/"off"/"no" -> defer to the
#: per-run config).  Applied *inside* :func:`run_once`, after the cell
#: tuple is formed: worker processes inherit it through the pool
#: environment, and cache digests stay stable because cells still carry
#: the original config (auditing only observes, so a cached result is the
#: same bits an audited simulation would produce).
AUDIT_ENV = "REPRO_AUDIT"

#: environment variable enabling the sweep cache ("1"/"true" -> default
#: directory, any other non-empty value -> that directory, ""/"0" -> off)
CACHE_ENV = "REPRO_CACHE"

#: ``cache`` argument type shared by the sweep entry points: ``None`` defers
#: to :func:`configure_cache` / ``REPRO_CACHE``, ``False`` forces caching off,
#: a :class:`SweepCache` is used as-is.
CacheArg = Union[None, bool, SweepCache]

#: process-wide cache override installed by :func:`configure_cache`
#: (``None`` = defer to the environment, ``False`` = force off)
_cache_override: CacheArg = None


def resolve_jobs(n_jobs: Optional[int]) -> int:
    """Resolve an ``n_jobs`` argument to a concrete worker count.

    ``None`` defers to the ``REPRO_JOBS`` environment variable (absent or
    empty means serial); any value <= -1 means one worker per CPU.  Other
    non-positive counts (``0`` in particular) are rejected: silently
    coercing them to serial used to mask sweep-driver bugs.
    """
    if n_jobs is None:
        raw = os.environ.get(JOBS_ENV, "").strip()
        try:
            n_jobs = int(raw) if raw else 1
        except ValueError:
            raise ValueError(
                f"{JOBS_ENV} must be an integer worker count, got {raw!r}"
            ) from None
    if n_jobs <= -1:
        return os.cpu_count() or 1
    if n_jobs < 1:
        raise ValueError(
            f"n_jobs must be >= 1 or <= -1 (all cores), got {n_jobs}"
        )
    return n_jobs


def configure_cache(cache: CacheArg) -> CacheArg:
    """Install a process-wide sweep-cache override; returns the previous one.

    ``None`` restores the default (defer to ``REPRO_CACHE``); ``False``
    forces caching off regardless of the environment; a
    :class:`SweepCache` instance is used by every sweep that does not pass
    its own ``cache`` argument (this is how the CLI threads one handle -
    and one set of hit/miss counters - through nested figure drivers).
    """
    global _cache_override
    previous = _cache_override
    _cache_override = cache
    return previous


def resolve_cache(cache: CacheArg = None) -> Optional[SweepCache]:
    """Resolve a ``cache`` argument to a live :class:`SweepCache` or None.

    Precedence: an explicit argument beats :func:`configure_cache`, which
    beats the ``REPRO_CACHE`` environment variable (""/"0"/"false"/"off" ->
    disabled, "1"/"true"/"on" -> the default ``.repro-cache/`` directory,
    anything else -> that directory).
    """
    if cache is False:
        return None
    if isinstance(cache, SweepCache):
        return cache
    if cache is not None:
        raise TypeError(
            f"cache must be None, False, or a SweepCache, got {cache!r}"
        )
    if _cache_override is not None:
        return _cache_override if isinstance(_cache_override, SweepCache) else None
    raw = os.environ.get(CACHE_ENV, "").strip()
    if not raw or raw.lower() in ("0", "false", "off", "no"):
        return None
    if raw.lower() in ("1", "true", "on", "yes"):
        return SweepCache(DEFAULT_CACHE_DIR)
    return SweepCache(raw)


def audit_from_env() -> bool:
    """Whether ``REPRO_AUDIT`` asks for the online schedule auditor."""
    raw = os.environ.get(AUDIT_ENV, "").strip().lower()
    return raw not in ("", "0", "false", "off", "no")


def run_once(
    platform: PlatformConfig,
    workload: WorkloadSpec,
    mode: str,
    rate_mbps: float,
    scheduler: str,
    seed: int = 0,
    execute: bool = False,
    config: Optional[RuntimeConfig] = None,
) -> RunResult:
    """One complete simulated run; returns its measurements."""
    if config is None:
        config = RuntimeConfig(scheduler=scheduler, execute_kernels=execute)
    else:
        config = config.with_scheduler(scheduler)
    if not config.audit and audit_from_env():
        config = config.with_audit()
    instance = platform.build(seed=seed)
    runtime = CedrRuntime(instance, config)
    runtime.start()
    for app, arrival in workload.instantiate(mode, rate_mbps, seed):
        runtime.submit(app, at=arrival)
    runtime.seal()
    runtime.run()
    return RunResult.from_runtime(runtime)


def _run_cell(cell: tuple) -> RunResult:
    """Picklable worker entry: one (rate, seed) grid cell.

    Module-level (not a closure) so :class:`ProcessPoolExecutor` can ship it
    to worker processes under any start method.
    """
    platform, workload, mode, rate, scheduler, seed, execute, config = cell
    return run_once(
        platform, workload, mode, rate, scheduler,
        seed=seed, execute=execute, config=config,
    )


def _run_cells(
    cells: list[tuple],
    n_jobs: int,
    cache: Optional[SweepCache] = None,
) -> list[RunResult]:
    """Run grid cells, serially or across a process pool, in grid order.

    The executor path uses ``map`` so results come back in submission order
    regardless of completion order - determinism does not depend on worker
    scheduling.  With a cache, hits are satisfied in the parent before any
    sharding and only the missing cells reach the pool; the final list is
    reassembled in grid order either way, so caching never perturbs output
    ordering (or bits - a hit is the stored ``RunResult``, exactly).
    """
    if cache is None:
        return _simulate_cells(cells, n_jobs)
    # each cell is keyed exactly once: get and put share the probe, so a
    # digest can never drift between lookup and store within one sweep
    probes = [cache.probe(cell) for cell in cells]
    results: list[Optional[RunResult]] = [
        cache.get(cell, probe) for cell, probe in zip(cells, probes)
    ]
    missing = [i for i, r in enumerate(results) if r is None]
    if missing:
        fresh = _simulate_cells([cells[i] for i in missing], n_jobs)
        for i, result in zip(missing, fresh):
            cache.put(cells[i], result, probes[i])
            results[i] = result
    return results


def _simulate_cells(cells: list[tuple], n_jobs: int) -> list[RunResult]:
    """The raw (cache-free) execution path behind :func:`_run_cells`."""
    if n_jobs <= 1 or len(cells) <= 1:
        return [_run_cell(c) for c in cells]
    workers = min(n_jobs, len(cells))
    chunksize = max(1, len(cells) // (workers * 4))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_run_cell, cells, chunksize=chunksize))


def trial_seeds(trials: int, base_seed: int = 0) -> list[int]:
    """The seed grid shared by the serial and parallel paths."""
    return [base_seed + 1000 * t for t in range(trials)]


def run_trials(
    platform: PlatformConfig,
    workload: WorkloadSpec,
    mode: str,
    rate_mbps: float,
    scheduler: str,
    trials: int = 3,
    base_seed: int = 0,
    execute: bool = False,
    config: Optional[RuntimeConfig] = None,
    n_jobs: Optional[int] = None,
    cache: CacheArg = None,
) -> list[RunResult]:
    """Repeat :func:`run_once` over ``trials`` seeds (paper: 25 trials).

    ``n_jobs`` > 1 fans the trials out over worker processes; results are
    returned in seed order either way.  ``cache`` enables the sweep cache
    (see :func:`resolve_cache` for the ``None``/``False``/instance forms).
    """
    if trials < 1:
        raise ValueError(f"need at least one trial, got {trials}")
    cells = [
        (platform, workload, mode, rate_mbps, scheduler, seed, execute, config)
        for seed in trial_seeds(trials, base_seed)
    ]
    return _run_cells(cells, resolve_jobs(n_jobs), resolve_cache(cache))


@dataclass(frozen=True)
class RateSweep:
    """Aggregated metric statistics across an injection-rate grid."""

    rates: tuple[float, ...]
    #: metric name -> per-rate TrialStats, aligned with ``rates``
    stats: dict[str, tuple[TrialStats, ...]]

    def series(self, metric: str) -> tuple[tuple[float, ...], tuple[float, ...]]:
        """(xs, mean ys) for one metric - plot-ready."""
        per_rate = self.stats[metric]
        return self.rates, tuple(s.mean for s in per_rate)


def sweep_rates(
    platform: PlatformConfig,
    workload: WorkloadSpec,
    mode: str,
    rates: Sequence[float],
    scheduler: str,
    trials: int = 3,
    base_seed: int = 0,
    execute: bool = False,
    config: Optional[RuntimeConfig] = None,
    n_jobs: Optional[int] = None,
    cache: CacheArg = None,
) -> RateSweep:
    """Run the workload across an injection-rate grid with trials.

    With ``n_jobs`` > 1 every (rate, trial) cell of the grid is an
    independent unit of work sharded across one process pool, so the
    speedup scales with ``rates x trials`` rather than ``trials`` alone.
    With a cache (``REPRO_CACHE=1`` or an explicit handle), previously
    simulated cells are loaded instead of re-run, so regenerating a figure
    after a parameter tweak costs only the new cells.
    """
    rates = tuple(float(r) for r in rates)
    seeds = trial_seeds(trials, base_seed)
    cells = [
        (platform, workload, mode, rate, scheduler, seed, execute, config)
        for rate in rates
        for seed in seeds
    ]
    results = _run_cells(cells, resolve_jobs(n_jobs), resolve_cache(cache))
    per_metric: dict[str, list[TrialStats]] = {}
    for i, rate in enumerate(rates):
        rate_results = results[i * trials:(i + 1) * trials]
        for name, stat in aggregate_trials(rate_results).items():
            per_metric.setdefault(name, []).append(stat)
    return RateSweep(
        rates=rates,
        stats={name: tuple(stats) for name, stats in per_metric.items()},
    )
