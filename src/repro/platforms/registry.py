"""Platform registry: named, parameterized SoC configurations.

The factory functions in :mod:`repro.platforms.platform` build
:class:`PlatformConfig` objects from keyword arguments; this module wraps
each in a :class:`PlatformEntry` that names it, documents it, and declares
which parameters it accepts - so the CLI, the scenario layer, and
``repro list`` all drive platform construction from one table instead of
three hand-maintained ``if name == ...`` chains.

Parameter names are the user-facing CLI spellings (``cpu``, ``fft``,
``mmult``, ``little``) and the defaults match the historical CLI defaults
exactly (``cpu=None`` means the board's native worker count); scenario
specs naming a parameter the platform does not accept fail validation with
the accepted list.  Third-party boards plug in via
:func:`register_platform` or the ``repro.platforms`` entry-point group.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.registry import Registry

from .platform import PlatformConfig, jetson, zcu102, zcu102_biglittle

__all__ = [
    "PLATFORMS",
    "PlatformEntry",
    "register_platform",
    "make_platform",
    "available_platforms",
]


@dataclass(frozen=True)
class PlatformEntry:
    """One registered platform: factory + accepted parameter names."""

    name: str
    factory: Callable[..., PlatformConfig]
    params: tuple[str, ...]
    summary: str = ""

    def build_config(self, **params) -> PlatformConfig:
        """Build the :class:`PlatformConfig`, validating parameter names."""
        unknown = set(params) - set(self.params)
        if unknown:
            accepted = ", ".join(self.params) or "(none)"
            raise ValueError(
                f"platform {self.name!r} does not take parameter(s) "
                f"{sorted(unknown)}; accepts: {accepted}"
            )
        return self.factory(**params)


PLATFORMS: Registry[PlatformEntry] = Registry(
    "platform", entry_point_group="repro.platforms"
)


def register_platform(name: str, *, params: tuple[str, ...] = (), summary: str = ""):
    """Decorator registering a ``(**params) -> PlatformConfig`` factory."""

    def deco(factory: Callable[..., PlatformConfig]):
        PLATFORMS.register(
            name, PlatformEntry(name, factory, tuple(params), summary)
        )
        return factory

    return deco


def make_platform(name: str, **params) -> PlatformConfig:
    """Build a registered platform's config by name."""
    return PLATFORMS.get(name).build_config(**params)


def available_platforms() -> tuple[str, ...]:
    """Registered platform names, sorted."""
    return PLATFORMS.names()


@register_platform(
    "zcu102",
    params=("cpu", "fft", "mmult"),
    summary="Xilinx ZCU102: 3 ARM worker cores + FFT/MMULT fabric accelerators",
)
def _zcu102(cpu=None, fft=1, mmult=0) -> PlatformConfig:
    return zcu102(n_cpu=3 if cpu is None else cpu, n_fft=fft, n_mmult=mmult)


@register_platform(
    "jetson",
    params=("cpu", "gpu"),
    summary="NVIDIA Jetson AGX Xavier: 7 ARM worker cores + GPU",
)
def _jetson(cpu=None, gpu=1) -> PlatformConfig:
    return jetson(n_cpu=7 if cpu is None else cpu, n_gpu=gpu)


@register_platform(
    "zcu102-biglittle",
    params=("cpu", "little", "fft", "mmult"),
    summary="ZCU102 big.LITTLE variant: LITTLE cores host accelerator management",
)
def _zcu102_biglittle(cpu=None, little=4, fft=1, mmult=0) -> PlatformConfig:
    return zcu102_biglittle(
        n_big=3 if cpu is None else cpu, n_little=little, n_fft=fft, n_mmult=mmult
    )
