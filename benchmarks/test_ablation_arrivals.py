"""Ablation bench: periodic vs Poisson workload injection.

The paper's injection model is strictly periodic per stream; real CEDR
accepts arbitrary arrival traces.  This bench compares the radar-comms
workload under periodic and Poisson arrivals at the same *mean* rate in
the transition region.  The interesting finding is about *predictability*,
not the mean: the periodic schedule is deterministic (its synchronized
stream starts are themselves a repeatable burst), so per-application
execution times barely move across trials, while Poisson arrivals make
both the trial-to-trial mean and the worst-per-app execution time swing by
large factors - the tail-latency risk an integrator accepts when arrivals
are not isochronous.
"""

import numpy as np

from repro.apps import PulseDoppler, WifiTx
from repro.experiments import run_trials
from repro.platforms import zcu102
from repro.workload import WorkloadEntry, WorkloadSpec

RATE = 60.0  # transition region: neither serial nor fully saturated
TRIALS = 5


def make_workload(process: str) -> WorkloadSpec:
    return WorkloadSpec(
        name=f"rc-{process}",
        entries=(
            WorkloadEntry(PulseDoppler(), 5),
            WorkloadEntry(WifiTx(), 5),
        ),
        arrival_process=process,
    )


def test_bursty_arrivals_destroy_predictability(benchmark):
    platform = zcu102(n_cpu=3, n_fft=1)

    def sweep():
        out = {}
        for process in ("periodic", "poisson"):
            out[process] = run_trials(
                platform, make_workload(process), "api", RATE, "heft_rt",
                trials=TRIALS, base_seed=11,
            )
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    stats = {}
    print("\narrival-process ablation (radar-comms @60 Mbps, HEFT_RT):")
    for process, runs in results.items():
        means = np.array([r.mean_exec_time for r in runs])
        worsts = np.array([max(r.exec_times) for r in runs])
        stats[process] = {
            "mean": float(means.mean()),
            "mean_std": float(means.std(ddof=1)),
            "swing": float(means.max() / means.min()),
            "worst": float(worsts.max()),
        }
        print(f"{process:>9}: mean exec {means.mean()*1e3:8.2f} ms "
              f"(trial std {means.std(ddof=1)*1e3:6.2f}, "
              f"max/min swing {means.max()/means.min():.2f}), "
              f"worst app over trials {worsts.max()*1e3:8.2f} ms")

    periodic, poisson = stats["periodic"], stats["poisson"]
    # periodic injection is deterministic run to run (timing-only runs:
    # trial payloads differ, arrival timing does not) while Poisson swings
    assert periodic["mean_std"] < 1e-9
    assert poisson["mean_std"] > 1e-3
    assert poisson["swing"] > 1.1
    # at equal mean offered load, the means stay within the same regime -
    # note the periodic schedule's synchronized stream starts are already a
    # worst-case burst, so Poisson does not dominate it on averages
    assert 0.5 < poisson["mean"] / periodic["mean"] < 2.0
