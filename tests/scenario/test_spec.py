"""ScenarioSpec parsing, validation, and canonical-form guarantees."""

import json

import pytest

from repro.faults import FaultKind
from repro.scenario import AppCount, ScenarioError, ScenarioSpec, load_scenario

RUN_TOML = """
[scenario]
name = "t-run"
kind = "run"
seed = 3
trials = 2

[platform]
name = "zcu102"
fft = 2

[scheduler]
name = "etf"

[workload]
apps = [ {name = "PD", count = 2}, {name = "TX"} ]
arrival = "periodic"

[run]
mode = "dag"
rate_mbps = 150.0
execute = false
"""

SERVE_TOML = """
[scenario]
name = "t-serve"
kind = "serve"

[serve]
duration = 0.25
arrival = "poisson:rate=120"
tenants = 2
slo_ms = 40.0
apps = "PD:1,TX:1"

[serve.admission]
policy = "block"
queue_cap = 8
"""


def _write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text)
    return path


def test_load_run_toml(tmp_path):
    spec = load_scenario(_write(tmp_path, "run.toml", RUN_TOML))
    assert spec.name == "t-run"
    assert spec.kind == "run"
    assert spec.seed == 3 and spec.trials == 2
    assert spec.platform == "zcu102"
    assert dict(spec.platform_params) == {"fft": 2}
    assert spec.scheduler == "etf"
    assert spec.apps == (AppCount("PD", 2), AppCount("TX", 1))
    assert spec.mode == "dag" and spec.rate_mbps == 150.0
    assert spec.execute is False
    assert spec.workload_name == "cli"  # flag-path RNG label by default


def test_load_serve_toml(tmp_path):
    spec = load_scenario(_write(tmp_path, "serve.toml", SERVE_TOML))
    assert spec.kind == "serve"
    serve = spec.serve
    assert serve.duration == 0.25
    assert serve.tenants == 2
    assert serve.policy == "block" and serve.queue_cap == 8
    config = spec.build_serve()
    assert [t.name for t in config.tenants] == ["tenant0", "tenant1"]
    assert config.tenants[0].slo_s == pytest.approx(0.04)
    assert config.admission.queue_cap == 8


def test_json_documents_load_too(tmp_path):
    doc = {
        "scenario": {"name": "j", "kind": "run"},
        "run": {"rate_mbps": 123.0},
    }
    spec = load_scenario(_write(tmp_path, "j.json", json.dumps(doc)))
    assert spec.rate_mbps == 123.0


def test_unknown_extension_rejected(tmp_path):
    path = _write(tmp_path, "spec.yaml", "scenario:\n  name: x\n")
    with pytest.raises(ScenarioError, match="unknown scenario format"):
        load_scenario(path)


def test_unknown_section_suggests(tmp_path):
    bad = RUN_TOML.replace("[workload]", "[worload]")
    with pytest.raises(ScenarioError, match="did you mean 'workload'"):
        load_scenario(_write(tmp_path, "bad.toml", bad))


def test_unknown_key_suggests():
    with pytest.raises(ScenarioError, match="did you mean 'rate_mbps'"):
        ScenarioSpec.from_mapping({
            "scenario": {"name": "x"},
            "run": {"rate_mbp": 100.0},
        })


def test_unknown_scheduler_lists_available():
    with pytest.raises(ValueError, match="unknown scheduler 'hft_rt'"):
        ScenarioSpec(name="x", scheduler="hft_rt")


def test_unknown_platform_param_lists_accepted():
    with pytest.raises(ScenarioError, match="accepts: cpu, fft, mmult"):
        ScenarioSpec(name="x", platform_params=(("little", 2),))


def test_unknown_app_name_suggests():
    with pytest.raises(ValueError, match="unknown application"):
        ScenarioSpec(name="x", apps=(AppCount("PX"),))


def test_preset_and_apps_conflict():
    with pytest.raises(ScenarioError, match="either preset or apps"):
        ScenarioSpec.from_mapping({
            "scenario": {"name": "x"},
            "workload": {"preset": "radar-comms", "apps": "PD:1"},
        })


def test_kind_section_mismatch_rejected():
    with pytest.raises(ScenarioError, match="run-kind section"):
        ScenarioSpec.from_mapping({
            "scenario": {"name": "x", "kind": "serve"},
            "workload": {"apps": "PD:1"},
        })
    with pytest.raises(ScenarioError, match="serve-kind section"):
        ScenarioSpec.from_mapping({
            "scenario": {"name": "x", "kind": "run"},
            "serve": {"duration": 0.1},
        })


def test_bad_admission_policy_rejected():
    with pytest.raises(ScenarioError, match="unknown admission policy"):
        ScenarioSpec.from_mapping({
            "scenario": {"name": "x", "kind": "serve"},
            "serve": {"admission": {"policy": "drop"}},
        })


def test_faults_section_builds_config():
    spec = ScenarioSpec.from_mapping({
        "scenario": {"name": "x"},
        "faults": {"rate": 25.0, "kinds": ["transient", "hang"], "seed": 7},
    })
    assert spec.faults is not None
    assert spec.faults.rate == 25.0
    assert spec.faults.kinds == (FaultKind.TRANSIENT, FaultKind.HANG)
    assert spec.faults.seed == 7


def test_faults_unknown_kind_suggests():
    with pytest.raises(ValueError, match="unknown fault kind"):
        ScenarioSpec.from_mapping({
            "scenario": {"name": "x"},
            "faults": {"rate": 1.0, "kinds": ["transiennt"]},
        })


def test_apps_string_and_table_forms_agree():
    table = ScenarioSpec.from_mapping({
        "scenario": {"name": "x"},
        "workload": {"apps": [{"name": "PD", "count": 2}, {"name": "TX"}]},
    })
    string = ScenarioSpec.from_mapping({
        "scenario": {"name": "x"},
        "workload": {"apps": "PD:2,TX"},
    })
    assert table.apps == string.apps
    assert table.digest() == string.digest()


def test_canonical_digest_ignores_spelling(tmp_path):
    # same experiment, different document spellings: defaults omitted vs
    # explicit, TOML vs JSON, key order shuffled
    terse = ScenarioSpec.from_mapping({"scenario": {"name": "t"}})
    explicit = ScenarioSpec.from_mapping({
        "platform": {"name": "zcu102"},
        "scheduler": {"name": "heft_rt"},
        "run": {"rate_mbps": 200.0, "mode": "api", "execute": True},
        "scenario": {"kind": "run", "name": "t", "seed": 0, "trials": 1},
        "workload": {"apps": "PD:2,TX:2", "arrival": "periodic"},
    })
    assert terse.canonical() == explicit.canonical()
    assert terse.digest() == explicit.digest()


def test_digest_moves_with_the_experiment():
    base = ScenarioSpec(name="t")
    assert base.digest() != ScenarioSpec(name="t", rate_mbps=300.0).digest()
    assert base.digest() != ScenarioSpec(name="t", scheduler="etf").digest()
    assert base.digest() != ScenarioSpec(name="t", seed=1).digest()


def test_canonical_is_json_able_and_kind_scoped():
    run_doc = ScenarioSpec(name="t").canonical()
    json.dumps(run_doc)  # must not raise
    assert "serve" not in run_doc and "workload" in run_doc
    serve_doc = ScenarioSpec(name="s", kind="serve").canonical()
    json.dumps(serve_doc)
    assert "workload" not in serve_doc and "serve" in serve_doc


def test_build_workload_matches_flag_path():
    spec = ScenarioSpec(name="t")
    workload = spec.build_workload()
    assert workload.name == "cli"  # the RNG label the CLI uses
    assert [(e.app.name, e.count) for e in workload.entries] == [
        ("PD", 2), ("TX", 2),
    ]


def test_build_workload_preset():
    spec = ScenarioSpec.from_mapping({
        "scenario": {"name": "t"},
        "workload": {"preset": "radar-comms", "params": {"n_pd": 3}},
    })
    workload = spec.build_workload()
    assert workload.name == "radar-comms"
    counts = {e.app.name: e.count for e in workload.entries}
    assert counts["PD"] == 3


def test_checked_in_example_scenarios_validate(repo_root):
    specs = sorted((repo_root / "examples" / "scenarios").glob("*.toml"))
    assert len(specs) >= 4
    kinds = set()
    for path in specs:
        spec = load_scenario(path)
        kinds.add(spec.kind)
        assert spec.digest()
    assert kinds == {"run", "serve"}  # both flavors are exercised
