"""Ablation bench: the Fig.-4 synchronization cost.

Every blocking libCEDR call crosses the condvar wake path once (worker
signals, application thread wakes).  This bench sweeps the futex-wake
latency and shows per-application execution time growing linearly with it
in blocking mode while the non-blocking form, which crosses the same path
once per *wave* instead of once per call, is far less sensitive - the
quantitative argument for the paper's dual blocking/non-blocking design.
"""

import numpy as np

from repro.apps import PulseDoppler
from repro.platforms import zcu102
from repro.runtime import CedrRuntime, RuntimeConfig

LATENCIES_US = [0.0, 5.0, 20.0, 50.0]


def run_with_latency(latency_s, variant, seed=2):
    app_def = PulseDoppler(batch=8)
    platform = zcu102(n_cpu=3, n_fft=1).build(seed=seed)
    config = RuntimeConfig(scheduler="eft", execute_kernels=False,
                           signal_latency_s=latency_s)
    runtime = CedrRuntime(platform, config)
    runtime.start()
    inst = app_def.make_instance("api", np.random.default_rng(seed), variant=variant)
    runtime.submit(inst, at=0.0)
    runtime.seal()
    runtime.run()
    return inst.execution_time


def test_sync_latency_sensitivity(benchmark):
    def sweep():
        return {
            variant: [run_with_latency(us * 1e-6, variant) for us in LATENCIES_US]
            for variant in ("blocking", "nonblocking")
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nwake latency sweep (exec ms per app):")
    print(f"{'latency (us)':>13} | {'blocking':>9} | {'non-blocking':>12}")
    for i, us in enumerate(LATENCIES_US):
        print(f"{us:13.0f} | {results['blocking'][i]*1e3:9.2f} | "
              f"{results['nonblocking'][i]*1e3:12.2f}")

    blocking = results["blocking"]
    nonblocking = results["nonblocking"]
    # blocking exec time strictly grows with wake latency
    assert all(b2 > b1 for b1, b2 in zip(blocking, blocking[1:]))
    # the blocking form pays ~one wake per call; at 50us that is visible
    blocking_growth = blocking[-1] - blocking[0]
    nonblocking_growth = nonblocking[-1] - nonblocking[0]
    assert blocking_growth > 2 * nonblocking_growth
    # sanity: the growth is in the right ballpark (calls x latency)
    n_calls = 66  # PD at batch=8: 2*16 + 1 + 32 + zips 16 ... ~66 kernel calls
    assert blocking_growth > 0.5 * n_calls * 50e-6
