"""Service driver: graceful drain, SLO accounting, serve determinism."""

import dataclasses

import pytest

from repro.audit import SERVE_VARIANTS, diff_serve
from repro.runtime import CedrRuntime, RuntimeConfig
from repro.serve import (
    AdmissionConfig,
    ArrivalSpec,
    ServeConfig,
    ServeDriver,
    TenantSpec,
    serve_once,
    serve_trials,
)


def config(pd_small, tx_small, *, rate=150.0, duration=0.2, **admission):
    return ServeConfig(
        tenants=(
            TenantSpec("radar", ArrivalSpec.make("poisson", rate=rate),
                       apps=(pd_small,), weight=2.0, slo_s=0.05),
            TenantSpec("comms", ArrivalSpec.make("poisson", rate=rate / 2),
                       apps=(tx_small,), slo_s=0.05),
        ),
        duration=duration,
        admission=AdmissionConfig(**admission) if admission else AdmissionConfig(),
    )


class TestServeConfig:
    def test_validation(self, pd_small):
        tenant = TenantSpec("a", ArrivalSpec.make("poisson", rate=1.0), (pd_small,))
        with pytest.raises(ValueError, match="at least one tenant"):
            ServeConfig(tenants=(), duration=1.0)
        with pytest.raises(ValueError, match="duplicate tenant"):
            ServeConfig(tenants=(tenant, tenant), duration=1.0)
        with pytest.raises(ValueError, match="duration"):
            ServeConfig(tenants=(tenant,), duration=0.0)

    def test_tenant_validation(self, pd_small):
        arrival = ArrivalSpec.make("poisson", rate=1.0)
        with pytest.raises(ValueError, match="at least one app"):
            TenantSpec("a", arrival, ())
        with pytest.raises(ValueError, match="weight"):
            TenantSpec("a", arrival, (pd_small,), weight=0.0)
        with pytest.raises(ValueError, match="SLO"):
            TenantSpec("a", arrival, (pd_small,), slo_s=0.0)

    def test_offered_rate_sums_tenants(self, pd_small, tx_small):
        serve = config(pd_small, tx_small, rate=100.0)
        assert serve.offered_rate == pytest.approx(150.0)


class TestGracefulDrain:
    def test_every_admitted_app_completes(self, zcu_small, pd_small, tx_small):
        serve = config(pd_small, tx_small)
        result = serve_once(zcu_small, serve, seed=1)
        assert result.offered > 0
        assert result.offered == result.admitted + result.shed
        for t in result.tenants:
            assert t.completed + t.failed == t.admitted
            assert len(t.response_times) == t.completed
        # the embedded batch result agrees with the ledger
        assert result.run.n_apps == result.completed
        assert result.run.makespan >= serve.duration or result.admitted == 0

    def test_zero_arrival_window_still_drains(self, zcu_small, pd_small):
        serve = ServeConfig(
            tenants=(TenantSpec(
                "idle", ArrivalSpec.make("periodic", rate=10.0, phase=9.0),
                (pd_small,),
            ),),
            duration=0.05,   # first arrival is phased past the window
        )
        result = serve_once(zcu_small, serve, seed=0)
        assert result.offered == result.admitted == result.completed == 0
        assert result.throughput == 0.0
        assert result.p99_response_s == 0.0
        assert result.tenants[0].goodput == 1.0

    def test_block_policy_releases_every_hold(self, zcu_small, pd_small, tx_small):
        serve = config(pd_small, tx_small, rate=400.0,
                       policy="block", max_in_system=4, queue_cap=6)
        result = serve_once(zcu_small, serve, seed=2)
        held = sum(t.held for t in result.tenants)
        assert held > 0
        # every held arrival was eventually admitted (never stranded)
        assert result.offered == result.admitted + result.shed
        assert sum(t.queue_wait_s for t in result.tenants) > 0.0
        assert result.in_system_hwm <= 4
        for t in result.tenants:
            assert t.hold_hwm <= 6

    def test_finish_hook_slot_is_exclusive(self, zcu_small, pd_small, tx_small):
        platform = zcu_small.build(seed=0)
        runtime = CedrRuntime(
            platform, RuntimeConfig(scheduler="heft_rt", execute_kernels=False)
        )
        runtime.on_app_finished = lambda app: None
        driver = ServeDriver(runtime, config(pd_small, tx_small), seed=0)
        with pytest.raises(RuntimeError, match="already has an on_app_finished"):
            driver.arm()

    def test_result_requires_a_finished_run(self, zcu_small, pd_small, tx_small):
        platform = zcu_small.build(seed=0)
        runtime = CedrRuntime(
            platform, RuntimeConfig(scheduler="heft_rt", execute_kernels=False)
        )
        runtime.start()
        driver = ServeDriver(runtime, config(pd_small, tx_small), seed=0)
        driver.arm()
        with pytest.raises(RuntimeError, match="never sealed"):
            driver.result()


class TestSloAccounting:
    def test_violations_match_response_times(self, zcu_small, pd_small, tx_small):
        serve = config(pd_small, tx_small, rate=250.0)
        result = serve_once(zcu_small, serve, seed=3)
        for t, spec in zip(result.tenants, serve.tenants):
            expected = sum(1 for r in t.response_times if r > spec.slo_s)
            assert t.slo_violations == expected
            good = max(0, t.completed - t.degraded - t.slo_violations)
            assert t.goodput == pytest.approx(good / t.offered)

    def test_degraded_completions_are_excluded(self, zcu_small, pd_small, tx_small):
        serve = config(pd_small, tx_small, rate=400.0,
                       policy="degrade", max_in_system=2)
        result = serve_once(zcu_small, serve, seed=4)
        assert result.shed == 0
        assert result.admitted == result.offered
        assert result.degraded > 0
        for t in result.tenants:
            # only full-service completions can violate the SLO
            assert t.slo_violations <= t.completed - t.degraded + t.failed

    def test_p99_is_exact_nearest_rank(self, zcu_small, pd_small, tx_small):
        result = serve_once(zcu_small, config(pd_small, tx_small), seed=5)
        merged = sorted(
            r for t in result.tenants for r in t.response_times
        )
        assert merged, "expected completions"
        rank = max(0, -(-99 * len(merged) // 100) - 1)
        assert result.p99_response_s == merged[rank]


class TestOverloadBound:
    def test_two_x_overload_is_bounded_end_to_end(self, zcu_small, pd_small):
        # calibrate capacity once, then offer ~2x that rate and require the
        # acceptance-criterion bounds: in-system and hold high-water marks
        # never exceed their caps while the excess sheds
        probe = ServeConfig(
            tenants=(TenantSpec(
                "load", ArrivalSpec.make("periodic", rate=2000.0), (pd_small,),
            ),),
            duration=0.1,
            admission=AdmissionConfig(policy="shed", max_in_system=6, queue_cap=3),
        )
        capacity = serve_once(zcu_small, probe, seed=0).throughput
        assert capacity > 0
        serve = dataclasses.replace(
            probe,
            tenants=(TenantSpec(
                "load", ArrivalSpec.make("poisson", rate=2.0 * capacity),
                (pd_small,),
            ),),
            duration=0.3,
            admission=AdmissionConfig(policy="block", max_in_system=6, queue_cap=3),
        )
        result = serve_once(zcu_small, serve, seed=1)
        tenant = result.tenants[0]
        assert result.in_system_hwm <= 6
        assert tenant.hold_hwm <= 3
        assert tenant.shed > 0
        assert tenant.completed + tenant.failed == tenant.admitted


class TestServeDeterminism:
    def test_oracle_all_variants_bit_identical(self, zcu_small, pd_small, tx_small):
        serve = config(pd_small, tx_small, rate=200.0, duration=0.1,
                       policy="block", max_in_system=6, queue_cap=4)
        report = diff_serve(zcu_small, serve, trials=2)
        assert tuple(o.variant for o in report.outcomes) == SERVE_VARIANTS
        assert report.ok, report.summary()

    def test_trials_vary_by_seed_only(self, zcu_small, pd_small, tx_small):
        serve = config(pd_small, tx_small, duration=0.1)
        a, b = serve_trials(zcu_small, serve, trials=2, base_seed=0)
        assert a != b            # different seeds, different streams
        again_a, again_b = serve_trials(zcu_small, serve, trials=2, base_seed=0)
        assert (a, b) == (again_a, again_b)
