"""Property tests: every arrival generator is pure in (spec, seed).

Hypothesis drives random (kind, parameters, seed) triples through the
registry and requires the properties the serve determinism story rests on:
regenerating a stream from the same spec and seed yields the same instants
bit-for-bit (across independently constructed Generators, exactly as two
pool workers or a cache-warm re-run would construct them), different
stream labels decorrelate, and every stream is nondecreasing and
nonnegative.
"""

from itertools import islice

from hypothesis import given, settings, strategies as st

from repro.serve import ArrivalSpec, make_arrival_stream
from repro.simcore import child_rng

SEEDS = st.integers(min_value=0, max_value=2**31 - 1)
RATES = st.floats(min_value=1.0, max_value=5000.0,
                  allow_nan=False, allow_infinity=False)
DWELLS = st.floats(min_value=1e-3, max_value=1.0,
                   allow_nan=False, allow_infinity=False)


@st.composite
def arrival_specs(draw):
    kind = draw(st.sampled_from(("periodic", "poisson", "bursty", "diurnal", "trace")))
    if kind == "periodic":
        return ArrivalSpec.make(
            kind, rate=draw(RATES),
            phase=draw(st.floats(min_value=0.0, max_value=1.0,
                                 allow_nan=False, allow_infinity=False)),
        )
    if kind == "poisson":
        return ArrivalSpec.make(kind, rate=draw(RATES))
    if kind == "bursty":
        return ArrivalSpec.make(
            kind, rate=draw(RATES),
            burst_len=draw(DWELLS), idle_len=draw(DWELLS),
        )
    if kind == "diurnal":
        return ArrivalSpec.make(
            kind, rate=draw(RATES),
            floor=draw(st.floats(min_value=0.0, max_value=1.0,
                                 allow_nan=False, allow_infinity=False)),
            cycle=draw(DWELLS),
        )
    times = draw(st.lists(
        st.floats(min_value=0.0, max_value=0.9,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=8,
    ))
    return ArrivalSpec.make(
        kind, times=";".join(repr(t) for t in times), loop=1.0,
    )


def first_n(spec, seed, n=64, label="stream"):
    stream = make_arrival_stream(spec, child_rng(seed, label))
    return list(islice(stream, n))


@given(spec=arrival_specs(), seed=SEEDS)
@settings(max_examples=120, deadline=None)
def test_stream_is_pure_function_of_spec_and_seed(spec, seed):
    # two independently constructed streams - as a serial run and a pool
    # worker, or a cold and a warm cache pass, would construct them
    assert first_n(spec, seed) == first_n(spec, seed)


@given(spec=arrival_specs(), seed=SEEDS)
@settings(max_examples=120, deadline=None)
def test_stream_is_nondecreasing_and_nonnegative(spec, seed):
    got = first_n(spec, seed)
    assert all(t >= 0.0 for t in got)
    assert all(b >= a for a, b in zip(got, got[1:]))


@given(seed=SEEDS)
@settings(max_examples=40, deadline=None)
def test_distinct_labels_decorrelate_random_streams(seed):
    spec = ArrivalSpec.make("poisson", rate=100.0)
    a = first_n(spec, seed, label="serve.arrivals.radar")
    b = first_n(spec, seed, label="serve.arrivals.comms")
    assert a != b


@given(spec=arrival_specs(), seed=SEEDS)
@settings(max_examples=60, deadline=None)
def test_spec_param_order_is_immaterial(spec, seed):
    reordered = ArrivalSpec(spec.kind, tuple(reversed(spec.params)))
    assert first_n(spec, seed) == first_n(reordered, seed)
