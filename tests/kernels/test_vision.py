"""Lane-detection vision kernel tests."""

import numpy as np
import pytest

from repro.kernels import vision


def test_grayscale_weights_sum_to_one(rng):
    white = np.ones((4, 4, 3))
    assert np.allclose(vision.to_grayscale(white), 1.0)


def test_grayscale_favors_green(rng):
    red = np.zeros((2, 2, 3)); red[..., 0] = 1.0
    green = np.zeros((2, 2, 3)); green[..., 1] = 1.0
    assert vision.to_grayscale(green).mean() > vision.to_grayscale(red).mean()


def test_grayscale_shape_check():
    with pytest.raises(ValueError):
        vision.to_grayscale(np.zeros((4, 4)))


def test_gaussian_kernel_normalized_and_symmetric():
    k = vision.gaussian_kernel(5, 1.3)
    assert k.shape == (5, 5)
    assert k.sum() == pytest.approx(1.0)
    assert np.allclose(k, k.T)
    assert np.allclose(k, k[::-1, ::-1])
    assert k[2, 2] == k.max()


def test_gaussian_kernel_rejects_even_size():
    with pytest.raises(ValueError):
        vision.gaussian_kernel(4, 1.0)


def test_sobel_kernels_are_antisymmetric():
    gx, gy = vision.sobel_kernels()
    assert np.allclose(gx, -gx[:, ::-1])
    assert np.allclose(gy, -gy[::-1, :])
    assert np.allclose(gy, gx.T)
    assert gx.sum() == 0.0


def test_gradient_magnitude(rng):
    gx = rng.normal(size=(6, 6))
    gy = rng.normal(size=(6, 6))
    assert np.allclose(vision.gradient_magnitude(gx, gy), np.hypot(gx, gy))
    with pytest.raises(ValueError):
        vision.gradient_magnitude(np.zeros((2, 2)), np.zeros((3, 3)))


def test_threshold_keeps_requested_fraction(rng):
    mag = rng.random((50, 50))
    edges = vision.threshold_edges(mag, quantile=0.9)
    assert 0.05 < edges.mean() < 0.15
    with pytest.raises(ValueError):
        vision.threshold_edges(mag, quantile=1.5)


def test_roi_mask_keeps_lower_center():
    mask = vision.roi_mask((100, 100), horizon=0.4)
    assert not mask[:39].any()          # sky masked out
    assert mask[99, 50]                 # bottom center kept
    assert not mask[45, 2]              # upper edges masked
    assert mask.sum() > 0


def test_hough_recovers_a_straight_line():
    edges = np.zeros((64, 64), dtype=bool)
    # the line x = y (45 degrees): rho = 0 at theta = -45deg in the
    # (x cos t + y sin t) parameterization
    for i in range(64):
        edges[i, i] = True
    acc, thetas, rhos = vision.hough_lines(edges)
    r_i, t_i = np.unravel_index(int(np.argmax(acc)), acc.shape)
    theta_deg = np.degrees(thetas[t_i])
    assert abs(abs(theta_deg) - 45.0) < 4.0
    assert abs(rhos[r_i]) < 4.0
    # -45 deg is not exactly on the theta grid, so rho quantization spreads
    # the 64 votes over neighbouring bins; the winner still dominates.
    assert acc.max() >= 20
    assert acc.sum() == 64 * len(thetas)  # one vote per pixel per angle


def test_hough_empty_edge_map():
    acc, thetas, rhos = vision.hough_lines(np.zeros((16, 16), dtype=bool))
    assert acc.sum() == 0
    with pytest.raises(ValueError):
        vision.hough_lines(np.zeros(16, dtype=bool))


def test_extract_lanes_finds_both_sides(rng):
    frame = vision.synthesize_road_frame(120, 160, rng)
    gray = vision.to_grayscale(frame)
    gx, gy = vision.sobel_kernels()
    from repro.kernels.conv2d import conv2d_spatial

    mag = vision.gradient_magnitude(conv2d_spatial(gray, gx), conv2d_spatial(gray, gy))
    edges = vision.threshold_edges(mag) & vision.roi_mask(gray.shape)
    acc, thetas, rhos = vision.hough_lines(edges)
    left, right = vision.extract_lanes(acc, thetas, rhos)
    assert left is not None and right is not None
    assert left.theta < 0 < right.theta
    assert left.votes > 10 and right.votes > 10


def test_extract_lanes_empty_accumulator():
    acc = np.zeros((32, 45), dtype=np.int64)
    thetas = np.linspace(-np.pi / 2, np.pi / 2, 45, endpoint=False)
    rhos = np.linspace(-50, 50, 32)
    left, right = vision.extract_lanes(acc, thetas, rhos)
    assert left is None and right is None


def test_lane_estimate_x_at():
    est = vision.LaneEstimate(rho=10.0, theta=0.0, votes=5)
    assert est.x_at(123.0) == pytest.approx(10.0)  # vertical line x = rho
    horizontal = vision.LaneEstimate(rho=10.0, theta=np.pi / 2, votes=5)
    assert np.isnan(horizontal.x_at(0.0))


def test_synthesize_road_frame_properties(rng):
    frame = vision.synthesize_road_frame(80, 120, rng)
    assert frame.shape == (80, 120, 3)
    assert frame.min() >= 0.0 and frame.max() <= 1.0
    # sky brighter than road
    assert frame[:20].mean() > frame[60:].mean()
    with pytest.raises(ValueError):
        vision.synthesize_road_frame(8, 8, rng)
