"""Workload generation: injection rates, arrival schedules, app mixes."""

from .injection import (
    paper_injection_rates,
    periodic_arrivals,
    poisson_arrivals,
    reduced_injection_rates,
)
from .workload import (
    WORKLOADS,
    WorkloadEntry,
    WorkloadSpec,
    autonomous_vehicle_workload,
    available_workloads,
    make_workload,
    radar_comms_workload,
    register_workload,
)

__all__ = [
    "paper_injection_rates",
    "reduced_injection_rates",
    "periodic_arrivals",
    "poisson_arrivals",
    "WORKLOADS",
    "WorkloadEntry",
    "WorkloadSpec",
    "register_workload",
    "make_workload",
    "available_workloads",
    "radar_comms_workload",
    "autonomous_vehicle_workload",
]
