"""Microbenchmarks of the scheduler decision loop itself.

The paper's headline mechanism (Fig. 7) is scheduler decision cost at
realistic queue depths, and full figure sweeps spend most of their
wall-clock inside ``Scheduler.schedule``.  These benchmarks time single
scheduling rounds over deep ready queues through the runtime's columnar
:class:`~repro.platforms.timing.CostTable` - the exact configuration the
daemon uses - and assert against the recorded trajectory in
``baseline.json``: the vectorized ETF round must stay at least 3x the
recorded pre-columnar (per-task Python loops) rate.  Set
``REPRO_PERF_CHECK=0`` to skip the ratio check on slower hosts.
"""

from __future__ import annotations

import numpy as np

from repro.platforms import zcu102
from repro.platforms.timing import CostTable
from repro.runtime.task import Task
from repro.sched import make_scheduler

#: ready-queue shapes drawn from the paper workloads (radar + comms mix):
#: a handful of distinct (api, params) rows, repeated across many tasks -
#: exactly the regime the columnar table interns.
_SHAPES = (
    ("fft", {"n": 128, "batch": 1}),
    ("fft", {"n": 256, "batch": 1}),
    ("ifft", {"n": 128, "batch": 1}),
    ("ifft", {"n": 256, "batch": 1}),
    ("zip", {"n": 256}),
    ("cpu_op", {"work_1ghz": 1.28e-4}),
)


def _ready_batch(depth: int, seed: int = 0) -> list[Task]:
    """A deep ready queue with a deterministic mixture of kernel shapes."""
    rng = np.random.default_rng(seed)
    picks = rng.integers(0, len(_SHAPES), size=depth)
    return [
        Task(api=_SHAPES[k][0], params=_SHAPES[k][1], app_id=i)
        for i, k in enumerate(picks)
    ]


def _round_harness(depth: int, scheduler_name: str):
    """(run callable, events per call) timing one full scheduling round."""
    platform = zcu102(n_cpu=3, n_fft=1).build(seed=0)
    table = CostTable(platform.timing, platform.pes)
    scheduler = make_scheduler(scheduler_name)
    ready = _ready_batch(depth)
    pes = platform.pes

    def run():
        for pe in pes:
            pe.expected_free = 0.0
        return scheduler.schedule(ready, pes, 0.0, table)

    return run, depth


def test_etf_round_throughput(benchmark, check_throughput):
    """One ETF round at queue depth 256 (the paper's DAG-mode regime)."""
    run, depth = _round_harness(256, "etf")
    assignments = benchmark(run)
    assert len(assignments) == depth
    check_throughput("etf_round_throughput", benchmark, depth)


def test_etf_round_depth128(benchmark, check_throughput):
    """The acceptance depth: ETF rounds at queue depth 128."""
    run, depth = _round_harness(128, "etf")
    assignments = benchmark(run)
    assert len(assignments) == depth
    check_throughput("etf_round_throughput", benchmark, depth)


def test_eft_round_throughput(benchmark):
    """EFT (linear heuristic) round at depth 256 - no baseline entry, but
    pins that the shared greedy path stays fast."""
    run, depth = _round_harness(256, "eft")
    assignments = benchmark(run)
    assert len(assignments) == depth
