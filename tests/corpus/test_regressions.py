"""Minimized corpus counterexamples, checked in as permanent regressions.

This is the last leg of the corpus workflow: a parity run fails, the
minimizer shrinks the failing cell to a small self-contained document
(scheduler and ``audit = true`` folded in), and the document lands here
so the bug can never come back silently.  Every spec in
``examples/corpus/regressions/`` must run clean through the same
``run_cell`` the parity sweep uses.

Current entries:

* ``watchdog-complete-race.json`` — the corpus's first real catch
  (200-spec nightly at seed 0, cell corpus-0-0198 x rr): a watchdog
  deadline whose guard passed while its suspect dispatch was RUNNING,
  after which the worker completed the task during the daemon's
  queue-pop charge; recovery then retried the settled task and
  completed it twice (``exactly-once``).  Fixed by re-validating the
  guard after the charge in ``CedrRuntime._handle_watchdog``.
"""

from pathlib import Path

import pytest

from repro.corpus import run_cell
from repro.scenario import load_scenario

REGRESSIONS = sorted(
    (Path(__file__).resolve().parents[2] / "examples" / "corpus" / "regressions")
    .glob("*.json")
)


def test_regression_corpus_is_not_empty():
    assert REGRESSIONS, "regression corpus directory is missing or empty"


@pytest.mark.parametrize("path", REGRESSIONS, ids=lambda p: p.stem)
def test_minimized_counterexample_stays_fixed(path):
    spec = load_scenario(path)
    assert spec.audit, f"{path.name} must keep audit armed to guard anything"
    outcome = run_cell(spec)
    assert outcome.status == "ok", (
        f"{path.name} regressed: {outcome.status} "
        f"[{outcome.code}] {outcome.message}"
    )
