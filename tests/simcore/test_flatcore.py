"""The flat SoA engine core: bit-identity with the reference loop + columns.

The flat loop (``core_impl="flat"``) restructures the per-event work but
must reproduce the object loop's results *bit-for-bit* - not approximately.
These tests run the same mixed workloads (pinned/floating compute, timers,
mutex/condvar traffic, zero-work requeues, devices, spinners, ``until``
stepping) under both implementations and compare float state by ``.hex()``,
so a single-ulp drift fails loudly.  ``repro audit diff --variants
core_impl`` extends the same proof to whole runtime sweeps.
"""

import random

import pytest

from repro.simcore import (
    AcquireDevice,
    Compute,
    Core,
    Engine,
    Mutex,
    Condition,
    SimDeadlock,
    SimStateError,
    Sleep,
    ThreadState,
    UseDevice,
    Yield,
)
from repro.simcore.flatcore import FlatColumns, JIT_ACTIVE, flat_columns

# --------------------------------------------------------------------- #
# differential harness
# --------------------------------------------------------------------- #


def _mixed_workload(engine):
    """A workload touching every dispatch path: pinned + floating compute,
    sleeps, mutex/condvar chains, zero-work requeues, yields, devices."""
    cores = engine.cores
    mtx = Mutex(engine)
    cv = Condition(mtx, signal_latency=1e-6)
    shared = {"n": 0}

    def worker(i):
        r = random.Random(1000 + i)
        for _ in range(30):
            yield Compute(r.uniform(1e-6, 5e-4))
            if r.random() < 0.3:
                yield Sleep(r.uniform(1e-6, 1e-3))
            if r.random() < 0.2:
                yield from mtx.acquire()
                shared["n"] += 1
                if shared["n"] % 3 == 0:
                    cv.notify_all()
                mtx.release()
            if r.random() < 0.1:
                yield Compute(0.0)
            if r.random() < 0.1:
                yield Yield()
        yield from mtx.acquire()
        shared["n"] += 1
        cv.notify_all()
        mtx.release()
        return i

    def waiter():
        for _ in range(4):
            yield from mtx.acquire()
            while shared["n"] < 8:
                yield from cv.wait()
            mtx.release()
            yield Compute(2e-4)
        return "w"

    threads = []
    for i in range(10):
        aff = cores[i % len(cores)] if i % 3 == 0 else None
        threads.append(engine.spawn(worker(i), name=f"w{i}", affinity=aff))
    threads.append(engine.spawn(waiter(), name="waiter"))

    dev = engine.add_device("fft")

    def devuser(i):
        r = random.Random(77 + i)
        for _ in range(12):
            yield Compute(r.uniform(1e-6, 1e-4))
            yield UseDevice(dev, r.uniform(1e-5, 1e-4))
        yield AcquireDevice(dev)
        yield Compute(1e-5)
        dev.release(engine.current)
        return "d"

    for i in range(2):
        threads.append(engine.spawn(devuser(i), name=f"d{i}"))
    return threads


def _snapshot(engine, threads):
    """Exact observable state: floats as hex so a one-ulp drift fails.

    Heaps are compared as *sorted multisets* of ``(finish, name, work)``
    - array order and the sequence-counter values are implementation
    details (the flat loop keeps pending lists unordered mid-run and uses
    one global counter), only entry identity and pop order are observable.
    """
    return dict(
        now=engine.now.hex(),
        events=engine.events_processed,
        timers=engine.timers_fired,
        cpu=[t.cpu_time.hex() for t in threads],
        states=[t.state.value for t in threads],
        fin=[
            (t.name, None if t.finished_at is None else t.finished_at.hex(), t.result)
            for t in threads
        ],
        delivered=[c.delivered.hex() for c in engine.cores],
        busy=[c.busy_time.hex() for c in engine.cores],
        virt=[c._virtual.hex() for c in engine.cores],
        heaps=[
            sorted((e[0].hex(), e[2].name, e[3].hex()) for e in c._finish_heap)
            for c in engine.cores
        ],
        late=engine.late_timers,
    )


@pytest.mark.parametrize("seed,ncores", [(7, 4), (11, 1), (13, 8)])
def test_flat_matches_objects_bit_for_bit(seed, ncores):
    snaps = {}
    for impl in ("objects", "flat"):
        eng = Engine(cores=ncores, seed=seed, core_impl=impl)
        threads = _mixed_workload(eng)
        eng.run()
        snaps[impl] = _snapshot(eng, threads)
    assert snaps["objects"] == snaps["flat"]


@pytest.mark.parametrize("step", [7.3e-4, 1.1e-5, 0.013])
def test_flat_matches_objects_under_until_stepping(step):
    """run(until=...) hands partial advances to the reference _advance and
    re-enters the flat loop with live heaps: every intermediate snapshot
    must agree, not just the final state."""
    trails = {}
    for impl in ("objects", "flat"):
        eng = Engine(cores=3, seed=9, core_impl=impl)
        threads = _mixed_workload(eng)
        t, trail = 0.0, []
        while True:
            t += step
            eng.run(until=t)
            trail.append(_snapshot(eng, threads))
            if all(not th.alive for th in threads) or t > 10:
                break
        trails[impl] = trail
    assert trails["objects"] == trails["flat"]


def test_flat_with_spinners_matches_objects():
    """Worker spinners dilate the processor-sharing rate; the flat loop's
    memoized rates must reproduce the contended arithmetic exactly."""
    snaps = {}
    for impl in ("objects", "flat"):
        eng = Engine(cores=2, seed=3, core_impl=impl)
        eng.cores[0].spinners = 2
        eng.cores[1].spinners = 1

        def burn(n, amount):
            for _ in range(n):
                yield Compute(amount)

        threads = [
            eng.spawn(burn(40, 3e-5), name=f"t{i}", affinity=eng.cores[i % 2])
            for i in range(6)
        ]
        eng.run()
        snaps[impl] = _snapshot(eng, threads)
    assert snaps["objects"] == snaps["flat"]


def test_flat_restores_object_representation_between_runs():
    """set_core_impl may interleave the two loops on one engine: the flat
    epilogue restores sorted tuple heaps, so a follow-on objects run (and
    direct Core.add calls) see their own invariants."""

    def burn(n, amount):
        for _ in range(n):
            yield Compute(amount)

    eng = Engine(cores=2, seed=5, core_impl="flat")
    eng.spawn(burn(10, 1e-4), name="a", affinity=eng.cores[0])
    eng.spawn(burn(10, 1e-4), name="b")
    eng.run(until=3e-4)
    for core in eng.cores:
        for entry in core._finish_heap:
            assert type(entry) is tuple
    eng.set_core_impl("objects")
    eng.spawn(burn(5, 1e-4), name="c")
    eng.run()
    assert all(not t.alive for t in eng.threads)


def test_flat_deadlock_detection_matches_objects():
    def blocker(engine, mtx):
        yield from mtx.acquire()
        yield Sleep(10.0)

    def victim(mtx):
        yield Compute(1e-6)
        yield from mtx.acquire()

    messages = {}
    for impl in ("objects", "flat"):
        eng = Engine(cores=1, seed=0, core_impl=impl)
        mtx = Mutex(eng)
        eng.spawn(blocker(eng, mtx), name="holder")
        eng.spawn(victim(mtx), name="victim")
        with pytest.raises(SimDeadlock) as exc:
            eng.run()
        messages[impl] = str(exc.value)
    assert messages["objects"] == messages["flat"]


def test_flat_exception_escape_requeues_unresumed_threads():
    """A thread body raising mid-resume-batch must leave the engine in the
    same state the object loop would: the raiser consumed, siblings whose
    resume never ran back on the ready queue, heaps as tuples."""

    class Boom(RuntimeError):
        pass

    def bomb():
        yield Compute(1e-4)
        raise Boom()

    def burn(n, amount):
        for _ in range(n):
            yield Compute(amount)

    states = {}
    for impl in ("objects", "flat"):
        eng = Engine(cores=1, seed=1, core_impl=impl)
        eng.spawn(bomb(), name="bomb", affinity=eng.cores[0])
        survivors = [
            eng.spawn(burn(3, 1e-4), name=f"s{i}", affinity=eng.cores[0])
            for i in range(3)
        ]
        with pytest.raises(Boom):
            eng.run()
        states[impl] = (
            eng.now.hex(),
            [t.state.value for t in survivors],
            [t.cpu_time.hex() for t in survivors],
            [type(e).__name__ for e in eng.cores[0]._finish_heap],
        )
    assert states["objects"] == states["flat"]


# --------------------------------------------------------------------- #
# engine mode selection
# --------------------------------------------------------------------- #


def test_core_impl_selection_and_env_default(monkeypatch):
    assert Engine(cores=1).core_impl == "objects"
    assert Engine(cores=1, core_impl="flat").core_impl == "flat"
    monkeypatch.setenv("REPRO_CORE_IMPL", "flat")
    assert Engine(cores=1).core_impl == "flat"
    monkeypatch.delenv("REPRO_CORE_IMPL")
    with pytest.raises(SimStateError):
        Engine(cores=1, core_impl="simd")
    with pytest.raises(SimStateError):
        Engine(cores=1).set_core_impl("simd")


# --------------------------------------------------------------------- #
# FlatColumns
# --------------------------------------------------------------------- #


def test_flat_columns_intern_recycles_handles():
    eng = Engine(cores=2)
    cols = FlatColumns(eng, thread_capacity=2)

    def burn(amount):
        yield Compute(amount)

    a = eng.spawn(burn(1e-4), name="a")
    b = eng.spawn(burn(1e-4), name="b")
    ha, hb = cols.intern(a), cols.intern(b)
    assert ha != hb
    assert cols.intern(a) == ha  # stable
    c = eng.spawn(burn(1e-4), name="c")
    hc = cols.intern(c)  # forces a doubling grow
    assert cols._cap == 4
    cols.release(a)
    d = eng.spawn(burn(1e-4), name="d")
    assert cols.intern(d) == ha  # freed handle recycled
    assert cols.thread_core_slot[hc] == -1


def test_flat_columns_sync_and_batch_queries():
    eng = Engine(cores=2, core_impl="flat")

    def burn(n, amount):
        for _ in range(n):
            yield Compute(amount)

    threads = [
        eng.spawn(burn(4, 1e-3), name=f"t{i}", affinity=eng.cores[i % 2])
        for i in range(4)
    ]
    eng.run(until=2.5e-3)
    cols = flat_columns(eng)
    assert cols is flat_columns(eng)  # cached on the engine
    instants = cols.completion_instants(eng.now)
    # one batched pass must equal the scalar per-core formula bit-for-bit
    for pos, core in enumerate(eng.cores):
        scalar = core.completion_at(eng.now)
        if scalar is None:
            assert instants[pos] == float("inf")
        else:
            assert instants[pos] == scalar
    remaining = cols.remaining_work()
    for t in threads:
        h = cols.thread_handles[t]
        if t._on_core is not None:
            assert remaining[h] > 0.0
    # finished threads are released on the next sync
    eng.run()
    cols.sync()
    assert not cols.thread_handles


def test_jit_hook_is_fail_soft():
    """numba is not installed in the reference container: the flag must
    stay off and the pure-Python kernel must serve the batched queries."""
    assert JIT_ACTIVE is False
    eng = Engine(cores=1, core_impl="flat")

    def burn(amount):
        yield Compute(amount)

    eng.spawn(burn(1e-3), name="t")
    eng.run(until=5e-4)
    instants = flat_columns(eng).completion_instants(eng.now)
    assert instants[0] == eng.cores[0].completion_at(eng.now)
