"""Determinism of the process-pool sweep path.

A run is a pure function of its cell tuple, and ``_run_cells`` collects
results in grid order, so a parallel sweep must be *indistinguishable* from
a serial one - not statistically close: identical.  These tests pin that
property (the whole point of ``n_jobs``: speed without changing a single
figure value) plus the ``n_jobs`` resolution rules.
"""

import pytest

from repro.audit import assert_identical
from repro.experiments import resolve_jobs, run_trials, sweep_rates
from repro.experiments.common import JOBS_ENV
from repro.platforms import zcu102
from repro.workload import radar_comms_workload


# --------------------------------------------------------------------- #
# n_jobs resolution
# --------------------------------------------------------------------- #

def test_resolve_jobs_defaults_to_serial(monkeypatch):
    monkeypatch.delenv(JOBS_ENV, raising=False)
    assert resolve_jobs(None) == 1


def test_resolve_jobs_reads_env(monkeypatch):
    monkeypatch.setenv(JOBS_ENV, "3")
    assert resolve_jobs(None) == 3


def test_resolve_jobs_explicit_beats_env(monkeypatch):
    monkeypatch.setenv(JOBS_ENV, "3")
    assert resolve_jobs(2) == 2


def test_resolve_jobs_negative_means_all_cores():
    import os

    assert resolve_jobs(-1) == (os.cpu_count() or 1)


def test_resolve_jobs_rejects_zero():
    """0 is neither serial (1) nor all-cores (<= -1); silently coercing it
    to serial used to mask buggy worker-count arithmetic in callers."""
    with pytest.raises(ValueError, match="n_jobs"):
        resolve_jobs(0)


def test_resolve_jobs_rejects_zero_from_env(monkeypatch):
    monkeypatch.setenv(JOBS_ENV, "0")
    with pytest.raises(ValueError, match="n_jobs"):
        resolve_jobs(None)


def test_resolve_jobs_all_negative_mean_all_cores():
    import os

    assert resolve_jobs(-4) == (os.cpu_count() or 1)


def test_resolve_jobs_rejects_garbage_env(monkeypatch):
    monkeypatch.setenv(JOBS_ENV, "abc")
    with pytest.raises(ValueError, match="REPRO_JOBS"):
        resolve_jobs(None)


# --------------------------------------------------------------------- #
# parallel == serial, exactly
# --------------------------------------------------------------------- #

def test_parallel_sweep_identical_to_serial():
    """sweep_rates(n_jobs=4) equals the serial sweep on the fig5 workload.

    Equality is exact (frozen-dataclass ``==`` over every TrialStats of
    every metric), not approximate - floating-point results must come from
    the same operations in the same order regardless of sharding.
    """
    platform = zcu102(n_cpu=3, n_fft=1)
    workload = radar_comms_workload()
    rates = [10.0, 100.0, 300.0]
    serial = sweep_rates(
        platform, workload, "api", rates, "rr", trials=2, base_seed=7, n_jobs=1
    )
    parallel = sweep_rates(
        platform, workload, "api", rates, "rr", trials=2, base_seed=7, n_jobs=4
    )
    assert parallel.rates == serial.rates
    assert set(parallel.stats) == set(serial.stats)
    assert parallel == serial
    # belt and braces: the rendered representation is byte-identical too
    assert repr(parallel) == repr(serial)


def test_parallel_trials_identical_to_serial():
    """run_trials returns the same RunResult list under sharding.

    assert_identical (repro.audit.oracle) diffs cell by cell and names the
    drifted fields on failure - the part a bare ``parallel == serial``
    never reported."""
    platform = zcu102(n_cpu=3, n_fft=1)
    workload = radar_comms_workload()
    serial = run_trials(
        platform, workload, "dag", 200.0, "heft_rt", trials=3, base_seed=0, n_jobs=1
    )
    parallel = run_trials(
        platform, workload, "dag", 200.0, "heft_rt", trials=3, base_seed=0, n_jobs=3
    )
    assert_identical([serial, parallel], ["serial", "jobs=3"])


def test_single_cell_grid_stays_serial():
    """A one-cell grid must not pay process-pool startup."""
    platform = zcu102(n_cpu=3, n_fft=1)
    workload = radar_comms_workload()
    with pytest.MonkeyPatch.context() as mp:
        # poison the pool: if _run_cells ever builds one for a single cell,
        # this import-time substitute blows up
        import repro.experiments.common as common

        class _Boom:
            def __init__(self, *a, **k):
                raise AssertionError("process pool built for a single cell")

        mp.setattr(common, "ProcessPoolExecutor", _Boom)
        result = run_trials(
            platform, workload, "api", 200.0, "rr", trials=1, n_jobs=8
        )
    assert len(result) == 1
