"""Event-driven simulation engine with processor-sharing cores.

The engine owns the virtual clock, a pluggable timer queue (the *event
core*), the set of CPU cores, and a dispatch queue of threads runnable
*right now*.  Its main loop alternates two phases:

1. **Dispatch** - resume every ready thread at the current instant, handling
   the request each one yields (compute, sleep, block, device use, ...).
   Dispatching may make further threads ready at the same instant (condition
   signals, device grants), so this phase drains to a fixed point.
2. **Advance** - jump the clock to the next event: either a timer or the
   earliest compute-segment completion given current processor sharing, then
   credit the elapsed interval to every active core.  Every timer due at the
   reached instant fires in one batched drain (timers chained at the same
   instant from inside a callback join the same drain) before any woken
   thread dispatches.

Two structures keep both phases amortized O(1) per event at million-task
scale (docs/INTERNALS.md, "Event core"):

* timers live in a :mod:`~repro.simcore.timerwheel` queue - the default
  calendar-queue wheel buckets the near future so pushes and same-instant
  batch pops do not pay an O(log n) heap sift against far-future arrival
  timers; ``event_core="heap"`` (or ``$REPRO_EVENT_CORE``) selects the
  original global heap, kept bit-identical as the differential reference.
  The earliest pending ``when`` is additionally tracked in
  ``_timer_next`` (exact min maintenance on push/pop/cancel), so the main
  loop reads it without touching the queue at all.
* compute completions are mirrored in a
  :class:`~repro.simcore.cores.CompletionIndex`: each core caches the
  absolute instant of its earliest completion and pushes its position on
  invalidation, so the per-iteration "next completion anywhere" scan only
  re-reads cores whose composition actually changed - see
  :meth:`repro.simcore.cores.Core.completion_at`.
"""

from __future__ import annotations

import itertools
import os
from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Optional, Sequence

from .cores import WORK_EPSILON, CompletionIndex, Core, Device
from .errors import SimDeadlock, SimStateError, SimTimeError
from .process import (
    AcquireDevice,
    Block,
    Compute,
    Request,
    Sleep,
    SimThread,
    ThreadState,
    UseDevice,
    Yield,
)
from .rng import make_rng
from .timerwheel import DEFAULT_EVENT_CORE, TimerEntry, make_timer_queue

__all__ = ["Engine", "CORE_IMPLS", "DEFAULT_CORE_IMPL"]

#: same-instant tolerance: timers within this window of the reached instant
#: fire in the current drain (absorbs float round-off between a completion
#: instant and a timer deadline computed from the same arithmetic).
_INSTANT_EPSILON = 1e-15

#: selectable main-loop implementations (``Engine(core_impl=...)``,
#: ``$REPRO_CORE_IMPL``, ``repro run --core-impl``).  "objects" is the
#: per-object reference loop below; "flat" is the fused structure-of-arrays
#: fast path in :mod:`repro.simcore.flatcore`, proven bit-identical by the
#: differential oracle's ``core_impl`` variant.
CORE_IMPLS = ("objects", "flat")
DEFAULT_CORE_IMPL = "objects"


def _core_index(core: Core) -> int:
    return core.index


class Engine:
    """Discrete-event simulator for threads over processor-sharing cores.

    Parameters
    ----------
    cores:
        Either an integer (that many unit-speed cores are created) or a
        sequence of pre-built :class:`Core` objects.
    seed:
        Seed for the engine-owned root RNG; subsystems derive child streams
        from it so whole experiments are reproducible bit-for-bit.
    event_core:
        Timer-queue implementation: ``"wheel"`` (calendar-queue timer
        wheel, the default) or ``"heap"`` (the original global binary
        heap, kept as the differential reference).  ``None`` reads
        ``$REPRO_EVENT_CORE`` before falling back to the default.  Both
        produce bit-identical schedules (``repro audit diff --variants
        event_core`` is the enforcing oracle).
    core_impl:
        Main-loop implementation: ``"objects"`` (the per-object reference
        loop in this module, the default) or ``"flat"`` (the fused
        structure-of-arrays fast path in :mod:`repro.simcore.flatcore`).
        ``None`` reads ``$REPRO_CORE_IMPL`` before falling back to the
        default.  Both produce bit-identical results (``repro audit diff
        --variants core_impl`` is the enforcing oracle); the flat loop
        elides *mid-batch* thread-state churn, see INTERNALS "The flat
        core" for the exact observability contract.
    """

    def __init__(
        self,
        cores: int | Sequence[Core] = 1,
        seed: int = 0,
        event_core: Optional[str] = None,
        core_impl: Optional[str] = None,
    ) -> None:
        if isinstance(cores, int):
            if cores < 1:
                raise SimStateError("engine needs at least one core")
            self.cores: list[Core] = [Core(name=f"cpu{i}", index=i) for i in range(cores)]
        else:
            self.cores = list(cores)
            if not self.cores:
                raise SimStateError("engine needs at least one core")
        self.devices: list[Device] = []
        #: cores eligible to host floating (affinity-less) threads; platforms
        #: shrink this to the worker pool so floating application threads
        #: never land on the reserved runtime core.
        self.floating_pool: list[Core] = list(self.cores)
        self.seed = seed
        self.rng = make_rng(seed)
        self.now: float = 0.0
        self.current: Optional[SimThread] = None
        self.threads: list[SimThread] = []
        self._ready: deque[tuple[SimThread, Any]] = deque()
        if event_core is None:
            event_core = os.environ.get("REPRO_EVENT_CORE", DEFAULT_EVENT_CORE)
        self._timerq = make_timer_queue(event_core, now=0.0)
        if core_impl is None:
            core_impl = os.environ.get("REPRO_CORE_IMPL", DEFAULT_CORE_IMPL)
        if core_impl not in CORE_IMPLS:
            raise SimStateError(
                f"unknown core_impl {core_impl!r}; expected one of {sorted(CORE_IMPLS)}"
            )
        #: main-loop implementation ("objects" reference loop vs the fused
        #: "flat" fast path).  Switchable between ``run()`` calls via
        #: :meth:`set_core_impl`: the flat loop restores the object-engine
        #: tuple-heap representation at every exit, so the choice only
        #: matters while a ``run()`` is executing.
        self.core_impl = core_impl
        #: exact earliest pending timer instant (None = no live timers);
        #: maintained on every push/drain/cancel so the main loop never
        #: pays a queue peek just to decide the next event.
        self._timer_next: Optional[float] = None
        self._timer_seq = itertools.count()
        self._completions = CompletionIndex(self.cores)
        self._events_processed = 0
        #: ``call_at`` timestamps already in the past, clamped to now
        #: (mirrored to the ``simcore_late_timers_total`` telemetry counter
        #: through :attr:`on_late_timer`).
        self.late_timers = 0
        #: optional zero-argument hook invoked on each late ``call_at``.
        self.on_late_timer: Optional[Callable[[], None]] = None
        #: timers fired so far (separate from dispatch-event accounting).
        self.timers_fired = 0
        self._drain_batches = 0
        self._drain_events = 0
        self.trace: Optional[Callable[..., None]] = None

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #

    def add_device(self, name: str) -> Device:
        """Register a new exclusive accelerator device."""
        dev = Device(name=name, engine=self)
        self.devices.append(dev)
        return dev

    def spawn(
        self,
        gen: Generator[Request, Any, Any],
        name: str = "thread",
        affinity: Optional[Core] = None,
    ) -> SimThread:
        """Create a simulated thread from generator *gen* and make it ready.

        ``affinity`` pins the thread to one core; ``None`` lets each compute
        segment land on the currently least-loaded core.
        """
        if affinity is not None and affinity not in self.cores:
            raise SimStateError(f"affinity core {affinity.name!r} is not part of this engine")
        thread = SimThread(name=name, gen=gen, engine=self, affinity=affinity)
        thread.started_at = self.now
        self.threads.append(thread)
        self._ready.append((thread, None))
        return thread

    # ------------------------------------------------------------------ #
    # event core selection
    # ------------------------------------------------------------------ #

    @property
    def event_core(self) -> str:
        """The active timer-queue kind (``"wheel"`` or ``"heap"``)."""
        return self._timerq.kind

    def set_event_core(self, kind: str) -> None:
        """Swap the timer queue for *kind*, migrating pending entries.

        Entries keep their ``(when, seq)`` identity, so pop order - and
        therefore every downstream result - is unchanged by the swap.
        Timer handles issued before the swap go stale (they reference the
        old queue) and must not be cancelled afterwards; the runtime swaps
        only at construction, before any handle exists.
        """
        if kind == self._timerq.kind:
            return
        new = make_timer_queue(kind, now=self.now)
        for when, seq, callback in self._timerq.entries():
            new.push(when, seq, callback)
        self._timerq = new
        self._timer_next = new.peek()

    def set_core_impl(self, kind: str) -> None:
        """Select the main-loop implementation for subsequent ``run()`` calls.

        Safe between runs: the flat loop's epilogue restores the exact
        object-engine representation (sorted tuple heaps, synced per-core
        sequence counters) at every exit, normal or exceptional, so the
        two loops may be interleaved freely on one engine.
        """
        if kind not in CORE_IMPLS:
            raise SimStateError(
                f"unknown core_impl {kind!r}; expected one of {sorted(CORE_IMPLS)}"
            )
        self.core_impl = kind

    def event_core_stats(self) -> dict:
        """Event-core observability snapshot (``run --perf-json``)."""
        stats = self._timerq.stats()
        stats["late_timers"] = self.late_timers
        stats["timers_fired"] = self.timers_fired
        stats["drain_batches"] = self._drain_batches
        stats["mean_batch"] = (
            self._drain_events / self._drain_batches if self._drain_batches else 0.0
        )
        return stats

    # ------------------------------------------------------------------ #
    # scheduling primitives (used by sync/device layers)
    # ------------------------------------------------------------------ #

    def wake(self, thread: SimThread, value: Any = None) -> None:
        """Move a blocked/sleeping thread back to the dispatch queue."""
        if thread.state is ThreadState.FINISHED:
            raise SimStateError(f"cannot wake finished thread {thread.name!r}")
        if thread.state in (ThreadState.READY, ThreadState.RUNNING):
            raise SimStateError(f"thread {thread.name!r} is not blocked (state={thread.state})")
        thread.state = ThreadState.READY
        self._ready.append((thread, value))

    def _schedule_timer(self, delay: float, callback: Callable[[], None]) -> TimerEntry:
        if delay < 0:
            raise SimTimeError(f"negative timer delay: {delay}")
        when = self.now + delay
        if self._timer_next is None or when < self._timer_next:
            self._timer_next = when
        return self._timerq.push(when, next(self._timer_seq), callback)

    def call_at(self, when: float, callback: Callable[[], None]) -> TimerEntry:
        """Run *callback* at absolute simulated time ``when``.

        A ``when`` already in the past is clamped to now - it fires in the
        very next timer drain rather than at some arbitrary later one - and
        is counted in :attr:`late_timers` (exported as
        ``simcore_late_timers_total``) so schedule bugs that produce stale
        timestamps stay visible instead of silently reordering.
        """
        now = self.now
        if when < now:
            self.late_timers += 1
            hook = self.on_late_timer
            if hook is not None:
                hook()
            when = now
        if self._timer_next is None or when < self._timer_next:
            self._timer_next = when
        return self._timerq.push(when, next(self._timer_seq), callback)

    def cancel_timer(self, handle: TimerEntry) -> bool:
        """Cancel a pending timer returned by :meth:`call_at` /
        :meth:`_schedule_timer`; returns False if it already fired or was
        already cancelled."""
        cancelled = self._timerq.cancel(handle)
        if cancelled and handle[0] == self._timer_next:
            self._timer_next = self._timerq.peek()
        return cancelled

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #

    def _pick_core(self, thread: SimThread, override: Optional[Core]) -> Core:
        if override is not None:
            return override
        if thread.affinity is not None:
            return thread.affinity
        # min(pool, key=lambda c: (c.load, c.index)) without the per-call
        # lambda, tuple allocations, or property descriptor overhead - this
        # runs once per floating compute segment.
        best: Optional[Core] = None
        best_load = 0
        for core in self.floating_pool:
            load = len(core._finish_heap) + core._spinners
            if best is None or load < best_load or (load == best_load and core.index < best.index):
                best = core
                best_load = load
        if best is None:
            raise SimStateError("engine has an empty floating pool")
        return best

    def _dispatch_slow(self, thread: SimThread, request: Any) -> None:
        """Act on a non-``Compute`` (or subclassed) request; the exact-type
        ``Compute`` fast path lives inline in :meth:`run`."""
        cls = request.__class__
        if isinstance(request, Compute):
            if request.work <= 0.0:
                # Zero-cost segment: skip the core entirely so it neither
                # perturbs processor sharing nor inflates busy accounting.
                thread.state = ThreadState.READY
                self._ready.append((thread, None))
            else:
                core = self._pick_core(thread, request.core)
                thread.state = ThreadState.RUNNING
                core.add(thread, request.work)
        elif cls is Block or isinstance(request, Block):
            thread.state = ThreadState.BLOCKED
        elif cls is Yield or isinstance(request, Yield):
            thread.state = ThreadState.READY
            self._ready.append((thread, None))
        elif cls is Sleep or isinstance(request, Sleep):
            thread.state = ThreadState.SLEEPING
            self._schedule_timer(request.duration, lambda t=thread: self.wake(t))
        elif isinstance(request, UseDevice):
            thread.state = ThreadState.BLOCKED
            request.device.request(thread, request.duration)
        elif isinstance(request, AcquireDevice):
            thread.state = ThreadState.BLOCKED
            request.device.request(thread, None)
        else:
            raise SimStateError(
                f"thread {thread.name!r} yielded unsupported request {request!r}"
            )

    def _finish(self, thread: SimThread, result: Any) -> None:
        thread.state = ThreadState.FINISHED
        thread.result = result
        thread.finished_at = self.now
        for joiner in thread._joiners:
            self.wake(joiner)
        thread._joiners.clear()
        if self.trace is not None:
            self.trace("thread_finished", thread=thread, time=self.now)

    # ------------------------------------------------------------------ #
    # main loop
    # ------------------------------------------------------------------ #

    def _next_compute_completion(self) -> Optional[float]:
        """Wall-seconds until the earliest compute completion on any core.

        Reads the completion index (dirty cores only); kept for
        introspection and tests - the main loop uses the same index in
        absolute time.
        """
        at = self._completions.min_at(self.now)
        return None if at is None else at - self.now

    def _next_completion_at(self) -> Optional[float]:
        return self._completions.min_at(self.now)

    def _advance(self, dt: float) -> None:
        if dt < 0:
            raise SimTimeError(f"attempted to advance time by {dt}")
        if dt == 0.0:
            return
        self.now += dt
        ready = self._ready
        ready_state = ThreadState.READY
        for core in self.cores:
            # Inlined Core.advance (which stays in cores.py for direct
            # callers; the virtual-time arithmetic must match it exactly):
            # the method call plus completed-list round trip costs more
            # than the advance itself at high event rates.
            heap = core._finish_heap
            n = len(heap)
            if n:
                k = n + core._spinners
                rate = core.speed / (k * (1.0 + core.cs_alpha * (k - 1)))
                virtual = core._virtual + dt * rate
                core._virtual = virtual
                core.delivered += dt * rate * n
                core.busy_time += dt
                limit = virtual + WORK_EPSILON
                if heap[0][0] <= limit:
                    while heap and heap[0][0] <= limit:
                        _, _, thread, work = heappop(heap)
                        thread._on_core = None
                        thread.cpu_time += work
                        thread.state = ready_state
                        ready.append((thread, None))
                    if not core._completion_dirty:
                        core._completion_dirty = True
                        cidx = core._cidx
                        if cidx is not None:
                            cidx._dirty.append(core._cpos)
            elif core._spinners:
                # a busy-polling thread keeps the core active with no work
                # in flight
                core.busy_time += dt

    def run(self, until: Optional[float] = None, strict: bool = True) -> float:
        """Run the simulation; return the final simulated time.

        Stops when no further events exist, or at time ``until`` if given.
        With ``strict=True`` (default), running out of events while threads
        are still blocked raises :class:`SimDeadlock` - a clean experiment
        must shut its runtime down so every thread finishes.
        """
        if self.core_impl == "flat":
            from .flatcore import flat_run

            return flat_run(self, until, strict)
        ready = self._ready
        timerq = self._timerq
        completions = self._completions
        ready_state = ThreadState.READY
        running_state = ThreadState.RUNNING
        # Least-loaded placement scans a copy of the floating pool sorted by
        # core index: iteration order then IS the tie-break order, so the
        # scan needs one strict compare per core instead of three.  The
        # cache refreshes whenever ``floating_pool`` is rebound (platforms
        # and tests assign a new list; in-place mutation mid-run is not
        # supported).
        pool_cache: Optional[list[Core]] = None
        pool_sorted: list[Core] = []
        while True:
            # Drain every thread runnable at the current instant (dispatch
            # may append more same-instant work; the deque drains to a fixed
            # point before time moves).  The exact-type Compute branch is
            # inlined: it is by far the hottest path in the simulator and a
            # method call per event costs ~15% of the whole loop.
            events = 0
            while ready:
                thread, value = ready.popleft()
                events += 1
                # ``current`` is read only from inside gen.send (sync
                # primitives asking "who is running?"), so it is cleared
                # once after the drain instead of once per event; on an
                # exception it is left pointing at the culprit thread.
                self.current = thread
                try:
                    request = thread.gen.send(value)
                except StopIteration as stop:
                    self._finish(thread, stop.value)
                    continue
                if request.__class__ is Compute:
                    work = request.work
                    if work <= 0.0:
                        # zero-cost segment: never touches a core
                        thread.state = ready_state
                        ready.append((thread, None))
                        continue
                    core = request.core
                    if core is None:
                        core = thread.affinity
                        if core is None:
                            pool = self.floating_pool
                            if pool is not pool_cache:
                                pool_cache = pool
                                pool_sorted = sorted(pool, key=_core_index)
                                if not pool_sorted:
                                    raise SimStateError("engine has an empty floating pool")
                            core = pool_sorted[0]
                            best_load = len(core._finish_heap) + core._spinners
                            for c in pool_sorted:
                                load = len(c._finish_heap) + c._spinners
                                if load < best_load:
                                    core = c
                                    best_load = load
                    # Inlined Core.add (which stays in cores.py for direct
                    # callers and the slow path; bookkeeping must match it
                    # exactly): one method call per compute segment is the
                    # single largest slice of the dispatch budget.
                    if thread._on_core is not None:
                        raise SimStateError(
                            f"{thread.name!r} already running on core "
                            f"{thread._on_core.name!r}"
                        )
                    finish = core._virtual + work
                    thread._on_core = core
                    thread._finish_virtual = finish
                    seq = core._seq + 1
                    core._seq = seq
                    heappush(core._finish_heap, (finish, seq, thread, work))
                    if not core._completion_dirty:
                        core._completion_dirty = True
                        cidx = core._cidx
                        if cidx is not None:
                            cidx._dirty.append(core._cpos)
                    thread.state = running_state
                else:
                    self._dispatch_slow(thread, request)
            self.current = None
            self._events_processed += events

            timer_at = self._timer_next
            compute_at = completions.min_at(self.now)

            if timer_at is None and compute_at is None:
                # Only materialize the blocked-thread list when actually
                # raising: this idle check runs on every engine return and
                # a full thread scan here is pure overhead on the happy path.
                if strict and any(
                    t.state is ThreadState.BLOCKED for t in self.threads
                ):
                    blocked = self.blocked_threads()
                    names = ", ".join(t.name for t in blocked[:12])
                    raise SimDeadlock(
                        f"no events remain but {len(blocked)} thread(s) are blocked: {names}"
                    )
                return self.now

            if timer_at is None:
                next_at = compute_at
            elif compute_at is None:
                next_at = timer_at
            else:
                next_at = timer_at if timer_at <= compute_at else compute_at
            if until is not None and next_at > until:
                self._advance(until - self.now)
                return self.now

            self._advance(next_at - self.now)
            # Batched same-instant drain: every timer due at the reached
            # instant fires before any woken thread dispatches; callbacks
            # that chain new timers due at this same instant join the drain
            # (the re-pop loop), matching the heap reference's semantics.
            deadline = self.now + _INSTANT_EPSILON
            if timer_at is not None and timer_at <= deadline:
                fired = 0
                while True:
                    batch = timerq.pop_due(deadline)
                    if not batch:
                        break
                    fired += len(batch)
                    for callback in batch:
                        callback()
                self._timer_next = timerq.peek()
                if fired:
                    self.timers_fired += fired
                    self._drain_batches += 1
                    self._drain_events += fired

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def blocked_threads(self) -> list[SimThread]:
        """Threads currently parked on a mutex/condvar/device/join."""
        return [t for t in self.threads if t.state is ThreadState.BLOCKED]

    def alive_threads(self) -> list[SimThread]:
        return [t for t in self.threads if t.alive]

    @property
    def events_processed(self) -> int:
        """Number of dispatch events handled so far (progress metric)."""
        return self._events_processed

    def core_utilization(self) -> dict[str, float]:
        """Per-core busy fraction over the elapsed simulated time."""
        return {c.name: c.utilization(self.now) for c in self.cores}
