"""repro.corpus - adversarial scenario corpus: generate, run, minimize.

The coverage tier above the audit catalog: instead of checking the 12
runtime invariants on scenarios we thought of, a seeded generator emits
scenarios we didn't - random app mixes, PE pools, arrival processes, and
fault storms, all as valid :class:`~repro.scenario.ScenarioSpec`
documents and all a pure function of ``(CorpusConfig, seed)``.  The
parity layer runs every registered scheduler over the same corpus cells
with the online auditor armed and reports dominance tables, metric
deltas, and per-invariant violation tallies; failing cells feed a
delta-debugging minimizer that shrinks the spec while the failure still
reproduces.  See docs/INTERNALS.md, "The adversarial scenario corpus".
"""

from .generator import CorpusConfig, generate_corpus, generate_spec
from .minimize import MinimizeResult, minimize_spec, write_artifacts
from .parity import CellOutcome, CorpusReport, run_cell, run_corpus

__all__ = [
    "CellOutcome",
    "CorpusConfig",
    "CorpusReport",
    "MinimizeResult",
    "generate_corpus",
    "generate_spec",
    "minimize_spec",
    "run_cell",
    "run_corpus",
    "write_artifacts",
]
