"""Application base class: one source of truth, three execution forms.

Every paper application (Pulse Doppler, WiFi TX, Lane Detection) derives
from :class:`CedrApplication` and provides:

* ``reference`` - plain NumPy golden implementation (what the original
  single-threaded C code computes);
* ``api_main`` - the CEDR-API form: a generator using libCEDR calls
  (blocking or non-blocking per ``variant``), runnable against both the
  runtime-backed client and the standalone CPU library;
* ``build_dag`` - the baseline DAG-based CEDR form with the whole
  application (including non-accelerable regions) carved into nodes.

``make_instance`` packages either form into a runtime-submittable
:class:`~repro.runtime.app.AppInstance`.  The ``batch`` knob groups
fine-grained kernel invocations (e.g. individual 1024-point FFT rows) into
one schedulable task; ``batch=1`` reproduces the paper's task granularity
exactly while larger values keep big sweeps tractable - see DESIGN.md's
scale note.
"""

from __future__ import annotations

import abc
from typing import Any, Generator, Literal, Optional

import numpy as np

from repro.dag import DagProgram
from repro.runtime.app import API_MODE, DAG_MODE, AppInstance

__all__ = ["CedrApplication", "Variant", "chunk_slices"]

Variant = Literal["blocking", "nonblocking"]


def chunk_slices(n: int, batch: int) -> list[slice]:
    """Split ``range(n)`` into contiguous slices of at most ``batch``."""
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    return [slice(i, min(i + batch, n)) for i in range(0, n, batch)]


class CedrApplication(abc.ABC):
    """One real-life application in all its CEDR forms."""

    #: short name used in logs and figures (e.g. "PD", "TX", "LD")
    name: str = "app"

    #: API-mode call style used by the paper-configuration experiments.
    #: PD and TX are latency-bound request/response apps written with the
    #: straightforward blocking APIs; Lane Detection is the throughput app
    #: whose phases fan out through the non-blocking APIs (Section II-C).
    default_variant: Variant = "blocking"

    @property
    @abc.abstractmethod
    def frame_mb(self) -> float:
        """Frame size in megabits (the paper's injection-rate unit)."""

    @abc.abstractmethod
    def make_input(self, rng: np.random.Generator) -> dict[str, Any]:
        """Synthesize one frame of input data."""

    @abc.abstractmethod
    def reference(self, inputs: dict[str, Any]) -> Any:
        """Golden single-threaded NumPy result for *inputs*."""

    @abc.abstractmethod
    def api_main(
        self, lib, inputs: dict[str, Any], variant: Variant = "blocking"
    ) -> Generator:
        """CEDR-API ``main``: yields libCEDR requests, returns the result."""

    @abc.abstractmethod
    def build_dag(self, inputs: dict[str, Any]) -> tuple[DagProgram, dict[str, Any]]:
        """DAG-based form: (program, initial state) for one frame."""

    # ------------------------------------------------------------------ #

    def make_instance(
        self,
        mode: str,
        rng: np.random.Generator,
        variant: Optional[Variant] = None,
        inputs: Optional[dict[str, Any]] = None,
    ) -> AppInstance:
        """Create a submittable instance of this application.

        ``mode`` is ``"dag"`` or ``"api"``; ``variant`` defaults to the
        app's :attr:`default_variant`; fresh input data is synthesized from
        *rng* unless *inputs* is supplied.
        """
        variant = variant or self.default_variant
        inputs = inputs if inputs is not None else self.make_input(rng)
        if mode == DAG_MODE:
            program, state = self.build_dag(inputs)
            return AppInstance(
                name=self.name, mode=DAG_MODE, frame_mb=self.frame_mb,
                dag=program, initial_state=state,
            )
        if mode == API_MODE:
            def main_factory(lib, _inputs=inputs, _variant=variant):
                return self.api_main(lib, _inputs, variant=_variant)

            return AppInstance(
                name=self.name, mode=API_MODE, frame_mb=self.frame_mb,
                main_factory=main_factory,
            )
        raise ValueError(f"unknown mode {mode!r} (use 'dag' or 'api')")

    # -- shared helpers ---------------------------------------------------- #

    @staticmethod
    def _or_fallback(result: Any, fallback: Any, executes: bool) -> Any:
        """Pick the kernel result, or a same-shaped stand-in when the run is
        timing-only (``execute_kernels=False``) so downstream calls still
        carry correctly-sized payloads."""
        return result if executes else fallback

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name} frame={self.frame_mb:.2f}Mb>"


def work_for_elems(n_elems: float, ns_per_elem: float = 8.0) -> float:
    """Seconds-at-1GHz for a light per-element CPU pass (copies, transposes,
    thresholding).  Used by apps to cost their non-kernel regions."""
    return n_elems * ns_per_elem * 1e-9


__all__.append("work_for_elems")
