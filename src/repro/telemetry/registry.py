"""Deterministic metric primitives: counters, gauges, fixed-bucket histograms.

This is the reproduction's stand-in for CEDR's "performance monitoring
hooks" (Mack et al., arXiv:2204.08962): a central registry of named metric
families the runtime, workers, libCEDR client, and fault layer all write
into.  Three properties matter and are pinned by tests:

* **Determinism** - metrics are a pure function of the simulated run.  No
  wall-clock reads, no process ids, no iteration over unordered containers
  at export time: snapshots are bit-identical between serial and
  process-pool (``--jobs``) sweeps.
* **Fixed buckets** - histograms use explicit upper-bound ladders declared
  at registration time, never adaptive buckets (adaptive boundaries would
  make two runs' exports incomparable).
* **Zero timing impact** - recording is plain Python state mutation; it
  charges no simulated cost and schedules no events, so enabling telemetry
  never changes what a run computes, only what it reports.

The label model follows Prometheus: a *family* (``cedr_pe_busy_seconds``,
labelled by ``pe``) owns one child metric per label-value tuple, created on
first use via :meth:`MetricFamily.labels`.  Unlabelled registrations return
the bare metric directly, which keeps hot-path call sites free of lookups.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricRegistry",
]


class Counter:
    """Monotonically increasing value (events, seconds of busy time, ...)."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount

    def state(self) -> dict[str, Any]:
        return {"value": self.value}


class Gauge:
    """Instantaneous value that can move both ways (queue depth, in-flight)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def state(self) -> dict[str, Any]:
        return {"value": self.value}


class Histogram:
    """Fixed-bucket cumulative histogram (Prometheus semantics).

    ``bounds`` are ascending finite upper bounds; an implicit ``+Inf``
    bucket catches the tail.  ``counts[i]`` is *non*-cumulative per bucket
    internally; exporters cumulate, matching the Prometheus exposition
    format's ``le`` convention.
    """

    __slots__ = ("bounds", "counts", "sum", "count")
    kind = "histogram"

    def __init__(self, bounds: Sequence[float]) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(not math.isfinite(b) for b in bounds):
            raise ValueError(f"bucket bounds must be finite, got {bounds}")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must be strictly ascending, got {bounds}")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1: the +Inf tail
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        # linear scan: bucket ladders here are short (< ~20) and observation
        # values cluster in the low buckets, so bisect buys nothing
        idx = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                idx = i
                break
        self.counts[idx] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> list[int]:
        """Counts cumulated in ``le`` order (last entry == ``count``)."""
        out, running = [], 0
        for c in self.counts:
            running += c
            out.append(running)
        return out

    def quantile(self, q: float) -> float:
        """Estimated *q*-quantile, Prometheus ``histogram_quantile`` style.

        Linear interpolation inside the bucket holding the *q*-th
        observation (bucket floors at 0 below the first bound); the +Inf
        tail clamps to the highest finite bound - an underestimate, which
        is the conservative direction for the admission controller's p99
        backpressure signal (it sheds later, never spuriously).  Pure
        arithmetic over recorded counts: deterministic, and 0.0 with no
        observations.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        running = 0
        for i, c in enumerate(self.counts):
            running += c
            if running >= target and c > 0:
                if i >= len(self.bounds):   # +Inf tail: clamp
                    return self.bounds[-1]
                lo = self.bounds[i - 1] if i > 0 else 0.0
                hi = self.bounds[i]
                return lo + (hi - lo) * (target - (running - c)) / c
        return self.bounds[-1]

    def state(self) -> dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }


class MetricFamily:
    """One named metric plus its labelled children.

    Children are stored keyed by label-value tuple; export order sorts the
    keys so the output never depends on first-use order (which *can* differ
    between runs that interleave applications differently).
    """

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        label_names: tuple[str, ...],
        bounds: Optional[tuple[float, ...]] = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = label_names
        self.bounds = bounds
        self._children: dict[tuple[str, ...], Any] = {}

    def _make(self):
        if self.kind == "counter":
            return Counter()
        if self.kind == "gauge":
            return Gauge()
        return Histogram(self.bounds)

    def labels(self, *values: str):
        """Child metric for one label-value tuple (created on first use)."""
        if len(values) != len(self.label_names):
            raise ValueError(
                f"{self.name} expects labels {self.label_names}, got {values!r}"
            )
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            child = self._make()
            self._children[key] = child
        return child

    def series(self) -> list[tuple[tuple[str, ...], Any]]:
        """(label values, metric) pairs in sorted label order."""
        return sorted(self._children.items())

    def state(self) -> dict[str, Any]:
        entry: dict[str, Any] = {
            "type": self.kind,
            "help": self.help,
            "labels": list(self.label_names),
            "series": [
                {"labels": dict(zip(self.label_names, key)), **metric.state()}
                for key, metric in self.series()
            ],
        }
        if self.bounds is not None:
            entry["bounds"] = list(self.bounds)
        return entry


class MetricRegistry:
    """Central catalog of metric families, keyed by name.

    Registration order is preserved for export (families are declared once,
    at telemetry construction, so the order is itself deterministic).
    """

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}

    def _register(
        self,
        name: str,
        kind: str,
        help: str,
        labels: Iterable[str],
        bounds: Optional[Sequence[float]] = None,
    ):
        if name in self._families:
            raise ValueError(f"metric {name!r} registered twice")
        label_names = tuple(labels)
        family = MetricFamily(
            name, kind, help, label_names,
            bounds=tuple(float(b) for b in bounds) if bounds is not None else None,
        )
        self._families[name] = family
        if not label_names:
            return family.labels()  # unlabelled: hand back the bare metric
        return family

    def counter(self, name: str, help: str = "", labels: Iterable[str] = ()):
        return self._register(name, "counter", help, labels)

    def gauge(self, name: str, help: str = "", labels: Iterable[str] = ()):
        return self._register(name, "gauge", help, labels)

    def histogram(
        self, name: str, bounds: Sequence[float], help: str = "", labels: Iterable[str] = ()
    ):
        return self._register(name, "histogram", help, labels, bounds=bounds)

    def families(self) -> list[MetricFamily]:
        """All families in registration order."""
        return list(self._families.values())

    def get(self, name: str) -> MetricFamily:
        return self._families[name]

    def snapshot(self) -> dict[str, Any]:
        """JSON-compatible dump of every family (deterministic ordering)."""
        return {name: family.state() for name, family in self._families.items()}
