"""CEDR scheduling heuristics.

The paper's evaluation uses RR, EFT, ETF, and HEFT_RT
(:func:`paper_schedulers`); the wider CEDR ecosystem's scheduler studies
also include MET and random mapping, provided here for the ablation
benches.  Importing this package registers everything in
:data:`SCHEDULERS` (the typed plugin registry from :mod:`repro.registry`);
instantiate by name through ``SCHEDULERS.create(name, ...)``.  Third-party
packages plug in via :func:`register_scheduler` or the
``repro.schedulers`` entry-point group.

``PAPER_SCHEDULERS`` / ``EXTRA_SCHEDULERS`` / ``make_scheduler`` remain as
deprecated shims over the registry.
"""

import warnings

from .base import (
    SCHEDULERS,
    Scheduler,
    SchedulerError,
    available_schedulers,
    make_scheduler,
    register_scheduler,
)
from .eft import EarliestFinishTime
from .etf import EarliestTaskFirst
from .heft_rt import HeftRT, upward_ranks
from .met import MinimumExecutionTime
from .random_sched import RandomScheduler
from .rr import RoundRobin

#: the paper's heuristics, in the order its figures present them
_PAPER_ORDER = ("rr", "eft", "etf", "heft_rt")


def paper_schedulers() -> tuple[str, ...]:
    """The paper's four heuristics, in figure presentation order."""
    return tuple(name for name in _PAPER_ORDER if name in SCHEDULERS)


def extra_schedulers() -> tuple[str, ...]:
    """Every registered heuristic beyond the paper's four, sorted.

    Registry-backed: a scheduler plugged in by a third-party package (or a
    test) shows up here - and therefore in ``repro list`` - automatically.
    """
    paper = set(_PAPER_ORDER)
    return tuple(name for name in SCHEDULERS.names() if name not in paper)


_DEPRECATED_TUPLES = {
    "PAPER_SCHEDULERS": paper_schedulers,
    "EXTRA_SCHEDULERS": extra_schedulers,
}


def __getattr__(name):
    fn = _DEPRECATED_TUPLES.get(name)
    if fn is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    warnings.warn(
        f"repro.sched.{name} is deprecated; use "
        f"repro.sched.{fn.__name__}()",
        DeprecationWarning,
        stacklevel=2,
    )
    return fn()


__all__ = [
    "Scheduler",
    "SchedulerError",
    "SCHEDULERS",
    "register_scheduler",
    "make_scheduler",
    "available_schedulers",
    "paper_schedulers",
    "extra_schedulers",
    "RoundRobin",
    "EarliestFinishTime",
    "EarliestTaskFirst",
    "HeftRT",
    "MinimumExecutionTime",
    "RandomScheduler",
    "upward_ranks",
    "PAPER_SCHEDULERS",
    "EXTRA_SCHEDULERS",
]
