"""Shared fixtures for the reproduction's test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import LaneDetection, PulseDoppler, WifiTx
from repro.platforms import jetson, zcu102


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def zcu_small():
    """ZCU102 with one FFT accelerator (the Fig. 5 configuration)."""
    return zcu102(n_cpu=3, n_fft=1)


@pytest.fixture
def zcu_fig6():
    """ZCU102 with FFT + MMULT (the Fig. 6/7 configuration)."""
    return zcu102(n_cpu=3, n_fft=1, n_mmult=1)


@pytest.fixture
def jetson_small():
    return jetson(n_cpu=3, n_gpu=1)


@pytest.fixture
def pd_small():
    """Pulse Doppler with coarse task batching (fast to simulate/execute)."""
    return PulseDoppler(batch=16)


@pytest.fixture
def tx_small():
    return WifiTx(n_packets=20, batch=4)


@pytest.fixture
def ld_small():
    """Reduced-frame Lane Detection (tile 256) for functional tests."""
    return LaneDetection(height=96, width=128, batch=32)
