"""Ablation bench: whole-image vs overlap-save FFT convolution for LD.

The paper's Lane Detection pads the full 960x540 frame to one 1024x1024
transform per convolution pass; the Abtahi et al. reference it cites also
describes *tiled* frequency-domain convolution.  This bench quantifies the
trade-off both in the timing model's FFT work (what the emulated ZCU102
would charge) and in actual NumPy wall time, and checks the structural
advantage: the tiled form keeps every 1-D transform at a small fixed size,
comfortably inside the FFT IP's 2048-point limit even for frame sizes
where whole-image padding would exceed it.
"""

import numpy as np
import pytest

from repro.kernels.conv2d import (
    conv2d_fft,
    conv2d_fft_tiled,
    conv2d_spatial,
    fft_conv_task_counts,
    next_pow2,
)
from repro.kernels.vision import gaussian_kernel
from repro.platforms import zcu102_timing

KERNEL = gaussian_kernel(5, 1.4)


def modeled_fft_seconds_whole(h, w, kh=5, kw=5):
    """Timing-model CPU seconds of all 1-D FFT rows, whole-image approach."""
    t = zcu102_timing()
    counts = fft_conv_task_counts(h, w, kh, kw)
    per_row = t.cpu_seconds("fft", {"n": counts["tile"]})
    return (counts["fft"] + counts["ifft"]) * per_row


def modeled_fft_seconds_tiled(h, w, tile=60, kh=5, kw=5):
    t = zcu102_timing()
    ext = next_pow2(tile + max(kh, kw) - 1)
    per_row = t.cpu_seconds("fft", {"n": ext})
    n_tiles = -(-h // tile) * (-(-w // tile))
    rows = n_tiles * (2 * ext + 2 * ext) + 2 * ext  # fwd+inv per tile + kernel
    return rows * per_row


def test_tiled_conv_cuts_modeled_fft_work(benchmark):
    whole, tiled = benchmark.pedantic(
        lambda: (modeled_fft_seconds_whole(540, 960),
                 modeled_fft_seconds_tiled(540, 960)),
        rounds=1, iterations=1,
    )
    print("\nmodeled FFT work for one 960x540 LD convolution pass:")
    print(f"  whole-image (1024 tile): {whole*1e3:8.1f} ms of CPU-FFT work")
    print(f"  overlap-save (64 tiles): {tiled*1e3:8.1f} ms of CPU-FFT work")
    assert tiled < 0.5 * whole


def test_tiled_conv_stays_inside_the_fft_ip_limit(benchmark):
    """At 4K-class frames the whole-image pad exceeds the 2048-point IP."""
    limit = benchmark.pedantic(
        lambda: zcu102_timing().fft_accel_max_points, rounds=1, iterations=1
    )
    assert fft_conv_task_counts(2160, 3840, 5, 5)["tile"] > limit  # whole: too big
    assert next_pow2(60 + 4) <= limit                              # tiled: fine


def test_wall_time_comparison(benchmark):
    """pytest-benchmark on the actual NumPy kernels (tiled side)."""
    rng = np.random.default_rng(0)
    img = rng.normal(size=(135, 240))  # quarter-scale LD frame

    result = benchmark(lambda: conv2d_fft_tiled(img, KERNEL, tile=60))
    # correctness against both references
    assert np.allclose(result, conv2d_spatial(img, KERNEL), atol=1e-8)
    assert np.allclose(result, conv2d_fft(img, KERNEL), atol=1e-8)
