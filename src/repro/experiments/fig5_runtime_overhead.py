"""Fig. 5 - runtime overhead of API-based vs DAG-based CEDR.

Setup (paper Section IV-A): 5x Pulse Doppler + 5x WiFi TX on the ZCU102
with 3 ARM cores and 1 FFT accelerator, swept over injection rates.  The
metric is the paper's *runtime overhead*: main-thread time spent receiving,
managing, and terminating applications, excluding scheduling, normalized
per application.

Expected reproduction: both curves decrease with injection rate and
saturate around 200 Mbps; in the saturated region the API-based runtime
shows a reduction of roughly the paper's 19.52% relative to DAG-based
(ours lands in the 15-30% band; EXPERIMENTS.md records the exact number).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.metrics import FigureSeries, saturated_mean
from repro.platforms import zcu102
from repro.workload import radar_comms_workload, reduced_injection_rates

from .common import sweep_rates

__all__ = ["run_fig5", "SATURATION_MBPS"]

#: injection rate beyond which the paper calls the system oversubscribed
SATURATION_MBPS = 200.0


def run_fig5(
    rates: Optional[Sequence[float]] = None,
    trials: int = 2,
    seed: int = 0,
    scheduler: str = "rr",
    n_jobs: Optional[int] = None,
) -> FigureSeries:
    """Regenerate Fig. 5; returns one panel with a DAG and an API series."""
    rates = list(rates) if rates is not None else list(reduced_injection_rates())
    platform = zcu102(n_cpu=3, n_fft=1)
    workload = radar_comms_workload()
    fig = FigureSeries(
        figure="fig5",
        title="Runtime overhead in API and DAG-based CEDR "
              "(ZCU102 3 CPU + 1 FFT, 5xPD + 5xTX)",
        x_label="injection rate (Mbps)",
        y_label="runtime overhead per app (s)",
    )
    for mode, label in (("dag", "DAG-based"), ("api", "API-based")):
        sweep = sweep_rates(
            platform, workload, mode, rates, scheduler, trials=trials,
            base_seed=seed, n_jobs=n_jobs,
        )
        xs, ys = sweep.series("runtime_overhead")
        fig.add(label, xs, ys)
    return fig


def saturated_reduction(fig: FigureSeries, x_from: float = SATURATION_MBPS) -> float:
    """Fractional API-vs-DAG overhead reduction over the saturated region
    (the paper quotes 19.52%)."""
    dag = fig.get("DAG-based")
    api = fig.get("API-based")
    dag_mean = saturated_mean(dag.xs, dag.ys, x_from)
    api_mean = saturated_mean(api.xs, api.ys, x_from)
    return (dag_mean - api_mean) / dag_mean


__all__.append("saturated_reduction")
