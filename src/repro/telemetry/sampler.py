"""Periodic metric snapshots driven by simulator timer events.

The sampler is the telemetry analogue of the fault injector's timer chain:
it keeps exactly one engine timer ahead, captures a flattened snapshot of
the registry each time the timer fires, and re-arms.  Because ticks live on
the *virtual* clock, a run's snapshot series is a pure function of the run
itself - the same on any host, serial or inside a ``--jobs`` process pool.

Like the fault streams, the one-timer-ahead chain would keep the engine's
timer heap populated forever, so the daemon disarms the sampler at
shutdown; the already-scheduled final timer fires once as a no-op.  The
daemon also takes one last sample at shutdown regardless of interval, so
even ``sample_interval_s=0`` runs export a single end-of-run snapshot.

One caveat, shared with every timer source (fault streams included): a
timer event makes the engine advance the processor-sharing cores to the
tick instant, splitting in-progress compute spans there.  The split
re-associates the floating-point service accumulation, so a *sampled* run
can drift from an unsampled one in the last ulp of derived times.  Metric
*recording* never does this (it is pure state mutation, no events); the
determinism tests pin both properties.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.simcore import Engine

    from .runtime_metrics import CedrTelemetry

__all__ = ["SnapshotSampler"]


class SnapshotSampler:
    """Arms a repeating engine timer that snapshots one telemetry registry."""

    def __init__(self, engine: "Engine", telemetry: "CedrTelemetry", interval_s: float) -> None:
        if interval_s <= 0:
            raise ValueError(f"sampler interval must be > 0, got {interval_s}")
        self.engine = engine
        self.telemetry = telemetry
        self.interval_s = interval_s
        self._stopped = False
        self._armed = False

    def arm(self) -> None:
        """Schedule the first tick one interval from now (idempotent)."""
        if self._armed:
            return
        self._armed = True
        self.engine.call_at(self.engine.now + self.interval_s, self._tick)

    def disarm(self) -> None:
        """Stop the chain; the pending timer fires once as a no-op."""
        self._stopped = True

    def _tick(self) -> None:
        if self._stopped:
            return
        self.telemetry.sample(self.engine.now)
        self.engine.call_at(self.engine.now + self.interval_s, self._tick)
