"""Scheduler interface and registry.

A CEDR scheduling heuristic runs inside the daemon's main loop on the
reserved runtime core.  Each *scheduling round* receives the current ready
queue and the PE list and returns an assignment for every ready task (CEDR
pushes work to per-worker queues; workers drain them in order).  Two things
matter for reproducing the paper:

* the *quality* of the mapping (which PE each task lands on), and
* the *cost* of deciding, charged to the runtime core via
  :meth:`Scheduler.round_cost`.  ETF's cost grows quadratically with the
  ready-queue length, which is the entire mechanism behind the paper's
  Fig. 7 (70 ms DAG-mode vs 1.15 ms API-mode ETF overhead).

Estimates come from the daemon as an ``estimate(task, pe)`` callable backed
by the platform timing model - the runtime analogue of CEDR's offline
profiling tables.  When that callable additionally exposes the *columnar*
interface of :class:`~repro.platforms.timing.CostTable`
(``estimate_rows(batch)`` / ``support_rows(batch)`` returning ``(n, p)``
ndarrays), the batched helpers below gather whole rounds as NumPy arrays
and the heuristics lose their per-task Python inner loops; a plain callable
falls back to the scalar reference path with identical results.
"""

from __future__ import annotations

import abc
import warnings
from typing import TYPE_CHECKING, Callable, Optional, Sequence

import numpy as np

from repro.registry import Registry

if TYPE_CHECKING:  # pragma: no cover
    from repro.platforms import PE
    from repro.runtime.task import Task

__all__ = [
    "Scheduler",
    "SchedulerError",
    "SCHEDULERS",
    "candidate_mask",
    "estimate_matrix",
    "free_vector",
    "greedy_earliest_finish",
    "register_scheduler",
    "make_scheduler",
    "available_schedulers",
]

EstimateFn = Callable[["Task", "PE"], float]


class SchedulerError(Exception):
    """Raised when no valid assignment exists (e.g. unsupported API)."""


class Scheduler(abc.ABC):
    """Base class for CEDR scheduling heuristics."""

    #: registry key and display name, e.g. "etf"
    name: str = "base"

    @abc.abstractmethod
    def schedule(
        self,
        ready: Sequence["Task"],
        pes: Sequence["PE"],
        now: float,
        estimate: EstimateFn,
    ) -> list[tuple["Task", "PE"]]:
        """Assign every ready task to a PE.

        Implementations must update ``pe.expected_free`` as they commit
        assignments so later decisions in the same round see the backlog,
        and must only ever pick PEs for which ``pe.supports(task.api)``.
        """

    @abc.abstractmethod
    def round_cost(self, n_ready: int, n_pes: int) -> float:
        """Runtime-core seconds one round over ``n_ready`` tasks costs."""

    @staticmethod
    def compatible(task: "Task", pes: Sequence["PE"]) -> list["PE"]:
        """PEs able to execute *task* right now; raises if none exist.

        Three filters compose, in order:

        * **support** - the (API, PE kind) matrix; no supporting PE at all
          is a platform-composition error;
        * **availability** - the live mask maintained by the fault
          subsystem (quarantined or dead PEs drop out); the daemon parks
          tasks with no live candidate before scheduling, so an
          all-unavailable result raising here indicates a runtime bug
          rather than a transient condition;
        * **retry bans** - PEs the task already failed on are avoided,
          *unless* that would leave no candidate (better a suspect PE than
          an unrunnable task).

        Fault-free runs have every PE available and no bans, so the result
        is exactly the support-matrix filter of old.
        """
        options = [pe for pe in pes if pe.supports(task.api)]
        if not options:
            raise SchedulerError(
                f"no PE supports API {task.api!r} (task {task.tid}); "
                "check the platform's accelerator composition"
            )
        live = [pe for pe in options if pe.available]
        if not live:
            raise SchedulerError(
                f"no live PE for API {task.api!r} (task {task.tid}); "
                "the daemon should have parked this task until a PE revives"
            )
        if task.banned_pes:
            unbanned = [pe for pe in live if pe.index not in task.banned_pes]
            if unbanned:
                return unbanned
        return live


def candidate_mask(
    ready: Sequence["Task"], pes: Sequence["PE"], estimate: EstimateFn
) -> np.ndarray:
    """(n, p) boolean candidate matrix with :meth:`Scheduler.compatible`
    semantics, built in one pass per round.

    Three filters compose exactly as in ``compatible`` - support matrix,
    fault-subsystem availability, retry bans with the better-a-suspect-PE
    fallback - and the same :class:`SchedulerError` cases are raised.  With
    a columnar estimate provider the support rows are one table gather;
    otherwise support vectors are memoized per API within the round, so the
    scalar fallback also stops paying a set rebuild per ready task.
    """
    n, p = len(ready), len(pes)
    support_rows = getattr(estimate, "support_rows", None)
    if support_rows is not None:
        cand = support_rows(ready)
    else:
        cand = np.empty((n, p), dtype=bool)
        by_api: dict[str, np.ndarray] = {}
        for i, task in enumerate(ready):
            row = by_api.get(task.api)
            if row is None:
                row = np.fromiter(
                    (pe.supports(task.api) for pe in pes), dtype=bool, count=p
                )
                by_api[task.api] = row
            cand[i] = row
    supported = cand.any(axis=1)
    if not supported.all():
        task = ready[int(np.argmin(supported))]
        raise SchedulerError(
            f"no PE supports API {task.api!r} (task {task.tid}); "
            "check the platform's accelerator composition"
        )
    live = np.fromiter((pe.available for pe in pes), dtype=bool, count=p)
    if not live.all():
        cand = cand & live
        alive = cand.any(axis=1)
        if not alive.all():
            task = ready[int(np.argmin(alive))]
            raise SchedulerError(
                f"no live PE for API {task.api!r} (task {task.tid}); "
                "the daemon should have parked this task until a PE revives"
            )
    banned_cols: Optional[dict] = None
    for i, task in enumerate(ready):
        if task.banned_pes:
            if banned_cols is None:
                banned_cols = {pe.index: j for j, pe in enumerate(pes)}
            row = cand[i].copy()
            for index in task.banned_pes:
                col = banned_cols.get(index)
                if col is not None:
                    row[col] = False
            if row.any():  # else: every candidate is banned - keep them all
                cand[i] = row
    return cand


def estimate_matrix(
    ready: Sequence["Task"],
    pes: Sequence["PE"],
    estimate: EstimateFn,
    mask: np.ndarray,
) -> np.ndarray:
    """(n, p) float64 estimates with ``+inf`` at every non-candidate cell.

    The columnar path gathers interned table rows; the fallback calls the
    scalar ``estimate`` exactly where the old per-task loops did (masked
    cells only), so both paths produce bit-identical matrices.
    """
    estimate_rows = getattr(estimate, "estimate_rows", None)
    if estimate_rows is not None:
        est = estimate_rows(ready)
        return np.where(mask, est, np.inf)
    est = np.full((len(ready), len(pes)), np.inf)
    for i, task in enumerate(ready):
        for j in np.flatnonzero(mask[i]):
            est[i, j] = estimate(task, pes[j])
    return est


def free_vector(pes: Sequence["PE"], now: float) -> np.ndarray:
    """(p,) vector of ``max(pe.expected_free, now)`` - round-start backlog."""
    free = np.fromiter(
        (pe.expected_free for pe in pes), dtype=np.float64, count=len(pes)
    )
    return np.maximum(free, now)


def greedy_earliest_finish(
    ready: Sequence["Task"],
    pes: Sequence["PE"],
    now: float,
    estimate: EstimateFn,
) -> list[tuple["Task", "PE"]]:
    """Greedy earliest-finish assignment in the given task order.

    The EFT heuristic, shared with HEFT_RT (which is exactly this after a
    rank sort).  The old per-task inner loop over candidate PEs is one
    vectorized add + argmin per row of the batched estimate matrix;
    excluded cells sit at ``+inf``, and argmin picks the first of equal
    minima exactly as the scalar ``<`` scan did.  Commits update
    ``pe.expected_free`` so later rows see the backlog.
    """
    if not ready:
        return []
    mask = candidate_mask(ready, pes, estimate)
    est = estimate_matrix(ready, pes, estimate, mask)
    free = free_vector(pes, now)
    assignments = []
    for i, task in enumerate(ready):
        finish = free + est[i]
        j = int(np.argmin(finish))
        best = float(finish[j])
        free[j] = best
        pe = pes[j]
        pe.expected_free = best
        assignments.append((task, pe))
    return assignments


#: the scheduler registry: heuristic classes keyed by lowercase name.
#: Third-party distributions plug in via the ``repro.schedulers``
#: entry-point group; in-tree and test code uses :func:`register_scheduler`.
SCHEDULERS: Registry[type[Scheduler]] = Registry(
    "scheduler", entry_point_group="repro.schedulers"
)


def register_scheduler(cls: type[Scheduler]) -> type[Scheduler]:
    """Class decorator adding a heuristic to the runtime's registry."""
    SCHEDULERS.register(cls.name, cls)
    return cls


def make_scheduler(name: str, **kwargs) -> Scheduler:
    """Deprecated: use ``SCHEDULERS.create(name, ...)``.

    Kept as a thin shim so pre-registry figure modules and user code keep
    working; the lookup (case-insensitive, unknown names raise a
    ``KeyError``-compatible error) is unchanged.
    """
    warnings.warn(
        "make_scheduler() is deprecated; use "
        "repro.sched.SCHEDULERS.create(name, ...)",
        DeprecationWarning,
        stacklevel=2,
    )
    return SCHEDULERS.create(name, **kwargs)


def available_schedulers() -> list[str]:
    """Names of all registered heuristics (sorted)."""
    return list(SCHEDULERS.names())
