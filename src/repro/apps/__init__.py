"""Real-life applications in reference/API/DAG forms.

The paper's evaluation uses Pulse Doppler, WiFi TX, and Lane Detection;
the wider CEDR benchmark suite also ships a WiFi receiver and Temporal
Interference Mitigation, provided here as well (RX stresses the
non-kernel/CPU side, TM is the GEMM workload that exercises the MMULT
accelerator).
"""

from .base import CedrApplication, Variant, chunk_slices, work_for_elems
from .lane_detection import LaneDetection
from .pulse_doppler import PulseDoppler
from .registry import APPS, AppEntry, available_apps, make_app, register_app
from .temporal_mitigation import TemporalMitigation, TMResult
from .wifi_rx import RxResult, WifiRx
from .wifi_tx import WifiTx

#: the applications the paper's figures use
PAPER_APPS = ("PD", "TX", "LD")

__all__ = [
    "APPS",
    "AppEntry",
    "register_app",
    "make_app",
    "available_apps",
    "CedrApplication",
    "Variant",
    "chunk_slices",
    "work_for_elems",
    "PulseDoppler",
    "WifiTx",
    "WifiRx",
    "RxResult",
    "LaneDetection",
    "TemporalMitigation",
    "TMResult",
    "PAPER_APPS",
]
