"""repro.scenario - declarative experiment specs over the plugin registries.

A scenario is one TOML/JSON document naming platform + workload +
scheduler + faults + admission + telemetry + seeds.  ``repro scenario
run spec.toml`` executes it through the exact same code paths as the
flag-driven commands (proven bit-identical by the ``scenario`` variant
of ``repro audit diff``), and its canonical form content-addresses into
the sweep cache alongside flag-driven cells.  See docs/INTERNALS.md,
"Plugin registries & scenario specs".
"""

from .runner import run_scenario
from .spec import (
    AppCount,
    ScenarioError,
    ScenarioSpec,
    ServeSection,
    dump_toml,
    load_scenario,
)

__all__ = [
    "AppCount",
    "ScenarioError",
    "ScenarioSpec",
    "ServeSection",
    "dump_toml",
    "load_scenario",
    "run_scenario",
]
