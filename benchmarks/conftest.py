"""Benchmark configuration: grid sizes and shared helpers.

Each figure benchmark regenerates one evaluation artifact of the paper and
prints its data series, then asserts the figure's *shape* properties (who
wins, where the crossovers/saturation fall).  The paper sweeps 29 injection
rates x 25 trials on real hardware; bench defaults use a reduced grid that
preserves every trend and runs in minutes.  Environment overrides:

* ``REPRO_BENCH_RATES``  - number of injection-rate points (default 6)
* ``REPRO_BENCH_TRIALS`` - trials per point (default 2)
* ``REPRO_BENCH_LD_BATCH`` - Lane Detection rows per task (default 64;
  1 = the paper's exact task granularity, much slower)
* ``REPRO_PERF_CHECK`` - set to 0 to skip throughput-vs-baseline.json
  assertions (for CI or hosts slower than the recording machine)
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.workload import paper_injection_rates

BASELINE_PATH = Path(__file__).with_name("baseline.json")


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


@pytest.fixture(scope="session")
def perf_baseline():
    """The recorded performance trajectory (see baseline.json)."""
    with open(BASELINE_PATH) as fh:
        return json.load(fh)


@pytest.fixture
def check_throughput(perf_baseline):
    """Assert a benchmark's event rate against the recorded baseline.

    ``check(name, benchmark, events)`` computes events per second from the
    benchmark's fastest round and requires it to beat the recorded *seed*
    rate by the entry's ``required_speedup`` - i.e. the optimization the
    baseline documents must not regress away.  No-op when pytest-benchmark
    is disabled (no timing data) or when ``REPRO_PERF_CHECK=0``.
    """

    def check(name: str, benchmark, events: int) -> None:
        if os.environ.get("REPRO_PERF_CHECK", "1") == "0":
            return
        meta = getattr(benchmark, "stats", None)
        stats = getattr(meta, "stats", None)
        if stats is None:  # --benchmark-disable: smoke-run only
            return
        rate = events / stats.min
        entry = perf_baseline[name]
        floor = entry["seed_events_per_sec"] * entry["required_speedup"]
        assert rate >= floor, (
            f"{name}: measured {rate:,.0f} events/s, below "
            f"{entry['required_speedup']:g}x the recorded seed rate "
            f"({entry['seed_events_per_sec']:,} events/s; see "
            f"benchmarks/baseline.json - re-record on a slower host or set "
            f"REPRO_PERF_CHECK=0)"
        )

    return check


@pytest.fixture(scope="session")
def bench_rates():
    return list(paper_injection_rates(n=_env_int("REPRO_BENCH_RATES", 6)))


@pytest.fixture(scope="session")
def bench_trials():
    return _env_int("REPRO_BENCH_TRIALS", 2)


@pytest.fixture(scope="session")
def ld_batch():
    return _env_int("REPRO_BENCH_LD_BATCH", 64)
