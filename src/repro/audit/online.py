"""Online schedule auditing: invariant checks on the dispatch hot path.

:class:`OnlineAuditor` hangs off a :class:`~repro.runtime.CedrRuntime`
built with ``RuntimeConfig(audit=True)`` (or ``repro run --audit``) and
checks every scheduling round and every task completion *as it happens*,
raising the first :class:`AuditViolation` with the offending task, PE, and
timestamps - the moment a scheduling bug corrupts a run, not three figures
later.  At shutdown :meth:`final_check` replays the full offline catalog
(:mod:`repro.audit.invariants`) over the finished run.

Cost discipline: the per-round check memoizes verified support cells.  A
round's batch draws from a handful of interned cost rows crossed with a
handful of PEs, so after the first probe of each ``(cost_row, pe)`` cell
against the cost table's support matrix, every later occurrence costs one
set-membership test; the memo is invalidated wholesale whenever the table
re-interns (its token moves).  The depth-128 audit-overhead benchmark pins
the total at <= 10% of an ETF round
(``benchmarks/test_audit_overhead.py``).  Per-completion checks are O(1)
set/array probes.  A runtime built without ``audit=True`` constructs no
auditor and takes a single ``is None`` branch per hook, keeping disabled
runs byte-identical to the pre-audit runtime.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from .invariants import EPS, AuditReport, AuditViolation, audit_runtime

if TYPE_CHECKING:  # pragma: no cover
    from repro.platforms import PE
    from repro.runtime.daemon import CedrRuntime
    from repro.runtime.task import Task

__all__ = ["OnlineAuditor"]


class OnlineAuditor:
    """Per-round and per-completion invariant checks for one runtime."""

    __slots__ = (
        "_runtime",
        "_table",
        "_completed",
        "_pe_last_finish",
        "_pe_names",
        "_n_pes",
        "_ok_cells",
        "_cells_token",
        "_last_round_t",
        "_finalized",
        "checks",
    )

    def __init__(self, runtime: "CedrRuntime") -> None:
        self._runtime = runtime
        self._table = runtime.cost_table
        #: tids already seen completing - the exactly-once ledger.
        self._completed: set[int] = set()
        pes = runtime.platform.pes
        #: per-PE last completion instant - the overlap ledger.
        self._pe_last_finish = [0.0] * len(pes)
        self._pe_names = [pe.name for pe in pes]
        self._n_pes = len(pes)
        #: ``cost_row * n_pes + pe.index`` cells proven supported under
        #: ``_cells_token`` - the support memo.
        self._ok_cells: set[int] = set()
        self._cells_token = -1
        self._last_round_t = 0.0
        self._finalized = False
        #: dispatch + completion checks performed (reported by ``--audit``).
        self.checks = 0

    # ------------------------------------------------------------------ #
    # hot-path hooks
    # ------------------------------------------------------------------ #

    def on_round(
        self,
        batch: Sequence["Task"],
        assignments: Sequence[tuple["Task", "PE"]],
        now: float,
    ) -> None:
        """Audit one scheduling round before its assignments are committed."""
        self.checks += 1
        if now < self._last_round_t - EPS:
            raise AuditViolation(
                "round-monotonic",
                f"scheduling round ran at {now}, before the previous round "
                f"at {self._last_round_t}",
                t=now,
            )
        self._last_round_t = now
        n = len(assignments)
        if n != len(batch):
            raise AuditViolation(
                "queue-accounting",
                f"scheduler returned {n} assignments for a ready batch of "
                f"{len(batch)} - tasks were dropped or invented",
                t=now,
            )
        if n == 0:
            return
        table = self._table
        token = table.token
        if token != self._cells_token:
            # the table re-interned: every memoized row id is stale
            self._ok_cells.clear()
            self._cells_token = token
        ok_cells = self._ok_cells
        n_pes = self._n_pes
        for task, pe in assignments:
            if task.cost_token != token:
                raise AuditViolation(
                    "cost-row-fresh",
                    f"task {task.name} reached dispatch with cost token "
                    f"{task.cost_token} (table token {token}) - its "
                    f"estimates came from another table",
                    tid=task.tid, t=now,
                )
            cell = task.cost_row * n_pes + pe.index
            if cell not in ok_cells:
                if not table.support_cells(
                    np.intp(task.cost_row), np.intp(pe.index)
                ):
                    raise AuditViolation(
                        "pe-support",
                        f"scheduler assigned {task.name} ({task.api}) to "
                        f"{pe.name} ({pe.kind.value}), which does not "
                        f"support it",
                        tid=task.tid, pe=pe.name, t=now,
                    )
                ok_cells.add(cell)
        if self._runtime.faults is not None:
            # quarantine honesty only matters once a fault model can pull
            # PEs from the live mask; fault-free runs skip the loop
            for task, pe in assignments:
                if not pe.available:
                    raise AuditViolation(
                        "pe-support",
                        f"scheduler assigned {task.name} to {pe.name} while "
                        f"it is {'dead' if pe.dead else 'quarantined'} "
                        f"(quarantine epoch {pe.quarantine_epoch})",
                        tid=task.tid, pe=pe.name, t=now,
                    )

    def on_complete(self, task: "Task", pe: "PE", now: float) -> None:
        """Audit one task completion as the worker records it."""
        self.checks += 1
        tid = task.tid
        if tid in self._completed:
            raise AuditViolation(
                "exactly-once",
                f"task {task.name} completed twice (second time on "
                f"{pe.name})",
                tid=tid, pe=pe.name, t=now,
            )
        self._completed.add(tid)
        last = self._pe_last_finish[pe.index]
        if task.t_start < last - EPS:
            raise AuditViolation(
                "pe-exclusive",
                f"task {task.name} started at {task.t_start} on {pe.name}, "
                f"overlapping the previous completion there at {last}",
                tid=tid, pe=pe.name, t=task.t_start,
            )
        self._pe_last_finish[pe.index] = now
        if (
            task.t_release < -EPS
            or task.t_scheduled < task.t_release - EPS
            or task.t_start < task.t_scheduled - EPS
            or now < task.t_start - EPS
        ):
            raise AuditViolation(
                "clock-monotonic",
                f"task {task.name} timestamps regress: release "
                f"{task.t_release} -> scheduled {task.t_scheduled} -> "
                f"start {task.t_start} -> finish {now}",
                tid=tid, pe=pe.name, t=now,
            )
        if not pe.supports(task.api):
            raise AuditViolation(
                "pe-support",
                f"task {task.name} ({task.api}) completed on {pe.name} "
                f"({pe.kind.value}), which does not support it",
                tid=tid, pe=pe.name, t=now,
            )

    # ------------------------------------------------------------------ #
    # shutdown
    # ------------------------------------------------------------------ #

    def final_check(self, runtime: "CedrRuntime") -> AuditReport:
        """Replay the offline catalog after a clean drain; raises on damage.

        Idempotent: :meth:`CedrRuntime.run` calls it automatically, and a
        caller doing so again (or reading the report) costs one pass at
        most.
        """
        if self._finalized:
            return audit_runtime(runtime)
        self._finalized = True
        counters = runtime.counters
        if counters.enabled and counters.tasks_completed != len(self._completed):
            raise AuditViolation(
                "task-conservation",
                f"online ledger saw {len(self._completed)} completions but "
                f"the counters report {counters.tasks_completed}",
            )
        report = audit_runtime(runtime)
        report.raise_if_failed()
        return report
