"""Recovery-policy tests: retry exhaustion, quarantine, shutdown drain."""

import numpy as np

from repro.apps import PulseDoppler, WifiTx
from repro.faults import FaultConfig, FaultKind, FaultSpec
from repro.metrics import RunResult
from repro.platforms import zcu102
from repro.runtime import CedrRuntime, RuntimeConfig


def build_runtime(config, scheduler="rr", seed=3, n_cpu=3, n_fft=1):
    platform = zcu102(n_cpu=n_cpu, n_fft=n_fft).build(seed=seed)
    runtime = CedrRuntime(
        platform,
        RuntimeConfig(scheduler=scheduler, execute_kernels=False, faults=config),
    )
    runtime.start()
    return runtime


def all_pe_specs(kind, at=0.0, n_cpu=3, n_fft=1):
    names = [f"cpu{i}" for i in range(n_cpu)] + [f"fft{i}" for i in range(n_fft)]
    return tuple(FaultSpec(at=at, pe=n, kind=kind) for n in names)


def submit_pd(runtime, mode="api", at=0.0, seed=3, batch=4):
    app = PulseDoppler(batch=batch).make_instance(mode, np.random.default_rng(seed))
    runtime.submit(app, at=at)
    return app


# -- retry exhaustion ----------------------------------------------------- #

def test_retry_exhaustion_fails_api_app():
    # zero retry budget + a forced transient on every PE: the first task to
    # complete is lost and its application must fail, unwinding the app
    # thread cleanly (the run terminates with the app finished-but-failed)
    cfg = FaultConfig(script=all_pe_specs(FaultKind.TRANSIENT), max_retries=0)
    runtime = build_runtime(cfg)
    app = submit_pd(runtime, mode="api")
    runtime.seal()
    runtime.run()
    assert app.finished and app.failed and not app.cancelled
    assert runtime.counters.tasks_lost == 1
    result = RunResult.from_runtime(runtime)
    assert result.n_failed == 1 and result.n_apps == 0
    assert result.goodput == 0.0


def test_retry_exhaustion_fails_dag_app():
    cfg = FaultConfig(script=all_pe_specs(FaultKind.TRANSIENT), max_retries=0)
    runtime = build_runtime(cfg)
    app = submit_pd(runtime, mode="dag")
    runtime.seal()
    runtime.run()
    assert app.finished and app.failed
    assert app.tasks_done < app.tasks_total
    assert RunResult.from_runtime(runtime).goodput == 0.0


def test_failed_app_does_not_poison_others():
    # one pending transient on cpu0: the early app runs alone and consumes
    # it (failing at zero retry budget) long before the late app arrives
    cfg = FaultConfig(
        script=(FaultSpec(at=0.0, pe="cpu0", kind=FaultKind.TRANSIENT),),
        max_retries=0,
    )
    runtime = build_runtime(cfg)
    victim = submit_pd(runtime, at=0.0, seed=3)
    survivor = submit_pd(runtime, at=0.05, seed=4)
    runtime.seal()
    runtime.run()
    assert victim.failed
    assert not survivor.failed and survivor.finished
    result = RunResult.from_runtime(runtime)
    assert result.n_apps == 1 and result.n_failed == 1
    assert result.goodput == 0.5


def test_goodput_counts_only_fault_failures():
    # cancelled apps are excluded from goodput entirely
    r = RunResult(
        n_apps=8, n_cancelled=2, exec_times=(), exec_times_by_app={},
        runtime_overhead_s=0.0, sched_overhead_s=0.0, sched_rounds=0,
        ready_depth_mean=0.0, ready_depth_max=0, makespan=1.0,
        tasks_completed=0, n_failed=2,
    )
    assert r.goodput == 0.8


# -- quarantine + parking ------------------------------------------------- #

def test_quarantine_parks_and_revives_on_single_pe_platform():
    # one CPU, forced transient: the only PE gets quarantined, the retried
    # task has nowhere to go and parks, then the revival timer brings the
    # PE back and the run completes
    cfg = FaultConfig(
        script=(FaultSpec(at=0.0, pe="cpu0", kind=FaultKind.TRANSIENT),),
        quarantine_s=2e-3,
    )
    runtime = build_runtime(cfg, n_cpu=1, n_fft=0)
    app = submit_pd(runtime)
    runtime.seal()
    runtime.run()
    assert app.finished and not app.failed
    c = runtime.counters
    assert c.pe_quarantines >= 1
    assert c.pe_revivals >= 1
    assert c.retries >= 1


def test_watchdog_false_positive_does_not_quarantine():
    # a pure hang is recovered by the watchdog; watchdog suspicion alone
    # must not shrink the live mask (only worker-confirmed faults do)
    cfg = FaultConfig(
        script=(FaultSpec(at=0.0, pe="cpu0", kind=FaultKind.HANG),),
        hang_s=0.5,
    )
    runtime = build_runtime(cfg)
    app = submit_pd(runtime)
    runtime.seal()
    runtime.run()
    assert app.finished and not app.failed
    c = runtime.counters
    if c.failures_by_kind.get("watchdog"):
        assert c.pe_quarantines == c.failures_by_kind.get("hang", 0)


# -- shutdown drain (regression: these hung before the drain fixes) ------- #

def test_sealed_runtime_drains_retried_final_task():
    # the app's very first/last task fails wherever it first runs; the
    # sealed runtime must keep running until the retry completes instead
    # of deadlocking at shutdown
    cfg = FaultConfig(script=all_pe_specs(FaultKind.TRANSIENT), max_retries=8)
    runtime = build_runtime(cfg)
    app = submit_pd(runtime, batch=2)
    runtime.seal()
    runtime.run()
    assert app.finished and not app.failed
    assert runtime.counters.retries >= 1


def test_sealed_runtime_drains_stale_hang_dispatch():
    # a hang stolen by the watchdog leaves a stale dispatch whose silent
    # discard used to be the last in-flight work: the daemon must still
    # wake up and shut down
    cfg = FaultConfig(script=all_pe_specs(FaultKind.HANG), hang_s=0.5,
                      max_retries=8)
    runtime = build_runtime(cfg)
    app = submit_pd(runtime)
    runtime.seal()
    runtime.run()
    assert app.finished and not app.failed


def test_stochastic_run_terminates_and_recovers():
    # rate-driven faults with every recoverable kind active: the run must
    # terminate (the injector disarms at shutdown) with sane accounting
    cfg = FaultConfig(rate=30.0, seed=11)
    runtime = build_runtime(cfg, scheduler="eft")
    rng = np.random.default_rng(3)
    for i in range(3):
        runtime.submit(WifiTx(batch=5).make_instance("api", rng), at=i * 1e-3)
    runtime.seal()
    runtime.run()
    c = runtime.counters
    # dropped tasks of already-failed apps record a failure but neither a
    # retry nor a loss, so the identity is an inequality
    assert c.retries + c.tasks_lost <= c.task_failures
    finished = [a for a in runtime.apps.values() if a.finished]
    assert len(finished) == 3
    result = RunResult.from_runtime(runtime)
    assert result.n_apps + result.n_failed == 3
