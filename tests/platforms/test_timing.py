"""Timing-model tests: cost monotonicity, scaling, and error paths."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.platforms import PE, PEDescriptor, PEKind, jetson_timing, zcu102_timing

pow2 = st.sampled_from([64, 128, 256, 512, 1024])


def make_pe(kind, name="pe"):
    return PE(index=0, desc=PEDescriptor(name=name, kind=kind, clock_ghz=1.0))


def test_cpu_fft_scales_with_n_log_n():
    t = zcu102_timing()
    c256 = t.cpu_seconds("fft", {"n": 256})
    c1024 = t.cpu_seconds("fft", {"n": 1024})
    assert c1024 / c256 == pytest.approx((1024 * 10) / (256 * 8))


@given(n=pow2, batch=st.integers(1, 64))
@settings(max_examples=30, deadline=None)
def test_batch_scales_linearly(n, batch):
    t = zcu102_timing()
    single = t.cpu_seconds("fft", {"n": n, "batch": 1})
    batched = t.cpu_seconds("fft", {"n": n, "batch": batch})
    assert batched == pytest.approx(single * batch)


def test_faster_clock_is_cheaper():
    z, j = zcu102_timing(), jetson_timing()
    params = {"n": 1024}
    assert j.cpu_seconds("fft", params) < z.cpu_seconds("fft", params)
    assert j.cpu_seconds("fft", params) == pytest.approx(
        z.cpu_seconds("fft", params) * 1.2 / 2.3
    )


def test_cpu_op_uses_work_param():
    t = zcu102_timing()
    assert t.cpu_seconds("cpu_op", {"work_1ghz": 1.2e-3}) == pytest.approx(1e-3)


def test_unknown_api_raises():
    t = zcu102_timing()
    with pytest.raises(KeyError):
        t.cpu_seconds("dct", {"n": 8})
    with pytest.raises(KeyError):
        t.accel_parts("dct", {"n": 8}, PEKind.FFT)


def test_fft_ip_point_limit():
    t = zcu102_timing()
    t.accel_parts("fft", {"n": 2048}, PEKind.FFT)
    with pytest.raises(ValueError, match="2048-point"):
        t.accel_parts("fft", {"n": 4096}, PEKind.FFT)


def test_accel_parts_all_positive():
    t = zcu102_timing()
    parts = t.accel_parts("fft", {"n": 1024, "batch": 4}, PEKind.FFT)
    assert parts.setup > 0 and parts.busy > 0 and parts.teardown > 0
    assert parts.total == pytest.approx(parts.setup + parts.busy + parts.teardown)


def test_fabric_parity_calibration():
    """DESIGN.md: the ZCU102 FFT IP is calibrated near CPU parity for the
    paper's sizes, so accelerators add threads, not free capacity."""
    t = zcu102_timing()
    for n in (256, 1024):
        cpu = t.cpu_seconds("fft", {"n": n})
        accel = t.accel_parts("fft", {"n": n}, PEKind.FFT).total
        assert 0.7 <= accel / cpu <= 1.6, f"parity broken at n={n}: {accel/cpu:.2f}"


def test_jetson_gpu_is_a_genuine_win():
    """The Jetson figures need a genuinely fast GPU path."""
    t = jetson_timing()
    cpu = t.cpu_seconds("fft", {"n": 1024, "batch": 8})
    gpu = t.accel_parts("fft", {"n": 1024, "batch": 8}, PEKind.GPU).total
    assert gpu < cpu / 3


def test_estimate_matches_paths():
    t = zcu102_timing()
    cpu_pe = make_pe(PEKind.CPU, "cpu0")
    fft_pe = make_pe(PEKind.FFT, "fft0")
    params = {"n": 512, "batch": 2}
    assert t.estimate("fft", params, cpu_pe) == pytest.approx(t.cpu_seconds("fft", params))
    assert t.estimate("fft", params, fft_pe) == pytest.approx(
        t.accel_parts("fft", params, PEKind.FFT).total
    )


def test_mmult_and_gpu_zip_models():
    z = zcu102_timing()
    parts = z.accel_parts("gemm", {"m": 64, "k": 64, "n": 64}, PEKind.MMULT)
    assert parts.total > 0
    j = jetson_timing()
    zp = j.accel_parts("zip", {"n": 4096}, PEKind.GPU)
    assert zp.setup > zp.busy  # memcpy/launch dominated


def test_noise_sampling():
    t = zcu102_timing()
    assert t.sample_factor(None) == 1.0
    noisy = t.with_noise(0.1)
    rng = np.random.default_rng(0)
    draws = [noisy.sample_factor(rng) for _ in range(200)]
    assert all(d > 0 for d in draws)
    assert 0.9 < float(np.median(draws)) < 1.1
    assert len(set(draws)) > 100  # actually random


def test_conv2d_cost_model():
    t = zcu102_timing()
    small = t.cpu_seconds("conv2d", {"h": 10, "w": 10, "kh": 3, "kw": 3})
    big = t.cpu_seconds("conv2d", {"h": 20, "w": 10, "kh": 3, "kw": 3})
    assert big == pytest.approx(2 * small)
