"""Task descriptor and completion-handle tests."""

import pytest

from repro.runtime.task import CompletionHandle, Task, TaskState
from repro.simcore import Compute, Engine


def test_task_defaults():
    t = Task(api="fft", params={"n": 64}, app_id=1)
    assert t.state is TaskState.CREATED
    assert t.n_deps == 0
    assert t.successors == []


def test_task_ids_unique():
    a = Task(api="fft", params={}, app_id=0)
    b = Task(api="fft", params={}, app_id=0)
    assert a.tid != b.tid
    assert a != b
    assert len({a, b}) == 2


def test_add_successor_bumps_deps():
    a = Task(api="fft", params={}, app_id=0)
    b = Task(api="zip", params={}, app_id=0)
    a.add_successor(b)
    assert b.n_deps == 1
    assert a.successors == [b]


def test_timing_properties():
    t = Task(api="fft", params={}, app_id=0)
    t.t_release, t.t_scheduled, t.t_start, t.t_finish = 1.0, 2.0, 3.0, 5.0
    assert t.queue_wait == pytest.approx(1.0)
    assert t.service_time == pytest.approx(2.0)


def test_completion_handle_fig4_protocol():
    """App thread sleeps in wait(); worker signals via complete()."""
    eng = Engine(cores=2)
    handle = CompletionHandle(eng, "t")
    events = []

    def app_thread():
        value = yield from handle.wait()
        events.append(("woke", eng.now, value))

    def worker_thread():
        yield Compute(0.3)
        yield from handle.complete("result!")

    eng.spawn(app_thread(), "app")
    eng.spawn(worker_thread(), "worker")
    eng.run()
    assert events == [("woke", pytest.approx(0.3), "result!")]


def test_completion_wait_after_complete_is_immediate():
    eng = Engine(cores=1)
    handle = CompletionHandle(eng, "t")

    def worker():
        yield from handle.complete(42)

    def late_waiter():
        yield Compute(0.5)
        value = yield from handle.wait()
        return value

    eng.spawn(worker(), "w")
    late = eng.spawn(late_waiter(), "late")
    eng.run()
    assert late.result == 42
    assert late.finished_at == pytest.approx(0.5)  # no extra blocking


def test_completion_wait_is_idempotent():
    eng = Engine(cores=1)
    handle = CompletionHandle(eng, "t")

    def worker():
        yield from handle.complete("x")

    def waiter():
        a = yield from handle.wait()
        b = yield from handle.wait()
        return (a, b)

    eng.spawn(worker(), "w")
    t = eng.spawn(waiter(), "waiter")
    eng.run()
    assert t.result == ("x", "x")


def test_multiple_waiters_all_wake():
    eng = Engine(cores=4)
    handle = CompletionHandle(eng, "t")
    woke = []

    def waiter(i):
        yield from handle.wait()
        woke.append(i)

    def worker():
        yield Compute(0.1)
        yield from handle.complete(None)

    for i in range(3):
        eng.spawn(waiter(i), f"w{i}")
    eng.spawn(worker(), "worker")
    eng.run()
    assert sorted(woke) == [0, 1, 2]
