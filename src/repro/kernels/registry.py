"""Functional implementation registry: (API name, PE kind) -> callable.

This is the kernel-level truth table the libCEDR *module* layer
(:mod:`repro.core.modules`) draws from.  Each entry maps an abstract libCEDR
API onto the concrete function that PE kind would run: the portable
from-scratch implementations for CPUs, and the ``numpy.fft``-backed
"IP core"/"CUDA" implementations for accelerators.  All implementations of
one API are functionally equivalent (asserted by tests to 1e-8); they differ
only in provenance and in the cost the timing model charges - exactly the
property the paper requires so the scheduler may remap tasks freely.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.platforms.pe import PEKind

from . import fft as _fft_mod
from .conv2d import conv2d_spatial
from .mmult import gemm
from .zip_ import zip_product

__all__ = ["KERNEL_IMPLS", "implementation_for", "supported_apis", "apis_for_kind"]


def _gemm_pair(args: tuple[np.ndarray, np.ndarray]) -> np.ndarray:
    a, b = args
    return gemm(a, b)


def _zip_pair(args: tuple[np.ndarray, np.ndarray]) -> np.ndarray:
    a, b = args
    return zip_product(a, b)


#: (api, PE kind) -> unary callable. Every callable takes the task payload
#: (an ndarray, or a tuple of ndarrays for binary APIs) and returns the
#: result array.
KERNEL_IMPLS: dict[tuple[str, PEKind], Callable] = {
    # FFT family -------------------------------------------------------- #
    ("fft", PEKind.CPU): _fft_mod.fft,
    ("fft", PEKind.FFT): _fft_mod.fft_accel,
    ("fft", PEKind.GPU): _fft_mod.fft_accel,
    ("ifft", PEKind.CPU): _fft_mod.ifft,
    ("ifft", PEKind.FFT): _fft_mod.ifft_accel,
    ("ifft", PEKind.GPU): _fft_mod.ifft_accel,
    # ZIP ---------------------------------------------------------------- #
    ("zip", PEKind.CPU): _zip_pair,
    ("zip", PEKind.GPU): _zip_pair,
    # GEMM ---------------------------------------------------------------- #
    ("gemm", PEKind.CPU): _gemm_pair,
    ("gemm", PEKind.MMULT): _gemm_pair,
    # direct 2-D convolution (CPU-only; the apps' FFT-domain convolutions
    # decompose into fft/zip/ifft instead, per the paper's LD design)
    ("conv2d", PEKind.CPU): lambda args: conv2d_spatial(args[0], args[1]),
}


def implementation_for(api: str, kind: PEKind) -> Callable:
    """The concrete function PE kind *kind* runs for *api*.

    Raises ``KeyError`` with a helpful message when no implementation is
    registered - the runtime treats that as "this PE does not support the
    API" during its startup mapping pass.
    """
    try:
        return KERNEL_IMPLS[(api, kind)]
    except KeyError:
        raise KeyError(f"no {kind.value} implementation registered for API {api!r}") from None


def supported_apis() -> frozenset[str]:
    """All API names with at least one registered implementation."""
    return frozenset(api for api, _ in KERNEL_IMPLS)


def apis_for_kind(kind: PEKind) -> frozenset[str]:
    """APIs this PE kind can execute functionally."""
    return frozenset(api for api, k in KERNEL_IMPLS if k is kind)
