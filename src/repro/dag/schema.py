"""JSON DAG schema and validation for DAG-based CEDR applications.

Baseline CEDR consumes a pair of artifacts per application: a shared-object
binary holding the node functions and a JSON file capturing "temporal
dependencies between nodes and high level control flow".  Our analogue is a
JSON-compatible ``spec`` dict (everything below) plus a ``bindings`` dict
mapping ``cpu_op`` node names to Python callables - the stand-in for the
shared object's symbols.

Spec format::

    {
      "name": "pulse_doppler",
      "nodes": {
        "<node>": {
          "api": "fft" | "ifft" | "zip" | "gemm" | "cpu_op",
          "params": {...},          # timing-model size parameters
          "inputs": ["key", ...],   # state-dict keys read (kernel nodes)
          "output": "key",          # state-dict key written (kernel nodes)
          "after": ["<node>", ...]  # predecessor node names
        }, ...
      }
    }

``cpu_op`` nodes omit inputs/output and instead take their callable from
``bindings``; their ``params`` must carry ``work_1ghz`` for the timing
model.  Validation rejects unknown APIs, dangling edges, duplicate outputs
racing on one key, and cycles (the format is a DAG by construction - the
very limitation Fig. 2 of the paper is about).
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.platforms.pe import CPU_ONLY_API
from repro.kernels.registry import supported_apis

__all__ = ["DagValidationError", "validate_spec", "KNOWN_APIS"]

#: APIs a DAG node may carry: every kernel API plus the cpu_op escape hatch.
KNOWN_APIS = frozenset(supported_apis()) | {CPU_ONLY_API}


class DagValidationError(ValueError):
    """Raised when a DAG spec violates the schema."""


def validate_spec(spec: Mapping[str, Any], bindings: Mapping[str, Callable] | None = None) -> None:
    """Validate *spec* (and cpu_op *bindings* when provided); raise on error."""
    if not isinstance(spec, Mapping):
        raise DagValidationError(f"spec must be a mapping, got {type(spec).__name__}")
    name = spec.get("name")
    if not isinstance(name, str) or not name:
        raise DagValidationError("spec needs a non-empty 'name'")
    nodes = spec.get("nodes")
    if not isinstance(nodes, Mapping) or not nodes:
        raise DagValidationError(f"spec {name!r} needs a non-empty 'nodes' mapping")

    for node_name, node in nodes.items():
        ctx = f"node {node_name!r} of {name!r}"
        if not isinstance(node, Mapping):
            raise DagValidationError(f"{ctx} must be a mapping")
        api = node.get("api")
        if api not in KNOWN_APIS:
            raise DagValidationError(f"{ctx} has unknown api {api!r}; known: {sorted(KNOWN_APIS)}")
        params = node.get("params", {})
        if not isinstance(params, Mapping):
            raise DagValidationError(f"{ctx} params must be a mapping")
        for pred in node.get("after", []):
            if pred not in nodes:
                raise DagValidationError(f"{ctx} depends on unknown node {pred!r}")
            if pred == node_name:
                raise DagValidationError(f"{ctx} depends on itself")
        if api == CPU_ONLY_API:
            if "work_1ghz" not in params:
                raise DagValidationError(f"{ctx} (cpu_op) needs params['work_1ghz']")
            if bindings is not None and node_name not in bindings:
                raise DagValidationError(f"{ctx} (cpu_op) has no binding callable")
        else:
            inputs = node.get("inputs")
            if not inputs or not all(isinstance(k, str) for k in inputs):
                raise DagValidationError(f"{ctx} (kernel) needs non-empty string 'inputs'")
            if not isinstance(node.get("output"), str):
                raise DagValidationError(f"{ctx} (kernel) needs a string 'output'")

    _check_output_races(name, nodes)
    _check_acyclic(name, nodes)


def _check_output_races(name: str, nodes: Mapping[str, Any]) -> None:
    writers: dict[str, str] = {}
    for node_name, node in nodes.items():
        out = node.get("output")
        if out is None:
            continue
        if out in writers:
            raise DagValidationError(
                f"nodes {writers[out]!r} and {node_name!r} of {name!r} both write "
                f"state key {out!r}"
            )
        writers[out] = node_name


def _check_acyclic(name: str, nodes: Mapping[str, Any]) -> None:
    """Kahn's algorithm; DAG specs must be cycle-free by definition."""
    indeg = {n: len(set(node.get("after", []))) for n, node in nodes.items()}
    succs: dict[str, list[str]] = {n: [] for n in nodes}
    for n, node in nodes.items():
        for pred in set(node.get("after", [])):
            succs[pred].append(n)
    frontier = [n for n, d in indeg.items() if d == 0]
    seen = 0
    while frontier:
        n = frontier.pop()
        seen += 1
        for s in succs[n]:
            indeg[s] -= 1
            if indeg[s] == 0:
                frontier.append(s)
    if seen != len(nodes):
        cyclic = sorted(n for n, d in indeg.items() if d > 0)
        raise DagValidationError(f"spec {name!r} contains a cycle involving {cyclic}")
