"""Minimum Execution Time: CEDR's simplest heterogeneity-aware heuristic.

MET maps each task to the PE *type* with the smallest execution estimate,
ignoring queue state entirely (Braun et al.'s classic baseline; part of the
scheduler repertoire of the CEDR ecosystem's HEFT_RT paper [12]).  Ties and
same-type replicas are broken round-robin so, e.g., eight FFT accelerators
all receive work.  Its pathology - piling every task of one API onto the
"fastest" PE class regardless of backlog - makes it a useful contrast
series for the Fig. 10 ablations.
"""

from __future__ import annotations

from typing import Sequence

from .base import EstimateFn, Scheduler, register_scheduler

__all__ = ["MinimumExecutionTime"]


@register_scheduler
class MinimumExecutionTime(Scheduler):
    """O(PEs) per task; queue-state-blind."""

    name = "met"

    def __init__(self, cost_per_eval_us: float = 0.12) -> None:
        self.cost_per_eval_us = cost_per_eval_us
        self._cursor: dict[float, int] = {}

    def schedule(self, ready, pes: Sequence, now: float, estimate: EstimateFn):
        assignments = []
        for task in ready:
            candidates = self.compatible(task, pes)
            best = min(estimate(task, pe) for pe in candidates)
            fastest = [pe for pe in candidates if estimate(task, pe) <= best * (1 + 1e-12)]
            cursor = self._cursor.get(best, 0)
            pe = fastest[cursor % len(fastest)]
            self._cursor[best] = cursor + 1
            assignments.append((task, pe))
            pe.expected_free = max(pe.expected_free, now) + estimate(task, pe)
        return assignments

    def round_cost(self, n_ready: int, n_pes: int) -> float:
        return self.cost_per_eval_us * 1e-6 * n_ready * n_pes
