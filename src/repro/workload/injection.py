"""Injection-rate machinery: frames, Mbps, arrival schedules.

Paper Section III: "The amount of data processed by an application is
considered a frame, measured in Megabits (Mb).  Injection rate is defined
as the rate at which frame instances are generated per second and measured
in Mbps.  We use 29 injection rates between 10 and 2000 Mbps, where each
injection rate defines a periodic rate of job along with its associated
input data arrival for the given workload."

So each application stream is periodic with period ``frame_mb / rate``;
instance ``j`` of an application arrives at ``j * period``.

The arrival *processes* themselves live in the arrival-generator registry
(:mod:`repro.serve.arrival`) - one code path shared with the open-stream
service mode.  :func:`periodic_arrivals` / :func:`poisson_arrivals` are
kept as the closed-batch convenience API: they translate (frame, Mbps)
into an :class:`~repro.serve.arrival.ArrivalSpec` and take the first
``count`` instants of the stream, bit-identical to the vectorized
schedules they used to compute inline (pinned by the workload tests).
"""

from __future__ import annotations

from itertools import islice

import numpy as np

from repro.serve.arrival import ArrivalSpec, make_arrival_stream

__all__ = [
    "paper_injection_rates",
    "reduced_injection_rates",
    "periodic_arrivals",
    "poisson_arrivals",
    "stream_spec",
]


def paper_injection_rates(
    n: int = 29, lo: float = 10.0, hi: float = 2000.0
) -> np.ndarray:
    """The paper's 29-point sweep from 10 to 2000 Mbps.

    Geometric spacing: the paper's figures use a log-like x axis where the
    interesting transition (saturation near 100-500 Mbps) sits mid-sweep.
    """
    if n < 2:
        raise ValueError("need at least two rates")
    if not 0 < lo < hi:
        raise ValueError(f"bad rate range [{lo}, {hi}]")
    return np.round(np.geomspace(lo, hi, n), 1)


def reduced_injection_rates(n: int = 8) -> np.ndarray:
    """Bench-default reduced grid over the same 10-2000 Mbps span."""
    return paper_injection_rates(n=n)


def stream_spec(
    kind: str,
    frame_mb: float,
    rate_mbps: float,
    extra: tuple[tuple[str, float], ...] = (),
) -> ArrivalSpec:
    """The :class:`ArrivalSpec` of one application stream at one Mbps rate.

    The paper's unit conversion lives here, once: a stream injecting
    ``rate_mbps`` with ``frame_mb`` per instance has mean inter-arrival
    ``frame_mb / rate_mbps`` seconds.  The quotient is passed through as
    the ``period`` parameter exactly (never re-derived from a rate), so
    registry-routed schedules stay bit-identical to the historical inline
    ones.  ``extra`` forwards process-specific parameters (burst/idle
    lengths, envelope cycle, ...) verbatim.
    """
    if frame_mb <= 0:
        raise ValueError(f"frame size must be positive, got {frame_mb}")
    if rate_mbps <= 0:
        raise ValueError(f"injection rate must be positive, got {rate_mbps}")
    period = frame_mb / rate_mbps
    return ArrivalSpec(kind, (("period", period), *extra))


def _take(spec: ArrivalSpec, count: int, rng: np.random.Generator) -> np.ndarray:
    if count < 0:
        raise ValueError(f"negative instance count: {count}")
    stream = make_arrival_stream(spec, rng)
    return np.asarray(list(islice(stream, count)), dtype=np.float64)


def periodic_arrivals(frame_mb: float, rate_mbps: float, count: int) -> np.ndarray:
    """Arrival times of ``count`` periodic instances of one application.

    The first instance arrives at t=0; subsequent ones every
    ``frame_mb / rate_mbps`` seconds.  Routed through the ``periodic``
    registry generator; bit-identical to ``np.arange(count) * period``.
    """
    spec = stream_spec("periodic", frame_mb, rate_mbps)
    return _take(spec, count, np.random.default_rng(0))  # rng unused


def poisson_arrivals(
    frame_mb: float,
    rate_mbps: float,
    count: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Arrival times of ``count`` Poisson-process instances at the same
    *mean* rate as :func:`periodic_arrivals`.

    CEDR supports arbitrary workload-injection traces beyond the paper's
    periodic streams; Poisson arrivals are the standard bursty alternative
    and feed the arrival-process ablations.  The first instance arrives
    after an exponential gap (not pinned to t=0), so the mean inter-arrival
    matches the periodic stream's ``frame_mb / rate_mbps``.  Routed
    through the ``poisson`` registry generator, whose sequential scalar
    gap draws are bit-identical to the historical vectorized
    ``rng.exponential(mean, size=count)`` + ``cumsum`` schedule.
    """
    spec = stream_spec("poisson", frame_mb, rate_mbps)
    return _take(spec, count, rng)
