"""Pulse-Doppler radar kernels.

The paper's Pulse Doppler application "calculates velocity of an object, by
measuring distance of the object using 256-point FFTs, and measuring the
frequency shift between transmitted and emitted signals".  The kernels here
implement that classical processing chain:

1. transmit a linear-FM chirp (:func:`lfm_chirp`);
2. receive P echo pulses delayed by the round trip and phase-rotated by the
   Doppler shift (:func:`synthesize_returns` - the stand-in for the RF
   front-end we obviously do not have);
3. pulse compression per pulse: FFT -> conjugate-spectrum ZIP -> IFFT
   (:func:`pulse_compress`);
4. Doppler processing: an FFT across the pulse (slow-time) axis per range
   bin (:func:`doppler_process`);
5. peak extraction to range/velocity (:func:`detect_target`).

With the paper's N=256 fast-time samples and P=128 pulses, one frame issues
128 forward + 128 inverse fast-time FFTs plus 256 slow-time FFTs plus the
reference-spectrum FFT: 513 FFT-class tasks, matching the paper's
"number of FFTs scaling to 512" for PD.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .fft import fft as _fft
from .fft import ifft as _ifft
from .zip_ import zip_conj_product

__all__ = [
    "PDGeometry",
    "lfm_chirp",
    "synthesize_returns",
    "pulse_compress",
    "doppler_process",
    "detect_target",
    "cfar_detect",
    "pd_task_counts",
]

C_LIGHT = 3.0e8


@dataclass(frozen=True)
class PDGeometry:
    """Waveform and sampling parameters of one Pulse Doppler frame."""

    n_fast: int = 256          # fast-time samples per pulse (256-pt FFTs)
    n_pulses: int = 128        # slow-time pulses per frame
    fs: float = 10.0e6         # complex sample rate, Hz
    prf: float = 10.0e3        # pulse repetition frequency, Hz
    fc: float = 1.0e9          # carrier, Hz
    chirp_fraction: float = 0.25  # chirp occupies this fraction of the pulse

    @property
    def n_chirp(self) -> int:
        return max(8, int(self.n_fast * self.chirp_fraction))

    @property
    def range_resolution(self) -> float:
        return C_LIGHT / (2.0 * self.fs)

    @property
    def velocity_resolution(self) -> float:
        wavelength = C_LIGHT / self.fc
        return wavelength * self.prf / (2.0 * self.n_pulses)


def lfm_chirp(n: int, bandwidth_fraction: float = 0.8) -> np.ndarray:
    """Unit-amplitude linear-FM chirp sweeping ±bandwidth_fraction/2 of fs."""
    if n < 2:
        raise ValueError(f"chirp needs >= 2 samples, got {n}")
    t = np.arange(n) / n
    k = bandwidth_fraction * n  # normalized sweep rate
    return np.exp(1j * np.pi * k * (t - 0.5) ** 2)


def synthesize_returns(
    geom: PDGeometry,
    target_range_bin: int,
    target_velocity: float,
    snr_db: float,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Simulate the received echo matrix for one point target.

    Returns ``(pulses, reference)`` where ``pulses`` is (n_pulses, n_fast)
    complex and ``reference`` is the transmitted chirp padded to n_fast.
    The echo of pulse p is the chirp delayed by ``target_range_bin`` samples
    with a per-pulse Doppler phase ``exp(j 2π f_d p / prf)`` plus complex
    white noise - the standard narrowband point-target model.
    """
    if not 0 <= target_range_bin < geom.n_fast - geom.n_chirp:
        raise ValueError(
            f"range bin {target_range_bin} outside unambiguous window "
            f"[0, {geom.n_fast - geom.n_chirp})"
        )
    chirp = lfm_chirp(geom.n_chirp)
    reference = np.zeros(geom.n_fast, dtype=np.complex128)
    reference[: geom.n_chirp] = chirp

    wavelength = C_LIGHT / geom.fc
    doppler_hz = 2.0 * target_velocity / wavelength
    p = np.arange(geom.n_pulses)
    doppler_phase = np.exp(2j * np.pi * doppler_hz * p / geom.prf)

    echo = np.zeros((geom.n_pulses, geom.n_fast), dtype=np.complex128)
    echo[:, target_range_bin : target_range_bin + geom.n_chirp] = chirp[None, :]
    echo *= doppler_phase[:, None]

    noise_power = 10.0 ** (-snr_db / 10.0)
    noise = rng.normal(0.0, np.sqrt(noise_power / 2.0), echo.shape) + 1j * rng.normal(
        0.0, np.sqrt(noise_power / 2.0), echo.shape
    )
    return echo + noise, reference


def pulse_compress(
    pulses: np.ndarray,
    reference: np.ndarray,
    fft_1d=_fft,
    ifft_1d=_ifft,
) -> np.ndarray:
    """Matched-filter each pulse in the frequency domain.

    ``fft_1d``/``ifft_1d`` are injectable so CEDR apps can issue each
    transform as a schedulable task; the default closes over the from-
    scratch CPU kernels.
    """
    pulses = np.asarray(pulses, dtype=np.complex128)
    reference = np.asarray(reference, dtype=np.complex128)
    if pulses.ndim != 2 or pulses.shape[1] != reference.shape[0]:
        raise ValueError(
            f"pulse matrix {pulses.shape} incompatible with reference {reference.shape}"
        )
    ref_spec = fft_1d(reference)
    spec = fft_1d(pulses)
    filtered = zip_conj_product(spec, np.broadcast_to(ref_spec, spec.shape))
    return ifft_1d(filtered)


def doppler_process(compressed: np.ndarray, fft_1d=_fft) -> np.ndarray:
    """Slow-time FFT per range bin -> range-Doppler map (n_pulses, n_fast)."""
    compressed = np.asarray(compressed, dtype=np.complex128)
    if compressed.ndim != 2:
        raise ValueError(f"expected (pulses, range) matrix, got {compressed.shape}")
    return fft_1d(compressed.T).T  # transform along the pulse axis


@dataclass(frozen=True)
class Detection:
    """A detected target in physical units."""

    range_bin: int
    doppler_bin: int
    range_m: float
    velocity_ms: float
    snr_estimate_db: float


def detect_target(rd_map: np.ndarray, geom: PDGeometry) -> Detection:
    """Pick the magnitude peak of the range-Doppler map and convert units."""
    power = np.abs(rd_map) ** 2
    doppler_bin, range_bin = np.unravel_index(int(np.argmax(power)), power.shape)
    # FFT bins above n_pulses/2 are negative Doppler frequencies.
    signed_bin = doppler_bin if doppler_bin < geom.n_pulses / 2 else doppler_bin - geom.n_pulses
    doppler_hz = signed_bin * geom.prf / geom.n_pulses
    wavelength = C_LIGHT / geom.fc
    velocity = doppler_hz * wavelength / 2.0
    peak = power[doppler_bin, range_bin]
    noise_floor = np.median(power) + 1e-30
    return Detection(
        range_bin=int(range_bin),
        doppler_bin=int(doppler_bin),
        range_m=range_bin * geom.range_resolution,
        velocity_ms=float(velocity),
        snr_estimate_db=float(10.0 * np.log10(peak / noise_floor)),
    )


def cfar_detect(
    rd_map: np.ndarray,
    geom: PDGeometry,
    guard: int = 2,
    train: int = 6,
    pfa: float = 1e-4,
    max_detections: int = 16,
) -> list[Detection]:
    """2-D cell-averaging CFAR over the range-Doppler map.

    The production alternative to :func:`detect_target`'s global argmax: a
    cell is declared a detection when its power exceeds the scaled average
    of its training ring (``train`` cells per side beyond ``guard`` cells,
    in both range and Doppler, with circular wrap - both axes are FFT
    outputs).  The threshold factor is the standard CA-CFAR value
    ``N (Pfa^(-1/N) - 1)`` for ``N`` training cells.  Detections are
    deduplicated to local maxima and returned strongest-first.

    The training-ring means are computed with a separable box-sum trick
    (cumulative sums along each circular axis), so the whole map is
    processed with a handful of vectorized passes - no per-cell loops.
    """
    power = np.abs(np.asarray(rd_map)) ** 2
    if power.ndim != 2:
        raise ValueError(f"expected a 2-D range-Doppler map, got {power.shape}")
    if guard < 0 or train < 1:
        raise ValueError(f"bad CFAR window: guard={guard}, train={train}")
    if not 0.0 < pfa < 1.0:
        raise ValueError(f"Pfa must be in (0, 1), got {pfa}")
    half_outer = guard + train
    if 2 * half_outer + 1 > min(power.shape):
        raise ValueError(
            f"CFAR window {2 * half_outer + 1} exceeds map dimension {min(power.shape)}"
        )

    def circular_box_sum(arr: np.ndarray, half: int) -> np.ndarray:
        """Sum over a (2*half+1)^2 circular window around each cell."""
        out = arr
        for axis in (0, 1):
            n = arr.shape[axis]
            padded = np.concatenate(
                [out.take(range(n - half, n), axis=axis), out,
                 out.take(range(half), axis=axis)], axis=axis,
            )
            csum = np.cumsum(padded, axis=axis)
            lead = csum.take(range(2 * half, 2 * half + n), axis=axis)
            lag = np.concatenate(
                [np.expand_dims(np.zeros_like(csum.take(0, axis=axis)), axis),
                 csum.take(range(n - 1), axis=axis)], axis=axis,
            )
            out = lead - lag
        return out

    outer = circular_box_sum(power, half_outer)
    inner = circular_box_sum(power, guard) if guard > 0 else power
    n_train = (2 * half_outer + 1) ** 2 - (2 * guard + 1) ** 2
    noise = (outer - inner) / n_train
    alpha = n_train * (pfa ** (-1.0 / n_train) - 1.0)
    hits = power > alpha * np.maximum(noise, 1e-300)

    # keep local maxima only (a strong target lights several cells)
    detections: list[Detection] = []
    hit_idx = np.argwhere(hits)
    order = np.argsort(power[hits])[::-1]
    taken = np.zeros_like(hits)
    for k in order:
        d, r = hit_idx[k]
        lo_d, hi_d = max(0, d - guard), min(hits.shape[0], d + guard + 1)
        lo_r, hi_r = max(0, r - guard), min(hits.shape[1], r + guard + 1)
        if taken[lo_d:hi_d, lo_r:hi_r].any():
            continue
        taken[d, r] = True
        signed = d if d < geom.n_pulses / 2 else d - geom.n_pulses
        doppler_hz = signed * geom.prf / geom.n_pulses
        wavelength = C_LIGHT / geom.fc
        detections.append(Detection(
            range_bin=int(r),
            doppler_bin=int(d),
            range_m=r * geom.range_resolution,
            velocity_ms=float(doppler_hz * wavelength / 2.0),
            snr_estimate_db=float(10 * np.log10(power[d, r] / max(noise[d, r], 1e-300))),
        ))
        if len(detections) >= max_detections:
            break
    return detections


def pd_task_counts(geom: PDGeometry) -> dict[str, int]:
    """FFT-class task accounting for one PD frame (paper: ~512 FFTs)."""
    return {
        "fft": geom.n_pulses + 1 + geom.n_fast,  # fast-time + reference + slow-time
        "ifft": geom.n_pulses,
        "zip": geom.n_pulses,
    }
