"""Property-based tests on the simulation engine's core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simcore import Compute, Engine, Sleep

work_lists = st.lists(
    st.floats(min_value=1e-6, max_value=2.0, allow_nan=False), min_size=1, max_size=12
)


def burn(amount):
    yield Compute(amount)


@given(works=work_lists, n_cores=st.integers(min_value=1, max_value=4))
@settings(max_examples=60, deadline=None)
def test_work_conservation(works, n_cores):
    """Delivered core-seconds equal requested work; none is lost or created,
    and no core delivers more than elapsed x speed."""
    eng = Engine(cores=n_cores)
    threads = [eng.spawn(burn(w), f"t{i}") for i, w in enumerate(works)]
    elapsed = eng.run()
    total_delivered = sum(c.delivered for c in eng.cores)
    assert np.isclose(total_delivered, sum(works), rtol=1e-9, atol=1e-9)
    for core in eng.cores:
        assert core.delivered <= elapsed * core.speed + 1e-9
    for thread, w in zip(threads, works):
        assert np.isclose(thread.cpu_time, w, rtol=1e-9, atol=1e-9)


@given(works=work_lists)
@settings(max_examples=40, deadline=None)
def test_makespan_bounds(works):
    """On one core, makespan equals total work (work conservation); on
    infinite cores it would be max(work) - always within those bounds."""
    eng = Engine(cores=1)
    for i, w in enumerate(works):
        eng.spawn(burn(w), f"t{i}")
    elapsed = eng.run()
    assert np.isclose(elapsed, sum(works), rtol=1e-9, atol=1e-9)


@given(
    segs=st.lists(
        st.tuples(
            st.sampled_from(["compute", "sleep"]),
            st.floats(min_value=1e-6, max_value=0.5, allow_nan=False),
        ),
        min_size=1,
        max_size=8,
    )
)
@settings(max_examples=40, deadline=None)
def test_clock_monotone_through_mixed_segments(segs):
    """Simulated time never runs backwards across compute/sleep mixes."""
    eng = Engine(cores=2)
    stamps = []

    def body():
        for kind, amount in segs:
            stamps.append(eng.now)
            if kind == "compute":
                yield Compute(amount)
            else:
                yield Sleep(amount)
        stamps.append(eng.now)

    eng.spawn(body(), "mixed")
    eng.spawn(burn(0.3), "rival")
    eng.run()
    assert stamps == sorted(stamps)
    # lower bound: dedicated execution of all segments
    assert eng.now >= sum(a for _, a in segs) - 1e-9


@given(works=work_lists, seed=st.integers(min_value=0, max_value=2**31))
@settings(max_examples=30, deadline=None)
def test_determinism_same_seed_same_timeline(works, seed):
    """Two engines fed identical programs produce identical finish times."""

    def run():
        eng = Engine(cores=2, seed=seed)
        threads = [eng.spawn(burn(w), f"t{i}") for i, w in enumerate(works)]
        eng.run()
        return [t.finished_at for t in threads]

    assert run() == run()


@given(
    works=work_lists,
    alpha=st.floats(min_value=0.0, max_value=0.2, allow_nan=False),
)
@settings(max_examples=40, deadline=None)
def test_context_switch_penalty_never_speeds_up(works, alpha):
    """A positive cs_alpha can only increase (or keep) the makespan."""
    from repro.simcore.cores import Core

    def run(a):
        eng = Engine(cores=[Core(name="c", index=0, cs_alpha=a)])
        for i, w in enumerate(works):
            eng.spawn(burn(w), f"t{i}")
        return eng.run()

    assert run(alpha) >= run(0.0) - 1e-12
