"""Figs 6 and 7 - execution time and scheduling overhead vs injection rate.

Setup (paper Section IV-A): 5x Pulse Doppler + 5x WiFi TX on the ZCU102
with 3 ARM cores, 1 FFT, and 1 MMULT accelerator; all four schedulers; both
runtimes.  Fig. 6 plots average execution time per application, Fig. 7 the
average scheduling overhead per application - both from the *same* runs, so
this module produces all four panels from one sweep set:

* fig6a - DAG execution time, fig6b - API execution time;
* fig7a - DAG scheduling overhead, fig7b - API scheduling overhead.

Expected reproduction (saturated region):

* ETF is the outlier in both modes: its DAG-mode scheduling overhead is
  tens of ms/app (paper ~70 ms), collapsing by >1 order of magnitude in
  API mode (paper 1.15 ms) because the API ready queue holds only
  in-flight libCEDR calls;
* ETF's DAG execution time (~700 ms in the paper) far exceeds the other
  schedulers (~200 ms), and drops substantially in API mode;
* non-ETF API execution time sits *above* its DAG counterpart (thread
  contention on the 3-core ZCU102; paper 350 vs 200 ms).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.metrics import FigureSeries
from repro.platforms import zcu102
from repro.sched import paper_schedulers
from repro.workload import radar_comms_workload, reduced_injection_rates

from .common import sweep_rates

__all__ = ["run_fig6_fig7"]


def run_fig6_fig7(
    rates: Optional[Sequence[float]] = None,
    trials: int = 2,
    seed: int = 0,
    schedulers: Sequence[str] = paper_schedulers(),
    n_jobs: Optional[int] = None,
) -> dict[str, FigureSeries]:
    """Regenerate Figs 6(a,b) and 7(a,b); returns {panel id: FigureSeries}."""
    rates = list(rates) if rates is not None else list(reduced_injection_rates())
    platform = zcu102(n_cpu=3, n_fft=1, n_mmult=1)
    workload = radar_comms_workload()

    panels = {
        "fig6a": FigureSeries(
            "fig6a", "Execution time, DAG-based CEDR (ZCU102 3C+1FFT+1MMULT)",
            "injection rate (Mbps)", "execution time per app (s)",
        ),
        "fig6b": FigureSeries(
            "fig6b", "Execution time, API-based CEDR (ZCU102 3C+1FFT+1MMULT)",
            "injection rate (Mbps)", "execution time per app (s)",
        ),
        "fig7a": FigureSeries(
            "fig7a", "Scheduling overhead, DAG-based CEDR (ZCU102 3C+1FFT+1MMULT)",
            "injection rate (Mbps)", "scheduling overhead per app (s)",
        ),
        "fig7b": FigureSeries(
            "fig7b", "Scheduling overhead, API-based CEDR (ZCU102 3C+1FFT+1MMULT)",
            "injection rate (Mbps)", "scheduling overhead per app (s)",
        ),
    }
    for mode, exec_panel, sched_panel in (("dag", "fig6a", "fig7a"), ("api", "fig6b", "fig7b")):
        for scheduler in schedulers:
            sweep = sweep_rates(
                platform, workload, mode, rates, scheduler, trials=trials,
                base_seed=seed, n_jobs=n_jobs,
            )
            xs, ys = sweep.series("exec_time")
            panels[exec_panel].add(scheduler.upper(), xs, ys)
            xs, ys = sweep.series("sched_overhead")
            panels[sched_panel].add(scheduler.upper(), xs, ys)
    return panels
