"""Platform configuration and instantiation tests."""

import pytest

from repro.platforms import (
    PEKind,
    PlatformConfig,
    jetson,
    jetson_timing,
    zcu102,
    zcu102_timing,
)
from repro.platforms.pe import CPU_ONLY_API, PEDescriptor, SUPPORT_MATRIX


def test_zcu102_defaults():
    cfg = zcu102()
    assert cfg.n_worker_cores == 3
    assert cfg.n_cpu_workers == 3
    assert cfg.accelerators == (PEKind.FFT,)
    assert cfg.n_pes == 4
    assert cfg.timing.cpu_clock_ghz == 1.2


def test_zcu102_fft_range_enforced():
    zcu102(n_fft=0)
    zcu102(n_fft=8)
    with pytest.raises(ValueError):
        zcu102(n_fft=9)


def test_jetson_defaults():
    cfg = jetson()
    assert cfg.n_worker_cores == 7
    assert cfg.n_cpu_workers == 7
    assert cfg.accelerators == (PEKind.GPU,)
    assert cfg.timing.cpu_clock_ghz == 2.3


def test_jetson_cpu_range_enforced():
    with pytest.raises(ValueError):
        jetson(n_cpu=0)
    with pytest.raises(ValueError):
        jetson(n_cpu=8)


def test_cpu_worker_count_cannot_exceed_cores():
    with pytest.raises(ValueError, match="do not fit"):
        PlatformConfig(
            name="bad", n_worker_cores=2, n_cpu_workers=3,
            accelerators=(), timing=zcu102_timing(),
        )


def test_accelerator_kind_validated():
    with pytest.raises(ValueError, match="not an accelerator"):
        PlatformConfig(
            name="bad", n_worker_cores=2, n_cpu_workers=2,
            accelerators=(PEKind.CPU,), timing=zcu102_timing(),
        )


def test_accelerator_needs_clock():
    with pytest.raises(ValueError, match="lacks a clock"):
        PlatformConfig(
            name="bad", n_worker_cores=2, n_cpu_workers=2,
            accelerators=(PEKind.GPU,), timing=zcu102_timing(),
        )


def test_describe_pes_placement_zcu():
    """FFT management threads round-robin over the three worker cores."""
    cfg = zcu102(n_cpu=3, n_fft=4)
    descs = cfg.describe_pes()
    cpu_hosts = [d.host_core_index for d in descs if d.kind is PEKind.CPU]
    fft_hosts = [d.host_core_index for d in descs if d.kind is PEKind.FFT]
    assert cpu_hosts == [0, 1, 2]
    assert fft_hosts == [0, 1, 2, 0]


def test_describe_pes_gpu_gets_spare_core_on_jetson():
    """With <7 CPU workers the GPU management thread sits on its own core,
    matching the paper's 'one is dedicated for GPU management'."""
    cfg = jetson(n_cpu=3, n_gpu=1)
    descs = cfg.describe_pes()
    gpu = [d for d in descs if d.kind is PEKind.GPU][0]
    assert gpu.host_core_index == 3  # past the CPU workers, a spare core


def test_build_creates_engine_cores_devices():
    inst = zcu102(n_cpu=3, n_fft=2, n_mmult=1).build(seed=5)
    assert len(inst.worker_cores) == 3
    assert inst.runtime_core.name == "runtime-core"
    assert len(inst.engine.cores) == 4
    assert len(inst.engine.devices) == 3
    assert len(inst.pes) == 6
    assert len(inst.cpu_pes) == 3
    assert len(inst.accel_pes) == 3
    # floating pool excludes the reserved runtime core
    assert inst.runtime_core not in inst.engine.floating_pool


def test_pes_supporting():
    inst = zcu102(n_cpu=3, n_fft=1, n_mmult=1).build()
    assert len(inst.pes_supporting("fft")) == 4   # 3 CPUs + FFT accel
    assert len(inst.pes_supporting("gemm")) == 4  # 3 CPUs + MMULT
    assert len(inst.pes_supporting("zip")) == 3   # CPUs only on the ZCU102
    assert len(inst.pes_supporting(CPU_ONLY_API)) == 3


def test_support_matrix_sanity():
    assert SUPPORT_MATRIX[PEKind.FFT] == frozenset({"fft", "ifft"})
    assert CPU_ONLY_API in SUPPORT_MATRIX[PEKind.CPU]
    assert not PEKind.CPU.is_accelerator
    assert PEKind.GPU.is_accelerator


def test_pe_descriptor_supports():
    d = PEDescriptor(name="fft0", kind=PEKind.FFT, clock_ghz=0.3)
    assert d.supports("fft") and d.supports("ifft")
    assert not d.supports("zip")


def test_cs_alpha_propagates_to_cores():
    inst = zcu102().build()
    assert all(c.cs_alpha == pytest.approx(0.06) for c in inst.worker_cores)


def test_timing_presets_distinct():
    z, j = zcu102_timing(), jetson_timing()
    assert z.cpu_clock_ghz < j.cpu_clock_ghz
    assert PEKind.FFT in z.accel_clock_ghz
    assert PEKind.GPU in j.accel_clock_ghz
