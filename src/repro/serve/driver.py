"""The service driver: open arrival streams wired into a live CedrRuntime.

This is what promotes the closed-batch simulator into CEDR's actual shape -
a persistent daemon admitting applications as they arrive.  One
:class:`ServeDriver` owns, per tenant, an arrival stream from the registry
(:mod:`repro.serve.arrival`) and a payload RNG, and drives them through the
admission controller (:mod:`repro.serve.admission`) into
``CedrRuntime.submit`` using the same one-timer-ahead engine-timer chain as
the fault injector: exactly one pending arrival timer per tenant, re-armed
after each firing.  Chains stop by construction at the configured duration
(no arrival instant >= duration is ever scheduled), so - unlike the fault
streams - no disarm step is needed for the engine to drain.

Graceful drain protocol
-----------------------

``seal()`` forbids further submissions, so the driver may only seal once
nothing will ever need submitting again:

1. at ``duration`` an expiry timer marks the stream closed (no chain
   schedules past it anyway);
2. held arrivals (``block`` policy) release - weighted-fair - as running
   applications finish, via the daemon's ``on_app_finished`` hook;
3. when the stream is closed **and** every hold queue is empty, the driver
   seals; the daemon then drains exactly as in batch mode (every admitted
   application runs to completion before shutdown).

Hold queues can never strand the seal: after every release pass, a
nonempty hold queue implies the in-system count sits at its cap, which
implies completions are still coming, each of which triggers another
release pass.

Determinism
-----------

A serve run is a pure function of ``(platform, serve config, seed,
runtime config)``: arrival streams are pure in ``(spec, seed)``, admission
decisions read only controller state and virtual-clock signals, and
response accounting happens in completion order (an engine-determined
order).  :func:`serve_trials` therefore shards serve cells across the same
process pool and content-addressed cache as the batch sweeps, bit-
identically - ``repro audit diff --serve`` proves it per run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

import numpy as np

from repro.metrics import RunResult
from repro.runtime import CedrRuntime, RuntimeConfig
from repro.simcore import child_rng
from repro.telemetry.registry import Histogram
from repro.telemetry.runtime_metrics import LATENCY_BUCKETS

from .admission import AdmissionConfig, AdmissionController
from .arrival import ArrivalSpec, arrival_rate, make_arrival_stream

__all__ = [
    "TenantSpec",
    "ServeConfig",
    "TenantStats",
    "ServeResult",
    "ServeDriver",
    "serve_once",
    "serve_trials",
    "serve_codec",
]


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of the service: its arrival process, app mix, weight, SLO.

    ``apps`` cycle round-robin across this tenant's admitted arrivals
    (arrival *k* instantiates ``apps[k % len(apps)]``).  ``weight`` drives
    the weighted-fair hold-queue release; ``slo_s`` is the response-time
    objective its goodput is measured against.
    """

    name: str
    arrival: ArrivalSpec
    apps: tuple[Any, ...]
    weight: float = 1.0
    slo_s: float = 0.05

    def __post_init__(self) -> None:
        if not self.apps:
            raise ValueError(f"tenant {self.name!r} needs at least one app")
        if self.weight <= 0:
            raise ValueError(f"tenant {self.name!r} weight must be positive")
        if self.slo_s <= 0:
            raise ValueError(f"tenant {self.name!r} SLO must be positive")


@dataclass(frozen=True)
class ServeConfig:
    """One service run: tenants, duration, admission, execution knobs."""

    tenants: tuple[TenantSpec, ...]
    duration: float
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    mode: str = "api"
    scheduler: str = "heft_rt"

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ValueError("serve needs at least one tenant")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names: {names}")
        if self.duration <= 0:
            raise ValueError(f"serve duration must be positive, got {self.duration}")

    @property
    def offered_rate(self) -> float:
        """Nominal total offered load (arrivals/s) across tenants."""
        return sum(arrival_rate(t.arrival) for t in self.tenants)


@dataclass(frozen=True)
class TenantStats:
    """One tenant's SLO ledger for one service run.

    ``offered = admitted + shed`` always; ``held`` counts arrivals that
    waited in the hold queue before admission (a subset of ``admitted``,
    since the drain protocol releases every held arrival); ``degraded``
    counts best-effort admissions excluded from the SLO accounting.
    ``response_times`` are offered-instant -> finish intervals in
    completion order (held time included - the queue is part of the
    latency a client sees).
    """

    name: str
    offered: int
    admitted: int
    shed: int
    held: int
    degraded: int
    completed: int
    failed: int
    slo_violations: int
    response_times: tuple[float, ...]
    queue_wait_s: float
    hold_hwm: int

    @property
    def p99_response_s(self) -> float:
        """Exact empirical p99 (nearest-rank) over completed responses."""
        if not self.response_times:
            return 0.0
        ordered = sorted(self.response_times)
        rank = max(0, -(-99 * len(ordered) // 100) - 1)  # ceil, 0-based
        return ordered[rank]

    @property
    def goodput(self) -> float:
        """Fraction of offered arrivals that completed within the SLO
        with full service (degraded completions do not count)."""
        if self.offered == 0:
            return 1.0
        good = self.completed - self.degraded - self.slo_violations
        return max(0, good) / self.offered


@dataclass(frozen=True)
class ServeResult:
    """Everything one service run reports (bit-comparable, cacheable)."""

    duration: float
    offered: int
    admitted: int
    shed: int
    degraded: int
    completed: int
    slo_violations: int
    in_system_hwm: int
    late_arrivals: int
    tenants: tuple[TenantStats, ...]
    #: the closed-batch result of the same run (makespan, overheads,
    #: per-app execution times, PE histogram) - the oracle diffs this too.
    run: RunResult

    @property
    def throughput(self) -> float:
        """Completed applications per simulated second of service."""
        return self.completed / self.duration

    @property
    def p99_response_s(self) -> float:
        """Exact p99 response time across every tenant's completions."""
        merged: list[float] = []
        for t in self.tenants:
            merged.extend(t.response_times)
        if not merged:
            return 0.0
        merged.sort()
        rank = max(0, -(-99 * len(merged) // 100) - 1)
        return merged[rank]

    @property
    def goodput(self) -> float:
        """Completed-within-SLO (full service) per simulated second."""
        good = sum(
            max(0, t.completed - t.degraded - t.slo_violations)
            for t in self.tenants
        )
        return good / self.duration


class _TenantRuntime:
    """Mutable per-tenant serve state (streams, counters, ledger)."""

    __slots__ = (
        "spec", "stream", "payload_rng", "admit_seq",
        "offered", "admitted", "shed", "held", "degraded",
        "completed", "failed", "slo_violations",
        "responses", "queue_wait_s",
    )

    def __init__(
        self, spec: TenantSpec, stream: Iterator[float], payload_rng: np.random.Generator
    ) -> None:
        self.spec = spec
        self.stream = stream
        self.payload_rng = payload_rng
        self.admit_seq = 0
        self.offered = 0
        self.admitted = 0
        self.shed = 0
        self.held = 0
        self.degraded = 0
        self.completed = 0
        self.failed = 0
        self.slo_violations = 0
        self.responses: list[float] = []
        self.queue_wait_s = 0.0


class ServeDriver:
    """Wires arrival streams through admission into one live runtime."""

    def __init__(self, runtime: CedrRuntime, serve: ServeConfig, seed: int) -> None:
        self.runtime = runtime
        self.engine = runtime.engine
        self.serve = serve
        self.controller = AdmissionController(
            serve.admission, [(t.name, t.weight) for t in serve.tenants]
        )
        self._tenants = {
            t.name: _TenantRuntime(
                t,
                make_arrival_stream(
                    t.arrival, child_rng(seed, f"serve.arrivals.{t.name}")
                ),
                child_rng(seed, f"serve.apps.{t.name}"),
            )
            for t in serve.tenants
        }
        #: app_id -> (tenant name, offered instant, degraded flag)
        self._records: dict[int, tuple[str, float, bool]] = {}
        #: online p99 signal for admission backpressure: a telemetry
        #: histogram over completed response times.  Plain state (no
        #: events), read by decide() through Histogram.quantile.
        self._response_hist = Histogram(LATENCY_BUCKETS)
        self._expired = False
        self._sealed = False
        self._armed = False

    # -- lifecycle ------------------------------------------------------ #

    def arm(self) -> None:
        """Install the finish hook, start every chain, arm the expiry timer."""
        if self._armed:
            raise RuntimeError("serve driver already armed")
        self._armed = True
        if self.runtime.on_app_finished is not None:
            raise RuntimeError("runtime already has an on_app_finished hook")
        self.runtime.on_app_finished = self._on_app_finished
        for name in self._tenants:
            self._arm_next(name)
        self.engine.call_at(self.serve.duration, self._on_expiry)

    def _arm_next(self, tenant: str) -> None:
        """One-timer-ahead arrival chain (the fault-injector idiom).

        Pull the next instant; schedule it only when it falls strictly
        inside the service window, so every chain self-terminates at the
        duration and the engine can drain without a disarm pass.  A trace
        stream may replay an instant that is already in the past relative
        to the chain's progress - ``call_at`` clamps it to now and counts
        it (``Daemon.submit``'s documented late-admission semantics).
        """
        state = self._tenants[tenant]
        try:
            when = next(state.stream)
        except StopIteration:
            return  # finite trace exhausted
        if when >= self.serve.duration:
            return

        def _fire() -> None:
            self._on_arrival(tenant)
            self._arm_next(tenant)

        self.engine.call_at(when, _fire)

    # -- arrivals ------------------------------------------------------- #

    def _on_arrival(self, tenant: str) -> None:
        state = self._tenants[tenant]
        state.offered += 1
        now = self.engine.now
        decision = self.controller.decide(
            tenant,
            now,
            ready_depth=len(self.runtime.ready),
            p99_s=self._response_hist.quantile(0.99),
        )
        if decision == "shed":
            state.shed += 1
            return
        instance = self._next_instance(state)
        if decision == "hold":
            state.held += 1
            self.controller.push(tenant, (instance, now))
            # capacity may already be free (held on a soft signal): a
            # release pass keeps "held implies at-capacity" invariant true
            self._drain_holds()
            return
        self._admit(tenant, instance, offered_at=now,
                    degraded=(decision == "degrade"))

    def _next_instance(self, state: _TenantRuntime):
        app = state.spec.apps[state.admit_seq % len(state.spec.apps)]
        state.admit_seq += 1
        return app.make_instance(self.serve.mode, state.payload_rng)

    def _admit(
        self, tenant: str, instance: Any, offered_at: float, degraded: bool
    ) -> None:
        state = self._tenants[tenant]
        state.admitted += 1
        if degraded:
            state.degraded += 1
        state.queue_wait_s += self.engine.now - offered_at
        self.controller.admitted(tenant)
        self._records[instance.app_id] = (tenant, offered_at, degraded)
        self.runtime.submit(instance, at=self.engine.now)

    def _drain_holds(self) -> None:
        for tenant, (instance, offered_at) in self.controller.release():
            self._admit(tenant, instance, offered_at=offered_at, degraded=False)
        self._maybe_seal()

    # -- completions / drain -------------------------------------------- #

    def _on_app_finished(self, app: Any) -> None:
        record = self._records.pop(app.app_id, None)
        if record is None:   # not a serve submission (mixed-use runtime)
            return
        tenant, offered_at, degraded = record
        state = self._tenants[tenant]
        self.controller.finished(tenant)
        if app.failed or app.cancelled:
            state.failed += 1
        else:
            response = self.engine.now - offered_at
            state.completed += 1
            state.responses.append(response)
            self._response_hist.observe(response)
            if not degraded and response > state.spec.slo_s:
                state.slo_violations += 1
        self._drain_holds()

    def _on_expiry(self) -> None:
        self._expired = True
        self._drain_holds()

    def _maybe_seal(self) -> None:
        if self._expired and not self._sealed and self.controller.held() == 0:
            self._sealed = True
            self.runtime.seal()

    # -- results -------------------------------------------------------- #

    def result(self) -> ServeResult:
        """Collect the run's service ledger (call after ``runtime.run()``)."""
        if self._records:
            raise RuntimeError(
                f"serve run ended with {len(self._records)} admitted "
                f"applications unaccounted for"
            )
        if not self._sealed:
            raise RuntimeError("serve run never sealed - did the engine run?")
        tenants = tuple(
            TenantStats(
                name=name,
                offered=s.offered,
                admitted=s.admitted,
                shed=s.shed,
                held=s.held,
                degraded=s.degraded,
                completed=s.completed,
                failed=s.failed,
                slo_violations=s.slo_violations,
                response_times=tuple(s.responses),
                queue_wait_s=s.queue_wait_s,
                hold_hwm=self.controller.hold_hwm(name),
            )
            for name, s in self._tenants.items()
        )
        return ServeResult(
            duration=self.serve.duration,
            offered=sum(t.offered for t in tenants),
            admitted=sum(t.admitted for t in tenants),
            shed=sum(t.shed for t in tenants),
            degraded=sum(t.degraded for t in tenants),
            completed=sum(t.completed for t in tenants),
            slo_violations=sum(t.slo_violations for t in tenants),
            in_system_hwm=self.controller.in_system_hwm,
            late_arrivals=self.engine.late_timers,
            tenants=tenants,
            run=RunResult.from_runtime(self.runtime),
        )


# --------------------------------------------------------------------- #
# pure serve cells: pool- and cache-shardable like the batch sweeps
# --------------------------------------------------------------------- #


def serve_once(
    platform: Any,
    serve: ServeConfig,
    seed: int = 0,
    config: Optional[RuntimeConfig] = None,
) -> ServeResult:
    """One complete service run; the serve analogue of ``run_once``.

    Pure function of its arguments: build the platform, start a runtime,
    arm the driver, run to graceful drain, collect the ledger.  Honours
    ``$REPRO_AUDIT`` exactly like the batch path so audited CI sweeps
    cover serve cells too.
    """
    from repro.experiments.common import audit_from_env

    if config is None:
        config = RuntimeConfig(scheduler=serve.scheduler, execute_kernels=False)
    else:
        config = config.with_scheduler(serve.scheduler)
    if not config.audit and audit_from_env():
        config = config.with_audit()
    instance = platform.build(seed=seed)
    runtime = CedrRuntime(instance, config)
    runtime.start()
    driver = ServeDriver(runtime, serve, seed)
    driver.arm()
    runtime.run()
    return driver.result()


def _serve_cell(cell: tuple) -> ServeResult:
    """Picklable pool-worker entry for one (serve config, seed) cell."""
    platform, serve, seed, config = cell
    return serve_once(platform, serve, seed=seed, config=config)


def _encode_serve(result: ServeResult) -> dict:
    from repro.experiments.cache import _encode_result

    return {
        "duration": result.duration,
        "offered": result.offered,
        "admitted": result.admitted,
        "shed": result.shed,
        "degraded": result.degraded,
        "completed": result.completed,
        "slo_violations": result.slo_violations,
        "in_system_hwm": result.in_system_hwm,
        "late_arrivals": result.late_arrivals,
        "tenants": [
            {
                "name": t.name,
                "offered": t.offered,
                "admitted": t.admitted,
                "shed": t.shed,
                "held": t.held,
                "degraded": t.degraded,
                "completed": t.completed,
                "failed": t.failed,
                "slo_violations": t.slo_violations,
                "response_times": list(t.response_times),
                "queue_wait_s": t.queue_wait_s,
                "hold_hwm": t.hold_hwm,
            }
            for t in result.tenants
        ],
        "run": _encode_result(result.run),
    }


def _decode_serve(data: dict) -> ServeResult:
    from repro.experiments.cache import _decode_result

    return ServeResult(
        duration=float(data["duration"]),
        offered=int(data["offered"]),
        admitted=int(data["admitted"]),
        shed=int(data["shed"]),
        degraded=int(data["degraded"]),
        completed=int(data["completed"]),
        slo_violations=int(data["slo_violations"]),
        in_system_hwm=int(data["in_system_hwm"]),
        late_arrivals=int(data["late_arrivals"]),
        tenants=tuple(
            TenantStats(
                name=str(t["name"]),
                offered=int(t["offered"]),
                admitted=int(t["admitted"]),
                shed=int(t["shed"]),
                held=int(t["held"]),
                degraded=int(t["degraded"]),
                completed=int(t["completed"]),
                failed=int(t["failed"]),
                slo_violations=int(t["slo_violations"]),
                response_times=tuple(float(x) for x in t["response_times"]),
                queue_wait_s=float(t["queue_wait_s"]),
                hold_hwm=int(t["hold_hwm"]),
            )
            for t in data["tenants"]
        ),
        run=_decode_result(data["run"]),
    )


def serve_codec():
    """The sweep-cache codec for :class:`ServeResult` cells."""
    from repro.experiments.cache import ResultCodec

    return ResultCodec(
        kind="serve/1",
        encode=_encode_serve,
        decode=_decode_serve,
        cacheable=lambda r: r.run.telemetry is None,
    )


def _serve_cells(cells: list, n_jobs: int, cache) -> list[ServeResult]:
    """Serve-cell analogue of the batch ``_run_cells`` (hits in-parent)."""
    from concurrent.futures import ProcessPoolExecutor

    def simulate(pending: list) -> list[ServeResult]:
        if n_jobs <= 1 or len(pending) <= 1:
            return [_serve_cell(c) for c in pending]
        workers = min(n_jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(_serve_cell, pending))

    if cache is None:
        return simulate(cells)
    codec = serve_codec()
    probes = [cache.probe(cell) for cell in cells]
    results = [
        cache.get(cell, probe, codec=codec)
        for cell, probe in zip(cells, probes)
    ]
    missing = [i for i, r in enumerate(results) if r is None]
    if missing:
        fresh = simulate([cells[i] for i in missing])
        for i, result in zip(missing, fresh):
            cache.put(cells[i], result, probes[i], codec=codec)
            results[i] = result
    return results


def serve_trials(
    platform: Any,
    serve: ServeConfig,
    trials: int = 2,
    base_seed: int = 0,
    config: Optional[RuntimeConfig] = None,
    n_jobs: Optional[int] = None,
    cache: Any = None,
) -> list[ServeResult]:
    """Repeat :func:`serve_once` over the standard trial-seed grid.

    Shards (serve, seed) cells across the PR-1 process pool and satisfies
    repeats from the content-addressed sweep cache, exactly like
    ``run_trials`` - both bit-identical to the serial path.
    """
    from repro.experiments.common import resolve_cache, resolve_jobs, trial_seeds

    if trials < 1:
        raise ValueError(f"need at least one trial, got {trials}")
    cells = [
        (platform, serve, seed, config)
        for seed in trial_seeds(trials, base_seed)
    ]
    return _serve_cells(cells, resolve_jobs(n_jobs), resolve_cache(cache))
