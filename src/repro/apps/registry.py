"""Application registry: named constructors for the benchmark apps.

The CLI historically hard-wired its app table (``APP_FACTORIES``) with
run-sized defaults (small batches keep ``repro run`` snappy); this module
is that table as a :class:`repro.registry.Registry`, shared by the CLI,
the scenario layer, and ``repro list``.  Names are case-insensitive and
canonically UPPERCASE (``pd`` == ``PD``).  Factories accept keyword
overrides, so a scenario spec can say ``{name = "PD", batch = 16}`` and
get a bigger radar batch than the CLI default.

Third-party applications plug in via :func:`register_app` or the
``repro.apps`` entry-point group; anything registered here is immediately
usable in ``repro run --apps``, serve tenant mixes, and scenario specs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.registry import Registry

from .base import CedrApplication
from .lane_detection import LaneDetection
from .pulse_doppler import PulseDoppler
from .temporal_mitigation import TemporalMitigation
from .wifi_rx import WifiRx
from .wifi_tx import WifiTx

__all__ = [
    "APPS",
    "AppEntry",
    "register_app",
    "make_app",
    "available_apps",
]


@dataclass(frozen=True)
class AppEntry:
    """One registered application: factory + one-line description."""

    name: str
    factory: Callable[..., CedrApplication]
    summary: str = ""


APPS: Registry[AppEntry] = Registry(
    "application", entry_point_group="repro.apps", normalize=str.upper
)


def register_app(name: str, *, summary: str = ""):
    """Decorator registering a ``(**params) -> CedrApplication`` factory."""

    def deco(factory: Callable[..., CedrApplication]):
        APPS.register(name, AppEntry(str(name).upper(), factory, summary))
        return factory

    return deco


def make_app(name: str, **params) -> CedrApplication:
    """Construct a registered application by name."""
    return APPS.get(name).factory(**params)


def available_apps() -> tuple[str, ...]:
    """Registered application names, sorted."""
    return APPS.names()


# CLI-sized defaults: small batches keep interactive runs snappy; the
# figure drivers construct the paper-sized apps directly.

@register_app("PD", summary="Pulse-Doppler radar (FFT-heavy)")
def _pd(**params) -> PulseDoppler:
    return PulseDoppler(**{"batch": 8, **params})


@register_app("TX", summary="WiFi transmitter baseband chain")
def _tx(**params) -> WifiTx:
    return WifiTx(**{"batch": 5, **params})


@register_app("RX", summary="WiFi receiver baseband chain (CPU-heavy)")
def _rx(**params) -> WifiRx:
    return WifiRx(**{"batch": 5, **params})


@register_app("LD", summary="Lane detection vision pipeline")
def _ld(**params) -> LaneDetection:
    return LaneDetection(**{"height": 135, "width": 240, "batch": 32, **params})


@register_app("TM", summary="Temporal interference mitigation (GEMM/MMULT)")
def _tm(**params) -> TemporalMitigation:
    return TemporalMitigation(**{"n_blocks": 32, **params})
