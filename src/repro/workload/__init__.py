"""Workload generation: injection rates, arrival schedules, app mixes."""

from .injection import (
    paper_injection_rates,
    periodic_arrivals,
    poisson_arrivals,
    reduced_injection_rates,
)
from .workload import (
    WorkloadEntry,
    WorkloadSpec,
    autonomous_vehicle_workload,
    radar_comms_workload,
)

__all__ = [
    "paper_injection_rates",
    "reduced_injection_rates",
    "periodic_arrivals",
    "poisson_arrivals",
    "WorkloadEntry",
    "WorkloadSpec",
    "radar_comms_workload",
    "autonomous_vehicle_workload",
]
