"""Property-based fuzzing of the runtime with random DAG topologies.

Hypothesis generates arbitrary layered DAGs of FFT/ZIP/IFFT kernels; every
one must run to completion on every scheduler with (a) all dependencies
respected in simulated time, (b) every task executed exactly once on a
supporting PE, and (c) a bit-identical result to a sequential NumPy
evaluation of the same graph.  This is the strongest general statement of
the runtime's correctness contract.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dag import DagBuilder
from repro.platforms import zcu102
from repro.runtime import AppInstance, CedrRuntime, RuntimeConfig

N = 32  # vector length for all kernel payloads


@st.composite
def layered_dags(draw):
    """A random layered DAG description: layers of 1-3 unary kernel nodes,
    each consuming a randomly chosen output of the previous layer."""
    n_layers = draw(st.integers(1, 4))
    layers = []
    for li in range(n_layers):
        width = draw(st.integers(1, 3))
        layer = []
        for wi in range(width):
            api = draw(st.sampled_from(["fft", "ifft"]))
            src = 0 if li == 0 else draw(st.integers(0, len(layers[li - 1]) - 1))
            layer.append((api, src))
        layers.append(layer)
    return layers


def build_dag_from_layers(layers, data):
    b = DagBuilder("fuzz")
    b.cpu("init", lambda s: s.__setitem__("k0_0", data.copy()), 1e-6)
    prev_names = {0: "init"}
    prev_keys = {0: "k0_0"}
    for li, layer in enumerate(layers, start=1):
        names, keys = {}, {}
        for wi, (api, src) in enumerate(layer):
            key = f"k{li}_{wi}"
            name = b.kernel(
                f"n{li}_{wi}", api, {"n": N},
                [prev_keys[src]], key, after=[prev_names[src]],
            )
            names[wi], keys[wi] = name, key
        prev_names, prev_keys = names, keys
    return b.build(), prev_keys


def numpy_eval(layers, data):
    prev = {0: data.copy()}
    for layer in layers:
        cur = {}
        for wi, (api, src) in enumerate(layer):
            fn = np.fft.fft if api == "fft" else np.fft.ifft
            cur[wi] = fn(prev[src])
        prev = cur
    return prev


@given(layers=layered_dags(), seed=st.integers(0, 2**20),
       scheduler=st.sampled_from(["rr", "eft", "etf", "heft_rt", "met", "random"]))
@settings(max_examples=40, deadline=None)
def test_random_dags_run_correctly_on_every_scheduler(layers, seed, scheduler):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=N) + 1j * rng.normal(size=N)
    program, leaf_keys = build_dag_from_layers(layers, data)

    platform = zcu102(n_cpu=3, n_fft=1).build(seed=seed)
    runtime = CedrRuntime(platform, RuntimeConfig(scheduler=scheduler))
    runtime.start()
    app = AppInstance(name="fuzz", mode="dag", frame_mb=0.1, dag=program)
    runtime.submit(app, at=0.0)
    runtime.seal()
    runtime.run()

    # (a) dependencies respected in time
    recs = {r.name: r for r in runtime.logbook.tasks}
    nodes = program.spec["nodes"]
    for name, node in nodes.items():
        for pred in node.get("after", []):
            assert recs[pred].t_finish <= recs[name].t_start + 1e-12

    # (b) exactly once, on supporting PEs
    assert len(recs) == program.n_nodes
    for rec in recs.values():
        if rec.api in ("fft", "ifft"):
            assert rec.pe_kind in ("cpu", "fft")
        else:
            assert rec.pe_kind == "cpu"

    # (c) numerics match a sequential evaluation
    expected = numpy_eval(layers, data)
    for wi, key in leaf_keys.items():
        assert np.allclose(app.state[key], expected[wi], atol=1e-8)
