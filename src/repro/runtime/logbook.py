"""Execution logging: the records CEDR serializes at shutdown.

The real runtime collects per-task execution logs and performance-counter
measurements during a run and writes them out when the shutdown IPC command
arrives "for later offline analysis by the user".  :class:`Logbook` plays
that role: task rows accumulate during the run and :meth:`serialize`
produces the JSON-compatible structure an analysis notebook would consume.

The dump is schema-versioned (:data:`SCHEMA_VERSION`) and round-trips:
:meth:`Logbook.load` rebuilds a logbook from a saved dump so ``repro audit
<logbook.json>`` can replay the invariant catalog (:mod:`repro.audit`)
against a run that finished in another process, or last week.  Version 1
dumps (pre-audit, without the attempt/cost-row/successor columns) still
load; the missing columns take their documented defaults and the audit
checks that need them skip.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields
from pathlib import Path
from typing import Any, Optional

from .task import Task

__all__ = ["TaskRecord", "AppRecord", "Logbook", "SCHEMA_VERSION"]

#: current on-disk dump format.  2 added ``attempts``/``cost_row``/
#: ``cost_token``/``successors`` to task rows and ``cancelled``/``failed``
#: to app rows (the columns the audit layer's conservation, causality, and
#: cost-row-freshness invariants consume).
SCHEMA_VERSION = 2


@dataclass(frozen=True)
class TaskRecord:
    """One completed task, flattened for offline analysis."""

    tid: int
    app_id: int
    api: str
    name: str
    pe: str
    pe_kind: str
    t_release: float
    t_scheduled: float
    t_start: float
    t_finish: float
    #: retry attempts the fault layer charged before this completion.
    attempts: int = 0
    #: interned cost-table row + the table token guarding it (see
    #: :class:`repro.platforms.timing.CostTable`); ``-1`` = never interned.
    cost_row: int = -1
    cost_token: int = -1
    #: tids of DAG successors released by this completion (empty for API
    #: calls) - what the causality invariant checks ordering against.
    successors: tuple[int, ...] = ()

    @property
    def queue_wait(self) -> float:
        return self.t_scheduled - self.t_release

    @property
    def service_time(self) -> float:
        return self.t_finish - self.t_start

    @classmethod
    def from_task(cls, task: Task) -> "TaskRecord":
        return cls(
            tid=task.tid,
            app_id=task.app_id,
            api=task.api,
            name=task.name,
            pe=task.pe.name if task.pe else "?",
            pe_kind=task.pe.kind.value if task.pe else "?",
            t_release=task.t_release,
            t_scheduled=task.t_scheduled,
            t_start=task.t_start,
            t_finish=task.t_finish,
            attempts=task.attempts,
            cost_row=task.cost_row,
            cost_token=task.cost_token,
            successors=tuple(s.tid for s in task.successors),
        )


@dataclass
class AppRecord:
    """Lifecycle of one submitted application instance."""

    app_id: int
    name: str
    mode: str
    t_arrival: float
    t_launch: float = 0.0
    t_finish: Optional[float] = None
    n_tasks: int = 0
    #: terminated early by the kill IPC command (DAG mode).
    cancelled: bool = False
    #: declared failed by the fault layer (a task exhausted its retries).
    failed: bool = False

    @property
    def execution_time(self) -> float:
        """The paper's per-application execution time: arrival to completion,
        'including the overhead of all scheduling decisions in between'."""
        if self.t_finish is None:
            raise ValueError(f"app {self.app_id} ({self.name}) never finished")
        return self.t_finish - self.t_arrival


def _load_record(cls, row: dict[str, Any]):
    """Build a record dataclass from a dump row, tolerating old schemas.

    Unknown keys (a *newer* dump than this code) are rejected - silently
    dropping columns would let an audit pass on data it never saw - while
    missing keys fall back to the dataclass defaults (older dumps).
    """
    known = {f.name for f in fields(cls)}
    unknown = set(row) - known
    if unknown:
        raise ValueError(
            f"{cls.__name__} dump carries unknown columns {sorted(unknown)}; "
            f"refusing to audit a newer schema than this build understands"
        )
    return cls(**row)


class Logbook:
    """In-memory log store with shutdown-time serialization."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.tasks: list[TaskRecord] = []
        self.apps: dict[int, AppRecord] = {}
        #: (time, ready-queue depth) per scheduling round - the trace
        #: exporter renders this as a Perfetto counter track.
        self.rounds: list[tuple[float, int]] = []

    def record_task(self, task: Task) -> None:
        if self.enabled:
            self.tasks.append(TaskRecord.from_task(task))

    def record_round(self, now: float, ready_depth: int) -> None:
        if self.enabled:
            self.rounds.append((now, ready_depth))

    def open_app(self, record: AppRecord) -> None:
        self.apps[record.app_id] = record

    def close_app(self, app_id: int, t_finish: float) -> AppRecord:
        record = self.apps[app_id]
        record.t_finish = t_finish
        return record

    def serialize(self) -> dict[str, Any]:
        """JSON-compatible dump (what CEDR writes at shutdown)."""
        return {
            "schema": SCHEMA_VERSION,
            "tasks": [asdict(t) for t in self.tasks],
            "apps": [asdict(a) for a in self.apps.values()],
            "rounds": [list(r) for r in self.rounds],
        }

    def save(self, path) -> str:
        """Write :meth:`serialize` as JSON to *path* (the shutdown dump)."""
        path = Path(path)
        path.write_text(json.dumps(self.serialize(), indent=2), encoding="utf-8")
        return str(path)

    @classmethod
    def from_dict(cls, dump: dict[str, Any]) -> "Logbook":
        """Rebuild a logbook from a :meth:`serialize` dump."""
        schema = dump.get("schema", 1)  # v1 dumps predate the version key
        if not isinstance(schema, int) or schema < 1 or schema > SCHEMA_VERSION:
            raise ValueError(
                f"unsupported logbook schema {schema!r} "
                f"(this build reads 1..{SCHEMA_VERSION})"
            )
        book = cls(enabled=True)
        for row in dump.get("tasks", []):
            row = dict(row)
            if "successors" in row:
                row["successors"] = tuple(row["successors"])
            book.tasks.append(_load_record(TaskRecord, row))
        for row in dump.get("apps", []):
            record = _load_record(AppRecord, dict(row))
            book.apps[record.app_id] = record
        book.rounds = [(float(t), int(d)) for t, d in dump.get("rounds", [])]
        return book

    @classmethod
    def load(cls, path) -> "Logbook":
        """Read a :meth:`save` dump back; inverse of the shutdown write."""
        dump = json.loads(Path(path).read_text(encoding="utf-8"))
        return cls.from_dict(dump)

    def tasks_by_pe(self) -> dict[str, int]:
        """Per-PE executed-task histogram (quick load-balance view)."""
        hist: dict[str, int] = {}
        for rec in self.tasks:
            hist[rec.pe] = hist.get(rec.pe, 0) + 1
        return hist
