"""The CEDR metric catalog: every series the runtime exports, in one place.

:class:`CedrTelemetry` owns the :class:`~repro.telemetry.registry.
MetricRegistry` for one :class:`~repro.runtime.daemon.CedrRuntime` and
pre-registers the full metric set at construction, so the catalog (names,
types, bucket ladders) is identical for every run - a zero-task run and a
saturated sweep export the same families, just with different values.

Instrumentation points (who writes what):

=====================  ==================================================
daemon                 ``cedr_ready_queue_depth``, ``cedr_sched_rounds``,
                       ``cedr_sched_decision_seconds``,
                       ``cedr_sched_batch_tasks``,
                       ``cedr_sched_latency_seconds`` (doorbell to
                       dispatch, per task), ``cedr_apps_completed``
workers                ``cedr_pe_dispatch_total``,
                       ``cedr_pe_busy_seconds_total``,
                       ``cedr_tasks_completed``
libCEDR client         ``cedr_api_calls_total``,
                       ``cedr_api_call_latency_seconds`` (blocking and
                       non-blocking), ``cedr_api_inflight_requests``
fault layer (bridged   ``cedr_faults_injected_total``,
via PerfCounters)      ``cedr_task_failures_total``, ``cedr_task_
                       retries_total``, ``cedr_tasks_lost_total``,
                       ``cedr_pe_quarantines_total``,
                       ``cedr_pe_revivals_total``,
                       ``cedr_task_recovery_seconds``
sampler                ``cedr_pe_utilization`` (derived at snapshot time)
engine (bridged via    ``simcore_late_timers_total``
``Engine.on_late_timer``)
=====================  ==================================================

All recording is plain state mutation - no simulated cost, no events - so
telemetry never perturbs the run it measures (the determinism contract in
docs/INTERNALS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from .registry import MetricRegistry

__all__ = ["TelemetryConfig", "CedrTelemetry", "LATENCY_BUCKETS", "DEPTH_BUCKETS", "RECOVERY_BUCKETS"]

#: latency ladder (seconds): 1-2.5-5 steps per decade, 1 us .. 1 s.
LATENCY_BUCKETS: tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6,
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    1e-1, 2.5e-1, 5e-1,
    1.0,
)

#: ready-batch / queue-depth ladder (tasks per scheduling round).
DEPTH_BUCKETS: tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)

#: first-failure -> successful-completion ladder (seconds).
RECOVERY_BUCKETS: tuple[float, ...] = (1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 5e-1, 1.0, 5.0, 10.0)


@dataclass(frozen=True)
class TelemetryConfig:
    """Per-run telemetry knobs (attach to ``RuntimeConfig.telemetry``).

    ``sample_interval_s > 0`` arms the periodic snapshot sampler: a
    simulator timer fires every interval and appends a flattened snapshot
    to :attr:`CedrTelemetry.samples`.  Snapshots are driven purely by the
    virtual clock, so they are bit-identical between serial and process-
    pool (``--jobs``) sweeps.  ``0`` disables sampling; the shutdown-time
    final sample is always taken.
    """

    enabled: bool = True
    sample_interval_s: float = 0.0

    def __post_init__(self) -> None:
        if self.sample_interval_s < 0:
            raise ValueError(
                f"sample_interval_s must be >= 0, got {self.sample_interval_s}"
            )


class CedrTelemetry:
    """Registry plus pre-bound metric handles for one runtime instance."""

    def __init__(self, config: TelemetryConfig, pe_names: Sequence[str] = ()) -> None:
        self.config = config
        self.registry = r = MetricRegistry()
        #: flattened periodic snapshots, ``{"t": sim_seconds, "values": {...}}``.
        self.samples: list[dict[str, Any]] = []
        #: (time, batch size, decision seconds) per scheduling round; the
        #: Chrome-trace exporter renders these as counter events.
        self.round_log: list[tuple[float, int, float]] = []

        # -- daemon --------------------------------------------------------- #
        self.queue_depth = r.gauge(
            "cedr_ready_queue_depth",
            "Ready-queue depth observed at the last scheduling round",
        )
        self.sched_rounds = r.counter(
            "cedr_sched_rounds", "Scheduling rounds executed"
        )
        self.sched_decision_seconds = r.counter(
            "cedr_sched_decision_seconds",
            "Cumulative runtime-core seconds spent inside scheduling heuristics",
        )
        self.sched_batch = r.histogram(
            "cedr_sched_batch_tasks", DEPTH_BUCKETS,
            "Tasks handed to the heuristic per scheduling round",
        )
        self.sched_latency = r.histogram(
            "cedr_sched_latency_seconds", LATENCY_BUCKETS,
            "Doorbell-to-dispatch latency: task release to PE assignment",
        )
        self.apps_completed = r.counter(
            "cedr_apps_completed", "Applications terminated (any outcome)"
        )

        # -- workers -------------------------------------------------------- #
        self.pe_dispatch = r.counter(
            "cedr_pe_dispatch_total", "Tasks completed per processing element",
            labels=("pe",),
        )
        self.pe_busy = r.counter(
            "cedr_pe_busy_seconds_total", "Service seconds accumulated per PE",
            labels=("pe",),
        )
        self.pe_util = r.gauge(
            "cedr_pe_utilization",
            "Busy fraction of the run so far (derived at snapshot time)",
            labels=("pe",),
        )
        self.tasks_completed = r.counter(
            "cedr_tasks_completed", "Tasks completed across all PEs"
        )

        # -- libCEDR client -------------------------------------------------- #
        self.api_calls = r.counter(
            "cedr_api_calls_total", "libCEDR calls issued",
            labels=("api", "mode"),
        )
        self.api_latency = r.histogram(
            "cedr_api_call_latency_seconds", LATENCY_BUCKETS,
            "libCEDR call latency, submission to completion",
            labels=("api", "mode"),
        )
        self.api_inflight = r.gauge(
            "cedr_api_inflight_requests",
            "libCEDR calls submitted but not yet completed",
        )

        # -- fault layer (bridged from PerfCounters) ------------------------- #
        self.faults_injected = r.counter(
            "cedr_faults_injected_total", "Faults applied by the injector",
            labels=("kind",),
        )
        self.task_failures = r.counter(
            "cedr_task_failures_total", "Failed task attempts detected",
            labels=("kind",),
        )
        self.task_retries = r.counter(
            "cedr_task_retries_total", "Retry re-enqueues issued by recovery"
        )
        self.tasks_lost = r.counter(
            "cedr_tasks_lost_total", "Tasks abandoned after the retry budget"
        )
        self.stale_dispatches = r.counter(
            "cedr_stale_dispatches_total", "Invalidated dispatches discarded"
        )
        self.pe_quarantines = r.counter(
            "cedr_pe_quarantines_total", "PE quarantine events"
        )
        self.pe_revivals = r.counter(
            "cedr_pe_revivals_total", "PE revival events"
        )
        self.task_recovery = r.histogram(
            "cedr_task_recovery_seconds", RECOVERY_BUCKETS,
            "First failure to successful completion, per recovered task",
        )

        # -- simulator event core (bridged from the engine) ------------------ #
        self.late_timers = r.counter(
            "simcore_late_timers_total",
            "call_at timestamps in the past, clamped to the current instant",
        )

        # Pre-touch per-PE children so every PE appears (with zeros) even if
        # it never executes a task - keeps the export shape run-invariant -
        # and pre-BIND them: ``record_task`` runs once per completed task,
        # so the per-event ``labels()`` probe (tuple build + arity check +
        # family dict lookup) collapses to one plain dict hit here.
        self._pe_names = tuple(pe_names)
        self._pe_dispatch_by_name: dict[str, Any] = {}
        self._pe_busy_by_name: dict[str, Any] = {}
        self._pe_util_by_name: dict[str, Any] = {}
        for name in self._pe_names:
            self._pe_dispatch_by_name[name] = self.pe_dispatch.labels(name)
            self._pe_busy_by_name[name] = self.pe_busy.labels(name)
            self._pe_util_by_name[name] = self.pe_util.labels(name)
        #: (api, mode) -> (calls counter, latency histogram), bound on first
        #: sight: the API name set is workload-defined, so these bind lazily
        #: but still pay ``labels()`` once per distinct pair, not per call.
        self._api_children: dict[tuple[str, str], tuple[Any, Any]] = {}

    # ------------------------------------------------------------------ #
    # instrumentation entry points
    # ------------------------------------------------------------------ #

    def record_round(self, now: float, batch: int, decision_seconds: float) -> None:
        """One scheduling round: depth gauge, counters, trace-merge log."""
        self.queue_depth.set(batch)
        self.sched_rounds.inc()
        self.sched_decision_seconds.inc(decision_seconds)
        self.sched_batch.observe(batch)
        self.round_log.append((now, batch, decision_seconds))

    def record_sched_latency(self, seconds: float) -> None:
        """Doorbell-to-dispatch interval for one task assignment."""
        self.sched_latency.observe(seconds)

    def record_task(self, pe_name: str, service_seconds: float) -> None:
        """Worker-side completion: per-PE dispatch count and busy seconds."""
        dispatch = self._pe_dispatch_by_name.get(pe_name)
        if dispatch is None:
            # a PE unknown at construction (defensive; normal runs pre-bind
            # every PE): bind its children once and proceed
            dispatch = self._pe_dispatch_by_name[pe_name] = self.pe_dispatch.labels(pe_name)
            self._pe_busy_by_name[pe_name] = self.pe_busy.labels(pe_name)
            self._pe_util_by_name[pe_name] = self.pe_util.labels(pe_name)
        dispatch.inc()
        self._pe_busy_by_name[pe_name].inc(service_seconds)
        self.tasks_completed.inc()

    def record_app_completed(self) -> None:
        self.apps_completed.inc()

    def record_api_call(self, api: str, mode: str, latency_seconds: float) -> None:
        """One libCEDR call settled (mode: ``blocking``/``nonblocking``)."""
        pair = self._api_children.get((api, mode))
        if pair is None:
            pair = (
                self.api_calls.labels(api, mode),
                self.api_latency.labels(api, mode),
            )
            self._api_children[(api, mode)] = pair
        pair[0].inc()
        pair[1].observe(latency_seconds)

    # ------------------------------------------------------------------ #
    # snapshot sampling
    # ------------------------------------------------------------------ #

    def _refresh_derived(self, now: float) -> None:
        if now <= 0.0:
            return
        for name in self._pe_names:
            busy = self._pe_busy_by_name[name].value
            self._pe_util_by_name[name].set(busy / now)

    def flat_values(self) -> dict[str, float]:
        """Scalar view of every series, for compact time-series samples.

        Counters/gauges map to their value; histograms contribute
        ``<name>_count`` and ``<name>_sum``.  Labelled series append a
        ``{k=v,...}`` suffix in sorted label order.
        """
        out: dict[str, float] = {}
        for family in self.registry.families():
            for values, metric in family.series():
                suffix = (
                    "{" + ",".join(
                        f"{k}={v}" for k, v in zip(family.label_names, values)
                    ) + "}"
                    if values else ""
                )
                if family.kind == "histogram":
                    out[f"{family.name}_count{suffix}"] = metric.count
                    out[f"{family.name}_sum{suffix}"] = metric.sum
                else:
                    out[f"{family.name}{suffix}"] = metric.value
        return out

    def sample(self, now: float) -> dict[str, Any]:
        """Append (and return) one flattened snapshot stamped with sim time."""
        self._refresh_derived(now)
        snap = {"t": now, "values": self.flat_values()}
        self.samples.append(snap)
        return snap

    def export_state(self) -> dict[str, Any]:
        """Picklable summary carried by :class:`~repro.metrics.RunResult`."""
        return {
            "metrics": self.registry.snapshot(),
            "samples": list(self.samples),
        }
