"""repro.telemetry: deterministic runtime metrics for the CEDR reproduction.

A central registry of counters, gauges, and fixed-bucket histograms,
instrumented across the daemon, workers, libCEDR client, and the fault
layer; periodic snapshots driven by simulator timers; Prometheus-text and
JSON exporters.  See docs/INTERNALS.md ("Telemetry") for metric names,
bucket ladders, and the determinism contract.
"""

from .exporters import (
    to_json_dict,
    to_prometheus_text,
    write_json,
    write_metrics,
    write_prometheus,
)
from .registry import Counter, Gauge, Histogram, MetricFamily, MetricRegistry
from .runtime_metrics import (
    DEPTH_BUCKETS,
    LATENCY_BUCKETS,
    RECOVERY_BUCKETS,
    CedrTelemetry,
    TelemetryConfig,
)
from .sampler import SnapshotSampler

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricRegistry",
    "CedrTelemetry",
    "TelemetryConfig",
    "SnapshotSampler",
    "LATENCY_BUCKETS",
    "DEPTH_BUCKETS",
    "RECOVERY_BUCKETS",
    "to_prometheus_text",
    "to_json_dict",
    "write_prometheus",
    "write_json",
    "write_metrics",
]
