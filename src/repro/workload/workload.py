"""Workload composition: which applications, how many instances, when.

A :class:`WorkloadSpec` is the experiment-facing description ("5x Pulse
Doppler + 5x WiFi TX") that, given an injection rate and a mode, expands
into concrete (AppInstance, arrival-time) pairs ready for submission.  The
paper's two workloads are provided as constructors:

* :func:`radar_comms_workload` - 5x PD + 5x TX (Figs 5-8);
* :func:`autonomous_vehicle_workload` - 1x LD (long-latency, continuous)
  plus dynamically arriving PD and TX instances (Figs 9-10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from itertools import islice

from repro.apps import CedrApplication, LaneDetection, PulseDoppler, Variant, WifiTx
from repro.registry import Registry
from repro.runtime.app import AppInstance
from repro.serve.arrival import available_arrivals, make_arrival_stream
from repro.simcore import child_rng

from .injection import stream_spec

__all__ = [
    "WORKLOADS",
    "WorkloadEntry",
    "WorkloadSpec",
    "register_workload",
    "make_workload",
    "available_workloads",
    "radar_comms_workload",
    "autonomous_vehicle_workload",
]

#: named workload presets - factories returning a :class:`WorkloadSpec`.
#: Scenario specs reference these by name (``preset = "radar-comms"``);
#: third-party mixes plug in via the ``repro.workloads`` entry-point group.
WORKLOADS: Registry = Registry("workload", entry_point_group="repro.workloads")


def register_workload(name: str):
    """Decorator registering a ``(**params) -> WorkloadSpec`` factory."""
    return WORKLOADS.register(name)


def make_workload(name: str, **params) -> "WorkloadSpec":
    """Build a registered workload preset by name."""
    return WORKLOADS.get(name)(**params)


def available_workloads() -> tuple[str, ...]:
    """Registered workload-preset names, sorted."""
    return WORKLOADS.names()


@dataclass(frozen=True)
class WorkloadEntry:
    """One application stream inside a workload."""

    app: CedrApplication
    count: int
    variant: Optional[Variant] = None  # None -> app's default

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"stream of {self.app.name} needs count >= 1")


@dataclass(frozen=True)
class WorkloadSpec:
    """A mix of application streams.

    ``arrival_process`` names any generator in the arrival registry
    (:mod:`repro.serve.arrival`): ``"periodic"`` is the paper's definition
    (instance *j* at ``j * frame_mb / rate``); ``"poisson"`` keeps the
    same mean rate with exponential gaps (CEDR's arbitrary-trace
    injection, used by the arrival-process ablation); ``"bursty"`` /
    ``"diurnal"`` / ``"trace"`` open the same ablation to the service
    tier's processes.  ``arrival_params`` forwards process-specific
    parameters (e.g. ``(("burst_len", 0.02),)``) into the generator.
    """

    name: str
    entries: tuple[WorkloadEntry, ...]
    arrival_process: str = "periodic"
    arrival_params: tuple[tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if self.arrival_process not in available_arrivals():
            raise ValueError(
                f"unknown arrival process {self.arrival_process!r}; "
                f"available: {available_arrivals()}"
            )

    @property
    def total_instances(self) -> int:
        return sum(e.count for e in self.entries)

    def instantiate(
        self, mode: str, rate_mbps: float, seed: int
    ) -> list[tuple[AppInstance, float]]:
        """Expand into (instance, arrival time) pairs for one run.

        Input data is synthesized from a per-(seed, stream) RNG so trials
        with different seeds see different noise/payloads but the same
        structure; Poisson gaps draw from a separate per-stream stream so
        arrival randomness never perturbs payload synthesis.
        """
        out: list[tuple[AppInstance, float]] = []
        for entry in self.entries:
            # one registry stream per (entry, rate): the spec carries the
            # exact frame_mb / rate_mbps period, the RNG label is the
            # historical per-stream one, so periodic/poisson schedules are
            # bit-identical to the pre-registry inline code paths
            spec = stream_spec(
                self.arrival_process, entry.app.frame_mb, rate_mbps,
                extra=self.arrival_params,
            )
            arrival_rng = child_rng(seed, f"arrivals.{self.name}.{entry.app.name}")
            arrivals = list(
                islice(make_arrival_stream(spec, arrival_rng), entry.count)
            )
            if len(arrivals) < entry.count:
                raise ValueError(
                    f"arrival process {self.arrival_process!r} produced only "
                    f"{len(arrivals)} of {entry.count} instances for stream "
                    f"{entry.app.name!r} (finite trace shorter than the "
                    f"workload - add loop= or shrink the stream)"
                )
            rng = child_rng(seed, f"workload.{self.name}.{entry.app.name}")
            for j, t in enumerate(arrivals):
                inst = entry.app.make_instance(mode, rng, variant=entry.variant)
                out.append((inst, float(t)))
        out.sort(key=lambda pair: pair[1])
        return out


@register_workload("radar-comms")
def radar_comms_workload(
    n_pd: int = 5,
    n_tx: int = 5,
    pd: Optional[PulseDoppler] = None,
    tx: Optional[WifiTx] = None,
    variant: Optional[Variant] = None,
) -> WorkloadSpec:
    """The Fig. 5-8 workload: 5 instances each of Pulse Doppler and WiFi TX."""
    return WorkloadSpec(
        name="radar-comms",
        entries=(
            WorkloadEntry(pd or PulseDoppler(), n_pd, variant),
            WorkloadEntry(tx or WifiTx(), n_tx, variant),
        ),
    )


@register_workload("autonomous-vehicle")
def autonomous_vehicle_workload(
    n_ld: int = 1,
    n_pd: int = 5,
    n_tx: int = 5,
    ld: Optional[LaneDetection] = None,
    pd: Optional[PulseDoppler] = None,
    tx: Optional[WifiTx] = None,
) -> WorkloadSpec:
    """The Fig. 9-10 workload: one long-latency Lane Detection instance with
    dynamically arriving Pulse Doppler and WiFi TX instances."""
    return WorkloadSpec(
        name="autonomous-vehicle",
        entries=(
            WorkloadEntry(ld or LaneDetection(), n_ld),
            WorkloadEntry(pd or PulseDoppler(), n_pd),
            WorkloadEntry(tx or WifiTx(), n_tx),
        ),
    )
