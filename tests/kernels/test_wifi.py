"""WiFi baseband kernel tests: scrambler, FEC, interleaver, modulation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import wifi

bit_arrays = st.lists(st.integers(0, 1), min_size=1, max_size=200).map(
    lambda bits: np.array(bits, dtype=np.uint8)
)
seeds7 = st.integers(min_value=1, max_value=127)


# --------------------------------------------------------------------- #
# scrambler
# --------------------------------------------------------------------- #

@given(bits=bit_arrays, seed=seeds7)
@settings(max_examples=50, deadline=None)
def test_scrambler_is_an_involution(bits, seed):
    assert np.array_equal(wifi.scramble(wifi.scramble(bits, seed), seed), bits)


def test_scrambler_seed_changes_output():
    bits = np.zeros(64, dtype=np.uint8)
    a = wifi.scramble(bits, seed=0b1011101)
    b = wifi.scramble(bits, seed=0b0000001)
    assert not np.array_equal(a, b)


def test_scrambler_whitens_constant_input():
    bits = np.zeros(1024, dtype=np.uint8)
    out = wifi.scramble(bits)
    density = out.mean()
    assert 0.4 < density < 0.6  # LFSR output is balanced


def test_scrambler_rejects_bad_seed():
    with pytest.raises(ValueError):
        wifi.scramble(np.zeros(8, dtype=np.uint8), seed=0)
    with pytest.raises(ValueError):
        wifi.scramble(np.zeros(8, dtype=np.uint8), seed=128)


def test_scrambler_rejects_non_bits():
    with pytest.raises(ValueError):
        wifi.scramble(np.array([0, 2, 1], dtype=np.uint8))


# --------------------------------------------------------------------- #
# convolutional code + Viterbi
# --------------------------------------------------------------------- #

@given(bits=bit_arrays)
@settings(max_examples=30, deadline=None)
def test_fec_roundtrip_terminated(bits):
    coded = wifi.conv_encode(bits)
    assert coded.size == 2 * (bits.size + 6)
    assert np.array_equal(wifi.viterbi_decode(coded), bits)


@given(bits=st.lists(st.integers(0, 1), min_size=16, max_size=96).map(
    lambda b: np.array(b, dtype=np.uint8)))
@settings(max_examples=30, deadline=None)
def test_fec_roundtrip_packet_mode(bits):
    coded = wifi.conv_encode(bits, terminate=False)
    assert coded.size == 2 * bits.size
    assert np.array_equal(wifi.viterbi_decode(coded, terminated=False), bits)


def test_viterbi_corrects_isolated_bit_errors(rng):
    bits = rng.integers(0, 2, 48).astype(np.uint8)
    coded = wifi.conv_encode(bits)
    corrupted = coded.copy()
    corrupted[10] ^= 1
    corrupted[60] ^= 1  # two well-separated hard errors
    assert np.array_equal(wifi.viterbi_decode(corrupted), bits)


def test_viterbi_rejects_odd_length():
    with pytest.raises(ValueError):
        wifi.viterbi_decode(np.zeros(7, dtype=np.uint8))


def test_encoder_output_is_binary(rng):
    coded = wifi.conv_encode(rng.integers(0, 2, 64).astype(np.uint8))
    assert set(np.unique(coded)) <= {0, 1}


# --------------------------------------------------------------------- #
# interleaver
# --------------------------------------------------------------------- #

@given(
    n_blocks=st.integers(1, 4),
    n_cbps=st.sampled_from([16, 48, 128, 192]),
    seed=st.integers(0, 2**31),
)
@settings(max_examples=30, deadline=None)
def test_interleaver_roundtrip(n_blocks, n_cbps, seed):
    rng = np.random.default_rng(seed)
    bits = rng.integers(0, 2, n_blocks * n_cbps).astype(np.uint8)
    out = wifi.interleave(bits, n_cbps)
    assert np.array_equal(wifi.deinterleave(out, n_cbps), bits)


def test_interleaver_is_a_permutation():
    n = 128
    marked = np.arange(n) % 2  # not used for perm check, just type
    perm_in = np.arange(n)
    out = wifi.interleave((perm_in % 2).astype(np.uint8), n)
    assert out.size == n
    # spreading property: adjacent input bits are not adjacent in output
    spread = wifi._interleave_perm(n)
    assert sorted(spread.tolist()) == list(range(n))
    gaps = np.abs(np.diff(np.argsort(spread)))
    assert gaps.min() >= 8  # adjacent coded bits separated by >= n/16


def test_interleaver_length_errors():
    with pytest.raises(ValueError):
        wifi.interleave(np.zeros(100, dtype=np.uint8), 48)
    with pytest.raises(ValueError):
        wifi.interleave(np.zeros(24, dtype=np.uint8), 24)  # not /16


# --------------------------------------------------------------------- #
# modulation + OFDM assembly
# --------------------------------------------------------------------- #

@given(
    scheme=st.sampled_from(["bpsk", "qpsk", "16qam"]),
    seed=st.integers(0, 2**31),
)
@settings(max_examples=30, deadline=None)
def test_modulation_roundtrip(scheme, seed):
    rng = np.random.default_rng(seed)
    k = {"bpsk": 1, "qpsk": 2, "16qam": 4}[scheme]
    bits = rng.integers(0, 2, 24 * k).astype(np.uint8)
    symbols = wifi.modulate(bits, scheme)
    assert symbols.size == 24
    assert np.array_equal(wifi.demodulate_hard(symbols, scheme), bits)


def test_constellations_have_unit_average_power():
    for name, const in wifi.MODULATIONS.items():
        power = np.mean(np.abs(const) ** 2)
        assert power == pytest.approx(1.0), name


def test_modulate_errors():
    with pytest.raises(KeyError):
        wifi.modulate(np.zeros(4, dtype=np.uint8), "8psk")
    with pytest.raises(ValueError):
        wifi.modulate(np.zeros(3, dtype=np.uint8), "qpsk")


def test_ofdm_grid_layout(rng):
    symbols = (rng.normal(size=64) + 1j * rng.normal(size=64)) / np.sqrt(2)
    grid = wifi.ofdm_modulate(symbols)
    assert grid.shape == (wifi.N_SUBCARRIERS,)
    assert np.allclose(grid[wifi.PILOT_CARRIERS], wifi.PILOT_VALUE)
    assert np.allclose(grid[wifi.DATA_CARRIERS], symbols)
    used = set(wifi.DATA_CARRIERS.tolist()) | set(wifi.PILOT_CARRIERS.tolist())
    unused = [i for i in range(wifi.N_SUBCARRIERS) if i not in used]
    assert np.allclose(grid[unused], 0.0)
    assert 0 in unused  # DC stays null


def test_ofdm_wrong_symbol_count_rejected(rng):
    with pytest.raises(ValueError):
        wifi.ofdm_modulate(np.zeros(63, dtype=complex))


def test_cyclic_prefix_is_cyclic(rng):
    sym = rng.normal(size=128) + 1j * rng.normal(size=128)
    out = wifi.add_cyclic_prefix(sym, 32)
    assert out.shape == (160,)
    assert np.allclose(out[:32], sym[-32:])
    assert np.allclose(out[32:], sym)


def test_cyclic_prefix_bounds():
    sym = np.zeros(64, dtype=complex)
    with pytest.raises(ValueError):
        wifi.add_cyclic_prefix(sym, 0)
    with pytest.raises(ValueError):
        wifi.add_cyclic_prefix(sym, 65)
