"""Trial aggregation: the paper averages every metric over 25 trials.

:class:`TrialStats` summarizes one metric across repeated runs (mean, std,
confidence half-width); :func:`aggregate_trials` reduces a list of
:class:`~repro.metrics.measures.RunResult` objects to per-metric statistics.
Benchmarks use fewer trials than the paper (documented per bench) - the
interfaces are count-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from .measures import RunResult

__all__ = ["TrialStats", "aggregate_trials", "saturated_mean"]


@dataclass(frozen=True)
class TrialStats:
    """Mean/std/extremes of one scalar metric over trials."""

    mean: float
    std: float
    n: int
    lo: float
    hi: float

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "TrialStats":
        if not len(samples):
            raise ValueError("no samples to aggregate")
        arr = np.asarray(samples, dtype=float)
        return cls(
            mean=float(arr.mean()),
            std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
            n=int(arr.size),
            lo=float(arr.min()),
            hi=float(arr.max()),
        )

    @property
    def sem(self) -> float:
        """Standard error of the mean."""
        return self.std / np.sqrt(self.n) if self.n > 1 else 0.0


_METRICS: dict[str, Callable[[RunResult], float]] = {
    "exec_time": lambda r: r.mean_exec_time,
    "runtime_overhead": lambda r: r.runtime_overhead_per_app,
    "sched_overhead": lambda r: r.sched_overhead_per_app,
    "makespan": lambda r: r.makespan,
    "ready_depth_mean": lambda r: r.ready_depth_mean,
    "goodput": lambda r: r.goodput,
}


def aggregate_trials(results: Sequence[RunResult]) -> dict[str, TrialStats]:
    """Reduce trial runs to {metric name: TrialStats}."""
    if not results:
        raise ValueError("no trial results to aggregate")
    return {
        name: TrialStats.from_samples([fn(r) for r in results])
        for name, fn in _METRICS.items()
    }


def saturated_mean(xs: Sequence[float], ys: Sequence[float], x_from: float) -> float:
    """Mean of *ys* over the saturated region ``x >= x_from``.

    The paper quotes saturated-region averages (e.g. the 19.52% Fig. 5
    reduction "throughout the saturated region"); this helper computes them
    from a sweep series.
    """
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.shape != ys.shape:
        raise ValueError(f"series length mismatch: {xs.shape} vs {ys.shape}")
    mask = xs >= x_from
    if not mask.any():
        raise ValueError(f"no points at or beyond x={x_from}")
    return float(ys[mask].mean())
