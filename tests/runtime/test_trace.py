"""Chrome-trace export tests."""

import json

import numpy as np
import pytest

from repro.apps import PulseDoppler
from repro.platforms import zcu102
from repro.runtime import CedrRuntime, RuntimeConfig
from repro.runtime.trace import APP_PID, to_chrome_trace, write_chrome_trace


@pytest.fixture(scope="module")
def finished_runtime():
    platform = zcu102(n_cpu=3, n_fft=1).build(seed=7)
    runtime = CedrRuntime(platform, RuntimeConfig(scheduler="eft"))
    runtime.start()
    rng = np.random.default_rng(7)
    for i in range(2):
        runtime.submit(PulseDoppler(batch=16).make_instance("api", rng), at=i * 1e-3)
    runtime.seal()
    runtime.run()
    return runtime


def test_trace_structure(finished_runtime):
    trace = to_chrome_trace(finished_runtime)
    assert "traceEvents" in trace
    assert trace["otherData"]["apps"] == 2
    assert trace["otherData"]["scheduler"] == "eft"
    kinds = {e["ph"] for e in trace["traceEvents"]}
    assert kinds == {"M", "X"}


def test_trace_has_one_task_event_per_logbook_record(finished_runtime):
    trace = to_chrome_trace(finished_runtime)
    task_events = [e for e in trace["traceEvents"] if e.get("cat") == "task"]
    assert len(task_events) == len(finished_runtime.logbook.tasks)
    for e in task_events:
        assert e["dur"] > 0
        assert e["ts"] >= 0


def test_trace_app_spans_match_execution_times(finished_runtime):
    trace = to_chrome_trace(finished_runtime)
    app_events = [e for e in trace["traceEvents"] if e.get("cat") == "app"]
    assert len(app_events) == 2
    for e in app_events:
        assert e["pid"] == APP_PID
        app = finished_runtime.apps[e["tid"]]
        assert e["dur"] == pytest.approx(app.execution_time * 1e6)


def test_trace_queue_wait_precedes_service(finished_runtime):
    trace = to_chrome_trace(finished_runtime)
    by_task = {}
    for e in trace["traceEvents"]:
        if e.get("cat") in ("task", "queue"):
            by_task.setdefault(e["args"]["task"], {})[e["cat"]] = e
    waited = [v for v in by_task.values() if "queue" in v]
    assert waited, "some task should have waited in the queue"
    for v in waited:
        wait, task = v["queue"], v["task"]
        assert wait["ts"] + wait["dur"] == pytest.approx(task["ts"], rel=1e-9)


def test_write_chrome_trace_roundtrip(finished_runtime, tmp_path):
    path = tmp_path / "run.trace.json"
    out = write_chrome_trace(str(path), finished_runtime)
    assert out == str(path)
    loaded = json.loads(path.read_text())
    assert loaded["displayTimeUnit"] == "ms"
    assert len(loaded["traceEvents"]) > 10
