"""Fig. 8 - execution time on the Jetson AGX Xavier, DAG vs API.

Setup (paper Section IV-A): the same 5x PD + 5x TX workload on the Jetson
with 3 CPU worker PEs and the GPU.  With 7 physical worker-pool cores, the
API runtime's application threads spread onto the cores the DAG runtime's
3+1 worker threads leave idle, so - opposite to the ZCU102 - API-based
execution times come out *below* DAG-based ones.

Panels: fig8a (DAG) and fig8b (API), one series per scheduler.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.metrics import FigureSeries
from repro.platforms import jetson
from repro.sched import paper_schedulers
from repro.workload import radar_comms_workload, reduced_injection_rates

from .common import sweep_rates

__all__ = ["run_fig8"]


def run_fig8(
    rates: Optional[Sequence[float]] = None,
    trials: int = 2,
    seed: int = 0,
    schedulers: Sequence[str] = paper_schedulers(),
    n_jobs: Optional[int] = None,
) -> dict[str, FigureSeries]:
    """Regenerate Fig. 8(a,b); returns {panel id: FigureSeries}."""
    rates = list(rates) if rates is not None else list(reduced_injection_rates())
    platform = jetson(n_cpu=3, n_gpu=1)
    workload = radar_comms_workload()
    panels = {
        "fig8a": FigureSeries(
            "fig8a", "Execution time, DAG-based CEDR (Jetson 3 CPU + 1 GPU)",
            "injection rate (Mbps)", "execution time per app (s)",
        ),
        "fig8b": FigureSeries(
            "fig8b", "Execution time, API-based CEDR (Jetson 3 CPU + 1 GPU)",
            "injection rate (Mbps)", "execution time per app (s)",
        ),
    }
    for mode, panel in (("dag", "fig8a"), ("api", "fig8b")):
        for scheduler in schedulers:
            sweep = sweep_rates(
                platform, workload, mode, rates, scheduler, trials=trials,
                base_seed=seed, n_jobs=n_jobs,
            )
            xs, ys = sweep.series("exec_time")
            panels[panel].add(scheduler.upper(), xs, ys)
    return panels
