"""Minimum Execution Time: CEDR's simplest heterogeneity-aware heuristic.

MET maps each task to the PE *type* with the smallest execution estimate,
ignoring queue state entirely (Braun et al.'s classic baseline; part of the
scheduler repertoire of the CEDR ecosystem's HEFT_RT paper [12]).  Ties and
same-type replicas are broken round-robin so, e.g., eight FFT accelerators
all receive work.  Its pathology - piling every task of one API onto the
"fastest" PE class regardless of backlog - makes it a useful contrast
series for the Fig. 10 ablations.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .base import (
    EstimateFn,
    Scheduler,
    candidate_mask,
    estimate_matrix,
    register_scheduler,
)

__all__ = ["MinimumExecutionTime"]


@register_scheduler
class MinimumExecutionTime(Scheduler):
    """O(PEs) per task; queue-state-blind."""

    name = "met"

    def __init__(self, cost_per_eval_us: float = 0.12) -> None:
        self.cost_per_eval_us = cost_per_eval_us
        self._cursor: dict[float, int] = {}

    def schedule(self, ready, pes: Sequence, now: float, estimate: EstimateFn):
        if not ready:
            return []
        mask = candidate_mask(ready, pes, estimate)
        est = estimate_matrix(ready, pes, estimate, mask)
        assignments = []
        for i, task in enumerate(ready):
            row = est[i]
            best = float(row.min())
            # excluded cells are +inf, so the epsilon tie-band only ever
            # matches candidate PEs, in PE order like the old list filter
            fastest = np.flatnonzero(row <= best * (1 + 1e-12))
            cursor = self._cursor.get(best, 0)
            j = int(fastest[cursor % len(fastest)])
            self._cursor[best] = cursor + 1
            pe = pes[j]
            assignments.append((task, pe))
            pe.expected_free = max(pe.expected_free, now) + float(row[j])
        return assignments

    def round_cost(self, n_ready: int, n_pes: int) -> float:
        return self.cost_per_eval_us * 1e-6 * n_ready * n_pes
