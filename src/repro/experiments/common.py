"""Shared experiment machinery: single runs, trials, and rate sweeps.

Every figure driver funnels through :func:`run_once`: build the platform,
start a CEDR runtime with the requested scheduler/mode, submit the workload
at the requested injection rate, run the simulation to completion, and
extract a :class:`~repro.metrics.RunResult`.  Sweeps layer trials and rate
grids on top.

Figure benchmarks run timing-only (``execute=False``): kernels are not
numerically evaluated, which changes nothing about queueing or contention
(all costs come from the timing model) but keeps full sweeps fast.
Integration tests run the same paths with ``execute=True`` to pin the
functional behaviour.

Parallel sweeps
---------------

A run is a pure function of ``(platform, workload, mode, rate, scheduler,
seed, execute, config)``: the engine owns its RNG, seeded from ``seed``, and
no state leaks between runs.  :func:`run_trials` and :func:`sweep_rates`
therefore accept ``n_jobs`` and shard their (rate, trial-seed) cells across
a :class:`~concurrent.futures.ProcessPoolExecutor` - results are collected
in grid order, so the output is **bit-identical** to the serial path (a
property the determinism tests pin).  ``n_jobs=None`` reads the
``REPRO_JOBS`` environment variable (default 1, i.e. serial); ``n_jobs<=-1``
means one worker per CPU.  This is what makes the paper's full 29-rate x
25-trial grids tractable - see EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.metrics import RunResult, TrialStats, aggregate_trials
from repro.platforms import PlatformConfig
from repro.runtime import CedrRuntime, RuntimeConfig
from repro.workload import WorkloadSpec

__all__ = ["run_once", "run_trials", "RateSweep", "sweep_rates", "resolve_jobs"]

#: environment variable holding the default worker-process count
JOBS_ENV = "REPRO_JOBS"


def resolve_jobs(n_jobs: Optional[int]) -> int:
    """Resolve an ``n_jobs`` argument to a concrete worker count.

    ``None`` defers to the ``REPRO_JOBS`` environment variable (absent or
    empty means serial); any value <= -1 means one worker per CPU.
    """
    if n_jobs is None:
        raw = os.environ.get(JOBS_ENV, "").strip()
        try:
            n_jobs = int(raw) if raw else 1
        except ValueError:
            raise ValueError(
                f"{JOBS_ENV} must be an integer worker count, got {raw!r}"
            ) from None
    if n_jobs <= -1:
        n_jobs = os.cpu_count() or 1
    return max(1, n_jobs)


def run_once(
    platform: PlatformConfig,
    workload: WorkloadSpec,
    mode: str,
    rate_mbps: float,
    scheduler: str,
    seed: int = 0,
    execute: bool = False,
    config: Optional[RuntimeConfig] = None,
) -> RunResult:
    """One complete simulated run; returns its measurements."""
    if config is None:
        config = RuntimeConfig(scheduler=scheduler, execute_kernels=execute)
    else:
        config = config.with_scheduler(scheduler)
    instance = platform.build(seed=seed)
    runtime = CedrRuntime(instance, config)
    runtime.start()
    for app, arrival in workload.instantiate(mode, rate_mbps, seed):
        runtime.submit(app, at=arrival)
    runtime.seal()
    runtime.run()
    return RunResult.from_runtime(runtime)


def _run_cell(cell: tuple) -> RunResult:
    """Picklable worker entry: one (rate, seed) grid cell.

    Module-level (not a closure) so :class:`ProcessPoolExecutor` can ship it
    to worker processes under any start method.
    """
    platform, workload, mode, rate, scheduler, seed, execute, config = cell
    return run_once(
        platform, workload, mode, rate, scheduler,
        seed=seed, execute=execute, config=config,
    )


def _run_cells(cells: list[tuple], n_jobs: int) -> list[RunResult]:
    """Run grid cells, serially or across a process pool, in grid order.

    The executor path uses ``map`` so results come back in submission order
    regardless of completion order - determinism does not depend on worker
    scheduling.
    """
    if n_jobs <= 1 or len(cells) <= 1:
        return [_run_cell(c) for c in cells]
    workers = min(n_jobs, len(cells))
    chunksize = max(1, len(cells) // (workers * 4))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_run_cell, cells, chunksize=chunksize))


def trial_seeds(trials: int, base_seed: int = 0) -> list[int]:
    """The seed grid shared by the serial and parallel paths."""
    return [base_seed + 1000 * t for t in range(trials)]


def run_trials(
    platform: PlatformConfig,
    workload: WorkloadSpec,
    mode: str,
    rate_mbps: float,
    scheduler: str,
    trials: int = 3,
    base_seed: int = 0,
    execute: bool = False,
    config: Optional[RuntimeConfig] = None,
    n_jobs: Optional[int] = None,
) -> list[RunResult]:
    """Repeat :func:`run_once` over ``trials`` seeds (paper: 25 trials).

    ``n_jobs`` > 1 fans the trials out over worker processes; results are
    returned in seed order either way.
    """
    if trials < 1:
        raise ValueError(f"need at least one trial, got {trials}")
    cells = [
        (platform, workload, mode, rate_mbps, scheduler, seed, execute, config)
        for seed in trial_seeds(trials, base_seed)
    ]
    return _run_cells(cells, resolve_jobs(n_jobs))


@dataclass(frozen=True)
class RateSweep:
    """Aggregated metric statistics across an injection-rate grid."""

    rates: tuple[float, ...]
    #: metric name -> per-rate TrialStats, aligned with ``rates``
    stats: dict[str, tuple[TrialStats, ...]]

    def series(self, metric: str) -> tuple[tuple[float, ...], tuple[float, ...]]:
        """(xs, mean ys) for one metric - plot-ready."""
        per_rate = self.stats[metric]
        return self.rates, tuple(s.mean for s in per_rate)


def sweep_rates(
    platform: PlatformConfig,
    workload: WorkloadSpec,
    mode: str,
    rates: Sequence[float],
    scheduler: str,
    trials: int = 3,
    base_seed: int = 0,
    execute: bool = False,
    config: Optional[RuntimeConfig] = None,
    n_jobs: Optional[int] = None,
) -> RateSweep:
    """Run the workload across an injection-rate grid with trials.

    With ``n_jobs`` > 1 every (rate, trial) cell of the grid is an
    independent unit of work sharded across one process pool, so the
    speedup scales with ``rates x trials`` rather than ``trials`` alone.
    """
    rates = tuple(float(r) for r in rates)
    seeds = trial_seeds(trials, base_seed)
    cells = [
        (platform, workload, mode, rate, scheduler, seed, execute, config)
        for rate in rates
        for seed in seeds
    ]
    results = _run_cells(cells, resolve_jobs(n_jobs))
    per_metric: dict[str, list[TrialStats]] = {}
    for i, rate in enumerate(rates):
        rate_results = results[i * trials:(i + 1) * trials]
        for name, stat in aggregate_trials(rate_results).items():
            per_metric.setdefault(name, []).append(stat)
    return RateSweep(
        rates=rates,
        stats={name: tuple(stats) for name, stats in per_metric.items()},
    )
