#!/usr/bin/env python
"""WiFi TX through CEDR plus an offline RX loopback check.

Transmits a frame of 64-bit packets with the WiFi TX application under
API-based CEDR on the emulated ZCU102, then runs a receiver chain (CP
removal -> FFT -> demodulation -> deinterleave -> Viterbi -> descramble)
offline to show the baseband kernels close the loop bit-exactly.

Run:  python examples/wifi_pipeline.py
"""

import numpy as np

from repro.apps import WifiTx
from repro.kernels import wifi
from repro.kernels.fft import fft as cpu_fft
from repro.platforms import zcu102
from repro.runtime import CedrRuntime, RuntimeConfig


def receive(frame: np.ndarray, tx: WifiTx) -> np.ndarray:
    """Demodulate a (n_packets, 160) frame back to payload bits."""
    recovered = []
    for symbol in frame:
        no_cp = symbol[tx.cp_len:]                    # strip cyclic prefix
        grid = cpu_fft(no_cp)                         # back to subcarriers
        data = grid[wifi.DATA_CARRIERS]
        bits = wifi.demodulate_hard(data, tx.scheme)
        coded = wifi.deinterleave(bits, bits.size)
        decoded = wifi.viterbi_decode(coded, terminated=False)
        recovered.append(wifi.scramble(decoded, tx.scrambler_seed))
    return np.stack(recovered)


def main() -> None:
    tx = WifiTx(n_packets=20, batch=2)
    rng = np.random.default_rng(3)
    inputs = tx.make_input(rng)

    platform = zcu102(n_cpu=3, n_fft=1).build(seed=3)
    runtime = CedrRuntime(platform, RuntimeConfig(scheduler="rr"))
    runtime.start()
    instance = tx.make_instance("api", rng, inputs=inputs)
    runtime.submit(instance, at=0.0)
    runtime.seal()
    runtime.run()

    frame = instance.result
    print(f"transmitted {frame.shape[0]} OFDM packets "
          f"({frame.shape[1]} samples each, CP included) "
          f"in {instance.execution_time * 1e3:.2f} ms simulated")

    recovered = receive(frame, tx)
    errors = int(np.sum(recovered != inputs["bits"]))
    print(f"RX loopback: {errors} bit errors over "
          f"{inputs['bits'].size} payload bits")
    assert errors == 0, "loopback must be bit-exact on a clean channel"
    print("scramble -> encode -> interleave -> QPSK -> IFFT chain verified "
          "end to end through the runtime.")


if __name__ == "__main__":
    main()
