"""Delta-debugging minimizer: the evil-scheduler counterexample demo."""

import pytest

from repro.corpus import (
    CorpusConfig,
    generate_corpus,
    minimize_spec,
    run_cell,
    write_artifacts,
)
from repro.scenario import load_scenario


@pytest.fixture
def fat_failing_spec():
    """A deliberately busy run spec: multiple streams, faults, bursty."""
    cfg = CorpusConfig(
        n=12, run_fraction=1.0, fault_fraction=1.0, platforms=("zcu102",)
    )
    specs = generate_corpus(cfg, seed=3)
    return max(specs, key=lambda s: (len(s.apps), sum(a.count for a in s.apps)))


def test_minimizes_to_two_apps_and_one_fault(evil_scheduler, fat_failing_spec):
    spec = fat_failing_spec
    assert sum(a.count for a in spec.apps) > 2  # actually fat
    result = minimize_spec(spec, scheduler=evil_scheduler)
    assert (result.status, result.code) == ("violation", "queue-accounting")
    small = result.spec
    assert sum(a.count for a in small.apps) <= 2
    assert small.faults is None or len(small.faults.kinds) <= 1
    assert result.steps  # it actually shrank something
    # the folded spec reproduces on its own: no scheduler override needed
    again = run_cell(small)
    assert (again.status, again.code) == ("violation", "queue-accounting")


def test_artifacts_and_repro_command(evil_scheduler, fat_failing_spec, tmp_path):
    result = minimize_spec(fat_failing_spec, scheduler=evil_scheduler)
    cell_dir = write_artifacts(result, tmp_path)
    assert (cell_dir / "minimized.json").exists()
    assert (cell_dir / "original.json").exists()
    recipe = (cell_dir / "repro.txt").read_text()
    assert "repro scenario run" in recipe
    assert "queue-accounting" in recipe
    # the written document alone carries scheduler + audit: loading and
    # probing it reproduces the failure exactly as the recipe claims
    reloaded = load_scenario(cell_dir / "minimized.json")
    assert reloaded.scheduler == evil_scheduler
    assert reloaded.audit
    out = run_cell(reloaded)
    assert (out.status, out.code) == ("violation", "queue-accounting")


def test_serve_spec_minimizes(evil_scheduler):
    cfg = CorpusConfig(n=4, run_fraction=0.0, platforms=("zcu102",))
    spec = max(
        generate_corpus(cfg, seed=1), key=lambda s: s.serve.tenants
    )
    assert spec.serve.tenants > 1
    result = minimize_spec(spec, scheduler=evil_scheduler, budget=60)
    assert result.status == "violation"
    assert result.spec.serve.tenants == 1
    assert sum(a.count for a in result.spec.serve.apps) <= 2


def test_healthy_spec_refuses_to_minimize(small_config):
    spec = generate_corpus(small_config, seed=0)[0]
    with pytest.raises(ValueError, match="does not fail"):
        minimize_spec(spec)


def test_budget_caps_probes(evil_scheduler, fat_failing_spec):
    result = minimize_spec(fat_failing_spec, scheduler=evil_scheduler, budget=3)
    assert result.evaluations <= 3
