"""Chrome-trace export tests."""

import json

import numpy as np
import pytest

from repro.apps import PulseDoppler
from repro.faults import FaultConfig, FaultKind, FaultSpec
from repro.platforms import zcu102
from repro.runtime import CedrRuntime, RuntimeConfig
from repro.runtime.trace import (
    APP_PID,
    RUNTIME_PID,
    _sanitize,
    to_chrome_trace,
    write_chrome_trace,
)


@pytest.fixture(scope="module")
def finished_runtime():
    platform = zcu102(n_cpu=3, n_fft=1).build(seed=7)
    runtime = CedrRuntime(platform, RuntimeConfig(scheduler="eft"))
    runtime.start()
    rng = np.random.default_rng(7)
    for i in range(2):
        runtime.submit(PulseDoppler(batch=16).make_instance("api", rng), at=i * 1e-3)
    runtime.seal()
    runtime.run()
    return runtime


def test_trace_structure(finished_runtime):
    trace = to_chrome_trace(finished_runtime)
    assert "traceEvents" in trace
    assert trace["otherData"]["apps"] == 2
    assert trace["otherData"]["scheduler"] == "eft"
    kinds = {e["ph"] for e in trace["traceEvents"]}
    assert kinds == {"M", "X", "C"}  # metadata, spans, ready-depth counter


def test_trace_has_one_task_event_per_logbook_record(finished_runtime):
    trace = to_chrome_trace(finished_runtime)
    task_events = [e for e in trace["traceEvents"] if e.get("cat") == "task"]
    assert len(task_events) == len(finished_runtime.logbook.tasks)
    for e in task_events:
        assert e["dur"] > 0
        assert e["ts"] >= 0


def test_trace_app_spans_match_execution_times(finished_runtime):
    trace = to_chrome_trace(finished_runtime)
    app_events = [e for e in trace["traceEvents"] if e.get("cat") == "app"]
    assert len(app_events) == 2
    for e in app_events:
        assert e["pid"] == APP_PID
        app = finished_runtime.apps[e["tid"]]
        assert e["dur"] == pytest.approx(app.execution_time * 1e6)


def test_trace_queue_wait_precedes_service(finished_runtime):
    trace = to_chrome_trace(finished_runtime)
    by_task = {}
    for e in trace["traceEvents"]:
        if e.get("cat") in ("task", "queue"):
            by_task.setdefault(e["args"]["task"], {})[e["cat"]] = e
    waited = [v for v in by_task.values() if "queue" in v]
    assert waited, "some task should have waited in the queue"
    for v in waited:
        wait, task = v["queue"], v["task"]
        assert wait["ts"] + wait["dur"] == pytest.approx(task["ts"], rel=1e-9)


def test_write_chrome_trace_roundtrip(finished_runtime, tmp_path):
    path = tmp_path / "run.trace.json"
    out = write_chrome_trace(str(path), finished_runtime)
    assert out == str(path)
    loaded = json.loads(path.read_text())
    assert loaded["displayTimeUnit"] == "ms"
    assert len(loaded["traceEvents"]) > 10


def test_trace_pe_tracks_are_named_and_sorted(finished_runtime):
    trace = to_chrome_trace(finished_runtime)
    names = [e for e in trace["traceEvents"]
             if e["ph"] == "M" and e["name"] == "process_name"]
    pe_names = {e["args"]["name"] for e in names if e["pid"] < APP_PID}
    assert pe_names == {f"PE {pe.name} ({pe.kind.value})"
                        for pe in finished_runtime.platform.pes}
    sort_keys = [e for e in trace["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "process_sort_index"]
    assert len(sort_keys) == len(finished_runtime.platform.pes)


def test_trace_counter_track_mirrors_scheduler_rounds(finished_runtime):
    trace = to_chrome_trace(finished_runtime)
    counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
    assert len(counters) == len(finished_runtime.logbook.rounds)
    for e in counters:
        assert e["pid"] == RUNTIME_PID
        assert e["ts"] >= 0
        assert e["args"]["depth"] >= 0
    # counter samples arrive in scheduling order: timestamps never regress
    ts = [e["ts"] for e in counters]
    assert ts == sorted(ts)


def test_trace_marks_faults_and_retries():
    platform = zcu102(n_cpu=3, n_fft=1).build(seed=7)
    faults = FaultConfig(
        script=tuple(FaultSpec(at=0.0, pe=pe.name, kind=FaultKind.TRANSIENT)
                     for pe in platform.pes),
        max_retries=8,
    )
    runtime = CedrRuntime(
        platform, RuntimeConfig(scheduler="rr", faults=faults))
    runtime.start()
    runtime.submit(
        PulseDoppler(batch=4).make_instance("api", np.random.default_rng(3)),
        at=0.0)
    runtime.seal()
    runtime.run()

    trace = to_chrome_trace(runtime)
    instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
    assert instants and all(e["cat"] == "fault" for e in instants)
    fault_marks = [e for e in instants if e["name"].startswith("fault:")]
    retry_marks = [e for e in instants if e["name"] == "retry"]
    assert len(fault_marks) == len(runtime.faults.records)
    assert retry_marks, "a recovered run must mark its retry re-dispatch"
    for e in retry_marks:
        assert e["args"]["attempt"] >= 1
    assert trace["otherData"]["retries"] == runtime.counters.retries


def test_sanitize_replaces_non_finite_values():
    messy = {
        "a": float("nan"),
        "b": [1.0, float("inf"), {"c": float("-inf"), "d": "ok"}],
        "e": (2, 3.5),
    }
    clean = _sanitize(messy)
    assert clean == {"a": None, "b": [1.0, None, {"c": None, "d": "ok"}],
                     "e": [2, 3.5]}
    # the sanitized structure must survive a strict (allow_nan=False) dump
    json.dumps(clean, allow_nan=False)


def test_write_chrome_trace_is_strict_json(finished_runtime, tmp_path, monkeypatch):
    # poison a metric with NaN: the writer must sanitize instead of emitting
    # bare NaN tokens that strict JSON parsers reject
    monkeypatch.setattr(finished_runtime.metrics, "makespan", float("nan"))
    path = tmp_path / "nan.trace.json"
    write_chrome_trace(str(path), finished_runtime)
    loaded = json.loads(path.read_text())
    assert loaded["otherData"]["makespan_ms"] is None
