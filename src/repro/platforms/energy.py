"""First-order energy model for the emulated platforms.

The paper's motivation is SWaP-C budgets, and its conclusion proposes
big.LITTLE worker management "minimizing the energy and latency" of
accelerator-rich configurations.  This module provides the energy half of
that trade-off study: a simple activity-based model

    E = sum over cores of (P_busy * busy_time + P_idle * idle_time)
      + sum over devices of (P_active * occupied_time)
      + P_platform * makespan

with per-component power constants in the envelope of published numbers
for the two boards (A53 ~0.35 W/core active, Carmel ~1.2 W, LITTLE-class
~0.1 W, FFT IP region ~0.4 W, Volta GPU ~9 W active, plus board static
power).  Like the timing model, the constants are calibration-grade: the
meaningful outputs are *comparisons* between configurations, not absolute
joules.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .pe import PEKind
from .platform import PlatformInstance

__all__ = ["PowerModel", "EnergyBreakdown", "estimate_energy", "ZCU102_POWER", "JETSON_POWER"]


@dataclass(frozen=True)
class PowerModel:
    """Per-component power constants (watts)."""

    cpu_busy_w: float
    cpu_idle_w: float
    little_busy_w: float = 0.1
    little_idle_w: float = 0.03
    accel_active_w: dict[PEKind, float] = field(default_factory=dict)
    platform_static_w: float = 2.0


#: Xilinx ZCU102: A53 cluster + FFT/MMULT fabric regions.
ZCU102_POWER = PowerModel(
    cpu_busy_w=0.35,
    cpu_idle_w=0.08,
    accel_active_w={PEKind.FFT: 0.4, PEKind.MMULT: 0.45},
    platform_static_w=3.0,
)

#: NVIDIA Jetson AGX Xavier: Carmel cores + Volta GPU.
JETSON_POWER = PowerModel(
    cpu_busy_w=1.2,
    cpu_idle_w=0.25,
    accel_active_w={PEKind.GPU: 9.0},
    platform_static_w=5.0,
)


@dataclass(frozen=True)
class EnergyBreakdown:
    """Joules per subsystem over one run."""

    cpu_j: float
    little_j: float
    accel_j: float
    static_j: float
    makespan_s: float

    @property
    def total_j(self) -> float:
        return self.cpu_j + self.little_j + self.accel_j + self.static_j

    @property
    def average_power_w(self) -> float:
        return self.total_j / self.makespan_s if self.makespan_s > 0 else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Energy {self.total_j:.2f} J over {self.makespan_s*1e3:.1f} ms "
                f"(cpu {self.cpu_j:.2f} + little {self.little_j:.2f} + "
                f"accel {self.accel_j:.2f} + static {self.static_j:.2f})>")


def default_power_model(platform: PlatformInstance) -> PowerModel:
    """Pick the preset matching the platform's accelerator mix."""
    kinds = {pe.kind for pe in platform.accel_pes}
    return JETSON_POWER if PEKind.GPU in kinds else ZCU102_POWER


def estimate_energy(
    platform: PlatformInstance,
    power: PowerModel | None = None,
    makespan: float | None = None,
) -> EnergyBreakdown:
    """Activity-based energy of one completed run on *platform*.

    ``makespan`` defaults to the engine's final simulated time.  Busy time
    per core comes from the simulator's per-core accounting (busy-polling
    spinners count as busy, matching their real power draw); device
    occupancy from the device bookkeeping.
    """
    power = power or default_power_model(platform)
    t_end = makespan if makespan is not None else platform.engine.now
    if t_end < 0:
        raise ValueError(f"negative makespan: {t_end}")

    n_big = platform.config.n_worker_cores
    cpu_j = 0.0
    little_j = 0.0
    for i, core in enumerate([*platform.worker_cores, platform.runtime_core]):
        busy = min(core.busy_time, t_end)
        idle = max(0.0, t_end - busy)
        is_little = n_big <= i < n_big + platform.config.n_little_cores
        if is_little:
            little_j += power.little_busy_w * busy + power.little_idle_w * idle
        else:
            cpu_j += power.cpu_busy_w * busy + power.cpu_idle_w * idle

    accel_j = 0.0
    for pe in platform.accel_pes:
        active_w = power.accel_active_w.get(pe.kind, 0.0)
        accel_j += active_w * min(pe.device.busy_time, t_end)

    return EnergyBreakdown(
        cpu_j=cpu_j,
        little_j=little_j,
        accel_j=accel_j,
        static_j=power.platform_static_w * t_end,
        makespan_s=t_end,
    )
