"""Corpus-test fixtures: a registered evil scheduler and small configs."""

from __future__ import annotations

import pytest

from repro.corpus import CorpusConfig
from repro.sched import SCHEDULERS

EVIL_DROP = "evil-drop"


class EvilDropScheduler:
    """ETF wrapper that silently drops the last assignment every round.

    The corpus registers this under a real scheduler name so the standard
    ``SCHEDULERS.create`` path inside ``run_cell`` builds it - the online
    auditor must then catch the dropped dispatch as ``queue-accounting``.
    """

    def __init__(self):
        self._inner = SCHEDULERS.create("etf")

    def round_cost(self, n_tasks, n_pes):
        return self._inner.round_cost(n_tasks, n_pes)

    def schedule(self, batch, pes, now, estimate):
        return self._inner.schedule(batch, pes, now, estimate)[:-1]


@pytest.fixture
def evil_scheduler():
    """Register the assignment-dropping scheduler for one test."""
    SCHEDULERS.register(EVIL_DROP, EvilDropScheduler)
    try:
        yield EVIL_DROP
    finally:
        SCHEDULERS.unregister(EVIL_DROP)


@pytest.fixture
def small_config():
    """A tiny all-run corpus on zcu102 - cheap enough for tier-1."""
    return CorpusConfig(n=2, run_fraction=1.0, platforms=("zcu102",))
