"""Third-party plugins ride every registry-driven surface end to end."""

import pytest

from repro.sched import SCHEDULERS, extra_schedulers
from repro.sched.base import register_scheduler


@pytest.fixture
def lottery_scheduler():
    """Register a throwaway 'third-party' scheduler, then clean up."""

    @register_scheduler
    class LotteryScheduler(SCHEDULERS.get("rr")):
        name = "lottery"

    yield LotteryScheduler
    SCHEDULERS.unregister("lottery")


def test_plugin_scheduler_instantiates(lottery_scheduler):
    assert SCHEDULERS.create("lottery").name == "lottery"
    assert "lottery" in extra_schedulers()  # registry-backed listing


def test_plugin_scheduler_runs_through_cli(lottery_scheduler, capsys):
    from repro.cli import main

    rc = main([
        "run", "--apps", "PD:1,TX:1", "--rate", "200",
        "--scheduler", "lottery", "--timing-only",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "scheduler=lottery" in out
    assert "2 completed" in out


def test_plugin_scheduler_appears_in_repro_list(lottery_scheduler, capsys):
    from repro.cli import main

    assert main(["list"]) == 0
    assert "lottery" in capsys.readouterr().out


def test_unknown_scheduler_error_names_plugin(lottery_scheduler):
    with pytest.raises(KeyError, match="lotterry"):
        SCHEDULERS.get("lotterry")
    try:
        SCHEDULERS.get("lotterry")
    except KeyError as exc:
        assert "lottery" in str(exc)  # listed and suggested
        assert "did you mean" in str(exc)


def test_plugin_figure_runs_through_cli(capsys):
    from repro.cli import main
    from repro.experiments import FIGURES, register_figure

    @register_figure("figtest", summary="plugin smoke figure")
    def _render(args) -> int:
        print(f"figtest rendered with trials={args.trials}")
        return 0

    try:
        rc = main(["figure", "figtest", "--trials", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "figtest rendered with trials=3" in out
    finally:
        FIGURES.unregister("figtest")


def test_plugin_scheduler_runs_in_scenario(lottery_scheduler):
    from repro.scenario import ScenarioSpec, run_scenario

    spec = ScenarioSpec(name="plugin-run", scheduler="lottery",
                        rate_mbps=300.0, execute=False)
    results = run_scenario(spec, trials=1)
    assert len(results) == 1
    assert results[0].n_apps == 4
