"""Run-level measurement extraction with the paper's metric definitions.

Three metrics drive every figure (Section III):

* **average execution time per application** - arrival to completion,
  including all scheduling decisions in between, averaged over the apps in
  the workload;
* **average scheduling overhead per application** - total time the runtime
  spent inside scheduling rounds, normalized by application count;
* **runtime overhead** (Fig. 5) - time spent receiving, managing, and
  terminating applications, *excluding* scheduling, normalized the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.daemon import CedrRuntime

__all__ = ["RunResult"]


@dataclass(frozen=True)
class RunResult:
    """Everything one simulated run contributes to a figure."""

    n_apps: int
    n_cancelled: int
    exec_times: tuple[float, ...]          # per-app arrival->finish seconds
    exec_times_by_app: dict[str, tuple[float, ...]]
    runtime_overhead_s: float
    sched_overhead_s: float
    sched_rounds: int
    ready_depth_mean: float
    ready_depth_max: int
    makespan: float
    tasks_completed: int
    pe_task_histogram: dict[str, int] = field(default_factory=dict)

    # -- resilience metrics (repro.faults); all zero in fault-free runs --- #
    #: apps declared failed after a task exhausted its retry budget.
    n_failed: int = 0
    faults_injected: int = 0
    task_failures: int = 0
    retries: int = 0
    tasks_lost: int = 0
    #: average first-failure -> successful-completion interval (seconds).
    mean_time_to_recovery: float = 0.0

    #: telemetry export (repro.telemetry): ``{"metrics": ..., "samples": ...}``
    #: when the run collected metrics, ``None`` otherwise.  Carried here so
    #: process-pool sweeps ship snapshots back to the parent bit-identically
    #: to the serial path (pinned by the telemetry determinism tests).
    telemetry: Optional[dict] = None

    @classmethod
    def from_runtime(cls, runtime: "CedrRuntime") -> "RunResult":
        finished = [a for a in runtime.apps.values() if a.finished]
        unfinished = [a for a in runtime.apps.values() if not a.finished]
        if unfinished:
            names = ", ".join(f"{a.name}#{a.app_id}" for a in unfinished[:8])
            raise RuntimeError(f"run ended with unfinished applications: {names}")
        # cancelled apps terminated early by the kill command, failed apps
        # by the fault subsystem: both count separately and are excluded
        # from the execution-time statistics
        apps = [a for a in finished if not a.cancelled and not a.failed]
        by_app: dict[str, list[float]] = {}
        for a in apps:
            by_app.setdefault(a.name, []).append(a.execution_time)
        counters = runtime.counters
        return cls(
            n_apps=len(apps),
            n_cancelled=sum(1 for a in finished if a.cancelled),
            exec_times=tuple(a.execution_time for a in apps),
            exec_times_by_app={k: tuple(v) for k, v in by_app.items()},
            runtime_overhead_s=runtime.metrics.runtime_overhead_s,
            sched_overhead_s=runtime.metrics.sched_overhead_s,
            sched_rounds=counters.sched_rounds,
            ready_depth_mean=counters.ready_depth_mean,
            ready_depth_max=counters.ready_depth_max,
            makespan=runtime.metrics.makespan,
            tasks_completed=counters.tasks_completed,
            pe_task_histogram=runtime.logbook.tasks_by_pe(),
            n_failed=sum(1 for a in finished if a.failed and not a.cancelled),
            faults_injected=counters.faults_injected,
            task_failures=counters.task_failures,
            retries=counters.retries,
            tasks_lost=counters.tasks_lost,
            mean_time_to_recovery=counters.mean_time_to_recovery,
            telemetry=(
                runtime.telemetry.export_state()
                if runtime.telemetry is not None
                else None
            ),
        )

    # -- the paper's normalized metrics ------------------------------------ #

    @property
    def mean_exec_time(self) -> float:
        """Average execution time per application (seconds)."""
        return float(np.mean(self.exec_times)) if self.exec_times else 0.0

    @property
    def runtime_overhead_per_app(self) -> float:
        return self.runtime_overhead_s / max(1, self.n_apps)

    @property
    def sched_overhead_per_app(self) -> float:
        return self.sched_overhead_s / max(1, self.n_apps)

    def mean_exec_time_of(self, app_name: str) -> float:
        """Average execution time of one application stream."""
        times = self.exec_times_by_app.get(app_name, ())
        return float(np.mean(times)) if times else 0.0

    @property
    def goodput(self) -> float:
        """Fraction of (non-cancelled) applications that completed
        successfully despite injected faults; 1.0 in a fault-free run."""
        total = self.n_apps + self.n_failed
        return self.n_apps / total if total else 1.0
