"""Chrome-trace export of CEDR execution logs.

The real CEDR serializes task logs at shutdown "for later offline analysis
by the user".  This module turns a :class:`~repro.runtime.logbook.Logbook`
into the Chrome Trace Event Format (the JSON consumed by ``chrome://tracing``
and Perfetto), which is the most practical way to *see* a schedule:

* one trace "process" per PE, with each executed task as a complete event
  (queue wait rendered as a preceding half-opacity span);
* one process for applications, with an arrival-to-completion span per app;
* optional counter track of the ready-queue depth per scheduling round.

Usage::

    runtime.run()
    write_chrome_trace("run.trace.json", runtime)
    # open chrome://tracing or https://ui.perfetto.dev and load the file
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover
    from .daemon import CedrRuntime

__all__ = ["to_chrome_trace", "write_chrome_trace"]

#: trace pid reserved for application lifetime spans
APP_PID = 1_000_000


def _us(seconds: float) -> float:
    return seconds * 1e6


def to_chrome_trace(runtime: "CedrRuntime") -> dict[str, Any]:
    """Build the Chrome Trace Event JSON structure for one completed run."""
    events: list[dict[str, Any]] = []

    # -- metadata: name the PE rows ------------------------------------ #
    pe_pids: dict[str, int] = {}
    for pe in runtime.platform.pes:
        pid = 1000 + pe.index
        pe_pids[pe.name] = pid
        events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": f"PE {pe.name} ({pe.kind.value})"},
        })
        events.append({
            "ph": "M", "name": "process_sort_index", "pid": pid, "tid": 0,
            "args": {"sort_index": pe.index},
        })
    events.append({
        "ph": "M", "name": "process_name", "pid": APP_PID, "tid": 0,
        "args": {"name": "applications"},
    })

    # -- per-task execution + queue-wait spans -------------------------- #
    for rec in runtime.logbook.tasks:
        pid = pe_pids.get(rec.pe)
        if pid is None:
            continue
        if rec.queue_wait > 0:
            events.append({
                "ph": "X", "name": f"wait {rec.api}", "cat": "queue",
                "pid": pid, "tid": 0,
                "ts": _us(rec.t_release), "dur": _us(rec.t_start - rec.t_release),
                "args": {"task": rec.tid, "app": rec.app_id},
            })
        events.append({
            "ph": "X", "name": f"{rec.api}:{rec.name}", "cat": "task",
            "pid": pid, "tid": 0,
            "ts": _us(rec.t_start), "dur": _us(rec.service_time),
            "args": {"task": rec.tid, "app": rec.app_id, "api": rec.api},
        })

    # -- application lifetimes ------------------------------------------ #
    for app in runtime.logbook.apps.values():
        if app.t_finish is None:
            continue
        events.append({
            "ph": "X", "name": f"{app.name}#{app.app_id} ({app.mode})",
            "cat": "app", "pid": APP_PID, "tid": app.app_id,
            "ts": _us(app.t_arrival), "dur": _us(app.execution_time),
            "args": {"mode": app.mode, "exec_ms": app.execution_time * 1e3},
        })

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "platform": runtime.platform.config.name,
            "scheduler": runtime.scheduler.name,
            "makespan_ms": runtime.metrics.makespan * 1e3,
            "apps": runtime.metrics.apps_completed,
            "tasks": runtime.counters.tasks_completed,
        },
    }


def write_chrome_trace(path: str, runtime: "CedrRuntime", indent: Optional[int] = None) -> str:
    """Serialize :func:`to_chrome_trace` to *path*; returns the path."""
    trace = to_chrome_trace(runtime)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh, indent=indent)
    return path
