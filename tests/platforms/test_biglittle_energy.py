"""big.LITTLE platform extension and energy-model tests."""

import numpy as np
import pytest

from repro.platforms import (
    JETSON_POWER,
    ZCU102_POWER,
    PEKind,
    PlatformConfig,
    estimate_energy,
    jetson,
    zcu102,
    zcu102_biglittle,
    zcu102_timing,
)
from repro.runtime import API_MODE, AppInstance, CedrRuntime, RuntimeConfig


def test_biglittle_factory_defaults():
    cfg = zcu102_biglittle()
    assert cfg.n_worker_cores == 3
    assert cfg.n_little_cores == 4
    assert cfg.little_speed == pytest.approx(0.45)
    assert len(cfg.accelerators) == 8


def test_biglittle_validation():
    with pytest.raises(ValueError, match="LITTLE core"):
        zcu102_biglittle(n_little=0)
    with pytest.raises(ValueError, match="little_speed"):
        PlatformConfig(
            name="bad", n_worker_cores=2, n_cpu_workers=2, accelerators=(),
            timing=zcu102_timing(), n_little_cores=1, little_speed=0.0,
        )


def test_management_threads_land_on_little_cores():
    cfg = zcu102_biglittle(n_big=3, n_little=2, n_fft=4)
    descs = cfg.describe_pes()
    fft_hosts = [d.host_core_index for d in descs if d.kind is PEKind.FFT]
    # LITTLE cores sit at indexes 3, 4; management threads round-robin there
    assert fft_hosts == [3, 4, 3, 4]


def test_build_creates_slow_little_cores():
    inst = zcu102_biglittle(n_big=3, n_little=4, n_fft=2).build()
    assert len(inst.big_cores) == 3
    assert len(inst.little_cores) == 4
    assert all(c.speed == pytest.approx(0.45) for c in inst.little_cores)
    assert all(c.speed == 1.0 for c in inst.big_cores)
    # floating application threads must stay off the LITTLE cores
    assert set(inst.engine.floating_pool) == set(inst.big_cores)
    # accelerator workers are hosted on LITTLEs
    for pe in inst.accel_pes:
        assert pe.host_core in inst.little_cores


def test_baseline_platforms_have_no_littles():
    assert zcu102().build().little_cores == []
    assert jetson().build().little_cores == []


def test_biglittle_runs_functionally(rng):
    data = rng.normal(size=256) + 1j * rng.normal(size=256)

    def main(lib):
        spec = yield from lib.fft(data)
        return (yield from lib.ifft(spec))

    platform = zcu102_biglittle(n_big=3, n_little=2, n_fft=2).build(seed=0)
    runtime = CedrRuntime(platform, RuntimeConfig(scheduler="rr"))
    runtime.start()
    app = AppInstance(name="t", mode=API_MODE, frame_mb=0.1, main_factory=main)
    runtime.submit(app, at=0.0)
    runtime.seal()
    runtime.run()
    assert np.allclose(app.result, data, atol=1e-9)


def test_biglittle_relieves_management_contention():
    """The future-work hypothesis in miniature: with 8 FFT management
    threads, adding LITTLE hosts speeds up an accelerator-light workload."""
    from repro.experiments import run_once
    from repro.workload import radar_comms_workload

    wl = radar_comms_workload()
    base = run_once(zcu102(n_cpu=3, n_fft=8), wl, "api", 1000.0, "rr", seed=1)
    bl = run_once(
        zcu102_biglittle(n_big=3, n_little=4, n_fft=8), wl, "api", 1000.0, "rr", seed=1
    )
    assert bl.mean_exec_time < base.mean_exec_time


# --------------------------------------------------------------------- #
# energy model
# --------------------------------------------------------------------- #

def run_small(platform_cfg, rng):
    data = rng.normal(size=1024) + 0j

    def main(lib):
        for _ in range(20):
            data2 = yield from lib.fft(data)
        return None

    platform = platform_cfg.build(seed=0)
    runtime = CedrRuntime(platform, RuntimeConfig(scheduler="rr",
                                                  execute_kernels=False))
    runtime.start()
    app = AppInstance(name="t", mode=API_MODE, frame_mb=0.1, main_factory=main)
    runtime.submit(app, at=0.0)
    runtime.seal()
    runtime.run()
    return platform


def test_energy_breakdown_positive_and_consistent(rng):
    platform = run_small(zcu102(n_cpu=3, n_fft=2), rng)
    energy = estimate_energy(platform)
    assert energy.total_j > 0
    assert energy.total_j == pytest.approx(
        energy.cpu_j + energy.little_j + energy.accel_j + energy.static_j
    )
    assert energy.makespan_s == pytest.approx(platform.engine.now)
    assert energy.average_power_w > ZCU102_POWER.platform_static_w


def test_energy_default_model_selection(rng):
    zcu_platform = run_small(zcu102(n_cpu=3, n_fft=1), rng)
    jet_platform = run_small(jetson(n_cpu=3), rng)
    e_zcu = estimate_energy(zcu_platform)
    e_jet = estimate_energy(jet_platform)
    # the Jetson preset draws far more power per unit time
    assert e_jet.average_power_w > e_zcu.average_power_w


def test_energy_littles_cheaper_than_bigs(rng):
    platform = run_small(zcu102_biglittle(n_big=3, n_little=4, n_fft=2), rng)
    energy = estimate_energy(platform)
    assert energy.little_j > 0      # the management spinners drew power
    assert energy.little_j < energy.cpu_j


def test_energy_explicit_power_model(rng):
    platform = run_small(zcu102(n_cpu=3, n_fft=1), rng)
    energy = estimate_energy(platform, power=JETSON_POWER)
    assert energy.average_power_w > estimate_energy(platform).average_power_w


def test_energy_rejects_negative_makespan(rng):
    platform = run_small(zcu102(n_cpu=3, n_fft=1), rng)
    with pytest.raises(ValueError):
        estimate_energy(platform, makespan=-1.0)
