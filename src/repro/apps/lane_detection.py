"""Lane Detection: the paper's autonomous-vehicle application.

A "convolution intensive routine" that performs its convolutions in the
frequency domain (FFT + pointwise ZIP, per the paper's Abtahi et al.
reference).  The pipeline: grayscale -> Gaussian blur -> Sobel x / Sobel y
-> gradient magnitude -> lane-emphasis smoothing -> threshold + ROI ->
Hough line fit.  Four FFT-domain convolutions, each transforming its input
tile *and* its kernel tile forward and the product back:

    4 convs x 2 forward 2-D FFTs + 4 convs x 1 inverse 2-D FFT

At the paper's 960x540 frame the padded tile is 1024x1024, so one 2-D
transform is 2048 1-D 1024-point FFTs and the frame totals 16384 forward
and 8192 inverse 1-D FFTs - exactly the instance counts of Section III.
``batch`` groups tile rows per schedulable task (``batch=1`` is
paper-granularity; the default 64 keeps sweeps tractable).

LD's API form uses the *non-blocking* APIs with phase-level windows: all
row-FFT tasks of a transform go in flight together, which is what lets it
saturate the eight FFT accelerators of the Fig. 9/10 ZCU102 configuration.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from repro.core.handles import wait_all
from repro.dag import DagBuilder, DagProgram
from repro.kernels import vision
from repro.kernels.conv2d import conv2d_fft, next_pow2

from .base import CedrApplication, Variant, chunk_slices, work_for_elems

__all__ = ["LaneDetection"]


class LaneDetection(CedrApplication):
    """Frequency-domain lane detection over one camera frame."""

    name = "LD"
    default_variant = "nonblocking"

    def __init__(self, height: int = 540, width: int = 960, batch: int = 64) -> None:
        self.height = height
        self.width = width
        self.batch = batch
        self.kernels = {
            "blur": vision.gaussian_kernel(5, 1.4),
            "gx": vision.sobel_kernels()[0],
            "gy": vision.sobel_kernels()[1],
            "emph": vision.gaussian_kernel(5, 2.0),
        }
        ksize = max(k.shape[0] for k in self.kernels.values())
        self.tile = next_pow2(max(height + ksize - 1, width + ksize - 1))

    @property
    def frame_mb(self) -> float:
        """RGB byte frame in megabits (the camera's output)."""
        return self.height * self.width * 3 * 8 / 1e6

    def make_input(self, rng: np.random.Generator) -> dict[str, Any]:
        return {"rgb": vision.synthesize_road_frame(self.height, self.width, rng)}

    # -- shared pipeline pieces -------------------------------------------- #

    def _pad_tile(self, img: np.ndarray) -> np.ndarray:
        tile = np.zeros((self.tile, self.tile), dtype=np.complex128)
        tile[: img.shape[0], : img.shape[1]] = img
        return tile

    def _crop(self, full: np.ndarray, kernel: np.ndarray) -> np.ndarray:
        ph, pw = kernel.shape[0] // 2, kernel.shape[1] // 2
        return full[ph : ph + self.height, pw : pw + self.width]

    def _postprocess(self, emph: np.ndarray) -> tuple:
        edges = vision.threshold_edges(emph) & vision.roi_mask(emph.shape)
        acc, thetas, rhos = vision.hough_lines(edges)
        return vision.extract_lanes(acc, thetas, rhos)

    def reference(self, inputs: dict[str, Any]) -> tuple:
        """Golden result: (left lane, right lane) estimates."""
        gray = vision.to_grayscale(inputs["rgb"])
        blur = conv2d_fft(gray, self.kernels["blur"])
        gxr = conv2d_fft(blur, self.kernels["gx"])
        gyr = conv2d_fft(blur, self.kernels["gy"])
        mag = vision.gradient_magnitude(gxr, gyr)
        emph = conv2d_fft(mag, self.kernels["emph"])
        return self._postprocess(emph)

    # ------------------------------------------------------------------ #
    # API-based form (non-blocking phase windows)
    # ------------------------------------------------------------------ #

    def _fft2_api(
        self, lib, tile_arr: np.ndarray, variant: Variant, inverse: bool = False
    ) -> Generator:
        """One 2-D transform as two phases of batched 1-D tasks."""
        ex = lib.executes
        slices = chunk_slices(self.tile, self.batch)
        blocking_call = lib.ifft if inverse else lib.fft
        nb_call = lib.ifft_nb if inverse else lib.fft_nb

        def run_phase(data):
            """Transform all rows of *data*; returns the row-transformed array."""
            if variant == "blocking":
                chunks = []
                for sl in slices:
                    chunk = data[sl]
                    out = yield from blocking_call(chunk)
                    chunks.append(self._or_fallback(out, chunk, ex))
            else:
                reqs = []
                for sl in slices:
                    reqs.append((yield from nb_call(data[sl])))
                outs = yield from wait_all(reqs)
                chunks = [self._or_fallback(o, data[sl], ex) for o, sl in zip(outs, slices)]
            return np.vstack(chunks) if ex else data

        rows = yield from run_phase(tile_arr)
        yield from lib.local_work(work_for_elems(self.tile * self.tile))  # corner turn
        rows_t = np.ascontiguousarray(rows.T) if ex else rows
        cols = yield from run_phase(rows_t)
        return cols.T if ex else tile_arr

    def _conv_api(self, lib, img: np.ndarray, kernel: np.ndarray, variant: Variant) -> Generator:
        ex = lib.executes
        yield from lib.local_work(work_for_elems(self.tile * self.tile))  # pad
        img_tile = self._pad_tile(img) if ex else np.empty(
            (self.tile, self.tile), dtype=np.complex128
        )
        ker_tile = self._pad_tile(kernel) if ex else img_tile
        img_spec = yield from self._fft2_api(lib, img_tile, variant)
        ker_spec = yield from self._fft2_api(lib, ker_tile, variant)

        slices = chunk_slices(self.tile, self.batch)
        if variant == "blocking":
            prods = []
            for sl in slices:
                a, b2 = img_spec[sl], ker_spec[sl]
                out = yield from lib.zip(a, b2)
                prods.append(self._or_fallback(out, a, ex))
        else:
            reqs = []
            for sl in slices:
                reqs.append((yield from lib.zip_nb(img_spec[sl], ker_spec[sl])))
            outs = yield from wait_all(reqs)
            prods = [self._or_fallback(o, img_spec[sl], ex) for o, sl in zip(outs, slices)]
        prod = np.vstack(prods) if ex else img_tile

        full = yield from self._fft2_api(lib, prod, variant, inverse=True)
        yield from lib.local_work(work_for_elems(self.height * self.width))  # crop
        return self._crop(full.real, kernel) if ex else img

    def api_main(
        self, lib, inputs: dict[str, Any], variant: Variant = "nonblocking"
    ) -> Generator:
        ex = lib.executes
        yield from lib.local_work(work_for_elems(self.height * self.width * 3))
        gray = vision.to_grayscale(inputs["rgb"]) if ex else inputs["rgb"][..., 0]

        blur = yield from self._conv_api(lib, gray, self.kernels["blur"], variant)
        gxr = yield from self._conv_api(lib, blur, self.kernels["gx"], variant)
        gyr = yield from self._conv_api(lib, blur, self.kernels["gy"], variant)
        yield from lib.local_work(work_for_elems(self.height * self.width))
        mag = vision.gradient_magnitude(gxr, gyr) if ex else blur
        emph = yield from self._conv_api(lib, mag, self.kernels["emph"], variant)

        # threshold + ROI + Hough: pure CPU postprocessing on the app thread
        yield from lib.local_work(work_for_elems(self.height * self.width * 6))
        return self._postprocess(emph) if ex else None

    # ------------------------------------------------------------------ #
    # DAG-based form
    # ------------------------------------------------------------------ #

    def _dag_fft2(
        self, b: DagBuilder, prefix: str, src: str, dst: str,
        after: list[str], inverse: bool = False,
    ) -> list[str]:
        """Emit nodes for one 2-D transform of state[src] -> state[dst].

        Returns the node names the next stage must wait on.
        """
        api = "ifft" if inverse else "fft"
        slices = chunk_slices(self.tile, self.batch)

        def split(st, prefix=prefix, src=src, slices=slices):
            tile = st[src]
            for i, sl in enumerate(slices):
                st[f"{prefix}_r_{i}"] = tile[sl]

        b.cpu(f"{prefix}_split", split, work_for_elems(self.tile * self.tile), after=after)
        row_names = []
        for i, sl in enumerate(slices):
            rows = sl.stop - sl.start
            row_names.append(
                b.kernel(
                    f"{prefix}_row_{i}", api, {"n": self.tile, "batch": rows},
                    [f"{prefix}_r_{i}"], f"{prefix}_ro_{i}", after=[f"{prefix}_split"],
                )
            )

        def turn(st, prefix=prefix, slices=slices):
            full = np.vstack([st[f"{prefix}_ro_{i}"] for i in range(len(slices))])
            turned = np.ascontiguousarray(full.T)
            for i, sl in enumerate(slices):
                st[f"{prefix}_c_{i}"] = turned[sl]

        b.cpu(f"{prefix}_turn", turn, work_for_elems(self.tile * self.tile), after=row_names)
        col_names = []
        for i, sl in enumerate(slices):
            rows = sl.stop - sl.start
            col_names.append(
                b.kernel(
                    f"{prefix}_col_{i}", api, {"n": self.tile, "batch": rows},
                    [f"{prefix}_c_{i}"], f"{prefix}_co_{i}", after=[f"{prefix}_turn"],
                )
            )

        def join(st, prefix=prefix, dst=dst, slices=slices):
            full = np.vstack([st[f"{prefix}_co_{i}"] for i in range(len(slices))])
            st[dst] = full.T

        b.cpu(f"{prefix}_join", join, work_for_elems(self.tile * self.tile), after=col_names)
        return [f"{prefix}_join"]

    def _dag_conv(
        self, b: DagBuilder, prefix: str, src: str, kernel_name: str, dst: str,
        after: list[str],
    ) -> list[str]:
        """Emit nodes for one FFT-domain convolution stage."""
        kernel = self.kernels[kernel_name]

        def pad(st, prefix=prefix, src=src, kernel=kernel):
            st[f"{prefix}_imgtile"] = self._pad_tile(st[src])
            st[f"{prefix}_kertile"] = self._pad_tile(kernel)

        b.cpu(f"{prefix}_pad", pad, work_for_elems(self.tile * self.tile), after=after)
        img_done = self._dag_fft2(
            b, f"{prefix}_if", f"{prefix}_imgtile", f"{prefix}_ispec", [f"{prefix}_pad"]
        )
        ker_done = self._dag_fft2(
            b, f"{prefix}_kf", f"{prefix}_kertile", f"{prefix}_kspec", [f"{prefix}_pad"]
        )

        slices = chunk_slices(self.tile, self.batch)

        def split_specs(st, prefix=prefix, slices=slices):
            for i, sl in enumerate(slices):
                st[f"{prefix}_zi_{i}"] = st[f"{prefix}_ispec"][sl]
                st[f"{prefix}_zk_{i}"] = st[f"{prefix}_kspec"][sl]

        b.cpu(
            f"{prefix}_zsplit", split_specs, work_for_elems(self.tile * self.tile),
            after=img_done + ker_done,
        )
        zip_names = []
        for i, sl in enumerate(slices):
            rows = sl.stop - sl.start
            zip_names.append(
                b.kernel(
                    f"{prefix}_zip_{i}", "zip", {"n": rows * self.tile},
                    [f"{prefix}_zi_{i}", f"{prefix}_zk_{i}"], f"{prefix}_zo_{i}",
                    after=[f"{prefix}_zsplit"],
                )
            )

        def join_prod(st, prefix=prefix, slices=slices):
            st[f"{prefix}_prod"] = np.vstack(
                [st[f"{prefix}_zo_{i}"] for i in range(len(slices))]
            )

        b.cpu(f"{prefix}_zjoin", join_prod, work_for_elems(self.tile * self.tile), after=zip_names)
        inv_done = self._dag_fft2(
            b, f"{prefix}_inv", f"{prefix}_prod", f"{prefix}_full",
            [f"{prefix}_zjoin"], inverse=True,
        )

        def crop(st, prefix=prefix, dst=dst, kernel=kernel):
            st[dst] = self._crop(st[f"{prefix}_full"].real, kernel)

        b.cpu(f"{prefix}_crop", crop, work_for_elems(self.height * self.width), after=inv_done)
        return [f"{prefix}_crop"]

    def build_dag(self, inputs: dict[str, Any]) -> tuple[DagProgram, dict[str, Any]]:
        state: dict[str, Any] = {"rgb": inputs["rgb"]}
        b = DagBuilder("LD")

        def to_gray(st):
            st["gray"] = vision.to_grayscale(st["rgb"])

        b.cpu("gray", to_gray, work_for_elems(self.height * self.width * 3))
        blur_done = self._dag_conv(b, "blur", "gray", "blur", "blurimg", ["gray"])
        gx_done = self._dag_conv(b, "gx", "blurimg", "gx", "gximg", blur_done)
        gy_done = self._dag_conv(b, "gy", "blurimg", "gy", "gyimg", blur_done)

        def magnitude(st):
            st["mag"] = vision.gradient_magnitude(st["gximg"], st["gyimg"])

        b.cpu("mag", magnitude, work_for_elems(self.height * self.width), after=gx_done + gy_done)
        emph_done = self._dag_conv(b, "emph", "mag", "emph", "emphimg", ["mag"])

        def post(st):
            st["lanes"] = self._postprocess(st["emphimg"])

        b.cpu("post", post, work_for_elems(self.height * self.width * 6), after=emph_done)
        return b.build(), state
