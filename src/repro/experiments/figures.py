"""Figure registry: one named CLI renderer per evaluation figure.

``repro figure <id>`` historically dispatched through a hand-maintained
``if args.id == ...`` chain in the CLI; this module replaces it with a
:class:`repro.registry.Registry` of :class:`FigureEntry` objects, so the
argparse choices, ``repro list`` output, and the dispatch table are all
the same thing.  A renderer takes the parsed CLI namespace (``rates``,
``trials``, ``seed``, ``jobs``, plus figure-specific extras) and prints
its series tables; sweeps ride whatever cache/audit handles the CLI
pinned process-wide before dispatching.

Third-party figures plug in via :func:`register_figure` or the
``repro.figures`` entry-point group and appear in ``repro figure``
automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.metrics import format_series_table
from repro.registry import Registry
from repro.workload import paper_injection_rates

from .fig5_runtime_overhead import run_fig5, saturated_reduction
from .fig8_jetson import run_fig8
from .fig9_versatility import run_fig9
from .fig10_scalability import run_fig10a, run_fig10b
from .fig67_exec_sched import run_fig6_fig7
from .fig_resilience import run_fig_resilience
from .fig_saturation import SATURATION_DURATION, run_fig_saturation

__all__ = [
    "FIGURES",
    "FigureEntry",
    "register_figure",
    "available_figures",
]

#: renderer signature: parsed ``repro figure`` namespace -> exit code
RenderFn = Callable[..., int]


@dataclass(frozen=True)
class FigureEntry:
    """One registered figure: renderer + one-line description."""

    name: str
    render: RenderFn
    summary: str = ""


FIGURES: Registry[FigureEntry] = Registry(
    "figure", entry_point_group="repro.figures"
)


def register_figure(name: str, *, summary: str = ""):
    """Decorator registering a ``(args) -> int`` CLI renderer."""

    def deco(render: RenderFn) -> RenderFn:
        FIGURES.register(name, FigureEntry(name, render, summary))
        return render

    return deco


def available_figures() -> tuple[str, ...]:
    """Registered figure names, sorted."""
    return FIGURES.names()


def _rates(args) -> list[float]:
    return list(paper_injection_rates(n=args.rates))


@register_figure("fig5", summary="API-vs-DAG runtime overhead (ZCU102)")
def _render_fig5(args) -> int:
    fig = run_fig5(
        rates=_rates(args), trials=args.trials, seed=args.seed, n_jobs=args.jobs
    )
    print(format_series_table(fig, y_scale=1e3, y_fmt="{:10.4f}"))
    print(f"\nsaturated API-vs-DAG reduction: {saturated_reduction(fig):.1%} "
          "(paper: 19.52%)")
    return 0


@register_figure("fig67", summary="execution + scheduling overhead panels")
def _render_fig67(args) -> int:
    panels = run_fig6_fig7(
        rates=_rates(args), trials=args.trials, seed=args.seed, n_jobs=args.jobs
    )
    for pid in ("fig6a", "fig6b", "fig7a", "fig7b"):
        print(format_series_table(panels[pid], y_scale=1e3, y_fmt="{:10.3f}"))
        print()
    return 0


@register_figure("fig8", summary="Jetson AGX Xavier execution/scheduling")
def _render_fig8(args) -> int:
    panels = run_fig8(
        rates=_rates(args), trials=args.trials, seed=args.seed, n_jobs=args.jobs
    )
    for pid in ("fig8a", "fig8b"):
        print(format_series_table(panels[pid], y_scale=1e3, y_fmt="{:10.2f}"))
        print()
    return 0


@register_figure("fig9", summary="autonomous-vehicle workload versatility")
def _render_fig9(args) -> int:
    panels = run_fig9(trials=args.trials, seed=args.seed, n_jobs=args.jobs)
    for pid in ("fig9a", "fig9b"):
        print(format_series_table(panels[pid], y_scale=1e3, y_fmt="{:10.1f}"))
        print()
    return 0


@register_figure("fig10a", summary="accelerator scalability (ZCU102 FFTs)")
def _render_fig10a(args) -> int:
    fig = run_fig10a(trials=args.trials, seed=args.seed, n_jobs=args.jobs)
    print(format_series_table(fig, y_scale=1e3, y_fmt="{:10.1f}"))
    return 0


@register_figure("fig10b", summary="CPU-pool scalability (Jetson cores)")
def _render_fig10b(args) -> int:
    fig = run_fig10b(trials=args.trials, seed=args.seed, n_jobs=args.jobs)
    print(format_series_table(fig, y_scale=1e3, y_fmt="{:10.1f}"))
    return 0


@register_figure("resilience", summary="goodput/MTTR under fault injection")
def _render_resilience(args) -> int:
    panels = run_fig_resilience(
        trials=args.trials, seed=args.seed,
        fault_seed=args.fault_seed, n_jobs=args.jobs,
    )
    print(format_series_table(panels["resilience_exec"],
                              y_scale=1e3, y_fmt="{:10.2f}"))
    print()
    print(format_series_table(panels["resilience_goodput"], y_fmt="{:10.3f}"))
    return 0


@register_figure("saturation", summary="serve-mode throughput/p99 knee")
def _render_saturation(args) -> int:
    duration = (args.duration if args.duration is not None
                else SATURATION_DURATION)
    panels = run_fig_saturation(
        duration=duration, trials=args.trials, seed=args.seed, n_jobs=args.jobs,
    )
    print(format_series_table(panels["saturation_throughput"],
                              y_fmt="{:10.1f}"))
    print()
    print(format_series_table(panels["saturation_p99"],
                              y_scale=1e3, y_fmt="{:10.2f}"))
    if "saturation_knee" in panels:
        knee = panels["saturation_knee"].series[0].xs[0]
        print(f"\ndetected saturation knee: {knee:g} apps/s offered")
    else:
        print("\nno saturation knee detected in the swept range")
    return 0
