"""Admission controller: quotas, policies, weighted release, boundedness."""

import pytest

from repro.serve import ADMISSION_POLICIES, AdmissionConfig, AdmissionController, TokenBucket


def controller(policy="shed", tenants=(("a", 1.0),), **knobs):
    return AdmissionController(
        AdmissionConfig(policy=policy, **knobs), list(tenants)
    )


class TestConfig:
    def test_policies(self):
        assert ADMISSION_POLICIES == ("block", "shed", "degrade")
        with pytest.raises(ValueError, match="unknown admission policy"):
            AdmissionConfig(policy="drop")

    @pytest.mark.parametrize("knobs", [
        {"max_in_system": 0},
        {"queue_cap": -1},
        {"quota_rate": -1.0},
        {"p99_limit_s": -0.1},
    ])
    def test_validation(self, knobs):
        with pytest.raises(ValueError):
            AdmissionConfig(**knobs)

    def test_tenants_required_and_weighted(self):
        with pytest.raises(ValueError, match="at least one tenant"):
            AdmissionController(AdmissionConfig(), [])
        with pytest.raises(ValueError, match="weight must be positive"):
            AdmissionController(AdmissionConfig(), [("a", 0.0)])


class TestTokenBucket:
    def test_starts_full_then_meters(self):
        bucket = TokenBucket(rate=10.0, burst=2.0)
        assert bucket.take(0.0) and bucket.take(0.0)
        assert not bucket.take(0.0)          # burst exhausted
        assert bucket.take(0.1)              # 0.1 s * 10/s = 1 token back
        assert not bucket.take(0.1)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=3.0)
        for _ in range(3):
            assert bucket.take(0.0)
        for _ in range(3):
            assert bucket.take(10.0)         # long idle refills to burst only
        assert not bucket.take(10.0)


class TestDecisions:
    def test_admit_below_every_limit(self):
        ctl = controller()
        assert ctl.decide("a", 0.0) == "admit"

    def test_quota_exhaustion_sheds(self):
        ctl = controller(quota_rate=1.0, quota_burst=2.0)
        assert ctl.decide("a", 0.0) == "admit"
        assert ctl.decide("a", 0.0) == "admit"
        assert ctl.decide("a", 0.0) == "shed"

    def test_in_system_cap_pressures(self):
        ctl = controller(max_in_system=1)
        assert ctl.decide("a", 0.0) == "admit"
        ctl.admitted("a")
        assert ctl.decide("a", 0.0) == "shed"
        ctl.finished("a")
        assert ctl.decide("a", 0.0) == "admit"

    def test_backpressure_signals(self):
        ctl = controller(ready_depth_limit=4, p99_limit_s=0.1)
        assert ctl.decide("a", 0.0, ready_depth=4, p99_s=0.1) == "admit"
        assert ctl.decide("a", 0.0, ready_depth=5) == "shed"
        assert ctl.decide("a", 0.0, p99_s=0.2) == "shed"

    def test_degrade_policy_always_takes(self):
        ctl = controller(policy="degrade", max_in_system=1)
        ctl.admitted("a")
        assert ctl.decide("a", 0.0) == "degrade"

    def test_block_holds_until_queue_cap_then_sheds(self):
        ctl = controller(policy="block", max_in_system=1, queue_cap=2)
        ctl.admitted("a")
        for expected in ("hold", "hold", "shed"):
            decision = ctl.decide("a", 0.0)
            assert decision == expected
            if decision == "hold":
                ctl.push("a", object())

    def test_push_overflow_and_finish_underflow_raise(self):
        ctl = controller(policy="block", max_in_system=1, queue_cap=1)
        ctl.push("a", 1)
        with pytest.raises(RuntimeError, match="overflow"):
            ctl.push("a", 2)
        with pytest.raises(RuntimeError, match="finish without admit"):
            ctl.finished("a")


class TestRelease:
    def test_release_respects_capacity(self):
        ctl = controller(policy="block", max_in_system=2, queue_cap=4)
        for item in range(3):
            ctl.push("a", item)
        out = ctl.release()
        assert [item for _, item in out] == [0, 1]    # FIFO per tenant
        for tenant, _ in out:
            ctl.admitted(tenant)
        assert ctl.release() == []                    # at capacity now
        ctl.finished("a")
        assert [item for _, item in ctl.release()] == [2]

    def test_weighted_fair_release_follows_stride(self):
        ctl = controller(
            policy="block", tenants=[("a", 2.0), ("b", 1.0)],
            max_in_system=12, queue_cap=8,
        )
        for item in range(8):
            ctl.push("a", item)
            ctl.push("b", item)
        order = [tenant for tenant, _ in ctl.release()]
        # stride: a releases twice as often; ties break in tenant order
        assert order == ["a", "b", "a", "a", "b", "a", "a", "b", "a", "a", "b", "a"]

    def test_high_water_marks(self):
        ctl = controller(policy="block", max_in_system=3, queue_cap=5)
        for _ in range(3):
            ctl.admitted("a")
        ctl.finished("a")
        for item in range(4):
            ctl.push("a", item)
        assert ctl.in_system_hwm == 3
        assert ctl.hold_hwm("a") == 4
        assert ctl.held() == 4


class TestOverloadBound:
    """Admission provably bounds the system at any overload factor."""

    @pytest.mark.parametrize("policy", ["block", "shed"])
    def test_two_x_overload_never_exceeds_caps(self, policy):
        # offered load: 2x the drain rate, forever; the in-system count and
        # every hold queue must stay bounded by construction while the
        # excess sheds
        cfg = AdmissionConfig(policy=policy, max_in_system=8, queue_cap=4)
        ctl = AdmissionController(cfg, [("a", 1.0), ("b", 1.0)])
        shed = 0
        for step in range(4000):
            tenant = ("a", "b")[step % 2]
            decision = ctl.decide(tenant, now=step * 1e-3)
            if decision == "admit":
                ctl.admitted(tenant)
            elif decision == "hold":
                ctl.push(tenant, step)
            else:
                shed += 1
            if step % 2 == 0 and ctl.in_system > 0:   # drain at half the rate
                ctl.finished(tenant)
                for name, _ in ctl.release():
                    ctl.admitted(name)
            assert ctl.in_system <= cfg.max_in_system
            assert ctl.held() <= 2 * cfg.queue_cap
        assert ctl.in_system_hwm <= cfg.max_in_system
        assert max(ctl.hold_hwm("a"), ctl.hold_hwm("b")) <= cfg.queue_cap
        assert shed > 1000   # the overload had to go somewhere
