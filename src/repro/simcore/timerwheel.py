"""Pluggable timer queues: the binary-heap reference and a calendar-queue
timer wheel.

The engine's main loop needs three operations on its pending-timer set:
*push* an ``(when, seq, callback)`` entry, *peek* the earliest pending
``when``, and *pop everything due* at the instant the clock just reached.
With a global binary heap every push and pop costs ``O(log n)`` where ``n``
includes *every* pending timer - at million-task scale the far-future
arrival timers inflate the heap and tax each microsecond-scale signal
timer with a 15-20 level sift.  The classic fix (Brown's calendar queue,
the kernel timer wheel; also the move DS3-style DSSoC simulators make to
reach realistic injection rates) is to bucket the near future and keep
only the far future in a heap:

* :class:`TimerWheel` divides the *horizon* ``[base, base + n*width)``
  into ``n`` buckets of ``width`` simulated seconds.  A push lands in its
  bucket by one multiply (amortized O(1)); entries beyond the horizon
  spill into an overflow heap whose size no longer taxes near-future
  traffic.  When the wheel drains past the horizon it *rotates*: the base
  jumps to the overflow head's page and every overflow entry inside the
  new horizon migrates into buckets (each migration is one heap pop it
  would have cost anyway).
* :class:`HeapTimerQueue` wraps the original global ``heapq`` behind the
  same interface and is kept, bit-for-bit, as the differential reference
  (``repro audit diff --variants event_core``).

Ordering contract (what makes the two interchangeable): entries pop in
exact ``(when, seq)`` order.  Bucket index is a monotone non-decreasing
function of ``when`` (floor of a monotone float division), so bucket order
can never contradict time order, and within a bucket entries sort by the
same ``(when, seq)`` key the heap uses.  The equal-``when`` tie-break is
therefore identical to the heap's, which is what keeps wheel runs
bit-identical to heap runs (pinned by the Hypothesis model test in
``tests/simcore/test_timerwheel.py`` and the differential oracle).

Cancellation is lazy: :meth:`cancel` blanks the entry's callback slot and
the entry is discarded whenever a peek/pop/rotation next touches it -
O(1) cancel without the tombstone bookkeeping an eager removal would need
in either structure.

Bucket width choice: timers in this simulator are bimodal - microsecond
signal/dispatch latencies near ``now`` and millisecond-to-second arrival
timers far ahead.  The default 10 us buckets x 512 slots give a ~5 ms
horizon: wide enough that rotation is rare (one per ~5 ms of simulated
time), narrow enough that a bucket rarely holds more than a handful of
entries, so the per-bucket sort stays effectively O(batch).
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional

__all__ = [
    "EVENT_CORES",
    "DEFAULT_EVENT_CORE",
    "DEFAULT_BUCKET_S",
    "DEFAULT_N_BUCKETS",
    "HeapTimerQueue",
    "TimerWheel",
    "make_timer_queue",
]

#: the selectable event-core kinds (``RuntimeConfig.event_core``,
#: ``repro run --event-core``, ``$REPRO_EVENT_CORE``).
EVENT_CORES = ("heap", "wheel")
DEFAULT_EVENT_CORE = "wheel"

#: default wheel geometry (see module docstring for the rationale).
DEFAULT_BUCKET_S = 1e-5
DEFAULT_N_BUCKETS = 512

#: a pending timer: ``[when, seq, callback]``.  A mutable list so
#: :meth:`cancel` can blank the callback slot in place; ``(when, seq)`` is
#: a unique prefix, so heap/sort comparisons never reach the callback.
TimerEntry = List


class HeapTimerQueue:
    """The original global binary heap behind the timer-queue interface.

    Kept verbatim as the differential reference: ``repro audit diff``
    re-runs sweeps with ``event_core="heap"`` and requires bit-identical
    results against the wheel.
    """

    kind = "heap"

    __slots__ = ("_heap", "_live", "occupancy_hwm", "spills")

    def __init__(self, now: float = 0.0) -> None:
        self._heap: list[TimerEntry] = []
        #: live (non-cancelled) entries currently stored.
        self._live = 0
        #: high-water mark of live entries (occupancy stat).
        self.occupancy_hwm = 0
        #: overflow spills - structurally impossible for a heap, reported
        #: as 0 so the stats schema matches the wheel's.
        self.spills = 0

    def __len__(self) -> int:
        return self._live

    def push(self, when: float, seq: int, callback: Callable[[], None]) -> TimerEntry:
        entry = [when, seq, callback]
        heapq.heappush(self._heap, entry)
        self._live += 1
        if self._live > self.occupancy_hwm:
            self.occupancy_hwm = self._live
        return entry

    def cancel(self, entry: TimerEntry) -> bool:
        """Blank *entry*'s callback; returns False if already fired/cancelled."""
        if entry[2] is None:
            return False
        entry[2] = None
        self._live -= 1
        return True

    def peek(self) -> Optional[float]:
        """Earliest pending ``when``, or None.  Drops cancelled heads."""
        heap = self._heap
        while heap and heap[0][2] is None:
            heapq.heappop(heap)
        return heap[0][0] if heap else None

    def pop_due(self, deadline: float) -> list[Callable[[], None]]:
        """Callbacks of every live entry with ``when <= deadline``, in
        ``(when, seq)`` order; the entries leave the queue."""
        out: list[Callable[[], None]] = []
        heap = self._heap
        while heap and heap[0][0] <= deadline:
            entry = heapq.heappop(heap)
            cb = entry[2]
            if cb is not None:
                out.append(cb)
                self._live -= 1
                entry[2] = None  # fired: cancel on this handle is now a no-op
        return out

    def entries(self) -> list[TimerEntry]:
        """Live entries in ``(when, seq)`` order (event-core migration)."""
        return sorted(e for e in self._heap if e[2] is not None)

    def stats(self) -> dict:
        return {
            "kind": self.kind,
            "pending": self._live,
            "occupancy_hwm": self.occupancy_hwm,
            "overflow_spills": self.spills,
        }


class TimerWheel:
    """Calendar-queue / timer-wheel hybrid (see module docstring).

    Structure invariants:

    * every bucket entry has ``when < base + n*width`` (the horizon);
    * every overflow entry has ``when >=`` the horizon;
    * buckets strictly order by time: an entry in bucket ``i`` never
      sorts after one in bucket ``j > i`` (monotone index + clamps that
      only move entries toward the cursor, never past a later entry);
    * ``_in_buckets`` counts entries *stored* in buckets (cancelled ones
      included until discarded), which is what the cursor scan needs to
      terminate; ``_live`` counts non-cancelled entries queue-wide.
    """

    kind = "wheel"

    __slots__ = (
        "_width",
        "_inv_width",
        "_n",
        "_span",
        "_base",
        "_cursor",
        "_cursor_sorted",
        "_buckets",
        "_overflow",
        "_live",
        "_in_buckets",
        "occupancy_hwm",
        "spills",
    )

    def __init__(
        self,
        now: float = 0.0,
        bucket_s: float = DEFAULT_BUCKET_S,
        n_buckets: int = DEFAULT_N_BUCKETS,
    ) -> None:
        if bucket_s <= 0.0:
            raise ValueError(f"bucket_s must be positive, got {bucket_s}")
        if n_buckets < 2:
            raise ValueError(f"n_buckets must be >= 2, got {n_buckets}")
        self._width = bucket_s
        self._inv_width = 1.0 / bucket_s
        self._n = n_buckets
        self._span = bucket_s * n_buckets
        self._base = now
        self._cursor = 0
        #: whether the cursor bucket is currently sorted by (when, seq).
        self._cursor_sorted = True
        self._buckets: list[list[TimerEntry]] = [[] for _ in range(n_buckets)]
        self._overflow: list[TimerEntry] = []
        self._live = 0
        self._in_buckets = 0
        #: high-water mark of live entries (wheel + overflow together).
        self.occupancy_hwm = 0
        #: pushes that landed beyond the horizon, into the overflow heap.
        self.spills = 0

    def __len__(self) -> int:
        return self._live

    def push(self, when: float, seq: int, callback: Callable[[], None]) -> TimerEntry:
        entry = [when, seq, callback]
        base = self._base
        if when - base >= self._span:
            heapq.heappush(self._overflow, entry)
            self.spills += 1
        else:
            idx = int((when - base) * self._inv_width)
            cursor = self._cursor
            if idx <= cursor:
                # Already-drained bucket (clock caught up past it) or the
                # bucket under the cursor: both land in the cursor bucket,
                # whose sort restores exact (when, seq) order.
                idx = cursor
                self._cursor_sorted = False
            elif idx >= self._n:  # float rounding at the horizon edge
                idx = self._n - 1
            self._buckets[idx].append(entry)
            self._in_buckets += 1
        self._live += 1
        if self._live > self.occupancy_hwm:
            self.occupancy_hwm = self._live
        return entry

    def cancel(self, entry: TimerEntry) -> bool:
        """Blank *entry*'s callback; returns False if already fired/cancelled."""
        if entry[2] is None:
            return False
        entry[2] = None
        self._live -= 1
        return True

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _advance_cursor(self) -> None:
        """Move the cursor to the next non-empty bucket (one must exist)."""
        buckets = self._buckets
        cursor = self._cursor
        if buckets[cursor]:
            return
        while not buckets[cursor]:
            cursor += 1
        self._cursor = cursor
        self._cursor_sorted = False

    def _rotate(self) -> None:
        """Jump the horizon to the overflow head's page and migrate every
        overflow entry that now falls inside it.  Only called with empty
        buckets and a non-empty overflow."""
        overflow = self._overflow
        head = overflow[0][0]
        span = self._span
        base = self._base
        base += span * int((head - base) / span)
        # float guards: land the head strictly inside [base, base + span)
        if head < base:
            base -= span
        elif head - base >= span:
            base += span
        self._base = base
        self._cursor = 0
        self._cursor_sorted = False
        n = self._n
        inv_width = self._inv_width
        buckets = self._buckets
        migrated = 0
        while overflow and overflow[0][0] - base < span:
            entry = heapq.heappop(overflow)
            if entry[2] is None:  # cancelled while waiting beyond the horizon
                continue
            idx = int((entry[0] - base) * inv_width)
            if idx < 0:
                idx = 0
            elif idx >= n:
                idx = n - 1
            buckets[idx].append(entry)
            migrated += 1
        self._in_buckets += migrated

    def _drop_cancelled_overflow_heads(self) -> None:
        overflow = self._overflow
        while overflow and overflow[0][2] is None:
            heapq.heappop(overflow)

    # ------------------------------------------------------------------ #
    # queue interface
    # ------------------------------------------------------------------ #

    def peek(self) -> Optional[float]:
        """Earliest pending ``when``, or None.

        Buckets always hold earlier entries than the overflow (horizon
        invariant), so the bucket scan answers first and the overflow head
        answers only when every bucket is empty - no rotation needed just
        to look.
        """
        while self._in_buckets:
            self._advance_cursor()
            bucket = self._buckets[self._cursor]
            if not self._cursor_sorted:
                bucket.sort()
                self._cursor_sorted = True
            while bucket and bucket[0][2] is None:
                del bucket[0]
                self._in_buckets -= 1
            if bucket:
                return bucket[0][0]
        self._drop_cancelled_overflow_heads()
        overflow = self._overflow
        return overflow[0][0] if overflow else None

    def pop_due(self, deadline: float) -> list[Callable[[], None]]:
        """Callbacks of every live entry with ``when <= deadline``, in
        ``(when, seq)`` order; the entries leave the queue."""
        out: list[Callable[[], None]] = []
        while True:
            if self._in_buckets:
                self._advance_cursor()
                bucket = self._buckets[self._cursor]
                if not self._cursor_sorted:
                    bucket.sort()
                    self._cursor_sorted = True
                i = 0
                end = len(bucket)
                while i < end and bucket[i][0] <= deadline:
                    entry = bucket[i]
                    cb = entry[2]
                    if cb is not None:
                        out.append(cb)
                        self._live -= 1
                        entry[2] = None  # fired: cancel is now a no-op
                    i += 1
                if i == 0:
                    break  # bucket head (hence everything else) is later
                del bucket[:i]
                self._in_buckets -= i
                if bucket:
                    break  # rest of this bucket is beyond the deadline
            else:
                self._drop_cancelled_overflow_heads()
                overflow = self._overflow
                if not overflow or overflow[0][0] > deadline:
                    break
                self._rotate()
        return out

    def entries(self) -> list[TimerEntry]:
        """Live entries in ``(when, seq)`` order (event-core migration)."""
        live = [e for b in self._buckets for e in b if e[2] is not None]
        live.extend(e for e in self._overflow if e[2] is not None)
        live.sort()
        return live

    def stats(self) -> dict:
        return {
            "kind": self.kind,
            "pending": self._live,
            "occupancy_hwm": self.occupancy_hwm,
            "overflow_spills": self.spills,
        }


def make_timer_queue(kind: str, now: float = 0.0):
    """Build the timer queue for *kind* (one of :data:`EVENT_CORES`)."""
    if kind == "wheel":
        return TimerWheel(now=now)
    if kind == "heap":
        return HeapTimerQueue(now=now)
    raise ValueError(
        f"unknown event core {kind!r}; available: {', '.join(EVENT_CORES)}"
    )
