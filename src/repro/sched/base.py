"""Scheduler interface and registry.

A CEDR scheduling heuristic runs inside the daemon's main loop on the
reserved runtime core.  Each *scheduling round* receives the current ready
queue and the PE list and returns an assignment for every ready task (CEDR
pushes work to per-worker queues; workers drain them in order).  Two things
matter for reproducing the paper:

* the *quality* of the mapping (which PE each task lands on), and
* the *cost* of deciding, charged to the runtime core via
  :meth:`Scheduler.round_cost`.  ETF's cost grows quadratically with the
  ready-queue length, which is the entire mechanism behind the paper's
  Fig. 7 (70 ms DAG-mode vs 1.15 ms API-mode ETF overhead).

Estimates come from the daemon as an ``estimate(task, pe)`` callable backed
by the platform timing model - the runtime analogue of CEDR's offline
profiling tables.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Callable, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.platforms import PE
    from repro.runtime.task import Task

__all__ = ["Scheduler", "SchedulerError", "register_scheduler", "make_scheduler", "available_schedulers"]

EstimateFn = Callable[["Task", "PE"], float]


class SchedulerError(Exception):
    """Raised when no valid assignment exists (e.g. unsupported API)."""


class Scheduler(abc.ABC):
    """Base class for CEDR scheduling heuristics."""

    #: registry key and display name, e.g. "etf"
    name: str = "base"

    @abc.abstractmethod
    def schedule(
        self,
        ready: Sequence["Task"],
        pes: Sequence["PE"],
        now: float,
        estimate: EstimateFn,
    ) -> list[tuple["Task", "PE"]]:
        """Assign every ready task to a PE.

        Implementations must update ``pe.expected_free`` as they commit
        assignments so later decisions in the same round see the backlog,
        and must only ever pick PEs for which ``pe.supports(task.api)``.
        """

    @abc.abstractmethod
    def round_cost(self, n_ready: int, n_pes: int) -> float:
        """Runtime-core seconds one round over ``n_ready`` tasks costs."""

    @staticmethod
    def compatible(task: "Task", pes: Sequence["PE"]) -> list["PE"]:
        """PEs able to execute *task* right now; raises if none exist.

        Three filters compose, in order:

        * **support** - the (API, PE kind) matrix; no supporting PE at all
          is a platform-composition error;
        * **availability** - the live mask maintained by the fault
          subsystem (quarantined or dead PEs drop out); the daemon parks
          tasks with no live candidate before scheduling, so an
          all-unavailable result raising here indicates a runtime bug
          rather than a transient condition;
        * **retry bans** - PEs the task already failed on are avoided,
          *unless* that would leave no candidate (better a suspect PE than
          an unrunnable task).

        Fault-free runs have every PE available and no bans, so the result
        is exactly the support-matrix filter of old.
        """
        options = [pe for pe in pes if pe.supports(task.api)]
        if not options:
            raise SchedulerError(
                f"no PE supports API {task.api!r} (task {task.tid}); "
                "check the platform's accelerator composition"
            )
        live = [pe for pe in options if pe.available]
        if not live:
            raise SchedulerError(
                f"no live PE for API {task.api!r} (task {task.tid}); "
                "the daemon should have parked this task until a PE revives"
            )
        if task.banned_pes:
            unbanned = [pe for pe in live if pe.index not in task.banned_pes]
            if unbanned:
                return unbanned
        return live


_REGISTRY: dict[str, type[Scheduler]] = {}


def register_scheduler(cls: type[Scheduler]) -> type[Scheduler]:
    """Class decorator adding a heuristic to the runtime's registry."""
    key = cls.name.lower()
    if key in _REGISTRY:
        raise ValueError(f"scheduler {key!r} registered twice")
    _REGISTRY[key] = cls
    return cls


def make_scheduler(name: str, **kwargs) -> Scheduler:
    """Instantiate a registered heuristic by name (case-insensitive)."""
    try:
        cls = _REGISTRY[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown scheduler {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return cls(**kwargs)


def available_schedulers() -> list[str]:
    """Names of all registered heuristics (sorted)."""
    return sorted(_REGISTRY)
