"""run_scenario: bit-identity with the flag path, cache sharing, oracle."""

import pytest

from repro.apps import APPS
from repro.audit import assert_identical, diff_run, diff_serve
from repro.experiments import SweepCache, run_trials
from repro.runtime import RuntimeConfig
from repro.scenario import AppCount, ScenarioSpec, ServeSection, run_scenario
from repro.serve import (
    AdmissionConfig,
    ArrivalSpec,
    ServeConfig,
    TenantSpec,
    serve_trials,
)
from repro.workload import WorkloadEntry, WorkloadSpec

RATE = 200.0
TRIALS = 2


def _flag_objects():
    """What the flag-driven CLI builds for PD:1,TX:1 on the zcu102."""
    from repro.platforms import make_platform

    platform = make_platform("zcu102", cpu=3, fft=1)
    workload = WorkloadSpec(
        name="cli",
        entries=(
            WorkloadEntry(APPS.get("PD").factory(), 1),
            WorkloadEntry(APPS.get("TX").factory(), 1),
        ),
    )
    config = RuntimeConfig(scheduler="etf", execute_kernels=False)
    return platform, workload, config


def _spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="parity",
        trials=TRIALS,
        platform="zcu102",
        platform_params=(("cpu", 3), ("fft", 1)),
        scheduler="etf",
        apps=(AppCount("PD"), AppCount("TX")),
        rate_mbps=RATE,
        execute=False,
    )


def test_run_scenario_bit_identical_to_flag_path():
    platform, workload, config = _flag_objects()
    flag_results = run_trials(
        platform, workload, "api", RATE, "etf",
        trials=TRIALS, base_seed=0, execute=False, config=config,
    )
    scenario_results = run_scenario(_spec())
    assert_identical(
        [flag_results, scenario_results], ["flags", "scenario"]
    )


def test_run_scenario_flat_core_bit_identical():
    """A scenario with [engine] core_impl = "flat" reproduces the objects
    run exactly - the scenario-kind leg of the core_impl identity proof."""
    import dataclasses

    objects = run_scenario(_spec())
    flat = run_scenario(dataclasses.replace(_spec(), core_impl="flat"))
    assert_identical([objects, flat], ["objects", "flat"])


def test_run_scenario_shares_cache_with_flag_path(tmp_path):
    # the scenario builds equal cell tuples, so a flag-driven sweep warms
    # the cache for the declarative one - content addressing is free
    platform, workload, config = _flag_objects()
    cache = SweepCache(tmp_path)
    run_trials(
        platform, workload, "api", RATE, "etf",
        trials=TRIALS, base_seed=0, execute=False, config=config, cache=cache,
    )
    assert cache.stats.stores == TRIALS
    warm = SweepCache(tmp_path)
    results = run_scenario(_spec(), cache=warm)
    assert warm.stats.hits == TRIALS and warm.stats.misses == 0
    assert len(results) == TRIALS


def test_run_scenario_warm_rerun_hits(tmp_path):
    cold = SweepCache(tmp_path)
    first = run_scenario(_spec(), cache=cold)
    assert cold.stats.misses == TRIALS
    warm = SweepCache(tmp_path)
    second = run_scenario(_spec(), cache=warm)
    assert warm.stats.hits == TRIALS and warm.stats.misses == 0
    assert first == second


def test_run_scenario_trial_and_seed_overrides():
    spec = _spec()
    results = run_scenario(spec, trials=1, base_seed=5000)
    (only,) = results
    # seed 5000 is trial index 5 of the base-0 grid: same cell, same bits
    grid = run_scenario(spec, trials=6, base_seed=0)
    assert only == grid[5]


def test_serve_scenario_bit_identical_to_flag_path():
    from repro.platforms import make_platform

    arrival = ArrivalSpec.parse("poisson:rate=120")
    apps = (APPS.get("PD").factory(), APPS.get("TX").factory())
    serve = ServeConfig(
        tenants=(TenantSpec("tenant", arrival, apps=apps, slo_s=0.05),),
        duration=0.2,
        admission=AdmissionConfig(policy="block"),
        mode="api",
        scheduler="heft_rt",
    )
    platform = make_platform("zcu102", cpu=3, fft=1)
    config = RuntimeConfig(scheduler="heft_rt", execute_kernels=False)
    flag_results = serve_trials(
        platform, serve, trials=TRIALS, base_seed=0, config=config,
    )
    spec = ScenarioSpec(
        name="parity-serve",
        kind="serve",
        trials=TRIALS,
        platform="zcu102",
        platform_params=(("cpu", 3), ("fft", 1)),
        scheduler="heft_rt",
        serve=ServeSection(
            duration=0.2,
            arrival="poisson:rate=120",
            tenants=1,
            slo_ms=50.0,
            apps=(AppCount("PD"), AppCount("TX")),
            policy="block",
        ),
    )
    scenario_results = run_scenario(spec)
    assert scenario_results == flag_results


def test_oracle_scenario_variant_run():
    platform, workload, config = _flag_objects()
    workload = WorkloadSpec(name="audit-diff", entries=workload.entries)
    template = ScenarioSpec(
        name="audit-diff",
        trials=1,
        platform="zcu102",
        platform_params=(("cpu", 3), ("fft", 1)),
        scheduler="etf",
        workload_name="audit-diff",
        apps=(AppCount("PD"), AppCount("TX")),
        execute=False,
    )
    report = diff_run(
        _flag_objects()[0], workload, "api", [100.0, 300.0], "etf",
        trials=1, base_seed=0,
        variants=("scenario",), scenario=template,
    )
    assert report.ok, report.summary()
    (outcome,) = report.outcomes
    assert outcome.variant == "scenario" and outcome.cells == 2


def test_oracle_scenario_variant_serve():
    from repro.platforms import make_platform

    arrival = ArrivalSpec.parse("poisson:rate=150")
    apps = (APPS.get("PD").factory(),)
    serve = ServeConfig(
        tenants=(TenantSpec("tenant", arrival, apps=apps, slo_s=0.05),),
        duration=0.15,
        admission=AdmissionConfig(policy="block"),
        mode="api",
        scheduler="etf",
    )
    template = ScenarioSpec(
        name="audit-diff",
        kind="serve",
        platform="zcu102",
        platform_params=(("cpu", 3), ("fft", 1)),
        scheduler="etf",
        serve=ServeSection(
            duration=0.15,
            arrival="poisson:rate=150",
            tenants=1,
            slo_ms=50.0,
            apps=(AppCount("PD"),),
            policy="block",
        ),
    )
    report = diff_serve(
        make_platform("zcu102", cpu=3, fft=1), serve,
        trials=1, base_seed=0,
        variants=("scenario",), scenario=template,
    )
    assert report.ok, report.summary()


def test_oracle_scenario_variant_requires_template():
    platform, workload, _ = _flag_objects()
    with pytest.raises(ValueError, match="needs a ScenarioSpec template"):
        diff_run(
            platform, workload, "api", [100.0], "etf",
            trials=1, variants=("scenario",),
        )


def test_oracle_scenario_variant_requires_matching_kind():
    platform, workload, _ = _flag_objects()
    with pytest.raises(ValueError, match="run-kind scenario"):
        diff_run(
            platform, workload, "api", [100.0], "etf",
            trials=1, variants=("scenario",),
            scenario=ScenarioSpec(name="x", kind="serve"),
        )


def test_faulty_scenario_runs(repo_root):
    results = run_scenario(
        repo_root / "examples" / "scenarios" / "jetson_faults.toml",
        trials=1,
    )
    (result,) = results
    assert result.faults_injected > 0
    assert result.telemetry is not None  # [telemetry] section armed it
