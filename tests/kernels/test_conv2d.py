"""2-D convolution tests: spatial/FFT-domain equivalence and task counts."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.conv2d import (
    conv2d_fft,
    conv2d_spatial,
    fft2_rows_cols,
    fft_conv_task_counts,
    ifft2_rows_cols,
    next_pow2,
)
from repro.kernels.vision import gaussian_kernel, sobel_kernels


def test_next_pow2():
    assert next_pow2(1) == 1
    assert next_pow2(2) == 2
    assert next_pow2(3) == 4
    assert next_pow2(960 + 4) == 1024
    with pytest.raises(ValueError):
        next_pow2(0)


def test_identity_kernel_is_noop(rng):
    img = rng.normal(size=(9, 13))
    delta = np.zeros((3, 3))
    delta[1, 1] = 1.0
    assert np.allclose(conv2d_spatial(img, delta), img)
    assert np.allclose(conv2d_fft(img, delta), img, atol=1e-10)


def test_spatial_conv_matches_scipy_oracle(rng):
    from scipy.signal import convolve2d

    img = rng.normal(size=(8, 11))
    k = rng.normal(size=(3, 5))
    assert np.allclose(conv2d_spatial(img, k), convolve2d(img, k, mode="same"))


@given(
    h=st.integers(6, 40),
    w=st.integers(6, 40),
    ksel=st.sampled_from(["gauss3", "gauss5", "sobel"]),
    seed=st.integers(0, 2**31),
)
@settings(max_examples=30, deadline=None)
def test_fft_conv_matches_spatial(h, w, ksel, seed):
    rng = np.random.default_rng(seed)
    img = rng.normal(size=(h, w))
    kernel = {
        "gauss3": gaussian_kernel(3, 0.8),
        "gauss5": gaussian_kernel(5, 1.5),
        "sobel": sobel_kernels()[0],
    }[ksel]
    assert np.allclose(conv2d_fft(img, kernel), conv2d_spatial(img, kernel), atol=1e-8)


def test_conv_shape_errors():
    with pytest.raises(ValueError):
        conv2d_spatial(np.zeros(5), np.zeros((3, 3)))
    with pytest.raises(ValueError):
        conv2d_spatial(np.zeros((5, 5)), np.zeros(3))


def test_fft2_rows_cols_matches_numpy(rng):
    tile = rng.normal(size=(32, 32)) + 1j * rng.normal(size=(32, 32))
    assert np.allclose(fft2_rows_cols(tile), np.fft.fft2(tile), atol=1e-8)
    assert np.allclose(ifft2_rows_cols(fft2_rows_cols(tile)), tile, atol=1e-10)


def test_injectable_transforms_are_used(rng):
    calls = {"fft": 0}

    def counting_fft(x):
        calls["fft"] += 1
        return np.fft.fft(x, axis=-1)

    tile = rng.normal(size=(16, 16))
    fft2_rows_cols(tile, fft_1d=counting_fft)
    assert calls["fft"] == 2  # one batched row pass + one batched column pass


def test_task_counts_match_paper_lane_detection_claim():
    """Paper Section III: a 960x540 frame yields 16384 1024-point FFTs and
    8192 IFFTs.  Four FFT-domain convolutions at 5x5 kernels on a 1024 tile
    give exactly that."""
    counts = fft_conv_task_counts(540, 960, 5, 5)
    assert counts["tile"] == 1024
    assert 4 * counts["fft"] == 16384
    assert 4 * counts["ifft"] == 8192


def test_task_counts_small_tile():
    counts = fft_conv_task_counts(20, 30, 3, 3)
    assert counts["tile"] == 32
    assert counts["fft"] == 4 * 32
    assert counts["ifft"] == 2 * 32
    assert counts["zip"] == 1


# --------------------------------------------------------------------- #
# overlap-save tiling (the Abtahi-style alternative LD cites)
# --------------------------------------------------------------------- #

@given(
    h=st.integers(8, 60),
    w=st.integers(8, 60),
    tile=st.sampled_from([8, 16, 32, 64]),
    seed=st.integers(0, 2**31),
)
@settings(max_examples=25, deadline=None)
def test_tiled_conv_matches_spatial(h, w, tile, seed):
    from repro.kernels.conv2d import conv2d_fft_tiled

    rng = np.random.default_rng(seed)
    img = rng.normal(size=(h, w))
    kernel = gaussian_kernel(5, 1.1)
    assert np.allclose(
        conv2d_fft_tiled(img, kernel, tile=tile), conv2d_spatial(img, kernel),
        atol=1e-8,
    )


def test_tiled_conv_matches_whole_image_fft(rng):
    from repro.kernels.conv2d import conv2d_fft_tiled

    img = rng.normal(size=(48, 72))
    kernel = sobel_kernels()[1]
    assert np.allclose(
        conv2d_fft_tiled(img, kernel, tile=16), conv2d_fft(img, kernel), atol=1e-8
    )


def test_tiled_conv_rejects_even_kernels(rng):
    from repro.kernels.conv2d import conv2d_fft_tiled

    with pytest.raises(ValueError, match="odd kernel"):
        conv2d_fft_tiled(rng.normal(size=(16, 16)), np.ones((4, 3)))
    with pytest.raises(ValueError, match="tile must be positive"):
        conv2d_fft_tiled(rng.normal(size=(16, 16)), np.ones((3, 3)), tile=0)


def test_tiled_conv_uses_small_transforms(rng):
    """The point of tiling: per-task transform size stays fixed and small
    regardless of image size."""
    from repro.kernels.conv2d import conv2d_fft_tiled

    sizes = []

    def spy_fft(x):
        sizes.append(x.shape[-1])
        return np.fft.fft(x, axis=-1)

    img = rng.normal(size=(70, 90))
    conv2d_fft_tiled(img, gaussian_kernel(5, 1.0), tile=32, fft_1d=spy_fft)
    assert set(sizes) == {64}  # next_pow2(32 + 4) - never the image-padded 128
