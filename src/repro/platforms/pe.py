"""Processing-element descriptors for emulated DSSoC platforms.

A *processing element* (PE) in CEDR is anything a task can be scheduled to:
a CPU core, an FPGA FFT or MMULT accelerator, or the Jetson GPU.  Each PE is
paired with exactly one worker thread in the runtime (paper Section II-A):
CPU PEs execute tasks directly on their core, while accelerator PEs have a
*management* thread pinned to some CPU core that performs DMA/``cudaMemcpy``
setup and then waits on the device.  That CPU-side management cost is the
mechanism behind the paper's scalability findings, so the descriptor keeps
an explicit ``host_core_index`` for it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.simcore import Core, Device

__all__ = ["PEKind", "PEDescriptor", "PE", "SUPPORT_MATRIX", "CPU_ONLY_API"]


class PEKind(enum.Enum):
    """The PE classes that appear in the paper's experiments."""

    CPU = "cpu"
    FFT = "fft"      # Xilinx FFT IP on ZCU102 fabric (<= 2048-point)
    MMULT = "mmult"  # matrix-multiply accelerator on ZCU102 fabric
    GPU = "gpu"      # Volta GPU on the Jetson AGX Xavier

    @property
    def is_accelerator(self) -> bool:
        return self is not PEKind.CPU


#: API name used for non-accelerable application regions in DAG mode.  Such
#: tasks only ever run on CPU PEs; the API-based runtime never creates them
#: (that code runs inline on the application thread instead), which is the
#: ready-queue-size difference driving the paper's Fig. 7 ETF result.
CPU_ONLY_API = "cpu_op"

#: Which libCEDR APIs each PE kind can execute.  CPUs run everything (the
#: paper requires every API to ship a portable C/C++ implementation); the
#: accelerators mirror the hardware used in the evaluation: FFT IP handles
#: forward/inverse FFTs, the MMULT IP handles GEMM, and the Jetson CUDA
#: modules provide FFT and ZIP kernels (Section III).
SUPPORT_MATRIX: dict[PEKind, frozenset[str]] = {
    PEKind.CPU: frozenset(
        {"fft", "ifft", "zip", "gemm", "conv2d", CPU_ONLY_API}
    ),
    PEKind.FFT: frozenset({"fft", "ifft"}),
    PEKind.MMULT: frozenset({"gemm"}),
    PEKind.GPU: frozenset({"fft", "ifft", "zip"}),
}


@dataclass(frozen=True)
class PEDescriptor:
    """Static description of one PE in a platform configuration.

    ``clock_ghz`` feeds the timing model; ``host_core_index`` is only
    meaningful for accelerators and names the worker-pool core whose
    management thread drives this device.
    """

    name: str
    kind: PEKind
    clock_ghz: float
    host_core_index: Optional[int] = None

    def supports(self, api: str) -> bool:
        return api in SUPPORT_MATRIX[self.kind]


@dataclass
class PE:
    """A live PE inside a built platform instance.

    For CPU PEs, ``core`` is the simulated core the worker owns and
    ``device`` is ``None``; for accelerators it is the reverse, plus
    ``host_core`` locating the management thread.
    """

    index: int
    desc: PEDescriptor
    core: Optional["Core"] = None
    device: Optional["Device"] = None
    host_core: Optional["Core"] = None
    #: running tally used by schedulers: when this PE is expected to drain
    #: everything already assigned to it (simulated-time instant).
    expected_free: float = 0.0
    #: sum of execution estimates of tasks assigned but not yet completed
    #: (mailbox + in flight); the daemon rebuilds expected_free from this at
    #: every scheduling round.
    outstanding_est: float = 0.0
    #: EWMA of (observed service time / estimate) - how much slower this PE
    #: runs than its profile due to core contention.  CEDR's heuristics
    #: consult execution-time profiles plus queue state; folding observed
    #: slowdown in is what lets EFT/ETF/HEFT avoid oversubscribed PEs better
    #: than Round Robin (paper Fig. 10a ordering).
    slowdown: float = 1.0
    tasks_executed: int = 0
    busy_until: float = 0.0
    stats: dict = field(default_factory=dict)

    # -- fault-injection state (repro.faults); inert without faults -------- #
    #: live mask consulted by the schedulers via ``Scheduler.compatible``:
    #: False while the PE is quarantined after a detected failure or dead.
    available: bool = True
    #: fail-stop death: permanent, ``available`` never returns to True.
    dead: bool = False
    #: bumped per quarantine so a stale revival timer cannot un-quarantine
    #: a PE that failed again in the meantime.
    quarantine_epoch: int = 0
    #: pending injected faults consumed by the worker at task completion.
    transient_pending: int = 0
    hang_pending: int = 0
    #: multiplicative execution-time degradation while a slowdown fault is
    #: active (1.0 = healthy); ``slow_epoch`` guards the revert timer.
    fault_slow_factor: float = 1.0
    slow_epoch: int = 0

    @property
    def name(self) -> str:
        return self.desc.name

    @property
    def kind(self) -> PEKind:
        return self.desc.kind

    def supports(self, api: str) -> bool:
        return self.desc.supports(api)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<PE {self.index}:{self.desc.name}>"
