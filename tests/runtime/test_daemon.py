"""End-to-end CEDR runtime tests for both programming models."""

import numpy as np
import pytest

from repro.dag import DagBuilder
from repro.platforms import zcu102
from repro.runtime import (
    API_MODE,
    DAG_MODE,
    AppInstance,
    CedrRuntime,
    RuntimeConfig,
)
from repro.sched import PAPER_SCHEDULERS


def tiny_dag_program(data):
    b = DagBuilder("tiny")
    b.cpu("init", lambda s: s.__setitem__("x", data.copy()), 1e-6)
    b.kernel("f", "fft", {"n": data.size}, ["x"], "X", after=["init"])
    b.kernel("z", "zip", {"n": data.size}, ["X", "X"], "P", after=["f"])
    b.kernel("i", "ifft", {"n": data.size}, ["P"], "y", after=["z"])
    return b.build()


def api_main_factory(data):
    def main(lib):
        spec = yield from lib.fft(data)
        prod = yield from lib.zip(spec, spec)
        out = yield from lib.ifft(prod)
        return out
    return main


def build_runtime(scheduler="eft", **config_kw):
    platform = zcu102(n_cpu=3, n_fft=1).build(seed=2)
    runtime = CedrRuntime(platform, RuntimeConfig(scheduler=scheduler, **config_kw))
    runtime.start()
    return runtime


@pytest.fixture
def data(rng):
    return rng.normal(size=64) + 1j * rng.normal(size=64)


@pytest.fixture
def expected(data):
    return np.fft.ifft(np.fft.fft(data) ** 2)


@pytest.mark.parametrize("scheduler", PAPER_SCHEDULERS)
def test_dag_mode_executes_correctly(scheduler, data, expected):
    rt = build_runtime(scheduler)
    app = AppInstance(name="t", mode=DAG_MODE, frame_mb=0.1, dag=tiny_dag_program(data))
    rt.submit(app, at=0.0)
    rt.seal()
    rt.run()
    assert np.allclose(app.state["y"], expected, atol=1e-8)
    assert app.finished
    assert app.tasks_done == app.tasks_total == 4


@pytest.mark.parametrize("scheduler", PAPER_SCHEDULERS)
def test_api_mode_executes_correctly(scheduler, data, expected):
    rt = build_runtime(scheduler)
    app = AppInstance(name="t", mode=API_MODE, frame_mb=0.1,
                      main_factory=api_main_factory(data))
    rt.submit(app, at=0.0)
    rt.seal()
    rt.run()
    assert np.allclose(app.result, expected, atol=1e-8)
    assert app.tasks_total == 3


def test_dag_dependencies_respected_in_time(data):
    rt = build_runtime()
    app = AppInstance(name="t", mode=DAG_MODE, frame_mb=0.1, dag=tiny_dag_program(data))
    rt.submit(app, at=0.0)
    rt.seal()
    rt.run()
    recs = {r.name: r for r in rt.logbook.tasks}
    assert recs["init"].t_finish <= recs["f"].t_start
    assert recs["f"].t_finish <= recs["z"].t_start
    assert recs["z"].t_finish <= recs["i"].t_start


def test_every_task_runs_exactly_once(data):
    rt = build_runtime()
    apps = []
    for i in range(4):
        app = AppInstance(name=f"t{i}", mode=DAG_MODE, frame_mb=0.1,
                          dag=tiny_dag_program(data))
        apps.append(app)
        rt.submit(app, at=i * 1e-4)
    rt.seal()
    rt.run()
    tids = [r.tid for r in rt.logbook.tasks]
    assert len(tids) == len(set(tids)) == 16
    assert rt.counters.tasks_completed == 16


def test_arrival_time_respected(data):
    rt = build_runtime()
    app = AppInstance(name="late", mode=API_MODE, frame_mb=0.1,
                      main_factory=api_main_factory(data))
    rt.submit(app, at=0.05)
    rt.seal()
    rt.run()
    assert app.t_arrival == pytest.approx(0.05)
    assert app.t_launch >= 0.05
    assert app.execution_time > 0


def test_overheads_accumulate(data):
    rt = build_runtime()
    app = AppInstance(name="t", mode=DAG_MODE, frame_mb=0.1, dag=tiny_dag_program(data))
    rt.submit(app, at=0.0)
    rt.seal()
    rt.run()
    assert rt.metrics.runtime_overhead_s > 0
    assert rt.metrics.sched_overhead_s > 0
    assert rt.metrics.makespan > 0
    assert rt.metrics.apps_completed == 1


def test_all_threads_finish_on_shutdown(data):
    rt = build_runtime()
    app = AppInstance(name="t", mode=API_MODE, frame_mb=0.1,
                      main_factory=api_main_factory(data))
    rt.submit(app, at=0.0)
    rt.seal()
    rt.run()  # strict mode would raise if workers were left blocked
    assert all(not t.alive for t in rt.engine.threads)


def test_submit_after_seal_rejected(data):
    rt = build_runtime()
    rt.seal()
    app = AppInstance(name="t", mode=API_MODE, frame_mb=0.1,
                      main_factory=api_main_factory(data))
    with pytest.raises(RuntimeError, match="sealed"):
        rt.submit(app, at=0.0)


def test_double_start_rejected():
    rt = build_runtime()
    with pytest.raises(RuntimeError, match="already started"):
        rt.start()
    rt.seal()
    rt.run()


def test_empty_workload_shuts_down_cleanly():
    rt = build_runtime()
    rt.seal()
    assert rt.run() >= 0.0
    assert rt.metrics.apps_completed == 0


def test_timing_only_mode_skips_execution(data):
    rt = build_runtime(execute_kernels=False)

    def main(lib):
        # timing-only runs return None; pass same-shaped stand-ins forward
        spec = (yield from lib.fft(data)) or data
        prod = (yield from lib.zip(spec, spec)) or data
        out = yield from lib.ifft(prod)
        return out

    app = AppInstance(name="t", mode=API_MODE, frame_mb=0.1, main_factory=main)
    rt.submit(app, at=0.0)
    rt.seal()
    rt.run()
    assert app.result is None        # kernels not evaluated
    assert app.finished              # but the timing pipeline completed
    assert rt.counters.tasks_completed == 3


def test_cost_noise_changes_timing_not_results(data, expected):
    def run(sigma):
        rt = build_runtime(cost_noise_sigma=sigma)
        app = AppInstance(name="t", mode=API_MODE, frame_mb=0.1,
                          main_factory=api_main_factory(data))
        rt.submit(app, at=0.0)
        rt.seal()
        rt.run()
        return app

    clean = run(0.0)
    noisy = run(0.2)
    assert np.allclose(noisy.result, expected, atol=1e-8)
    assert clean.execution_time != noisy.execution_time


def test_same_seed_reproduces_timeline(data):
    def run():
        rt = build_runtime(cost_noise_sigma=0.1)
        app = AppInstance(name="t", mode=DAG_MODE, frame_mb=0.1,
                          dag=tiny_dag_program(data))
        rt.submit(app, at=0.0)
        rt.seal()
        rt.run()
        return app.execution_time

    assert run() == run()


def test_mixed_modes_in_one_run(data, expected):
    rt = build_runtime()
    dag_app = AppInstance(name="d", mode=DAG_MODE, frame_mb=0.1,
                          dag=tiny_dag_program(data))
    api_app = AppInstance(name="a", mode=API_MODE, frame_mb=0.1,
                          main_factory=api_main_factory(data))
    rt.submit(dag_app, at=0.0)
    rt.submit(api_app, at=0.0)
    rt.seal()
    rt.run()
    assert np.allclose(dag_app.state["y"], expected, atol=1e-8)
    assert np.allclose(api_app.result, expected, atol=1e-8)


def test_sched_period_ablation_knob(data):
    """A forced scheduling epoch delays dispatch; execution time grows."""
    def run(period):
        platform = zcu102(n_cpu=3, n_fft=1).build(seed=2)
        rt = CedrRuntime(platform, RuntimeConfig(scheduler="eft", sched_period_s=period))
        rt.start()
        app = AppInstance(name="t", mode=API_MODE, frame_mb=0.1,
                          main_factory=api_main_factory(data))
        rt.submit(app, at=0.0)
        rt.seal()
        rt.run()
        return app.execution_time

    assert run(2e-3) > run(0.0)


# --------------------------------------------------------------------- #
# simulator event core plumbing
# --------------------------------------------------------------------- #

def test_event_core_config_reaches_engine_and_counters(data, expected):
    rt = build_runtime(event_core="heap")
    assert rt.engine.event_core == "heap"
    app = AppInstance(name="t", mode=DAG_MODE, frame_mb=0.1, dag=tiny_dag_program(data))
    rt.submit(app, at=0.0)
    rt.seal()
    rt.run()
    assert np.allclose(app.state["y"], expected, atol=1e-8)
    snap = rt.counters.snapshot()["event_core"]
    assert snap["kind"] == "heap"
    assert snap["timers_fired"] > 0
    assert snap["overflow_spills"] == 0  # heaps cannot spill
    assert snap["occupancy_hwm"] >= 1
    assert snap["late_timers"] == 0


def test_wheel_event_core_stats_in_perf_snapshot(data):
    rt = build_runtime()  # default config: wheel
    app = AppInstance(name="t", mode=DAG_MODE, frame_mb=0.1, dag=tiny_dag_program(data))
    rt.submit(app, at=0.0)
    rt.seal()
    rt.run()
    snap = rt.counters.snapshot()["event_core"]
    assert snap["kind"] == "wheel"
    assert snap["drain_batches"] > 0
    assert snap["mean_batch"] >= 1.0


def test_late_timer_clamps_bridge_into_telemetry(data):
    from repro.telemetry import TelemetryConfig

    rt = build_runtime(telemetry=TelemetryConfig())
    app = AppInstance(name="t", mode=DAG_MODE, frame_mb=0.1, dag=tiny_dag_program(data))
    rt.submit(app, at=0.0)
    rt.seal()
    rt.run()
    eng = rt.engine
    assert eng.now > 0.0
    eng.call_at(0.0, lambda: None)  # in the past: clamped + counted
    assert eng.late_timers == 1
    assert rt.telemetry.flat_values()["simcore_late_timers_total"] == 1
