"""Arrival-generator registry: seeded, deterministic open-stream arrivals.

CEDR frames the runtime as a persistent daemon fed by applications that
arrive *over time*; DS3 (Arda et al.) evaluates schedulers under streaming
job-injection processes.  This module is the one place arrival processes
are defined - both the closed-batch figures (``WorkloadSpec.instantiate``
takes the first *N* arrivals of a stream) and the open-stream service mode
(``repro.serve.driver`` keeps pulling until the duration expires) draw
from the same registry, so "how jobs arrive" is specified once.

Determinism contract
--------------------

Every generator is a **pure function of ``(spec, rng state)``**: given an
:class:`ArrivalSpec` and a freshly seeded ``numpy`` Generator (derive one
with :func:`repro.simcore.child_rng`), it yields the exact same
nondecreasing instant sequence on every call, in every process, under
every event core.  Generators never read the engine clock, wall time, or
any shared state - which is what keeps serve runs bit-identical across
``--jobs`` pools, cache hits, and heap-vs-wheel event cores (the
differential oracle's serve variants prove it per run).

Two bit-identity subtleties are load-bearing and pinned by tests:

* ``periodic`` computes instant *j* as ``phase + j * period`` by
  **multiplication**, never by repeated addition - running float
  accumulation drifts from ``np.arange(n) * period`` in the last ulp,
  which would silently re-time every pinned closed-batch figure;
* ``poisson`` draws scalar exponential gaps in sequence, which NumPy
  guarantees bit-identical to the historical vectorized
  ``rng.exponential(mean, size=n)`` + ``cumsum`` path the workload layer
  used before this registry existed.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator, Optional, Union

import numpy as np

from repro.registry import Registry

__all__ = [
    "ARRIVALS",
    "ArrivalSpec",
    "register_arrival",
    "available_arrivals",
    "make_arrival_stream",
    "arrival_rate",
]

#: generator factory signature: (spec, seeded rng) -> nondecreasing instants
ArrivalFn = Callable[["ArrivalSpec", np.random.Generator], Iterator[float]]

#: the arrival-process registry - the first conforming client of
#: :class:`repro.registry.Registry` (this module *was* the proof-of-pattern
#: one-off dict before the facility existed).  Third-party processes plug
#: in via the ``repro.arrivals`` entry-point group.
ARRIVALS: Registry[ArrivalFn] = Registry(
    "arrival process", entry_point_group="repro.arrivals"
)


@dataclass(frozen=True)
class ArrivalSpec:
    """One arrival process: a registered kind plus its parameters.

    ``params`` is a name-sorted tuple of ``(name, value)`` pairs so specs
    are hashable, order-insensitive, and canonically encodable by the
    content-addressed sweep cache (two spellings of the same process get
    the same cache digest).
    """

    kind: str
    params: tuple[tuple[str, Union[float, str]], ...] = ()

    def __post_init__(self) -> None:
        # registry lookup: RegistryError is a ValueError, and the message
        # lists every available process with a did-you-mean hint
        ARRIVALS.get(self.kind)
        names = [name for name, _ in self.params]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate arrival parameter in {names}")
        object.__setattr__(self, "params", tuple(sorted(self.params)))

    @classmethod
    def make(cls, kind: str, **params: Union[float, str]) -> "ArrivalSpec":
        return cls(kind, tuple(params.items()))

    @classmethod
    def parse(cls, text: str) -> "ArrivalSpec":
        """Parse the CLI form ``kind:name=value,name=value``.

        Values parse as floats when possible and stay strings otherwise
        (``trace:path=out/logbook.json``).  A bare ``kind`` means all
        defaults: ``poisson`` == ``ArrivalSpec.make("poisson")``.
        """
        kind, _, rest = text.partition(":")
        kind = kind.strip()
        params: list[tuple[str, Union[float, str]]] = []
        for part in rest.split(","):
            part = part.strip()
            if not part:
                continue
            name, sep, raw = part.partition("=")
            if not sep or not name.strip():
                raise ValueError(
                    f"bad arrival parameter {part!r} in {text!r} "
                    f"(expected name=value)"
                )
            raw = raw.strip()
            try:
                value: Union[float, str] = float(raw)
            except ValueError:
                value = raw
            params.append((name.strip(), value))
        return cls(kind, tuple(params))

    def get(self, name: str, default: Union[float, str, None] = None):
        for key, value in self.params:
            if key == name:
                return value
        return default

    def number(self, name: str, default: Optional[float] = None) -> Optional[float]:
        value = self.get(name, default)
        if value is None:
            return None
        if isinstance(value, str):
            raise ValueError(
                f"arrival parameter {name}={value!r} must be numeric"
            )
        return float(value)

    def describe(self) -> str:
        if not self.params:
            return self.kind
        body = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.kind}:{body}"


def register_arrival(kind: str) -> Callable[[ArrivalFn], ArrivalFn]:
    """Register a generator factory under *kind* (decorator)."""
    return ARRIVALS.register(kind)


def available_arrivals() -> tuple[str, ...]:
    """Registered arrival-process names, sorted."""
    return ARRIVALS.names()


def make_arrival_stream(
    spec: ArrivalSpec, rng: np.random.Generator
) -> Iterator[float]:
    """Instantiate *spec* as an iterator of nondecreasing arrival instants.

    *rng* must be freshly seeded for this stream (one
    ``child_rng(seed, label)`` per stream, never shared) - that is what
    makes the stream a pure function of ``(spec, seed, label)``.  Streams
    may be infinite (``periodic``, ``poisson``, ``bursty``, ``diurnal``,
    looped ``trace``); callers take what they need (``islice`` for a
    closed batch, pull-until-duration for serve).
    """
    return ARRIVALS.get(spec.kind)(spec, rng)


def _period_of(spec: ArrivalSpec) -> float:
    """Mean inter-arrival seconds from either a ``period`` or ``rate`` param.

    ``period`` wins when both are given: the workload layer passes the
    exact ``frame_mb / rate_mbps`` quotient through untouched, so the
    closed-batch figures never re-derive (and re-round) it from a rate.
    """
    period = spec.number("period")
    if period is None:
        rate = spec.number("rate")
        if rate is None:
            raise ValueError(
                f"arrival process {spec.kind!r} needs a rate= (arrivals/s) "
                f"or period= (seconds) parameter"
            )
        if rate <= 0:
            raise ValueError(f"arrival rate must be positive, got {rate}")
        period = 1.0 / rate
    if period <= 0:
        raise ValueError(f"arrival period must be positive, got {period}")
    return period


def arrival_rate(spec: ArrivalSpec) -> float:
    """Nominal mean arrival rate (arrivals/s) of *spec*, for reporting."""
    if spec.kind == "trace":
        times = list(_trace_times(spec))
        if len(times) < 2 or times[-1] <= times[0]:
            return 0.0
        return (len(times) - 1) / (times[-1] - times[0])
    rate = 1.0 / _period_of(spec)
    if spec.kind == "bursty":
        on = spec.number("burst_len", _BURST_LEN_DEFAULT)
        off = spec.number("idle_len", _IDLE_LEN_DEFAULT)
        return rate * on / (on + off)
    if spec.kind == "diurnal":
        floor = spec.number("floor", _DIURNAL_FLOOR_DEFAULT)
        return rate * (floor + (1.0 - floor) * 0.5)
    return rate


# --------------------------------------------------------------------- #
# builtins
# --------------------------------------------------------------------- #


@register_arrival("periodic")
def _periodic(spec: ArrivalSpec, rng: np.random.Generator) -> Iterator[float]:
    """Deterministic fixed-period arrivals: instant *j* at ``phase + j*period``.

    The paper's injection process (Section III: each rate "defines a
    periodic rate of job").  Ignores *rng* entirely.  The multiplication
    (never ``t += period``) keeps instant *j* bit-identical to the
    pre-registry ``np.arange(count) * period`` schedule.
    """
    period = _period_of(spec)
    phase = spec.number("phase", 0.0)
    j = 0
    while True:
        yield phase + j * period
        j += 1


@register_arrival("poisson")
def _poisson(spec: ArrivalSpec, rng: np.random.Generator) -> Iterator[float]:
    """Memoryless arrivals: i.i.d. exponential gaps at the same mean rate.

    The first arrival comes after one full gap (not pinned to t=0), so the
    mean inter-arrival matches the periodic stream's period exactly - the
    convention the arrival-process ablation figures were recorded under.
    """
    mean_gap = _period_of(spec)
    t = 0.0
    while True:
        t += float(rng.exponential(mean_gap))
        yield t


_BURST_LEN_DEFAULT = 0.05   # mean ON-phase seconds
_IDLE_LEN_DEFAULT = 0.05    # mean OFF-phase seconds


@register_arrival("bursty")
def _bursty(spec: ArrivalSpec, rng: np.random.Generator) -> Iterator[float]:
    """Markov-modulated on/off Poisson process (interrupted Poisson).

    A two-state phase chain alternates exponentially distributed ON
    (``burst_len`` mean seconds) and OFF (``idle_len``) dwell times; during
    ON phases arrivals are Poisson at ``rate``, during OFF phases nothing
    arrives.  Long-run mean rate is ``rate * burst_len / (burst_len +
    idle_len)``.  Models the clustered submissions CEDR sees from a frame-
    synchronous sensor front-end.
    """
    mean_gap = _period_of(spec)
    burst_len = spec.number("burst_len", _BURST_LEN_DEFAULT)
    idle_len = spec.number("idle_len", _IDLE_LEN_DEFAULT)
    if burst_len <= 0 or idle_len < 0:
        raise ValueError(
            f"bursty needs burst_len > 0 and idle_len >= 0, "
            f"got burst_len={burst_len}, idle_len={idle_len}"
        )
    t = 0.0           # candidate arrival clock
    phase_end = 0.0   # end of the current ON phase
    while True:
        if t >= phase_end:
            # start the next ON window after an OFF dwell; any candidate
            # beyond the window rolls into the next one (draw order is
            # fixed: dwell pair first, then gaps - pure in (spec, seed))
            start = max(t, phase_end + float(rng.exponential(idle_len))) \
                if idle_len > 0 else t
            phase_end = start + float(rng.exponential(burst_len))
            t = start
        t += float(rng.exponential(mean_gap))
        if t < phase_end:
            yield t
        # else: the gap crossed the ON window's end; loop re-enters the
        # phase logic with t >= phase_end and opens the next window


_DIURNAL_FLOOR_DEFAULT = 0.1   # off-peak fraction of the peak rate
_DIURNAL_PERIOD_DEFAULT = 1.0  # envelope period, simulated seconds


@register_arrival("diurnal")
def _diurnal(spec: ArrivalSpec, rng: np.random.Generator) -> Iterator[float]:
    """Nonhomogeneous Poisson with a sinusoidal rate envelope (thinning).

    Instantaneous rate is ``peak * (floor + (1-floor) * (1 - cos(2*pi*t /
    cycle)) / 2)``: it starts at the ``floor`` fraction of the peak,
    crests mid-cycle, and returns - a compressed "diurnal" load curve.
    ``rate``/``period`` set the *peak*; ``cycle`` sets the envelope length
    (default 1 simulated second).  Implemented by Lewis-Shedler thinning:
    candidates at the peak rate, each kept with probability
    ``envelope(t)`` - one uniform per candidate, so the stream is a pure
    function of ``(spec, seed)``.
    """
    mean_gap = _period_of(spec)   # candidate gap at the *peak* rate
    floor = spec.number("floor", _DIURNAL_FLOOR_DEFAULT)
    cycle = spec.number("cycle", _DIURNAL_PERIOD_DEFAULT)
    if not 0.0 <= floor <= 1.0:
        raise ValueError(f"diurnal floor must be in [0, 1], got {floor}")
    if cycle <= 0:
        raise ValueError(f"diurnal cycle must be positive, got {cycle}")
    t = 0.0
    while True:
        t += float(rng.exponential(mean_gap))
        envelope = floor + (1.0 - floor) * 0.5 * (
            1.0 - math.cos(2.0 * math.pi * t / cycle)
        )
        if float(rng.random()) < envelope:
            yield t


def _trace_times(spec: ArrivalSpec) -> list[float]:
    """The base instant list of a ``trace`` spec (sorted, nonnegative)."""
    literal = spec.get("times")
    path = spec.get("path")
    if (literal is None) == (path is None):
        raise ValueError(
            "trace needs exactly one of times=t0;t1;... or "
            "path=<logbook.json>"
        )
    if literal is not None:
        if isinstance(literal, float):   # single-instant trace parsed as float
            times = [literal]
        else:
            times = [float(part) for part in str(literal).split(";") if part.strip()]
    else:
        dump = json.loads(Path(str(path)).read_text(encoding="utf-8"))
        apps = dump.get("apps")
        if apps is None:
            raise ValueError(f"{path}: not a logbook dump (no 'apps' key)")
        times = [float(row["t_arrival"]) for row in apps]
    if not times:
        raise ValueError("trace replay needs at least one arrival instant")
    times.sort()
    if times[0] < 0:
        raise ValueError(f"trace contains a negative instant: {times[0]}")
    return times


@register_arrival("trace")
def _trace(spec: ArrivalSpec, rng: np.random.Generator) -> Iterator[float]:
    """Replay recorded arrival instants - from a logbook dump or a literal.

    ``path=out/logbook.json`` replays the ``t_arrival`` of every app in a
    saved run's logbook (CEDR's arbitrary-trace injection); ``times=
    0.01;0.02;0.05`` replays a literal semicolon-separated list.  With
    ``loop=<seconds>`` the trace repeats forever, shifted by the loop
    period each pass (an open-stream service can replay a one-second
    capture indefinitely); without it the stream is finite.
    """
    times = _trace_times(spec)
    loop = spec.number("loop")
    if loop is None:
        yield from times
        return
    if loop <= 0:
        raise ValueError(f"trace loop period must be positive, got {loop}")
    if times[-1] >= loop:
        raise ValueError(
            f"trace instants must fit inside the loop period "
            f"({times[-1]} >= {loop})"
        )
    k = 0
    while True:
        base = k * loop   # multiplication, not accumulation: exact phases
        for t in times:
            yield base + t
        k += 1
