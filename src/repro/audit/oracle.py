"""Differential oracle: one workload, paired configurations, zero drift.

The sweep machinery promises that a run is a *pure function* of its cell
tuple - which is what licenses the process pool, the content-addressed
cache, the columnar scheduler fast paths, and telemetry's observe-only
contract.  This module tests that promise by construction: it runs the
same (rate x trial) grid under paired configurations that must be
indistinguishable -

``jobs``        serial vs ``--jobs`` process-pool sharding
``cache``       uncached vs cold-store vs warm-hit sweep cache
``scalar``      scalar ``estimate(task, pe)`` vs vectorized columnar rounds
``telemetry``   telemetry off vs on (identical outside the snapshot field)
``audit``       online auditor off vs on
``event_core``  calendar-queue timer wheel vs the reference binary heap
``core_impl``   per-object reference main loop vs the flat
                structure-of-arrays fast path (:mod:`repro.simcore.flatcore`)
``scenario``    flag-driven sweep vs the equivalent declarative
                :class:`~repro.scenario.ScenarioSpec` (opt-in: pass a
                ``scenario=`` template)

- and diffs every :class:`~repro.metrics.RunResult` field-by-field,
bit-exactly.  :func:`diff_results` / :func:`assert_identical` are the
reusable helpers the bit-identity tests build on; :func:`diff_run` is the
full paired-run driver behind ``repro audit diff``.
"""

from __future__ import annotations

import dataclasses
import tempfile
from typing import Optional, Sequence

from repro.experiments.cache import SweepCache
from repro.experiments.common import run_trials
from repro.metrics import RunResult
from repro.platforms import PlatformConfig
from repro.runtime import RuntimeConfig
from repro.workload import WorkloadSpec

__all__ = [
    "diff_results",
    "diff_serve_results",
    "assert_identical",
    "VariantOutcome",
    "OracleReport",
    "DEFAULT_VARIANTS",
    "SERVE_VARIANTS",
    "diff_run",
    "diff_serve",
]

#: every paired configuration :func:`diff_run` knows how to produce.
DEFAULT_VARIANTS = (
    "jobs", "cache", "scalar", "telemetry", "audit", "event_core", "core_impl",
)

#: the paired configurations :func:`diff_serve` covers.  ``telemetry`` is
#: omitted: a serve cell's config carries no sampler by default and the
#: embedded ``RunResult.telemetry`` field is the only thing it would touch.
SERVE_VARIANTS = ("jobs", "cache", "scalar", "audit", "event_core", "core_impl")

_RESULT_FIELDS = tuple(f.name for f in dataclasses.fields(RunResult))


def diff_results(
    a: RunResult,
    b: RunResult,
    *,
    ignore: Sequence[str] = (),
) -> list[str]:
    """Names of ``RunResult`` fields where *a* and *b* differ, bit-exactly.

    Frozen-dataclass ``==`` answers *whether* two results drifted; this
    answers *where*, which is what a failing determinism test needs to
    print.  ``ignore`` excludes fields that differ by design (the
    ``telemetry`` snapshot when comparing an instrumented run against a
    bare one).
    """
    unknown = set(ignore) - set(_RESULT_FIELDS)
    if unknown:
        raise KeyError(f"ignore names unknown RunResult fields: {sorted(unknown)}")
    return [
        name
        for name in _RESULT_FIELDS
        if name not in ignore and getattr(a, name) != getattr(b, name)
    ]


def assert_identical(
    results: Sequence[Sequence[RunResult]],
    labels: Sequence[str],
    *,
    ignore: Sequence[str] = (),
) -> None:
    """Assert several result lists are cell-wise bit-identical.

    ``results[0]`` is the reference; every other list must match it cell
    for cell.  The failure message names the variant, the cell, and the
    drifted fields - the part the four hand-rolled ``assert a == b``
    patterns never reported.
    """
    reference, ref_label = results[0], labels[0]
    for candidate, label in zip(results[1:], labels[1:]):
        assert len(candidate) == len(reference), (
            f"{label} produced {len(candidate)} results, "
            f"{ref_label} produced {len(reference)}"
        )
        for i, (a, b) in enumerate(zip(reference, candidate)):
            fields = diff_results(a, b, ignore=ignore)
            assert not fields, (
                f"{label} drifted from {ref_label} at cell {i} in "
                f"field(s) {fields}: "
                + "; ".join(
                    f"{name}: {getattr(a, name)!r} != {getattr(b, name)!r}"
                    for name in fields[:3]
                )
            )


def diff_serve_results(a, b) -> list[str]:
    """Drifted field names between two ``ServeResult``s, bit-exactly.

    The embedded batch result is descended into so a failure names the
    actual drifted measurement (``run.makespan``) instead of just ``run``.
    """
    from repro.serve.driver import ServeResult

    fields: list[str] = []
    for f in dataclasses.fields(ServeResult):
        va, vb = getattr(a, f.name), getattr(b, f.name)
        if va == vb:
            continue
        if f.name == "run":
            fields.extend(f"run.{name}" for name in diff_results(va, vb))
        else:
            fields.append(f.name)
    return fields


@dataclasses.dataclass(frozen=True)
class VariantOutcome:
    """One paired configuration's agreement with the serial baseline."""

    variant: str
    cells: int
    #: (cell index, drifted field names) per disagreeing cell.
    mismatches: tuple[tuple[int, tuple[str, ...]], ...] = ()
    #: extra bookkeeping failures (cache hit/miss accounting, etc.).
    notes: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.mismatches and not self.notes

    def describe(self) -> str:
        if self.ok:
            return f"{self.variant:<10} ok ({self.cells} cells bit-identical)"
        parts = [
            f"cell {i}: {', '.join(fields)}" for i, fields in self.mismatches
        ]
        parts.extend(self.notes)
        return f"{self.variant:<10} FAIL ({'; '.join(parts)})"


@dataclasses.dataclass(frozen=True)
class OracleReport:
    """Outcome of one :func:`diff_run` sweep."""

    label: str
    cells: int
    outcomes: tuple[VariantOutcome, ...]

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.outcomes)

    def summary(self) -> str:
        head = (
            f"differential oracle [{self.label}]: {self.cells} cells x "
            f"{len(self.outcomes)} variants"
        )
        return "\n".join([head, *(f"  {o.describe()}" for o in self.outcomes)])


def _compare(
    variant: str,
    baseline: list[RunResult],
    candidate: list[RunResult],
    *,
    ignore: Sequence[str] = (),
    notes: Sequence[str] = (),
) -> VariantOutcome:
    mismatches = []
    for i, (a, b) in enumerate(zip(baseline, candidate)):
        fields = diff_results(a, b, ignore=ignore)
        if fields:
            mismatches.append((i, tuple(fields)))
    if len(candidate) != len(baseline):
        notes = (*notes, f"{len(candidate)} cells vs {len(baseline)}")
    return VariantOutcome(
        variant=variant,
        cells=len(baseline),
        mismatches=tuple(mismatches),
        notes=tuple(notes),
    )


def diff_run(
    platform: PlatformConfig,
    workload: WorkloadSpec,
    mode: str,
    rates: Sequence[float],
    scheduler: str,
    *,
    trials: int = 2,
    base_seed: int = 0,
    execute: bool = False,
    config: Optional[RuntimeConfig] = None,
    jobs: int = 2,
    cache_dir: Optional[str] = None,
    variants: Sequence[str] = DEFAULT_VARIANTS,
    scenario=None,
) -> OracleReport:
    """Run one grid under every paired configuration and diff the results.

    The baseline is the plain serial, uncached, telemetry-free, scalar-free
    sweep; each variant flips exactly one knob and must reproduce it
    bit-for-bit.  The ``cache`` variant additionally audits the cache's own
    books: a cold pass must miss-and-store every cell, a warm pass must hit
    every cell without simulating anything.

    The opt-in ``scenario`` variant takes a run-kind
    :class:`~repro.scenario.ScenarioSpec` template, sweeps it across the
    same rate grid via :func:`~repro.scenario.run_scenario`, and requires
    the declarative route to reproduce the flag-built baseline bit-for-bit
    - the proof behind ``repro audit diff --scenario``.
    """
    unknown = set(variants) - set(DEFAULT_VARIANTS) - {"scenario"}
    if unknown:
        raise KeyError(
            f"unknown oracle variant(s) {sorted(unknown)}; "
            f"available: {(*DEFAULT_VARIANTS, 'scenario')}"
        )
    if "scenario" in variants:
        if scenario is None:
            raise ValueError(
                "the 'scenario' variant needs a ScenarioSpec template "
                "(pass scenario=...)"
            )
        if scenario.kind != "run":
            raise ValueError(
                f"diff_run needs a run-kind scenario, got {scenario.kind!r}"
            )
    base_config = (
        config
        if config is not None
        else RuntimeConfig(scheduler=scheduler, execute_kernels=execute)
    )

    def grid(
        cfg: RuntimeConfig, n_jobs: int = 1, cache=False
    ) -> list[RunResult]:
        out: list[RunResult] = []
        for rate in rates:
            out.extend(
                run_trials(
                    platform, workload, mode, rate, scheduler,
                    trials=trials, base_seed=base_seed, execute=execute,
                    config=cfg, n_jobs=n_jobs, cache=cache,
                )
            )
        return out

    baseline = grid(base_config)
    outcomes: list[VariantOutcome] = []
    for variant in variants:
        if variant == "jobs":
            outcomes.append(
                _compare(variant, baseline, grid(base_config, n_jobs=jobs))
            )
        elif variant == "cache":
            with tempfile.TemporaryDirectory() as scratch:
                root = cache_dir or scratch
                cold_cache = SweepCache(root)
                cold = grid(base_config, cache=cold_cache)
                warm_cache = SweepCache(root)
                warm = grid(base_config, cache=warm_cache)
                notes = []
                n = len(baseline)
                if not (
                    cold_cache.stats.misses == cold_cache.stats.stores == n
                ):
                    notes.append(
                        f"cold pass expected {n} misses+stores, saw "
                        f"{cold_cache.stats}"
                    )
                if warm_cache.stats.hits != n or warm_cache.stats.misses != 0:
                    notes.append(
                        f"warm pass expected {n} pure hits, saw "
                        f"{warm_cache.stats}"
                    )
                outcome = _compare(variant, baseline, cold, notes=notes)
                warm_outcome = _compare(variant, baseline, warm)
                outcomes.append(
                    dataclasses.replace(
                        outcome,
                        mismatches=outcome.mismatches + warm_outcome.mismatches,
                    )
                )
        elif variant == "scalar":
            cfg = dataclasses.replace(base_config, scalar_estimates=True)
            outcomes.append(_compare(variant, baseline, grid(cfg)))
        elif variant == "telemetry":
            cfg = base_config.with_telemetry(0.0)
            outcomes.append(
                _compare(
                    variant, baseline, grid(cfg), ignore=("telemetry",)
                )
            )
        elif variant == "audit":
            cfg = dataclasses.replace(base_config, audit=True)
            outcomes.append(_compare(variant, baseline, grid(cfg)))
        elif variant == "event_core":
            # Flip the simulator timer queue to the *other* implementation;
            # heap and wheel pop in identical (when, seq) order by
            # construction, so every cell must be bit-identical.
            other = "heap" if base_config.event_core == "wheel" else "wheel"
            cfg = base_config.with_event_core(other)
            outcomes.append(_compare(variant, baseline, grid(cfg)))
        elif variant == "core_impl":
            # Flip the engine main loop to the *other* implementation; the
            # flat SoA loop preserves float op order exactly, so every
            # cell must be bit-identical.
            other = "flat" if base_config.core_impl == "objects" else "objects"
            cfg = base_config.with_core_impl(other)
            outcomes.append(_compare(variant, baseline, grid(cfg)))
        elif variant == "scenario":
            from repro.scenario import run_scenario

            declarative: list[RunResult] = []
            for rate in rates:
                cell = dataclasses.replace(scenario, rate_mbps=float(rate))
                declarative.extend(
                    run_scenario(cell, trials=trials, base_seed=base_seed)
                )
            outcomes.append(_compare(variant, baseline, declarative))
    return OracleReport(
        label=f"{platform.name}/{workload.name}/{mode}/{scheduler}",
        cells=len(baseline),
        outcomes=tuple(outcomes),
    )


def _compare_serve(
    variant: str,
    baseline: list,
    candidate: list,
    *,
    notes: Sequence[str] = (),
) -> VariantOutcome:
    mismatches = []
    for i, (a, b) in enumerate(zip(baseline, candidate)):
        fields = diff_serve_results(a, b)
        if fields:
            mismatches.append((i, tuple(fields)))
    if len(candidate) != len(baseline):
        notes = (*notes, f"{len(candidate)} cells vs {len(baseline)}")
    return VariantOutcome(
        variant=variant,
        cells=len(baseline),
        mismatches=tuple(mismatches),
        notes=tuple(notes),
    )


def diff_serve(
    platform: PlatformConfig,
    serve,
    *,
    trials: int = 2,
    base_seed: int = 0,
    config: Optional[RuntimeConfig] = None,
    jobs: int = 2,
    cache_dir: Optional[str] = None,
    variants: Sequence[str] = SERVE_VARIANTS,
    scenario=None,
) -> OracleReport:
    """The serve-mode differential oracle behind ``repro audit diff --serve``.

    Open-stream service runs add three determinism hazards batch sweeps do
    not have: admission decisions fed back from live runtime signals (ready
    depth, online p99), hold-queue release interleaved with completions,
    and an expiry/seal race against in-flight work.  This runs one
    ``(serve config, trial seed)`` grid under every paired configuration in
    *variants* and diffs each :class:`~repro.serve.driver.ServeResult` -
    SLO ledger and embedded batch result both - bit-exactly against the
    serial baseline.

    Like :func:`diff_run`, the opt-in ``scenario`` variant replays a
    serve-kind :class:`~repro.scenario.ScenarioSpec` template over the
    same trial grid and requires bit-identity with the flag-built config.
    """
    from repro.serve.driver import serve_trials

    unknown = set(variants) - set(SERVE_VARIANTS) - {"scenario"}
    if unknown:
        raise KeyError(
            f"unknown serve oracle variant(s) {sorted(unknown)}; "
            f"available: {(*SERVE_VARIANTS, 'scenario')}"
        )
    if "scenario" in variants:
        if scenario is None:
            raise ValueError(
                "the 'scenario' variant needs a ScenarioSpec template "
                "(pass scenario=...)"
            )
        if scenario.kind != "serve":
            raise ValueError(
                f"diff_serve needs a serve-kind scenario, got {scenario.kind!r}"
            )
    base_config = (
        config
        if config is not None
        else RuntimeConfig(scheduler=serve.scheduler, execute_kernels=False)
    )

    def grid(cfg: RuntimeConfig, n_jobs: int = 1, cache=False) -> list:
        return serve_trials(
            platform, serve,
            trials=trials, base_seed=base_seed,
            config=cfg, n_jobs=n_jobs, cache=cache,
        )

    baseline = grid(base_config)
    outcomes: list[VariantOutcome] = []
    for variant in variants:
        if variant == "jobs":
            outcomes.append(
                _compare_serve(variant, baseline, grid(base_config, n_jobs=jobs))
            )
        elif variant == "cache":
            with tempfile.TemporaryDirectory() as scratch:
                root = cache_dir or scratch
                cold_cache = SweepCache(root)
                cold = grid(base_config, cache=cold_cache)
                warm_cache = SweepCache(root)
                warm = grid(base_config, cache=warm_cache)
                notes = []
                n = len(baseline)
                if not (
                    cold_cache.stats.misses == cold_cache.stats.stores == n
                ):
                    notes.append(
                        f"cold pass expected {n} misses+stores, saw "
                        f"{cold_cache.stats}"
                    )
                if warm_cache.stats.hits != n or warm_cache.stats.misses != 0:
                    notes.append(
                        f"warm pass expected {n} pure hits, saw "
                        f"{warm_cache.stats}"
                    )
                outcome = _compare_serve(variant, baseline, cold, notes=notes)
                warm_outcome = _compare_serve(variant, baseline, warm)
                outcomes.append(
                    dataclasses.replace(
                        outcome,
                        mismatches=outcome.mismatches + warm_outcome.mismatches,
                    )
                )
        elif variant == "scalar":
            cfg = dataclasses.replace(base_config, scalar_estimates=True)
            outcomes.append(_compare_serve(variant, baseline, grid(cfg)))
        elif variant == "audit":
            cfg = dataclasses.replace(base_config, audit=True)
            outcomes.append(_compare_serve(variant, baseline, grid(cfg)))
        elif variant == "event_core":
            other = "heap" if base_config.event_core == "wheel" else "wheel"
            cfg = base_config.with_event_core(other)
            outcomes.append(_compare_serve(variant, baseline, grid(cfg)))
        elif variant == "core_impl":
            other = "flat" if base_config.core_impl == "objects" else "objects"
            cfg = base_config.with_core_impl(other)
            outcomes.append(_compare_serve(variant, baseline, grid(cfg)))
        elif variant == "scenario":
            from repro.scenario import run_scenario

            declarative = run_scenario(
                scenario, trials=trials, base_seed=base_seed
            )
            outcomes.append(_compare_serve(variant, baseline, declarative))
    tenant_names = "+".join(t.name for t in serve.tenants)
    return OracleReport(
        label=f"{platform.name}/serve[{tenant_names}]/{serve.scheduler}",
        cells=len(baseline),
        outcomes=tuple(outcomes),
    )
