"""Metric exporters: Prometheus exposition text and JSON dumps.

Both exporters are pure functions of a :class:`~repro.telemetry.registry.
MetricRegistry` (plus, for the JSON form, the sampler's snapshot series),
and both are deterministic byte-for-byte: family order is registration
order, series order is sorted label order, and floats are rendered with
Python ``repr`` (shortest round-trip form).  A golden-file test pins the
Prometheus output format.

The Prometheus text follows the exposition-format conventions consumed by
``promtool`` and every Prometheus scraper:

* ``# HELP`` / ``# TYPE`` headers per family;
* histogram families expand to ``_bucket{le=...}`` (cumulative counts,
  with the implicit ``+Inf`` bucket), ``_sum``, and ``_count`` lines;
* label values are escaped (backslash, double quote, newline).
"""

from __future__ import annotations

import json
import os
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from .registry import MetricRegistry
    from .runtime_metrics import CedrTelemetry

__all__ = [
    "to_prometheus_text",
    "to_json_dict",
    "write_prometheus",
    "write_json",
    "write_metrics",
]


def _fmt(value: float) -> str:
    """Render a sample value: integral floats as integers, rest as repr."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labelset(names: tuple[str, ...], values: tuple[str, ...], extra: str = "") -> str:
    parts = [f'{n}="{_escape(v)}"' for n, v in zip(names, values)]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def to_prometheus_text(registry: "MetricRegistry") -> str:
    """Serialize every family to the Prometheus exposition format."""
    lines: list[str] = []
    for family in registry.families():
        lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for values, metric in family.series():
            if family.kind == "histogram":
                cumulative = metric.cumulative()
                bound_strs = [_fmt(b) for b in metric.bounds] + ["+Inf"]
                for bound, count in zip(bound_strs, cumulative):
                    labels = _labelset(
                        family.label_names, values, extra=f'le="{bound}"'
                    )
                    lines.append(f"{family.name}_bucket{labels} {count}")
                base = _labelset(family.label_names, values)
                lines.append(f"{family.name}_sum{base} {_fmt(metric.sum)}")
                lines.append(f"{family.name}_count{base} {metric.count}")
            else:
                labels = _labelset(family.label_names, values)
                lines.append(f"{family.name}{labels} {_fmt(metric.value)}")
    return "\n".join(lines) + "\n"


def to_json_dict(telemetry: "CedrTelemetry") -> dict[str, Any]:
    """JSON-compatible dump: final metric state plus periodic samples."""
    return {
        "schema": "repro.telemetry/1",
        "sample_interval_s": telemetry.config.sample_interval_s,
        "metrics": telemetry.registry.snapshot(),
        "samples": list(telemetry.samples),
    }


def write_prometheus(path: str, registry: "MetricRegistry") -> str:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(to_prometheus_text(registry))
    return path


def write_json(path: str, telemetry: "CedrTelemetry") -> str:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_json_dict(telemetry), fh, indent=2, sort_keys=True, allow_nan=False)
    return path


def write_metrics(base_path: str, telemetry: "CedrTelemetry") -> tuple[str, str]:
    """Write ``<base>.json`` and ``<base>.prom``; returns both paths.

    ``base_path`` may carry either suffix already (it is stripped), so
    ``run --metrics-out out/metrics`` and ``--metrics-out out/metrics.json``
    produce the same pair of files.
    """
    base = base_path
    for suffix in (".json", ".prom"):
        if base.endswith(suffix):
            base = base[: -len(suffix)]
    parent = os.path.dirname(base)
    if parent:
        os.makedirs(parent, exist_ok=True)
    json_path = write_json(base + ".json", telemetry)
    prom_path = write_prometheus(base + ".prom", telemetry.registry)
    return json_path, prom_path
