#!/usr/bin/env python
"""The paper's autonomous-vehicle scenario, scaled to run in seconds.

"An example scenario could involve Lane Detection running as a continuous
process where Pulse Doppler and WiFi TX applications arrive dynamically"
(paper Section III).  This example submits exactly that mix to API-based
CEDR on both emulated platforms (reduced frame size so the lane-detection
convolutions execute numerically in a few seconds of wall time) and prints
per-application execution times plus where the work landed.

Run:  python examples/autonomous_vehicle.py
"""

import numpy as np

from repro.apps import LaneDetection, PulseDoppler, WifiTx
from repro.platforms import jetson, zcu102
from repro.runtime import CedrRuntime, RuntimeConfig
from repro.workload import WorkloadEntry, WorkloadSpec


def build_workload() -> WorkloadSpec:
    return WorkloadSpec(
        name="av-demo",
        entries=(
            WorkloadEntry(LaneDetection(height=108, width=192, batch=32), 1),
            WorkloadEntry(PulseDoppler(batch=8), 2),
            WorkloadEntry(WifiTx(n_packets=30, batch=3), 2),
        ),
    )


def run_platform(platform_config, workload: WorkloadSpec, rate_mbps: float = 100.0):
    platform = platform_config.build(seed=9)
    runtime = CedrRuntime(platform, RuntimeConfig(scheduler="heft_rt"))
    runtime.start()
    for instance, arrival in workload.instantiate("api", rate_mbps, seed=9):
        runtime.submit(instance, at=arrival)
    runtime.seal()
    runtime.run()

    print(f"\n== {platform_config.name} @ {rate_mbps:.0f} Mbps ==")
    for app in runtime.apps.values():
        extra = ""
        if app.name == "LD" and app.result is not None:
            left, right = app.result
            if left and right:
                extra = (f"  lanes at theta {np.degrees(left.theta):+.0f} deg / "
                         f"{np.degrees(right.theta):+.0f} deg")
        print(f"  {app.name}#{app.app_id}: exec {app.execution_time * 1e3:8.2f} ms{extra}")
    print(f"  tasks per PE: {runtime.logbook.tasks_by_pe()}")
    util = {d.name: f"{d.utilization(runtime.metrics.makespan):.0%}"
            for d in platform.engine.devices}
    if util:
        print(f"  accelerator occupancy: {util}")


def main() -> None:
    workload = build_workload()
    run_platform(zcu102(n_cpu=3, n_fft=2), workload)
    run_platform(jetson(n_cpu=7, n_gpu=1), workload)
    print("\nSame application binaries, two DSSoCs - the portability the "
          "CEDR compile/runtime split is designed for.")


if __name__ == "__main__":
    main()
