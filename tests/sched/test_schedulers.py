"""Scheduler heuristic tests: RR, EFT, ETF, HEFT_RT."""

import pytest

from repro.platforms import PE, PEDescriptor, PEKind
from repro.runtime.task import Task
from repro.sched import (
    PAPER_SCHEDULERS,
    SchedulerError,
    available_schedulers,
    make_scheduler,
    upward_ranks,
)


def make_pes(*kinds):
    pes = []
    for i, kind in enumerate(kinds):
        pes.append(
            PE(index=i, desc=PEDescriptor(name=f"{kind.value}{i}", kind=kind, clock_ghz=1.0))
        )
    return pes


def make_tasks(*apis, app_id=0):
    return [Task(api=api, params={"n": 64}, app_id=app_id, name=f"t{i}")
            for i, api in enumerate(apis)]


def flat_estimate(task, pe):
    """CPU cost 1.0; accelerators 0.5 - accel-favourable toy profile."""
    return 1.0 if pe.kind is PEKind.CPU else 0.5


def test_registry_contains_paper_schedulers():
    assert set(PAPER_SCHEDULERS) <= set(available_schedulers())


def test_make_scheduler_unknown_name():
    with pytest.raises(KeyError, match="unknown scheduler"):
        make_scheduler("fifo")


def test_make_scheduler_case_insensitive():
    assert make_scheduler("RR").name == "rr"


@pytest.mark.parametrize("name", PAPER_SCHEDULERS)
def test_every_assignment_is_supported(name):
    sched = make_scheduler(name)
    pes = make_pes(PEKind.CPU, PEKind.CPU, PEKind.FFT, PEKind.MMULT)
    tasks = make_tasks("fft", "zip", "gemm", "fft", "ifft", "zip")
    out = sched.schedule(tasks, pes, now=0.0, estimate=flat_estimate)
    assert len(out) == len(tasks)
    assert {t for t, _ in out} == set(tasks)
    for task, pe in out:
        assert pe.supports(task.api)


@pytest.mark.parametrize("name", PAPER_SCHEDULERS)
def test_unsupported_api_raises(name):
    sched = make_scheduler(name)
    pes = make_pes(PEKind.FFT)  # no CPU: zip has nowhere to go
    tasks = make_tasks("zip")
    with pytest.raises(SchedulerError):
        sched.schedule(tasks, pes, now=0.0, estimate=flat_estimate)


@pytest.mark.parametrize("name", PAPER_SCHEDULERS)
def test_determinism(name):
    def run():
        sched = make_scheduler(name)
        pes = make_pes(PEKind.CPU, PEKind.CPU, PEKind.FFT)
        tasks = make_tasks("fft", "fft", "zip", "ifft", "fft")
        return [(t.name, pe.name) for t, pe in
                sched.schedule(tasks, pes, 0.0, flat_estimate)]

    assert run() == run()


def test_rr_cycles_over_supporting_pes():
    sched = make_scheduler("rr")
    pes = make_pes(PEKind.CPU, PEKind.CPU, PEKind.FFT)
    tasks = make_tasks("fft", "fft", "fft", "fft", "fft", "fft")
    out = sched.schedule(tasks, pes, 0.0, flat_estimate)
    names = [pe.name for _, pe in out]
    assert names == ["cpu0", "cpu1", "fft2", "cpu0", "cpu1", "fft2"]


def test_rr_skips_incompatible_pes():
    sched = make_scheduler("rr")
    pes = make_pes(PEKind.CPU, PEKind.FFT)
    tasks = make_tasks("zip", "zip", "zip")
    out = sched.schedule(tasks, pes, 0.0, flat_estimate)
    assert all(pe.kind is PEKind.CPU for _, pe in out)


def test_eft_picks_earliest_finish():
    sched = make_scheduler("eft")
    pes = make_pes(PEKind.CPU, PEKind.FFT)
    pes[0].expected_free = 10.0  # CPU backlogged
    tasks = make_tasks("fft")
    [(task, pe)] = sched.schedule(tasks, pes, now=0.0, estimate=flat_estimate)
    assert pe.kind is PEKind.FFT


def test_eft_accumulates_backlog_within_round():
    sched = make_scheduler("eft")
    pes = make_pes(PEKind.CPU, PEKind.CPU)
    tasks = make_tasks("fft", "fft", "fft", "fft")
    out = sched.schedule(tasks, pes, 0.0, flat_estimate)
    counts = {}
    for _, pe in out:
        counts[pe.name] = counts.get(pe.name, 0) + 1
    assert counts == {"cpu0": 2, "cpu1": 2}
    assert pes[0].expected_free == pytest.approx(2.0)


def test_etf_commits_globally_earliest_pair_first():
    sched = make_scheduler("etf")
    pes = make_pes(PEKind.CPU, PEKind.FFT)

    def estimate(task, pe):
        if task.name == "t1":  # the short task
            return 0.1 if pe.kind is PEKind.FFT else 0.2
        return 5.0

    tasks = make_tasks("fft", "fft")  # t0 long, t1 short
    out = sched.schedule(tasks, pes, 0.0, estimate)
    assert out[0][0].name == "t1"  # short committed first
    assert out[0][1].kind is PEKind.FFT


def test_etf_spreads_after_committing():
    sched = make_scheduler("etf")
    pes = make_pes(PEKind.CPU, PEKind.CPU)
    tasks = make_tasks("fft", "fft")
    out = sched.schedule(tasks, pes, 0.0, flat_estimate)
    assert {pe.name for _, pe in out} == {"cpu0", "cpu1"}


def test_heft_orders_by_rank():
    sched = make_scheduler("heft_rt")
    pes = make_pes(PEKind.CPU)
    tasks = make_tasks("fft", "fft", "fft")
    tasks[0].rank = 1.0
    tasks[1].rank = 9.0
    tasks[2].rank = 5.0
    out = sched.schedule(tasks, pes, 0.0, flat_estimate)
    assert [t.name for t, _ in out] == ["t1", "t2", "t0"]


def test_round_costs_scale_as_documented():
    rr = make_scheduler("rr")
    eft = make_scheduler("eft")
    etf = make_scheduler("etf")
    heft = make_scheduler("heft_rt")
    assert rr.round_cost(100, 5) == pytest.approx(10 * rr.round_cost(10, 5))
    assert eft.round_cost(100, 5) == pytest.approx(10 * eft.round_cost(10, 5))
    # ETF is quadratic in queue depth
    ratio = etf.round_cost(100, 5) / etf.round_cost(10, 5)
    assert 80 < ratio < 100
    assert heft.round_cost(0, 5) == 0.0
    assert etf.round_cost(0, 5) == 0.0


def test_etf_queue_cost_dwarfs_others_at_dag_depths():
    """The Fig.-7 mechanism: at DAG-mode queue depths ETF's decision cost
    is orders of magnitude above the linear heuristics'."""
    etf = make_scheduler("etf")
    eft = make_scheduler("eft")
    assert etf.round_cost(300, 5) > 50 * eft.round_cost(300, 5)


def test_upward_ranks_chain():
    t1, t2, t3 = make_tasks("fft", "fft", "fft")
    t1.add_successor(t2)
    t2.add_successor(t3)
    ranks = upward_ranks([t1, t2, t3], lambda t: 1.0)
    assert ranks[t3] == pytest.approx(1.0)
    assert ranks[t2] == pytest.approx(2.0)
    assert ranks[t1] == pytest.approx(3.0)


def test_upward_ranks_takes_max_branch():
    src, cheap, dear, sink = make_tasks("fft", "fft", "fft", "fft")
    src.add_successor(cheap)
    src.add_successor(dear)
    cheap.add_successor(sink)
    dear.add_successor(sink)
    cost = {src: 1.0, cheap: 1.0, dear: 10.0, sink: 1.0}
    ranks = upward_ranks([src, cheap, dear, sink], lambda t: cost[t])
    assert ranks[src] == pytest.approx(1.0 + 10.0 + 1.0)


def test_upward_ranks_detects_cycles():
    t1, t2 = make_tasks("fft", "fft")
    t1.add_successor(t2)
    t2.add_successor(t1)
    with pytest.raises(ValueError, match="cycle"):
        upward_ranks([t1, t2], lambda t: 1.0)


def test_duplicate_registration_rejected():
    from repro.sched.base import Scheduler, register_scheduler

    with pytest.raises(ValueError, match="registered twice"):
        @register_scheduler
        class Impostor(Scheduler):
            name = "rr"

            def schedule(self, ready, pes, now, estimate):  # pragma: no cover
                return []

            def round_cost(self, n_ready, n_pes):  # pragma: no cover
                return 0.0
