#!/usr/bin/env python
"""Radar processing in depth: DAG-based vs API-based CEDR on one frame.

Runs the same Pulse Doppler frame three ways on an emulated ZCU102
(3 CPUs + 1 FFT accelerator):

* DAG-based CEDR - the baseline JSON-DAG programming model;
* API-based CEDR with blocking calls - the productive default;
* API-based CEDR with non-blocking calls - the performance programmer's
  variant (paper Section II-C).

All three produce the identical detection; the printed timing/log summary
shows how the programming model changes what the runtime sees (task count,
ready-queue depth) even when the math is the same.

Run:  python examples/radar_processing.py
"""

import numpy as np

from repro.apps import PulseDoppler
from repro.platforms import zcu102
from repro.runtime import CedrRuntime, RuntimeConfig


def run_one(app_def, inputs, mode, variant=None, seed=7):
    platform = zcu102(n_cpu=3, n_fft=1).build(seed=seed)
    runtime = CedrRuntime(platform, RuntimeConfig(scheduler="eft"))
    runtime.start()
    rng = np.random.default_rng(seed)
    instance = app_def.make_instance(mode, rng, variant=variant, inputs=inputs)
    runtime.submit(instance, at=0.0)
    runtime.seal()
    runtime.run()
    detection = instance.result if mode == "api" else instance.state["detection"]
    return {
        "detection": detection,
        "exec_ms": instance.execution_time * 1e3,
        "tasks": runtime.counters.tasks_completed,
        "queue_max": runtime.counters.ready_depth_max,
        "per_pe": runtime.logbook.tasks_by_pe(),
    }


def main() -> None:
    app_def = PulseDoppler(batch=8)
    inputs = app_def.make_input(np.random.default_rng(42))
    golden = app_def.reference(inputs)
    print(f"golden detection: range bin {golden.range_bin}, "
          f"{golden.velocity_ms:+.1f} m/s\n")

    rows = [
        ("DAG-based", run_one(app_def, inputs, "dag")),
        ("API blocking", run_one(app_def, inputs, "api", "blocking")),
        ("API non-blocking", run_one(app_def, inputs, "api", "nonblocking")),
    ]
    header = f"{'variant':>18} | {'exec (ms)':>9} | {'tasks':>5} | {'max queue':>9} | per-PE tasks"
    print(header)
    print("-" * len(header))
    for name, res in rows:
        det = res["detection"]
        assert det.range_bin == golden.range_bin, f"{name} diverged"
        print(f"{name:>18} | {res['exec_ms']:9.2f} | {res['tasks']:5d} | "
              f"{res['queue_max']:9d} | {res['per_pe']}")
    print("\nAll variants agree with the golden detection; the non-blocking "
          "form keeps whole task waves in flight, spreading across the PEs "
          "like the DAG does, while the blocking form serializes on cpu0.")


if __name__ == "__main__":
    main()
