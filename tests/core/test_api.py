"""libCEDR API tests: blocking/non-blocking calls, handles, standalone mode."""

import numpy as np
import pytest

from repro.core import (
    ImmediateRequest,
    ModuleSet,
    StandaloneCedr,
    build_api_map,
    run_standalone,
    wait_all,
)
from repro.core.modules import STANDARD_MODULES
from repro.platforms import PEKind, zcu102
from repro.runtime import API_MODE, AppInstance, CedrRuntime, RuntimeConfig


def run_api_app(main_factory, scheduler="eft", seed=3, **cfg):
    platform = zcu102(n_cpu=3, n_fft=1).build(seed=seed)
    runtime = CedrRuntime(platform, RuntimeConfig(scheduler=scheduler, **cfg))
    runtime.start()
    app = AppInstance(name="t", mode=API_MODE, frame_mb=0.1, main_factory=main_factory)
    runtime.submit(app, at=0.0)
    runtime.seal()
    runtime.run()
    return app, runtime


# --------------------------------------------------------------------- #
# blocking APIs
# --------------------------------------------------------------------- #

def test_every_blocking_api_roundtrips(rng):
    x = rng.normal(size=64) + 1j * rng.normal(size=64)
    a = rng.normal(size=(6, 4))
    b = rng.normal(size=(4, 5))

    def main(lib):
        spec = yield from lib.fft(x)
        back = yield from lib.ifft(spec)
        prod = yield from lib.zip(x, x)
        mm = yield from lib.gemm(a, b)
        return back, prod, mm

    app, _ = run_api_app(main)
    back, prod, mm = app.result
    assert np.allclose(back, x, atol=1e-9)
    assert np.allclose(prod, x * x)
    assert np.allclose(mm, a @ b)


def test_blocking_call_returns_only_after_completion(rng):
    x = rng.normal(size=256) + 0j
    times = {}

    def main(lib):
        t0 = lib.engine.now
        yield from lib.fft(x)
        times["elapsed"] = lib.engine.now - t0
        return None

    run_api_app(main)
    # at least the CPU service time of a 256-pt FFT must have passed
    assert times["elapsed"] >= 1e-4


# --------------------------------------------------------------------- #
# non-blocking APIs
# --------------------------------------------------------------------- #

def test_nonblocking_overlaps_and_test_never_lies(rng):
    x = rng.normal(size=256) + 0j

    def main(lib):
        req = yield from lib.fft_nb(x)
        issued_done = req.test()  # just issued: must not be complete
        out = yield from req.wait()
        assert req.test()
        return issued_done, out

    app, _ = run_api_app(main)
    issued_done, out = app.result
    assert issued_done is False
    assert np.allclose(out, np.fft.fft(x), atol=1e-8)


def test_nonblocking_wait_idempotent(rng):
    x = rng.normal(size=64) + 0j

    def main(lib):
        req = yield from lib.fft_nb(x)
        a = yield from req.wait()
        b = yield from req.wait()
        return a, b

    app, _ = run_api_app(main)
    a, b = app.result
    assert np.allclose(a, b)


def test_result_before_completion_raises(rng):
    x = rng.normal(size=64) + 0j
    errors = []

    def main(lib):
        req = yield from lib.fft_nb(x)
        try:
            _ = req.result
        except RuntimeError as exc:
            errors.append(str(exc))
        yield from req.wait()
        return req.result

    app, _ = run_api_app(main)
    assert errors and "not ready" in errors[0]
    assert app.result is not None


def test_wait_all_preserves_order(rng):
    xs = [rng.normal(size=64) + 0j for _ in range(5)]

    def main(lib):
        reqs = []
        for x in xs:
            reqs.append((yield from lib.fft_nb(x)))
        return (yield from wait_all(reqs))

    app, _ = run_api_app(main)
    for out, x in zip(app.result, xs):
        assert np.allclose(out, np.fft.fft(x), atol=1e-8)


def test_nonblocking_faster_than_blocking_for_parallel_work(rng):
    """The paper's Section II-C claim in miniature."""
    xs = [rng.normal(size=1024) + 0j for _ in range(9)]

    def blocking(lib):
        outs = []
        for x in xs:
            outs.append((yield from lib.fft(x)))
        return outs

    def nonblocking(lib):
        reqs = []
        for x in xs:
            reqs.append((yield from lib.fft_nb(x)))
        return (yield from wait_all(reqs))

    app_b, _ = run_api_app(blocking, execute_kernels=False)
    app_nb, _ = run_api_app(nonblocking, execute_kernels=False)
    assert app_nb.execution_time < app_b.execution_time / 1.5


# --------------------------------------------------------------------- #
# standalone mode
# --------------------------------------------------------------------- #

def test_standalone_matches_runtime(rng):
    x = rng.normal(size=128) + 1j * rng.normal(size=128)

    def main(lib):
        spec = yield from lib.fft(x)
        req = yield from lib.zip_nb(spec, spec)
        prod = yield from req.wait()
        return (yield from lib.ifft(prod))

    standalone = run_standalone(main)
    app, _ = run_api_app(main)
    assert np.allclose(standalone, app.result, atol=1e-9)


def test_standalone_gemm_and_local_work(rng):
    a = rng.normal(size=(3, 4))
    b = rng.normal(size=(4, 2))

    def main(lib):
        yield from lib.local_work(1e-6)
        req = yield from lib.gemm_nb(a, b)
        return (yield from req.wait())

    assert np.allclose(run_standalone(main), a @ b)


def test_standalone_rejects_negative_local_work():
    lib = StandaloneCedr()
    with pytest.raises(ValueError):
        next(lib.local_work(-1.0))


def test_immediate_request_contract():
    req = ImmediateRequest(123, api="fft")
    assert req.test()
    assert req.result == 123


# --------------------------------------------------------------------- #
# module system
# --------------------------------------------------------------------- #

def test_module_sets_for_platforms():
    z = ModuleSet.for_zcu102()
    assert set(z.names) == {"fft", "mmult"}
    j = ModuleSet.for_jetson()
    assert set(j.names) == {"cuda_fft", "cuda_zip"}


def test_unknown_module_rejected():
    with pytest.raises(KeyError, match="unknown libCEDR modules"):
        ModuleSet(("tpu",))


def test_api_map_always_has_cpu_paths():
    api_map = build_api_map(ModuleSet(()))  # no modules enabled
    kinds = {kind for _, kind in api_map}
    assert kinds == {PEKind.CPU}
    assert ("fft", PEKind.CPU) in api_map


def test_api_map_modules_add_accelerators():
    api_map = build_api_map(ModuleSet.for_zcu102())
    assert ("fft", PEKind.FFT) in api_map
    assert ("gemm", PEKind.MMULT) in api_map
    assert ("zip", PEKind.GPU) not in api_map
    jmap = build_api_map(ModuleSet.for_jetson())
    assert ("zip", PEKind.GPU) in jmap


def test_standard_modules_are_consistent():
    for module in STANDARD_MODULES.values():
        impls = module.implementations()
        assert set(impls) == set(module.provides)
