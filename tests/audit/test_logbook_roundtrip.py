"""Logbook serialize/save/load round-trip and on-disk schema stability.

``repro audit <logbook.json>`` replays the invariant catalog against a
dump written by another process (or another week), so the dump format is a
contract: it must round-trip losslessly, version itself, tolerate older
schemas, and *refuse* newer ones.  The checked-in golden file pins schema
v2 byte-for-byte - regenerate it deliberately (see ``_golden_run``) if the
format ever changes, and bump :data:`SCHEMA_VERSION` when you do.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.apps import PulseDoppler
from repro.audit import audit_logbook
from repro.platforms import zcu102
from repro.runtime import CedrRuntime, RuntimeConfig
from repro.runtime.logbook import SCHEMA_VERSION, AppRecord, Logbook, TaskRecord

GOLDEN = Path(__file__).parent / "golden_logbook_v2.json"

#: columns v2 added on top of the v1 dump format.
V2_TASK_COLUMNS = ("attempts", "cost_row", "cost_token", "successors")
V2_APP_COLUMNS = ("cancelled", "failed")


def _golden_run():
    """The exact deterministic run the golden file was generated from."""
    platform = zcu102(n_cpu=2, n_fft=1).build(seed=3)
    config = RuntimeConfig(scheduler="etf", execute_kernels=False, audit=True)
    runtime = CedrRuntime(platform, config)
    runtime.start()
    rng = np.random.default_rng(3)
    pd = PulseDoppler(batch=32)
    runtime.submit(pd.make_instance("dag", rng), at=0.0)
    runtime.submit(pd.make_instance("api", rng), at=0.001)
    runtime.seal()
    runtime.run()
    return runtime


@pytest.fixture(scope="module")
def golden_runtime():
    return _golden_run()


# --------------------------------------------------------------------- #
# the golden file: schema v2, byte for byte
# --------------------------------------------------------------------- #

def test_golden_file_is_current_schema():
    dump = json.loads(GOLDEN.read_text(encoding="utf-8"))
    assert dump["schema"] == SCHEMA_VERSION == 2
    assert dump["tasks"] and dump["apps"] and dump["rounds"]
    for col in V2_TASK_COLUMNS:
        assert col in dump["tasks"][0]
    for col in V2_APP_COLUMNS:
        assert col in dump["apps"][0]


def test_golden_file_round_trips_exactly():
    """load() then serialize() reproduces the on-disk dump structure."""
    dump = json.loads(GOLDEN.read_text(encoding="utf-8"))
    book = Logbook.load(GOLDEN)
    out = book.serialize()
    # JSON has no tuples: compare through a json round trip
    assert json.loads(json.dumps(out)) == dump


def _normalize_ids(dump):
    """Rebase task/app ids and the cost token to run-relative values.

    tids, app_ids, and cost-table tokens come from process-global counters
    (their *absolute* values depend on how many runtimes ran earlier in the
    process); everything else in a dump is a pure function of the run.
    """
    tmap = {t: i for i, t in enumerate(sorted(r["tid"] for r in dump["tasks"]))}
    amap = {a: i for i, a in enumerate(sorted(r["app_id"] for r in dump["apps"]))}
    kmap = {
        k: i
        for i, k in enumerate(sorted({r["cost_token"] for r in dump["tasks"]}))
    }
    out = json.loads(json.dumps(dump))  # deep copy through JSON
    for row in out["tasks"]:
        row["tid"] = tmap[row["tid"]]
        row["app_id"] = amap[row["app_id"]]
        row["cost_token"] = kmap[row["cost_token"]]
        row["successors"] = [tmap.get(s, s) for s in row["successors"]]
    for row in out["apps"]:
        row["app_id"] = amap[row["app_id"]]
    return out


def test_golden_file_matches_a_fresh_simulation(golden_runtime):
    """The dump is a pure function of the run (modulo process-global id
    counters, rebased here): re-simulating regenerates it exactly.  A
    mismatch means either determinism broke or the schema changed without
    a golden-file regeneration + version bump."""
    fresh = _normalize_ids(golden_runtime.logbook.serialize())
    assert fresh == _normalize_ids(json.loads(GOLDEN.read_text(encoding="utf-8")))


def test_golden_file_audits_clean_offline():
    report = audit_logbook(Logbook.load(GOLDEN))
    assert report.ok, report.summary()
    assert report.tasks == 48 and report.apps == 2


# --------------------------------------------------------------------- #
# save()/load() inverse on fresh runs
# --------------------------------------------------------------------- #

def test_save_load_round_trip_preserves_every_record(golden_runtime, tmp_path):
    book = golden_runtime.logbook
    path = tmp_path / "dump.json"
    assert book.save(path) == str(path)
    loaded = Logbook.load(path)
    assert loaded.tasks == book.tasks
    assert loaded.apps == book.apps
    assert loaded.rounds == book.rounds
    assert loaded.tasks_by_pe() == book.tasks_by_pe()


def test_loaded_successors_are_tuples(golden_runtime, tmp_path):
    """JSON turns tuples into lists; load() must restore hashable rows."""
    path = tmp_path / "dump.json"
    golden_runtime.logbook.save(path)
    for rec in Logbook.load(path).tasks:
        assert isinstance(rec.successors, tuple)


# --------------------------------------------------------------------- #
# schema tolerance: old dumps load, newer dumps refuse
# --------------------------------------------------------------------- #

def _as_v1(dump):
    """Strip a v2 dump down to what a pre-audit build would have written."""
    old = {
        "tasks": [
            {k: v for k, v in row.items() if k not in V2_TASK_COLUMNS}
            for row in dump["tasks"]
        ],
        "apps": [
            {k: v for k, v in row.items() if k not in V2_APP_COLUMNS}
            for row in dump["apps"]
        ],
        "rounds": dump["rounds"],
    }
    return old  # note: no "schema" key - v1 predates versioning


def test_v1_dump_loads_with_documented_defaults():
    dump = _as_v1(json.loads(GOLDEN.read_text(encoding="utf-8")))
    book = Logbook.from_dict(dump)
    assert len(book.tasks) == 48
    for rec in book.tasks:
        assert rec.attempts == 0
        assert rec.cost_row == -1 and rec.cost_token == -1
        assert rec.successors == ()
    for app in book.apps.values():
        assert app.cancelled is False and app.failed is False


def test_v1_dump_audits_with_freshness_checks_skipped():
    """Missing v2 columns must not manufacture violations: cost_row=-1
    only fires when a live table token exists, and v1 offline views carry
    a single (default) token."""
    dump = _as_v1(json.loads(GOLDEN.read_text(encoding="utf-8")))
    report = audit_logbook(Logbook.from_dict(dump))
    # causality/freshness data is gone, but nothing false-alarms...
    assert "cost-row-fresh" not in report.codes
    # ...except checks that genuinely need nothing beyond timestamps
    assert report.ok, report.summary()


def test_unknown_task_column_is_rejected():
    dump = json.loads(GOLDEN.read_text(encoding="utf-8"))
    dump["tasks"][0]["energy_nj"] = 12.5
    with pytest.raises(ValueError, match="unknown columns.*energy_nj"):
        Logbook.from_dict(dump)


def test_unknown_app_column_is_rejected():
    dump = json.loads(GOLDEN.read_text(encoding="utf-8"))
    dump["apps"][0]["priority"] = 3
    with pytest.raises(ValueError, match="AppRecord.*unknown columns"):
        Logbook.from_dict(dump)


@pytest.mark.parametrize("schema", [0, SCHEMA_VERSION + 1, "two", None])
def test_unsupported_schema_versions_are_rejected(schema):
    with pytest.raises(ValueError, match="unsupported logbook schema"):
        Logbook.from_dict({"schema": schema, "tasks": [], "apps": []})


def test_empty_dump_loads_as_empty_book():
    book = Logbook.from_dict({"schema": SCHEMA_VERSION})
    assert book.tasks == [] and book.apps == {} and book.rounds == []


# --------------------------------------------------------------------- #
# record dataclasses
# --------------------------------------------------------------------- #

def test_task_record_derived_times():
    rec = TaskRecord(tid=1, app_id=1, api="fft", name="t", pe="cpu0",
                     pe_kind="cpu", t_release=1.0, t_scheduled=1.5,
                     t_start=2.0, t_finish=3.5)
    assert rec.queue_wait == pytest.approx(0.5)
    assert rec.service_time == pytest.approx(1.5)


def test_app_record_execution_time_requires_finish():
    app = AppRecord(app_id=1, name="a", mode="api", t_arrival=0.5)
    with pytest.raises(ValueError, match="never finished"):
        _ = app.execution_time
    app.t_finish = 2.0
    assert app.execution_time == pytest.approx(1.5)
