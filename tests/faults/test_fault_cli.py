"""CLI tests for the fault-injection and perf-json flags."""

import json

import pytest

from repro.cli import main


def test_run_with_fault_flags(capsys):
    rc = main([
        "run", "--apps", "PD:1", "--timing-only", "--scheduler", "rr",
        "--fault-rate", "30", "--fault-seed", "1", "--max-retries", "5",
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "faults    :" in out
    assert "goodput" in out


def test_perf_json_snapshot_includes_fault_counters(tmp_path, capsys):
    path = tmp_path / "perf.json"
    rc = main([
        "run", "--apps", "PD:1", "--timing-only",
        "--fault-rate", "30", "--fault-seed", "1",
        "--perf-json", str(path),
    ])
    assert rc == 0
    assert "perf json : wrote" in capsys.readouterr().out
    snap = json.loads(path.read_text())
    assert {"tasks_completed", "sched_rounds", "faults"} <= set(snap)
    faults = snap["faults"]
    for key in ("injected", "by_kind", "task_failures", "retries",
                "tasks_lost", "stale_dispatches", "pe_quarantines",
                "pe_revivals", "recoveries", "mean_time_to_recovery"):
        assert key in faults
    assert faults["injected"] >= 0


def test_perf_json_works_without_faults(tmp_path, capsys):
    path = tmp_path / "perf.json"
    rc = main(["run", "--apps", "TX:1", "--timing-only", "--perf-json", str(path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "faults    :" not in out  # no fault summary line when inactive
    snap = json.loads(path.read_text())
    assert snap["faults"]["injected"] == 0
    assert snap["tasks_completed"] > 0


def test_fault_runs_are_deterministic_via_cli(tmp_path):
    def snapshot(name):
        path = tmp_path / name
        main(["run", "--apps", "PD:1", "--timing-only",
              "--fault-rate", "40", "--fault-seed", "9",
              "--perf-json", str(path)])
        return json.loads(path.read_text())

    a, b = snapshot("a.json"), snapshot("b.json")
    a.pop("wall_seconds", None), b.pop("wall_seconds", None)
    a.pop("events_per_wall_sec", None), b.pop("events_per_wall_sec", None)
    assert a == b


def test_bad_fault_kinds_exit_with_message(capsys):
    with pytest.raises(SystemExit):
        main(["run", "--apps", "PD:1", "--timing-only",
              "--fault-rate", "1", "--fault-kinds", "meltdown"])


def test_list_mentions_resilience_figure(capsys):
    assert main(["list"]) == 0
    assert "resilience" in capsys.readouterr().out
