"""Ablation bench: the paper's big.LITTLE future-work proposal.

Paper conclusion: "exchange a fraction of the heavyweight CPUs with a
larger quantity of lightweight CPUs specialized for worker thread
management ... to enable maximal parallelism across diverse configurations
of heterogeneous accelerators while minimizing the energy and latency".

This bench tests that hypothesis inside the reproduction's model: the
Fig. 10(a) configuration that hurt the most (3 big cores + 8 FFT
accelerators, AV workload, 300 Mbps) is rerun with the accelerator-
management threads moved onto 4 LITTLE (0.45x) cores.  Expected: a large
execution-time recovery - the management spinners stop crowding the big
cores - at a modest energy cost, and the "more accelerators is worse"
trend of Fig. 10(a) flattens.
"""

from repro.experiments.fig9_versatility import av_workload_scaled
from repro.platforms import estimate_energy, zcu102, zcu102_biglittle
from repro.runtime import CedrRuntime, RuntimeConfig

RATE = 300.0


def run_config(platform_cfg, workload, scheduler="heft_rt", seed=1):
    platform = platform_cfg.build(seed=seed)
    runtime = CedrRuntime(platform, RuntimeConfig(scheduler=scheduler,
                                                  execute_kernels=False))
    runtime.start()
    for app, arrival in workload.instantiate("api", RATE, seed):
        runtime.submit(app, at=arrival)
    runtime.seal()
    runtime.run()
    from repro.metrics import RunResult

    result = RunResult.from_runtime(runtime)
    energy = estimate_energy(platform)
    return result, energy


def test_biglittle_recovers_accelerator_value(benchmark, ld_batch):
    workload = av_workload_scaled(ld_batch=ld_batch)

    def sweep():
        out = {}
        out["baseline-8fft"] = run_config(zcu102(n_cpu=3, n_fft=8), workload)
        out["baseline-0fft"] = run_config(zcu102(n_cpu=3, n_fft=0), workload)
        out["biglittle-8fft"] = run_config(
            zcu102_biglittle(n_big=3, n_little=4, n_fft=8), workload
        )
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nbig.LITTLE ablation (AV workload @300 Mbps, HEFT_RT):")
    print(f"{'configuration':>18} | {'exec/app (ms)':>13} | {'energy (J)':>10} | {'avg W':>6}")
    for name, (res, energy) in results.items():
        print(f"{name:>18} | {res.mean_exec_time*1e3:13.1f} | "
              f"{energy.total_j:10.2f} | {energy.average_power_w:6.2f}")

    base8 = results["baseline-8fft"][0].mean_exec_time
    base0 = results["baseline-0fft"][0].mean_exec_time
    bl8 = results["biglittle-8fft"][0].mean_exec_time

    # the paper's hypothesis: LITTLE-hosted management threads recover a
    # large share of the Fig. 10(a) degradation...
    assert bl8 < 0.75 * base8
    # ...making 8 accelerators no longer strictly worse than none
    assert bl8 < 1.15 * base0
    # energy: the LITTLE cores add little; average power stays in the same
    # class as the baseline
    p_base = results["baseline-8fft"][1].average_power_w
    p_bl = results["biglittle-8fft"][1].average_power_w
    assert p_bl < 1.5 * p_base
