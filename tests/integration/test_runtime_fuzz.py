"""Property-based fuzzing of the runtime with random DAG topologies.

Hypothesis generates arbitrary layered DAGs of FFT/ZIP/IFFT kernels; every
one must run to completion on every scheduler with (a) all dependencies
respected in simulated time, (b) every task executed exactly once on a
supporting PE, and (c) a bit-identical result to a sequential NumPy
evaluation of the same graph.  This is the strongest general statement of
the runtime's correctness contract.

Two more fuzz surfaces ride on the audit layer (``repro.audit``): random
libCEDR call mixes (blocking/``_nb`` x ``wait_all``/``wait_any`` drain
orders) and random fault streams (rate x kind mix), each simulated with
the online auditor armed - any dispatch that breaks the invariant catalog
aborts the run at the offending round.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import PulseDoppler
from repro.audit import audit_runtime
from repro.core import wait_all, wait_any
from repro.dag import DagBuilder
from repro.faults import FaultConfig
from repro.platforms import zcu102
from repro.runtime import API_MODE, AppInstance, CedrRuntime, RuntimeConfig

N = 32  # vector length for all kernel payloads


@st.composite
def layered_dags(draw):
    """A random layered DAG description: layers of 1-3 unary kernel nodes,
    each consuming a randomly chosen output of the previous layer."""
    n_layers = draw(st.integers(1, 4))
    layers = []
    for li in range(n_layers):
        width = draw(st.integers(1, 3))
        layer = []
        for wi in range(width):
            api = draw(st.sampled_from(["fft", "ifft"]))
            src = 0 if li == 0 else draw(st.integers(0, len(layers[li - 1]) - 1))
            layer.append((api, src))
        layers.append(layer)
    return layers


def build_dag_from_layers(layers, data):
    b = DagBuilder("fuzz")
    b.cpu("init", lambda s: s.__setitem__("k0_0", data.copy()), 1e-6)
    prev_names = {0: "init"}
    prev_keys = {0: "k0_0"}
    for li, layer in enumerate(layers, start=1):
        names, keys = {}, {}
        for wi, (api, src) in enumerate(layer):
            key = f"k{li}_{wi}"
            name = b.kernel(
                f"n{li}_{wi}", api, {"n": N},
                [prev_keys[src]], key, after=[prev_names[src]],
            )
            names[wi], keys[wi] = name, key
        prev_names, prev_keys = names, keys
    return b.build(), prev_keys


def numpy_eval(layers, data):
    prev = {0: data.copy()}
    for layer in layers:
        cur = {}
        for wi, (api, src) in enumerate(layer):
            fn = np.fft.fft if api == "fft" else np.fft.ifft
            cur[wi] = fn(prev[src])
        prev = cur
    return prev


@given(layers=layered_dags(), seed=st.integers(0, 2**20),
       scheduler=st.sampled_from(["rr", "eft", "etf", "heft_rt", "met", "random"]))
@settings(max_examples=40, deadline=None)
def test_random_dags_run_correctly_on_every_scheduler(layers, seed, scheduler):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=N) + 1j * rng.normal(size=N)
    program, leaf_keys = build_dag_from_layers(layers, data)

    platform = zcu102(n_cpu=3, n_fft=1).build(seed=seed)
    runtime = CedrRuntime(platform, RuntimeConfig(scheduler=scheduler))
    runtime.start()
    app = AppInstance(name="fuzz", mode="dag", frame_mb=0.1, dag=program)
    runtime.submit(app, at=0.0)
    runtime.seal()
    runtime.run()

    # (a) dependencies respected in time
    recs = {r.name: r for r in runtime.logbook.tasks}
    nodes = program.spec["nodes"]
    for name, node in nodes.items():
        for pred in node.get("after", []):
            assert recs[pred].t_finish <= recs[name].t_start + 1e-12

    # (b) exactly once, on supporting PEs
    assert len(recs) == program.n_nodes
    for rec in recs.values():
        if rec.api in ("fft", "ifft"):
            assert rec.pe_kind in ("cpu", "fft")
        else:
            assert rec.pe_kind == "cpu"

    # (c) numerics match a sequential evaluation
    expected = numpy_eval(layers, data)
    for wi, key in leaf_keys.items():
        assert np.allclose(app.state[key], expected[wi], atol=1e-8)


# --------------------------------------------------------------------- #
# fuzzing the libCEDR call surface: random blocking/_nb mixes and
# random synchronization (drain) orders, audited end to end
# --------------------------------------------------------------------- #

@st.composite
def api_call_plans(draw):
    """A random sequence of libCEDR calls: which API, blocking or ``_nb``,
    and how the in-flight window is drained at the end."""
    n_calls = draw(st.integers(1, 5))
    calls = [
        (
            draw(st.sampled_from(["fft", "ifft", "zip", "gemm"])),
            draw(st.booleans()),  # blocking?
        )
        for _ in range(n_calls)
    ]
    drain = draw(st.sampled_from(["wait_all", "wait_any"]))
    return calls, drain


def make_api_main(calls, drain, vec, a, b):
    """Application main exercising the drawn call plan.

    Results are keyed by call index so wait_any's completion-order drain
    still lets every call be verified against its own reference value.
    """
    def main(lib):
        results = {}
        pending, pending_idx = [], []
        for i, (api, blocking) in enumerate(calls):
            args = (vec,) if api in ("fft", "ifft") else (
                (vec, vec) if api == "zip" else (a, b)
            )
            if blocking:
                results[i] = yield from getattr(lib, api)(*args)
            else:
                req = yield from getattr(lib, api + "_nb")(*args)
                pending.append(req)
                pending_idx.append(i)
        if drain == "wait_all":
            outs = yield from wait_all(pending)
            results.update(zip(pending_idx, outs))
        else:
            while pending:
                k, out = yield from wait_any(pending)
                results[pending_idx[k]] = out
                pending.pop(k)
                pending_idx.pop(k)
        return results
    return main


@given(plan=api_call_plans(), seed=st.integers(0, 2**20),
       scheduler=st.sampled_from(["rr", "eft", "etf", "heft_rt"]))
@settings(max_examples=25, deadline=None)
def test_random_api_call_mixes_run_correctly_audited(plan, seed, scheduler):
    calls, drain = plan
    rng = np.random.default_rng(seed)
    vec = rng.normal(size=N) + 1j * rng.normal(size=N)
    a = rng.normal(size=(6, 4))
    b = rng.normal(size=(4, 5))

    platform = zcu102(n_cpu=3, n_fft=1).build(seed=seed)
    config = RuntimeConfig(scheduler=scheduler, audit=True)
    runtime = CedrRuntime(platform, config)
    runtime.start()
    app = AppInstance(name="api-fuzz", mode=API_MODE, frame_mb=0.1,
                      main_factory=make_api_main(calls, drain, vec, a, b))
    runtime.submit(app, at=0.0)
    runtime.seal()
    runtime.run()  # online auditor + final catalog replay raise on damage

    expected = {
        "fft": lambda: np.fft.fft(vec),
        "ifft": lambda: np.fft.ifft(vec),
        "zip": lambda: vec * vec,
        "gemm": lambda: a @ b,
    }
    assert set(app.result) == set(range(len(calls)))
    for i, (api, _) in enumerate(calls):
        assert np.allclose(app.result[i], expected[api](), atol=1e-8)
    assert runtime.auditor is not None and runtime.auditor.checks > 0
    assert audit_runtime(runtime).ok


# --------------------------------------------------------------------- #
# fuzzing fault streams: random rate/kind mixes must never break the
# invariant catalog (conservation under retries, quarantine honesty, ...)
# --------------------------------------------------------------------- #

@given(rate=st.sampled_from([5.0, 20.0, 60.0]),
       kinds=st.sets(
           st.sampled_from(["transient", "hang", "slowdown", "failstop"]),
           min_size=1),
       seed=st.integers(0, 2**16),
       scheduler=st.sampled_from(["rr", "eft", "etf"]))
@settings(max_examples=15, deadline=None)
def test_random_fault_streams_hold_the_invariant_catalog(
        rate, kinds, seed, scheduler):
    faults = FaultConfig(
        rate=rate, seed=seed,
        kinds=FaultConfig.parse_kinds(",".join(sorted(kinds))),
    )
    platform = zcu102(n_cpu=3, n_fft=1).build(seed=seed)
    config = RuntimeConfig(scheduler=scheduler, execute_kernels=False,
                           audit=True, faults=faults)
    runtime = CedrRuntime(platform, config)
    runtime.start()
    rng = np.random.default_rng(seed)
    pd = PulseDoppler(batch=16)
    runtime.submit(pd.make_instance("dag", rng), at=0.0)
    runtime.submit(pd.make_instance("api", rng), at=0.001)
    runtime.seal()
    runtime.run()  # every round/completion audited; final_check replays

    report = audit_runtime(runtime)
    assert report.ok, report.summary()
    assert runtime.auditor.checks > 0
    # under faults the ledger still balances: losses == failed apps
    counters = runtime.counters
    failed = sum(1 for a in runtime.apps.values() if a.failed)
    assert counters.tasks_lost == failed
