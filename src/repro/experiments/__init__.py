"""Experiment drivers: one per evaluation figure of the paper.

Each ``run_figN`` function regenerates the data series behind the
corresponding figure panel(s); the ``benchmarks/`` tree wraps them with
pytest-benchmark and prints the series tables.
"""

from .cache import CacheStats, SweepCache, cell_digest
from .common import (
    AUDIT_ENV,
    CACHE_ENV,
    RateSweep,
    audit_from_env,
    configure_cache,
    resolve_cache,
    resolve_jobs,
    run_once,
    run_trials,
    sweep_rates,
)
from .fig5_runtime_overhead import SATURATION_MBPS, run_fig5, saturated_reduction
from .fig67_exec_sched import run_fig6_fig7
from .fig8_jetson import run_fig8
from .fig9_versatility import av_workload_scaled, run_fig9
from .fig10_scalability import JETSON_RATE_MBPS, ZCU_RATE_MBPS, run_fig10a, run_fig10b
from .fig_resilience import FAULT_RATES, RESILIENCE_RATE_MBPS, run_fig_resilience
from .fig_saturation import (
    OFFERED_LOADS,
    SATURATION_DURATION,
    detect_knee,
    run_fig_saturation,
)
from .figures import FIGURES, FigureEntry, available_figures, register_figure

__all__ = [
    "FIGURES",
    "FigureEntry",
    "register_figure",
    "available_figures",
    "run_once",
    "run_trials",
    "sweep_rates",
    "resolve_jobs",
    "RateSweep",
    "SweepCache",
    "CacheStats",
    "cell_digest",
    "configure_cache",
    "resolve_cache",
    "CACHE_ENV",
    "AUDIT_ENV",
    "audit_from_env",
    "run_fig5",
    "saturated_reduction",
    "SATURATION_MBPS",
    "run_fig6_fig7",
    "run_fig8",
    "run_fig9",
    "av_workload_scaled",
    "run_fig10a",
    "run_fig10b",
    "ZCU_RATE_MBPS",
    "JETSON_RATE_MBPS",
    "run_fig_resilience",
    "FAULT_RATES",
    "RESILIENCE_RATE_MBPS",
    "run_fig_saturation",
    "detect_knee",
    "OFFERED_LOADS",
    "SATURATION_DURATION",
]
