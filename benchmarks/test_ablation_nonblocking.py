"""Ablation bench: blocking vs non-blocking APIs vs the DAG baseline.

Paper Section II-C / IV-A: "these non-blocking APIs allow users to extract
equivalent performance to the DAG-based methodology without sacrificing
productivity".  This bench runs the same Pulse Doppler frames in all three
forms and asserts the ordering: blocking is slowest (one task in flight per
app), non-blocking recovers most of the gap to the DAG form.
"""

import numpy as np

from repro.apps import PulseDoppler
from repro.platforms import zcu102
from repro.runtime import CedrRuntime, RuntimeConfig

INSTANCES = 4


def run_form(mode, variant=None, batch=4, seed=2):
    app_def = PulseDoppler(batch=batch)
    platform = zcu102(n_cpu=3, n_fft=1).build(seed=seed)
    runtime = CedrRuntime(platform, RuntimeConfig(scheduler="heft_rt",
                                                  execute_kernels=False))
    runtime.start()
    rng = np.random.default_rng(seed)
    instances = [app_def.make_instance(mode, rng, variant=variant)
                 for _ in range(INSTANCES)]
    for inst in instances:
        runtime.submit(inst, at=0.0)
    runtime.seal()
    runtime.run()
    return float(np.mean([i.execution_time for i in instances]))


def test_nonblocking_recovers_dag_performance(benchmark):
    def all_three():
        return (
            run_form("dag"),
            run_form("api", "blocking"),
            run_form("api", "nonblocking"),
        )

    dag_ms, blocking_ms, nonblocking_ms = benchmark.pedantic(
        all_three, rounds=1, iterations=1
    )
    print(f"\nexec/app: DAG {dag_ms*1e3:.2f} ms | API blocking "
          f"{blocking_ms*1e3:.2f} ms | API non-blocking {nonblocking_ms*1e3:.2f} ms")

    assert blocking_ms > 1.4 * dag_ms           # serialization penalty
    assert nonblocking_ms < 0.85 * blocking_ms  # the non-blocking recovery
    # "equivalent performance to the DAG-based methodology": the remaining
    # gap is the per-call marshalling both API forms share, not lost
    # parallelism
    assert nonblocking_ms < 1.6 * dag_ms
