"""2-D convolution: direct spatial form and the FFT-domain form.

Lane Detection is "a convolution intensive routine" and, following the
paper's citation of Abtahi et al., implements convolution in the frequency
domain: pad to a power-of-two tile, row/column 1-D FFTs, a ZIP pointwise
product against the kernel's spectrum, and an inverse transform.  The
functions here provide both forms so tests can assert their equivalence and
so the Lane Detection app can count exactly how many 1-D FFT/IFFT tasks a
frame generates (paper Section III: 16384 FFTs + 8192 IFFTs at 960x540).

``fft2_rows_cols``/``ifft2_rows_cols`` intentionally expose the 2-D
transform as explicit batches of 1-D transforms, because that is the unit
the FFT accelerator executes and the unit CEDR schedules.
"""

from __future__ import annotations

import numpy as np

from .fft import fft as _fft_1d
from .fft import ifft as _ifft_1d
from .zip_ import zip_product

__all__ = [
    "next_pow2",
    "conv2d_spatial",
    "fft2_rows_cols",
    "ifft2_rows_cols",
    "conv2d_fft",
    "conv2d_fft_tiled",
    "fft_conv_task_counts",
]


def next_pow2(n: int) -> int:
    """Smallest power of two >= n (>= 1)."""
    if n < 1:
        raise ValueError(f"need a positive size, got {n}")
    return 1 << (n - 1).bit_length()


def conv2d_spatial(img: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """Direct 'same'-size 2-D convolution (zero padding, flipped kernel).

    Vectorized as one shifted-add per kernel tap instead of a per-pixel
    loop: kh*kw array operations total.
    """
    img = np.asarray(img, dtype=np.float64)
    kernel = np.asarray(kernel, dtype=np.float64)
    if img.ndim != 2 or kernel.ndim != 2:
        raise ValueError("conv2d_spatial expects 2-D image and kernel")
    kh, kw = kernel.shape
    ph, pw = kh // 2, kw // 2
    padded = np.pad(img, ((ph, kh - 1 - ph), (pw, kw - 1 - pw)))
    out = np.zeros_like(img)
    for i in range(kh):
        for j in range(kw):
            w = kernel[kh - 1 - i, kw - 1 - j]  # convolution flips the kernel
            if w != 0.0:
                out += w * padded[i : i + img.shape[0], j : j + img.shape[1]]
    return out


def fft2_rows_cols(tile: np.ndarray, fft_1d=_fft_1d) -> np.ndarray:
    """2-D FFT of a square power-of-two tile as two batches of 1-D FFTs.

    ``fft_1d`` is injectable so the CEDR apps can route each batch through
    the runtime as schedulable FFT tasks.
    """
    rows = fft_1d(tile)                 # P 1-D FFTs along rows
    cols = fft_1d(rows.T).T             # P 1-D FFTs along columns
    return cols


def ifft2_rows_cols(spec: np.ndarray, ifft_1d=_ifft_1d) -> np.ndarray:
    """Inverse of :func:`fft2_rows_cols`."""
    rows = ifft_1d(spec.T).T
    return ifft_1d(rows)


def conv2d_fft(
    img: np.ndarray,
    kernel: np.ndarray,
    fft_1d=_fft_1d,
    ifft_1d=_ifft_1d,
) -> np.ndarray:
    """'Same'-size 2-D convolution computed in the frequency domain.

    Pads image and kernel to a common power-of-two tile, transforms both,
    ZIPs the spectra, inverse-transforms, and crops with the circular-shift
    correction for the kernel's center.
    """
    img = np.asarray(img, dtype=np.float64)
    kernel = np.asarray(kernel, dtype=np.float64)
    h, w = img.shape
    kh, kw = kernel.shape
    size = next_pow2(max(h + kh - 1, w + kw - 1))

    img_tile = np.zeros((size, size))
    img_tile[:h, :w] = img
    ker_tile = np.zeros((size, size))
    ker_tile[:kh, :kw] = kernel

    spec = zip_product(
        fft2_rows_cols(img_tile, fft_1d), fft2_rows_cols(ker_tile, fft_1d)
    )
    full = ifft2_rows_cols(spec, ifft_1d).real
    ph, pw = kh // 2, kw // 2
    return full[ph : ph + h, pw : pw + w]


def conv2d_fft_tiled(
    img: np.ndarray,
    kernel: np.ndarray,
    tile: int = 64,
    fft_1d=_fft_1d,
    ifft_1d=_ifft_1d,
) -> np.ndarray:
    """'Same'-size FFT convolution via overlap-save tiling.

    The Abtahi et al. approach the paper's Lane Detection cites: instead of
    one padded power-of-two transform of the whole image, the image is cut
    into ``tile x tile`` output blocks, each extended by the kernel's
    support, transformed at the (much smaller) per-tile size, multiplied by
    the kernel's per-tile spectrum (computed once), and cropped back.  For
    a fixed small kernel this reduces total FFT work from
    ``O(P^2 log P)`` at the image-padded size ``P`` to
    ``O(HW log tile)`` - and keeps every task at a fixed, accelerator-
    friendly transform length.

    Functionally identical to :func:`conv2d_fft` (tests assert to 1e-8).
    """
    img = np.asarray(img, dtype=np.float64)
    kernel = np.asarray(kernel, dtype=np.float64)
    if img.ndim != 2 or kernel.ndim != 2:
        raise ValueError("conv2d_fft_tiled expects 2-D image and kernel")
    kh, kw = kernel.shape
    if kh % 2 == 0 or kw % 2 == 0:
        raise ValueError(
            f"overlap-save tiling requires odd kernel sides, got {kh}x{kw} "
            "(the centered 'same' crop is ambiguous for even kernels)"
        )
    if tile < 1:
        raise ValueError(f"tile must be positive, got {tile}")
    ext = next_pow2(tile + max(kh, kw) - 1)  # per-tile transform size
    ph, pw = kh // 2, kw // 2

    # kernel spectrum at the tile size, computed once
    ker_tile = np.zeros((ext, ext))
    ker_tile[:kh, :kw] = kernel
    ker_spec = fft2_rows_cols(ker_tile, fft_1d)

    h, w = img.shape
    # pad so every tile's extended read window stays in bounds
    padded = np.pad(img, ((ph, ext), (pw, ext)))
    out = np.zeros((h, w))
    for ty in range(0, h, tile):
        for tx in range(0, w, tile):
            block = padded[ty : ty + ext, tx : tx + ext]
            spec = zip_product(fft2_rows_cols(block, fft_1d), ker_spec)
            full = ifft2_rows_cols(spec, ifft_1d).real
            oy = min(tile, h - ty)
            ox = min(tile, w - tx)
            # the valid region of this tile starts at the kernel's center
            out[ty : ty + oy, tx : tx + ox] = full[
                2 * ph : 2 * ph + oy, 2 * pw : 2 * pw + ox
            ]
    return out


def fft_conv_task_counts(h: int, w: int, kh: int, kw: int) -> dict[str, int]:
    """Task accounting for one FFT-domain convolution at the given sizes.

    Returns the number of 1-D ``fft`` and ``ifft`` tasks and ``zip`` tasks
    a single :func:`conv2d_fft` generates when each 1-D batch row is a
    schedulable task, plus the tile size.  Lane Detection uses this to
    reconcile its per-frame task counts with the paper's 16384/8192 figures.
    """
    size = next_pow2(max(h + kh - 1, w + kw - 1))
    # image tile: size row FFTs + size column FFTs; kernel tile: the same;
    # inverse: size + size.
    return {
        "tile": size,
        "fft": 4 * size,
        "ifft": 2 * size,
        "zip": 1,
    }
