"""Scenario validation negative paths: unknown names and unknown keys
across every registry axis, all surfacing as ScenarioError (so the CLI
reports them instead of crashing)."""

import pytest

from repro.scenario import ScenarioError, ScenarioSpec


def _doc(**overrides):
    doc = {
        "scenario": {"name": "neg"},
        "platform": {"name": "zcu102"},
        "scheduler": {"name": "etf"},
        "workload": {"apps": [{"name": "PD", "count": 1}]},
    }
    doc.update(overrides)
    return doc


# ------------------------------------------------------------------ #
# unknown registry names, one per axis, all as ScenarioError
# ------------------------------------------------------------------ #

UNKNOWN_NAMES = [
    pytest.param(
        _doc(scheduler={"name": "hefd_rt"}), "heft_rt", id="scheduler"
    ),
    pytest.param(
        _doc(platform={"name": "zcu103"}), "zcu102", id="platform"
    ),
    pytest.param(
        _doc(workload={"apps": [{"name": "PDD"}]}), "PD", id="app"
    ),
    pytest.param(
        _doc(workload={"preset": "radar-coms"}), "radar-comms", id="workload-preset"
    ),
    pytest.param(
        _doc(workload={"apps": "PD:1", "arrival": "poison"}),
        "poisson",
        id="arrival",
    ),
    pytest.param(
        _doc(faults={"rate": 10.0, "kinds": ["transiert"]}),
        "transient",
        id="fault-kind",
    ),
    pytest.param(
        _doc(engine={"event_core": "wheeel"}), "wheel", id="event-core"
    ),
]


@pytest.mark.parametrize("doc,intended", UNKNOWN_NAMES)
def test_unknown_name_is_scenario_error_with_hint(doc, intended):
    with pytest.raises(ScenarioError) as ei:
        ScenarioSpec.from_mapping(doc, source="<test>")
    message = str(ei.value)
    assert intended in message  # listing or did-you-mean names the fix


def test_unknown_app_name_does_not_leak_raw_registry_error():
    """Regression: app names are validated inside section parsing; the
    raw RegistryError must be wrapped so `scenario validate` catches it."""
    try:
        ScenarioSpec.from_mapping(
            _doc(workload={"apps": [{"name": "PDD"}]}), source="<test>"
        )
    except ScenarioError:
        pass  # the required outcome
    else:
        pytest.fail("unknown app name validated successfully")


# ------------------------------------------------------------------ #
# unknown keys, with did-you-mean, in every section
# ------------------------------------------------------------------ #

UNKNOWN_KEYS = [
    pytest.param({"scenari": {}}, "scenario", id="top-level-section"),
    pytest.param(
        _doc(scenario={"name": "neg", "sede": 1}), "seed", id="scenario-key"
    ),
    pytest.param(
        _doc(scheduler={"nam": "etf"}), "name", id="scheduler-key"
    ),
    pytest.param(
        _doc(engine={"event_cor": "wheel"}), "event_core", id="engine-key"
    ),
    pytest.param(
        _doc(telemetry={"interval": 0.1}), "interval_s", id="telemetry-key"
    ),
    pytest.param(
        _doc(workload={"apps": "PD:1", "arival": "periodic"}),
        "arrival",
        id="workload-key",
    ),
    pytest.param(
        _doc(run={"rate_mbp": 100.0}), "rate_mbps", id="run-key"
    ),
    pytest.param(
        _doc(faults={"rate": 5.0, "kind": ["hang"]}), "kinds", id="faults-key"
    ),
]


@pytest.mark.parametrize("doc,suggestion", UNKNOWN_KEYS)
def test_unknown_key_suggests_the_spelling(doc, suggestion):
    with pytest.raises(ScenarioError) as ei:
        ScenarioSpec.from_mapping(doc, source="<test>")
    message = str(ei.value)
    assert "unknown key" in message
    assert f"did you mean {suggestion!r}?" in message


def test_unknown_serve_keys():
    doc = {
        "scenario": {"name": "neg", "kind": "serve"},
        "serve": {"duratoin": 0.1},
    }
    with pytest.raises(ScenarioError, match="did you mean 'duration'"):
        ScenarioSpec.from_mapping(doc, source="<test>")
    doc = {
        "scenario": {"name": "neg", "kind": "serve"},
        "serve": {"admission": {"polcy": "shed"}},
    }
    with pytest.raises(ScenarioError, match="did you mean 'policy'"):
        ScenarioSpec.from_mapping(doc, source="<test>")


def test_unknown_platform_parameter_lists_accepted():
    with pytest.raises(ScenarioError, match="accepts: cpu, fft, mmult"):
        ScenarioSpec.from_mapping(
            _doc(platform={"name": "zcu102", "gpu": 1}), source="<test>"
        )


def test_kind_mismatched_sections_rejected():
    doc = _doc()
    doc["scenario"]["kind"] = "serve"
    with pytest.raises(ScenarioError, match="run-kind section"):
        ScenarioSpec.from_mapping(doc, source="<test>")
    with pytest.raises(ScenarioError, match="serve-kind section"):
        ScenarioSpec.from_mapping(
            _doc(serve={"duration": 0.1}), source="<test>"
        )


def test_validate_cli_reports_unknown_app(tmp_path, capsys):
    """End to end: the CLI prints FAIL for a bad app name, exit code 1."""
    from repro.cli import main

    path = tmp_path / "bad.json"
    path.write_text(
        '{"scenario": {"name": "bad"}, '
        '"workload": {"apps": [{"name": "PDD"}]}}'
    )
    assert main(["scenario", "validate", str(path)]) == 1
    out = capsys.readouterr().out
    assert "FAIL" in out
    assert "did you mean 'PD'?" in out
