"""Saturation figure: knee detection, serve codec, sweep-cache reuse."""

import pytest

from repro.experiments import SweepCache, detect_knee, run_fig_saturation
from repro.experiments.cache import RUN_CODEC
from repro.serve import ArrivalSpec, ServeConfig, TenantSpec, serve_codec, serve_once

LOADS = (40.0, 120.0, 360.0)


class TestDetectKnee:
    def test_finds_the_bend(self):
        xs = (1.0, 2.0, 3.0, 4.0, 5.0, 6.0)
        ys = (10.0, 20.0, 30.0, 34.0, 35.0, 35.5)   # saturates after x=3
        assert detect_knee(xs, ys) == 2

    def test_degenerate_curves_have_no_knee(self):
        assert detect_knee((1.0, 2.0), (1.0, 2.0)) is None          # too short
        assert detect_knee((1.0, 2.0, 3.0), (5.0, 5.0, 5.0)) is None  # flat
        assert detect_knee((1.0, 1.0, 1.0), (1.0, 2.0, 3.0)) is None  # no x span

    def test_linear_curve_has_no_knee(self):
        xs = (0.0, 1.0, 2.0, 3.0)
        assert detect_knee(xs, xs) is None

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="length mismatch"):
            detect_knee((1.0, 2.0), (1.0,))


class TestFigure:
    def test_panels_and_knee(self):
        panels = run_fig_saturation(loads=LOADS, duration=0.1, trials=1)
        throughput = panels["saturation_throughput"].get("SHED")
        p99 = panels["saturation_p99"].get("SHED")
        assert throughput.xs == LOADS and p99.xs == LOADS
        assert all(y >= 0 for y in throughput.ys)
        assert all(y >= 0 for y in p99.ys)
        if "saturation_knee" in panels:
            knee_x = panels["saturation_knee"].get("THROUGHPUT").xs[0]
            assert knee_x in LOADS

    def test_figure_is_deterministic(self):
        a = run_fig_saturation(loads=LOADS, duration=0.1, trials=1)
        b = run_fig_saturation(loads=LOADS, duration=0.1, trials=1)
        assert a["saturation_throughput"].as_dict() == b["saturation_throughput"].as_dict()


class TestServeCodec:
    def serve_result(self, zcu_small, pd_small, seed=0):
        serve = ServeConfig(
            tenants=(TenantSpec(
                "radar", ArrivalSpec.make("poisson", rate=200.0), (pd_small,),
            ),),
            duration=0.1,
        )
        return serve, serve_once(zcu_small, serve, seed=seed)

    def test_round_trip_is_exact(self, zcu_small, pd_small):
        codec = serve_codec()
        _, result = self.serve_result(zcu_small, pd_small)
        assert codec.decode(codec.encode(result)) == result

    def test_cache_hit_returns_identical_serve_result(
        self, tmp_path, zcu_small, pd_small
    ):
        codec = serve_codec()
        serve, result = self.serve_result(zcu_small, pd_small)
        cache = SweepCache(tmp_path)
        cell = (zcu_small, serve, 0, None)
        assert cache.put(cell, result, codec=codec)
        assert cache.get(cell, codec=codec) == result
        assert cache.stats.hits == 1

    def test_kind_mismatch_degrades_to_miss(self, tmp_path, zcu_small, pd_small):
        # a serve entry must never decode under the batch codec (or vice
        # versa): the kind recheck drops it as corrupt instead
        serve, result = self.serve_result(zcu_small, pd_small)
        cache = SweepCache(tmp_path)
        cell = (zcu_small, serve, 0, None)
        assert cache.put(cell, result, codec=serve_codec())
        assert cache.get(cell, codec=RUN_CODEC) is None
        assert cache.stats.corrupt == 1
