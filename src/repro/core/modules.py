"""libCEDR module system: platform-specific accelerator implementations.

In the paper's Fig. 3, each DSSoC platform enables a set of *libCEDR
Modules* (an ``fft`` module for a platform with an FFT accelerator, etc.);
compiling libCEDR with a module set yields the runtime shared object whose
(API, resource type) pairs the daemon maps at startup.  This module
reproduces that configuration step: a :class:`ModuleSet` names the enabled
modules, and :func:`build_api_map` produces the startup mapping from each
(API, PE kind) to a physical implementation - or omits the pair, which the
scheduler then treats as "this PE does not support the API".

Every API always retains its CPU implementation (the paper requires
"at a minimum, standard C/C++ implementations"), so disabling a module
degrades to CPU execution rather than breaking the application.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.kernels.registry import KERNEL_IMPLS
from repro.platforms.pe import PEKind

__all__ = ["Module", "ModuleSet", "STANDARD_MODULES", "build_api_map"]


@dataclass(frozen=True)
class Module:
    """One libCEDR module: the accelerator implementations it contributes."""

    name: str
    #: (api, accelerator kind) pairs this module provides
    provides: tuple[tuple[str, PEKind], ...]

    def implementations(self) -> dict[tuple[str, PEKind], Callable]:
        impls = {}
        for api, kind in self.provides:
            if (api, kind) not in KERNEL_IMPLS:
                raise KeyError(
                    f"module {self.name!r} declares ({api!r}, {kind.value}) but no "
                    "kernel implementation is registered"
                )
            impls[(api, kind)] = KERNEL_IMPLS[(api, kind)]
        return impls


#: The modules shipped with this reproduction, mirroring the platforms the
#: paper evaluates: FFT/MMULT fabric modules for the ZCU102 and CUDA FFT/ZIP
#: modules for the Jetson.
STANDARD_MODULES: dict[str, Module] = {
    "fft": Module("fft", (("fft", PEKind.FFT), ("ifft", PEKind.FFT))),
    "mmult": Module("mmult", (("gemm", PEKind.MMULT),)),
    "cuda_fft": Module("cuda_fft", (("fft", PEKind.GPU), ("ifft", PEKind.GPU))),
    "cuda_zip": Module("cuda_zip", (("zip", PEKind.GPU),)),
}


class ModuleSet:
    """The module selection a user compiles libCEDR with."""

    def __init__(self, names: tuple[str, ...] = ()) -> None:
        unknown = [n for n in names if n not in STANDARD_MODULES]
        if unknown:
            raise KeyError(f"unknown libCEDR modules {unknown}; available: {sorted(STANDARD_MODULES)}")
        self.names = tuple(names)

    @classmethod
    def for_zcu102(cls) -> "ModuleSet":
        return cls(("fft", "mmult"))

    @classmethod
    def for_jetson(cls) -> "ModuleSet":
        return cls(("cuda_fft", "cuda_zip"))

    def modules(self) -> list[Module]:
        return [STANDARD_MODULES[n] for n in self.names]


def build_api_map(module_set: ModuleSet) -> dict[tuple[str, PEKind], Callable]:
    """The daemon's startup mapping: (API, PE kind) -> implementation.

    CPU implementations of every API are always present; enabled modules
    contribute their accelerator entries on top.
    """
    api_map: dict[tuple[str, PEKind], Callable] = {
        (api, kind): impl for (api, kind), impl in KERNEL_IMPLS.items() if kind is PEKind.CPU
    }
    for module in module_set.modules():
        api_map.update(module.implementations())
    return api_map
