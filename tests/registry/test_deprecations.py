"""The pre-registry surfaces stay callable, as deprecated shims."""

import pytest

import repro.cli
import repro.sched
from repro.sched import available_schedulers, make_scheduler, paper_schedulers


def test_make_scheduler_still_works_but_warns():
    with pytest.warns(DeprecationWarning, match="SCHEDULERS.create"):
        sched = make_scheduler("rr")
    assert sched.name == "rr"


def test_paper_schedulers_module_attr_warns():
    with pytest.warns(DeprecationWarning, match="paper_schedulers"):
        legacy = repro.sched.PAPER_SCHEDULERS
    assert legacy == paper_schedulers()
    assert legacy == ("rr", "eft", "etf", "heft_rt")  # presentation order


def test_extra_schedulers_module_attr_warns():
    with pytest.warns(DeprecationWarning, match="extra_schedulers"):
        legacy = repro.sched.EXTRA_SCHEDULERS
    assert set(legacy) == set(available_schedulers()) - set(paper_schedulers())


def test_cli_app_factories_shim():
    with pytest.warns(DeprecationWarning, match="repro.apps.APPS"):
        factories = repro.cli.APP_FACTORIES
    assert set(factories) == {"PD", "TX", "RX", "LD", "TM"}
    app = factories["PD"]()  # zero-arg call keeps the historical contract
    assert app.name.startswith("PD")


def test_cli_platform_names_shim():
    with pytest.warns(DeprecationWarning, match="available_platforms"):
        names = repro.cli.PLATFORM_NAMES
    assert "zcu102" in names and "jetson" in names


def test_cli_figure_ids_shim():
    with pytest.warns(DeprecationWarning, match="available_figures"):
        ids = repro.cli.FIGURE_IDS
    assert "fig5" in ids and "saturation" in ids


def test_unknown_cli_attr_still_raises():
    with pytest.raises(AttributeError):
        repro.cli.NO_SUCH_THING
