"""JSON file I/O for DAG application specs.

Baseline CEDR's application DAGs live on disk as JSON files and are
submitted by path over IPC.  This module provides that persistence layer
for the reproduction's spec format (see :mod:`repro.dag.schema`):
``save_spec`` / ``load_spec`` round-trip the JSON-able part of a DAG
application; the ``bindings`` (the shared-object function pointers) are by
nature not serializable, so loading takes an optional bindings mapping to
re-attach — exactly how the real system pairs a ``.json`` with a ``.so``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable, Mapping, Optional

from .app import DagProgram, parse_dag
from .schema import DagValidationError, validate_spec

__all__ = ["save_spec", "load_spec", "load_program"]


def save_spec(path: str | Path, spec: Mapping[str, Any], indent: int = 2) -> Path:
    """Validate and write *spec* as a JSON file; returns the path.

    The spec is validated *before* writing so no invalid DAG ever lands on
    disk, and the write is refused if the spec contains non-JSON values
    (e.g. ndarray parameters smuggled into ``params``).
    """
    validate_spec(spec)
    path = Path(path)
    try:
        text = json.dumps(spec, indent=indent, allow_nan=False)
    except (TypeError, ValueError) as exc:
        raise DagValidationError(f"spec is not JSON-serializable: {exc}") from exc
    path.write_text(text, encoding="utf-8")
    return path


def load_spec(path: str | Path) -> dict[str, Any]:
    """Read and validate a spec JSON file."""
    path = Path(path)
    try:
        spec = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise DagValidationError(f"{path} is not valid JSON: {exc}") from exc
    validate_spec(spec)
    return spec


def load_program(
    path: str | Path,
    bindings: Optional[Mapping[str, Callable]] = None,
) -> DagProgram:
    """Load a spec file and parse it into a submittable :class:`DagProgram`.

    *bindings* re-attaches the cpu_op callables (the shared-object half of
    a CEDR application).  Omitting it is fine for specs whose nodes are all
    kernels, or for timing-only runs where cpu_op bodies never execute —
    validation of binding presence happens at parse time only when
    bindings are supplied.
    """
    return parse_dag(load_spec(path), bindings)
