"""DAG-based CEDR application format: schema, parser, builder, transforms."""

from .analysis import DagSummary, critical_path, parallelism_profile, summarize, to_networkx
from .app import DagProgram, parse_dag
from .builder import DagBuilder
from .collapse import collapse_subgraph
from .io import load_program, load_spec, save_spec
from .schema import KNOWN_APIS, DagValidationError, validate_spec

__all__ = [
    "DagProgram",
    "DagSummary",
    "critical_path",
    "parallelism_profile",
    "summarize",
    "to_networkx",
    "parse_dag",
    "DagBuilder",
    "collapse_subgraph",
    "save_spec",
    "load_spec",
    "load_program",
    "validate_spec",
    "DagValidationError",
    "KNOWN_APIS",
]
