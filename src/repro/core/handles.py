"""Request handles for the non-blocking libCEDR APIs.

The paper's non-blocking variants "allow the end user to have full control
over the task synchronization primitives such that they can manually
maximize parallelism".  A :class:`CedrRequest` is that control surface: the
application thread gets one back immediately from a ``*_nb`` call and can
``test()`` it, ``wait()`` on it, or hold a whole window of them in flight
(see :func:`wait_all`).  :class:`ImmediateRequest` is the standalone-mode
twin whose result already exists, so the exact same application source
compiles against both the runtime and the plain CPU library.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Iterable

from repro.simcore import Request

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.task import Task

__all__ = ["CedrRequest", "ImmediateRequest", "wait_all"]


class CedrRequest:
    """Handle to one in-flight non-blocking libCEDR call."""

    def __init__(self, task: "Task") -> None:
        self._task = task

    def test(self) -> bool:
        """Non-blockingly check completion (``pthread_cond``-free peek)."""
        return self._task.completion.done

    def wait(self) -> Generator[Request, Any, Any]:
        """Block until the call completes; returns its result.

        Idempotent - waiting again returns the same result immediately.
        """
        return (yield from self._task.completion.wait())

    @property
    def result(self) -> Any:
        """The completed result; raises if the call is still in flight."""
        if not self.test():
            raise RuntimeError(
                f"result of task {self._task.tid} ({self._task.api}) not ready; "
                "wait() on the request first"
            )
        return self._task.completion.result

    @property
    def api(self) -> str:
        return self._task.api


class ImmediateRequest:
    """Standalone-mode handle: the call already executed synchronously."""

    def __init__(self, result: Any, api: str = "?") -> None:
        self._result = result
        self.api = api

    def test(self) -> bool:
        return True

    def wait(self) -> Generator[Request, Any, Any]:
        if False:  # pragma: no cover - makes this a generator function
            yield
        return self._result

    @property
    def result(self) -> Any:
        return self._result


def wait_all(requests: Iterable) -> Generator[Request, Any, list[Any]]:
    """Wait on a window of requests; returns their results in order.

    The canonical pattern for performance programmers: issue a batch of
    ``*_nb`` calls, then ``results = yield from wait_all(reqs)``.
    """
    results = []
    for req in requests:
        results.append((yield from req.wait()))
    return results
