"""Earliest Task First: globally greedy pair selection.

ETF repeatedly scans *all* remaining (ready task, PE) pairs, commits the
pair with the globally earliest finish time, and rescans.  It therefore not
only finds the best PE per task but also the best task ordering - the paper
notes it "tries to find the most optimal task to schedule first" - at a
decision cost quadratic in the ready-queue length.  That cost structure is
what the paper's Fig. 7 exposes: with DAG-mode queue depths ETF spends tens
of milliseconds per application deciding, collapsing to ~1 ms/app under the
API-based runtime whose queue holds only in-flight libCEDR calls.

The *simulated* decision cost is charged analytically via
:meth:`round_cost`; the *functional* selection below is vectorized with
NumPy (estimate matrix + masked argmin per commitment) so simulating an
ETF round over hundreds of ready tasks stays fast even though the modeled
algorithm is O(q^2 x PEs).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .base import (
    EstimateFn,
    Scheduler,
    candidate_mask,
    estimate_matrix,
    free_vector,
    register_scheduler,
)

__all__ = ["EarliestTaskFirst"]


@register_scheduler
class EarliestTaskFirst(Scheduler):
    """O(ready^2 x PEs) pair scans per round (cost model); vectorized impl."""

    name = "etf"

    def __init__(self, cost_per_pair_us: float = 0.09) -> None:
        self.cost_per_pair_us = cost_per_pair_us

    def schedule(self, ready, pes: Sequence, now: float, estimate: EstimateFn):
        n, p = len(ready), len(pes)
        if n == 0:
            return []
        # Candidate cells honour the fault subsystem's availability and ban
        # masks (with the same ban fallback as Scheduler.compatible);
        # everything else stays +inf so the argmin never commits to an
        # excluded PE.  One columnar gather replaces the old per-task loops.
        mask = candidate_mask(ready, pes, estimate)
        est = estimate_matrix(ready, pes, estimate, mask)
        free = free_vector(pes, now)
        # Ready tasks collapse into equivalence classes with bitwise-equal
        # estimate rows (shape interning keeps the count to a handful per
        # round), and ETF's global pair scan only ever needs one
        # representative per class: identical rows share a finish vector, so
        # the flat argmin always lands on the class member with the lowest
        # queue position.  Scanning classes instead of tasks turns each of
        # the n commits into O(classes) work with an O(PEs) rescan only for
        # classes whose cached best column just got busier (a later column
        # can never *improve* a cached minimum).  Tie-breaking matches a
        # flat argmin over the full matrix exactly: commits within a class
        # go in queue order, and ties *across* classes fall to the class
        # whose head task sits earliest in the queue.
        row_bytes = est.tobytes()
        stride = est.itemsize * p
        class_of: dict[bytes, int] = {}
        members: list[list[int]] = []
        for i in range(n):
            key = row_bytes[i * stride:(i + 1) * stride]
            g = class_of.setdefault(key, len(members))
            if g == len(members):
                members.append([i])
            else:
                members[g].append(i)
        n_cls = len(members)
        # plain Python lists from here: the per-commit state is a handful of
        # scalars, where numpy's per-call overhead would dominate
        gest = [est[m[0]].tolist() for m in members]
        free_l = free.tolist()
        heads = [m[0] for m in members]
        cursor = [0] * n_cls
        inf = float("inf")
        cols = range(p)
        best_v = [0.0] * n_cls  # cached earliest finish of each class head
        best_j = [0] * n_cls    # ... and its (first-minimum) PE column
        for k in range(n_cls):
            row = gest[k]
            mv, mj = inf, 0
            for jj in cols:
                t = row[jj] + free_l[jj]
                if t < mv:
                    mv, mj = t, jj
            best_v[k], best_j[k] = mv, mj
        active = list(range(n_cls))
        assignments = []
        for _ in range(n):
            # global pick: min (finish, head queue position) over classes
            bk, bv, bh = -1, inf, -1
            for k in active:
                v = best_v[k]
                if v < bv or (v == bv and heads[k] < bh):
                    bk, bv, bh = k, v, heads[k]
            k = bk
            j = best_j[k]
            i = members[k][cursor[k]]
            cursor[k] += 1
            free_l[j] = bv
            assignments.append((ready[i], pes[j]))
            pes[j].expected_free = bv
            if cursor[k] == len(members[k]):
                active.remove(k)  # class drained: excluded from the scan
            else:
                heads[k] = members[k][cursor[k]]
            # column j's backlog grew: only classes whose cached minimum sat
            # on column j can change, and only for the worse - rescan those
            for m_ in active:
                if best_j[m_] == j:
                    row = gest[m_]
                    mv, mj = inf, 0
                    for jj in cols:
                        t = row[jj] + free_l[jj]
                        if t < mv:
                            mv, mj = t, jj
                    best_v[m_], best_j[m_] = mv, mj
        return assignments

    def round_cost(self, n_ready: int, n_pes: int) -> float:
        # One full pair scan per commitment: q + (q-1) + ... + 1 task scans,
        # each over n_pes candidate PEs.
        pair_scans = n_ready * (n_ready + 1) / 2 * n_pes
        return self.cost_per_pair_us * 1e-6 * pair_scans
