"""repro.serve - the open-stream service tier over the CEDR runtime.

Promotes :class:`~repro.runtime.CedrRuntime` from a closed-batch simulator
into a long-running service: seeded arrival generators feed an admission
controller that submits applications to the live daemon, with per-tenant
SLO accounting and graceful drain on duration expiry.  See
docs/INTERNALS.md, "Service mode & admission control".
"""

from .admission import (
    ADMISSION_POLICIES,
    AdmissionConfig,
    AdmissionController,
    TokenBucket,
)
from .arrival import (
    ArrivalSpec,
    arrival_rate,
    available_arrivals,
    make_arrival_stream,
    register_arrival,
)
from .driver import (
    ServeConfig,
    ServeDriver,
    ServeResult,
    TenantSpec,
    TenantStats,
    serve_codec,
    serve_once,
    serve_trials,
)

__all__ = [
    "ADMISSION_POLICIES",
    "AdmissionConfig",
    "AdmissionController",
    "ArrivalSpec",
    "ServeConfig",
    "ServeDriver",
    "ServeResult",
    "TenantSpec",
    "TenantStats",
    "TokenBucket",
    "arrival_rate",
    "available_arrivals",
    "make_arrival_stream",
    "register_arrival",
    "serve_codec",
    "serve_once",
    "serve_trials",
]
