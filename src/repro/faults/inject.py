"""Fault injector: replays a fault schedule as simulator timer events.

One :class:`FaultInjector` is attached to a :class:`~repro.runtime.daemon.
CedrRuntime` whenever its config carries an *active* fault configuration.
At :meth:`arm` time it walks every PE's deterministic
:func:`~repro.faults.model.fault_stream` lazily - one engine timer ahead
per PE - plus any scripted :class:`~repro.faults.model.FaultSpec` entries,
and applies each fault when its timer fires:

========== ===========================================================
transient  increments ``pe.transient_pending``; the worker fails the
           next task that completes on the PE
hang       increments ``pe.hang_pending``; the next task on the PE
           wedges for ``hang_s`` (the daemon watchdog usually recovers
           it first)
failstop   marks the PE dead + unavailable and posts ``pe_dead`` so
           the daemon can re-triage parked tasks
slowdown   degrades the PE by ``slowdown_factor`` for ``slowdown_s``
           (epoch-guarded revert timer)
========== ===========================================================

Faults landing on an already-dead PE are dropped, and stream transients/
hangs landing on an *idle* PE are dropped too (there is no live task state
to corrupt).  Scripted faults are forced: their effect is left pending for
the next task on the PE, which makes deterministic recovery tests easy to
write.  The injector also keeps
the run's fault log (``records``) and retry re-dispatch log
(``retry_records``, appended by the daemon) that the Chrome-trace exporter
turns into instant events.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from .model import FaultConfig, FaultKind, FaultRecord, fault_stream
from .registry import FAULT_KINDS

if TYPE_CHECKING:  # pragma: no cover
    from repro.platforms import PE
    from repro.runtime.daemon import CedrRuntime

__all__ = ["FaultInjector", "RetryRecord"]

#: (time, task id, attempt, target PE) of one retry re-dispatch.
RetryRecord = tuple[float, int, int, str]


class FaultInjector:
    """Drives one runtime's fault schedule off the simulation clock."""

    def __init__(self, runtime: "CedrRuntime", config: FaultConfig) -> None:
        self.runtime = runtime
        self.config = config
        #: faults actually applied, in injection order.
        self.records: list[FaultRecord] = []
        #: retry re-dispatches, appended by the daemon's scheduling round.
        self.retry_records: list[RetryRecord] = []
        self._stopped = False

    def arm(self) -> None:
        """Schedule the first timer of every PE stream + all scripted faults."""
        engine = self.runtime.engine
        pes = {pe.name: pe for pe in self.runtime.platform.pes}
        for pe in pes.values():
            self._arm_next(pe, fault_stream(pe.name, self.config, engine.seed))
        for spec in self.config.script:
            pe = pes.get(spec.pe)
            if pe is None:
                raise ValueError(
                    f"scripted fault names unknown PE {spec.pe!r}; "
                    f"platform has: {sorted(pes)}"
                )
            engine.call_at(
                spec.at, lambda p=pe, k=spec.kind: self._fire(p, k, forced=True)
            )

    def disarm(self) -> None:
        """Stop injecting: pending timers become no-ops and re-arming ends.

        The daemon calls this at shutdown - the per-PE streams are infinite,
        so without it the one-timer-ahead chain would keep the engine's
        timer heap non-empty forever and :meth:`Engine.run` would never
        terminate.
        """
        self._stopped = True

    def _arm_next(self, pe: "PE", stream: Iterator[tuple[float, FaultKind]]) -> None:
        if self._stopped:
            return
        step = next(stream, None)
        if step is None:
            return
        at, kind = step

        def _on_timer() -> None:
            self._fire(pe, kind)
            self._arm_next(pe, stream)

        self.runtime.engine.call_at(at, _on_timer)

    def _fire(self, pe: "PE", kind: FaultKind, forced: bool = False) -> None:
        if self._stopped:
            return  # runtime already shut down; drain timers silently
        if pe.dead:
            return  # a dead PE cannot fail any harder
        runtime = self.runtime
        entry = FAULT_KINDS.get(kind.value)
        if (
            not forced
            and entry.needs_live_task
            and not runtime.inflight[pe.index]
        ):
            # Transients corrupt live task state and hangs wedge an active
            # dispatch: a fault landing on an *idle* PE has nothing to hit
            # and is dropped.  Keeping these as sticky pending counters
            # instead would concentrate every idle-time fault onto the next
            # task to arrive - in practice the workload's last stragglers,
            # which then exhaust any retry budget no matter how generous.
            return
        now = runtime.engine.now
        self.records.append(FaultRecord(at=now, pe=pe.name, kind=kind))
        runtime.counters.record_fault(kind.value)
        entry.apply(self, pe)

    def end_slowdown(self, pe: "PE", epoch: int) -> None:
        # A newer slowdown fault restarted the degradation window; its own
        # revert timer owns the recovery then.
        if pe.slow_epoch == epoch and not pe.dead:
            pe.fault_slow_factor = 1.0
