"""Chrome-trace export of CEDR execution logs.

The real CEDR serializes task logs at shutdown "for later offline analysis
by the user".  This module turns a :class:`~repro.runtime.logbook.Logbook`
into the Chrome Trace Event Format (the JSON consumed by ``chrome://tracing``
and Perfetto), which is the most practical way to *see* a schedule:

* one trace "process" per PE, with each executed task as a complete event
  (queue wait rendered as a preceding half-opacity span);
* one process for applications, with an arrival-to-completion span per app;
* a counter track of the ready-queue depth per scheduling round;
* with fault injection active, instant events mark every injected fault on
  its PE's row and every retry re-dispatch on the target PE's row, so
  Perfetto shows recovery visually.

All emitted numbers are sanitized: non-finite floats (NaN/inf) become
``null`` so the JSON stays loadable by strict parsers (``json.dump`` runs
with ``allow_nan=False``).

Usage::

    runtime.run()
    write_chrome_trace("run.trace.json", runtime)
    # open chrome://tracing or https://ui.perfetto.dev and load the file
"""

from __future__ import annotations

import json
import math
from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover
    from .daemon import CedrRuntime

__all__ = ["to_chrome_trace", "write_chrome_trace"]

#: trace pid reserved for application lifetime spans
APP_PID = 1_000_000
#: trace pid reserved for runtime-level counter tracks (ready-queue depth)
RUNTIME_PID = 2_000_000


def _us(seconds: float) -> float:
    return seconds * 1e6


def _sanitize(obj: Any) -> Any:
    """Replace non-finite floats with None, recursively (JSON-safe)."""
    if isinstance(obj, float):
        return obj if math.isfinite(obj) else None
    if isinstance(obj, dict):
        return {k: _sanitize(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_sanitize(v) for v in obj]
    return obj


def to_chrome_trace(runtime: "CedrRuntime") -> dict[str, Any]:
    """Build the Chrome Trace Event JSON structure for one completed run."""
    events: list[dict[str, Any]] = []

    # -- metadata: name the PE rows ------------------------------------ #
    pe_pids: dict[str, int] = {}
    for pe in runtime.platform.pes:
        pid = 1000 + pe.index
        pe_pids[pe.name] = pid
        events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": f"PE {pe.name} ({pe.kind.value})"},
        })
        events.append({
            "ph": "M", "name": "process_sort_index", "pid": pid, "tid": 0,
            "args": {"sort_index": pe.index},
        })
    events.append({
        "ph": "M", "name": "process_name", "pid": APP_PID, "tid": 0,
        "args": {"name": "applications"},
    })
    events.append({
        "ph": "M", "name": "process_name", "pid": RUNTIME_PID, "tid": 0,
        "args": {"name": "cedr-daemon"},
    })

    # -- per-task execution + queue-wait spans -------------------------- #
    for rec in runtime.logbook.tasks:
        pid = pe_pids.get(rec.pe)
        if pid is None:
            continue
        if rec.queue_wait > 0:
            events.append({
                "ph": "X", "name": f"wait {rec.api}", "cat": "queue",
                "pid": pid, "tid": 0,
                "ts": _us(rec.t_release), "dur": _us(rec.t_start - rec.t_release),
                "args": {"task": rec.tid, "app": rec.app_id},
            })
        events.append({
            "ph": "X", "name": f"{rec.api}:{rec.name}", "cat": "task",
            "pid": pid, "tid": 0,
            "ts": _us(rec.t_start), "dur": _us(rec.service_time),
            "args": {"task": rec.tid, "app": rec.app_id, "api": rec.api},
        })

    # -- application lifetimes ------------------------------------------ #
    for app in runtime.logbook.apps.values():
        if app.t_finish is None:
            continue
        events.append({
            "ph": "X", "name": f"{app.name}#{app.app_id} ({app.mode})",
            "cat": "app", "pid": APP_PID, "tid": app.app_id,
            "ts": _us(app.t_arrival), "dur": _us(app.execution_time),
            "args": {"mode": app.mode, "exec_ms": app.execution_time * 1e3},
        })

    # -- ready-queue depth counter track -------------------------------- #
    for t, depth in runtime.logbook.rounds:
        events.append({
            "ph": "C", "name": "ready queue", "pid": RUNTIME_PID, "tid": 0,
            "ts": _us(t), "args": {"depth": depth},
        })

    # -- scheduler-decision counter track (repro.telemetry) ------------- #
    # With telemetry active the daemon logs every scheduling round's batch
    # size and heuristic decision cost; rendered as a counter track next to
    # the ready-queue depth so Perfetto shows decision cost growing with
    # queue pressure (the paper's Fig. 7 mechanism, visually).
    if runtime.telemetry is not None:
        decisions = 0
        for t, batch, cost in runtime.telemetry.round_log:
            decisions += batch
            events.append({
                "ph": "C", "name": "sched decisions", "pid": RUNTIME_PID, "tid": 0,
                "ts": _us(t),
                "args": {"decided": decisions, "decision_cost_us": _us(cost)},
            })

    # -- fault injections + retry re-dispatches (instant events) -------- #
    if runtime.faults is not None:
        for fault in runtime.faults.records:
            pid = pe_pids.get(fault.pe)
            if pid is None:
                continue
            events.append({
                "ph": "i", "name": f"fault:{fault.kind.value}", "cat": "fault",
                "pid": pid, "tid": 0, "ts": _us(fault.at), "s": "p",
                "args": {"kind": fault.kind.value},
            })
        for t, tid, attempt, pe_name in runtime.faults.retry_records:
            pid = pe_pids.get(pe_name)
            if pid is None:
                continue
            events.append({
                "ph": "i", "name": "retry", "cat": "fault",
                "pid": pid, "tid": 0, "ts": _us(t), "s": "p",
                "args": {"task": tid, "attempt": attempt},
            })

    return _sanitize({
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "platform": runtime.platform.config.name,
            "scheduler": runtime.scheduler.name,
            "makespan_ms": runtime.metrics.makespan * 1e3,
            "apps": runtime.metrics.apps_completed,
            "tasks": runtime.counters.tasks_completed,
            "faults": runtime.counters.faults_injected,
            "retries": runtime.counters.retries,
        },
    })


def write_chrome_trace(path: str, runtime: "CedrRuntime", indent: Optional[int] = None) -> str:
    """Serialize :func:`to_chrome_trace` to *path*; returns the path."""
    trace = to_chrome_trace(runtime)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh, indent=indent, allow_nan=False)
    return path
