"""CEDR-API: the paper's contribution - the API-based programming model.

``CedrClient`` is the runtime-linked libCEDR (blocking + non-blocking
APIs, generated from the :mod:`repro.core.spec` table), ``StandaloneCedr``
the static CPU library for functional bring-up, ``Request`` /
``CedrRequest`` / ``wait_all`` / ``wait_any`` the non-blocking
synchronization surface, and ``ModuleSet`` the per-platform accelerator
module configuration.
"""

from .api import CedrClient
from .handles import CedrRequest, ImmediateRequest, Request, wait_all, wait_any
from .modules import STANDARD_MODULES, Module, ModuleSet, build_api_map
from .spec import API_SPECS, ApiSpec, payload_bytes
from .standalone import StandaloneCedr, run_standalone

__all__ = [
    "CedrClient",
    "StandaloneCedr",
    "run_standalone",
    "Request",
    "CedrRequest",
    "ImmediateRequest",
    "wait_all",
    "wait_any",
    "ApiSpec",
    "API_SPECS",
    "payload_bytes",
    "Module",
    "ModuleSet",
    "STANDARD_MODULES",
    "build_api_map",
]
