"""ZIP kernel: element-wise (Hadamard) product.

ZIP is one of the two accelerator-backed key functions of the paper's
evaluation ("we use FFT and ZIP as key functions that are supported with
accelerator based execution", Section III).  Lane Detection uses it for the
frequency-domain pointwise product of FFT-based convolution.
"""

from __future__ import annotations

import numpy as np

__all__ = ["zip_product", "zip_conj_product"]


def zip_product(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-wise product ``a * b``.

    Shapes must match exactly - the accelerator streams two equal-length
    buffers, so no silent broadcasting is allowed here.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        raise ValueError(f"ZIP operands must match in shape: {a.shape} vs {b.shape}")
    return a * b


def zip_conj_product(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-wise ``a * conj(b)``, the matched-filter variant used by
    Pulse Doppler's frequency-domain correlation."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        raise ValueError(f"ZIP operands must match in shape: {a.shape} vs {b.shape}")
    return a * np.conj(b)
