"""Software performance counters (the PAPI stand-in).

CEDR's Runtime Configuration lets users enable PAPI hardware counters per
worker.  Real hardware counters have no meaning inside a behavioural
simulator, so this module provides the software-visible equivalents the
evaluation actually consumes: per-PE task/busy tallies, per-API histograms,
ready-queue depth high-water marks, and scheduling-round statistics.

When the runtime carries a :class:`~repro.telemetry.CedrTelemetry` instance
it is attached here as ``telemetry``, and every fault/retry/recovery
``record_*`` call is *bridged* into the metric registry alongside the plain
tallies - the fault layer needs no knowledge of the registry, and the
bridge fires even when the legacy counters themselves are disabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry import CedrTelemetry

__all__ = ["PECounters", "PerfCounters"]


@dataclass
class PECounters:
    """Counters for one processing element."""

    tasks: int = 0
    busy_seconds: float = 0.0
    by_api: dict[str, int] = field(default_factory=dict)

    def record(self, api: str, service_time: float) -> None:
        self.tasks += 1
        self.busy_seconds += service_time
        self.by_api[api] = self.by_api.get(api, 0) + 1


@dataclass
class PerfCounters:
    """Run-wide counter set, updated by daemon and workers."""

    enabled: bool = True
    per_pe: dict[str, PECounters] = field(default_factory=dict)
    ready_depth_max: int = 0
    ready_depth_sum: int = 0
    sched_rounds: int = 0
    tasks_completed: int = 0
    apps_completed: int = 0
    #: host-side simulator throughput: dispatch events handled by the engine
    #: and the wall-clock seconds spent inside :meth:`CedrRuntime.run`.
    #: ``events_per_wall_sec`` is the perf-regression metric the CLI's
    #: ``--verbose`` path prints, so throughput drops are visible outside
    #: pytest-benchmark (see benchmarks/baseline.json).
    engine_events: int = 0
    wall_seconds: float = 0.0

    # -- simulator event core (repro.simcore timer queue) ----------------- #
    #: which timer-queue implementation the engine ran on ("wheel"/"heap").
    event_core: str = ""
    #: ``call_at`` timestamps in the past, clamped to now (late timers).
    late_timers: int = 0
    #: timers fired across the run (separate from dispatch events).
    timers_fired: int = 0
    #: same-instant timer drains executed by the engine main loop.
    timer_drain_batches: int = 0
    #: mean timers fired per same-instant drain.
    timer_mean_batch: float = 0.0
    #: high-water mark of timers pending in the queue at once.
    timer_occupancy_hwm: int = 0
    #: pushes that landed beyond the wheel horizon, into the overflow heap
    #: (always 0 on the heap event core).
    overflow_spills: int = 0

    # -- fault injection + recovery (repro.faults) ------------------------ #
    #: faults applied by the injector, total and per fault kind.
    faults_injected: int = 0
    faults_by_kind: dict[str, int] = field(default_factory=dict)
    #: failed task attempts detected, per detection kind ("transient",
    #: "hang", "failstop", plus "watchdog" for missed-deadline recoveries).
    task_failures: int = 0
    failures_by_kind: dict[str, int] = field(default_factory=dict)
    #: retry re-enqueues issued by the recovery policy.
    retries: int = 0
    #: tasks abandoned after exhausting their retry budget (their
    #: applications are declared failed).
    tasks_lost: int = 0
    #: invalidated dispatches discarded by workers (the watchdog already
    #: re-dispatched the task elsewhere).
    stale_dispatches: int = 0
    pe_quarantines: int = 0
    pe_revivals: int = 0
    #: first-failure -> successful-completion intervals (time-to-recovery).
    recoveries: int = 0
    recovery_time_sum: float = 0.0

    #: optional metric-registry bridge (repro.telemetry); fault/recovery
    #: records are mirrored into it regardless of ``enabled``.
    telemetry: Optional["CedrTelemetry"] = None

    def record_task(self, pe_name: str, api: str, service_time: float) -> None:
        if not self.enabled:
            return
        self.per_pe.setdefault(pe_name, PECounters()).record(api, service_time)
        self.tasks_completed += 1

    def record_round(self, ready_depth: int) -> None:
        if not self.enabled:
            return
        self.sched_rounds += 1
        self.ready_depth_max = max(self.ready_depth_max, ready_depth)
        self.ready_depth_sum += ready_depth

    def record_run(self, wall_seconds: float, engine_events: int) -> None:
        """Account one ``CedrRuntime.run`` call's host wall time + events."""
        if not self.enabled:
            return
        self.wall_seconds += wall_seconds
        self.engine_events = engine_events

    def record_event_core(self, stats: dict) -> None:
        """Absorb :meth:`repro.simcore.Engine.event_core_stats` output."""
        if not self.enabled:
            return
        self.event_core = stats.get("kind", "")
        self.late_timers = stats.get("late_timers", 0)
        self.timers_fired = stats.get("timers_fired", 0)
        self.timer_drain_batches = stats.get("drain_batches", 0)
        self.timer_mean_batch = stats.get("mean_batch", 0.0)
        self.timer_occupancy_hwm = stats.get("occupancy_hwm", 0)
        self.overflow_spills = stats.get("overflow_spills", 0)

    def record_fault(self, kind: str) -> None:
        if self.telemetry is not None:
            self.telemetry.faults_injected.labels(kind).inc()
        if not self.enabled:
            return
        self.faults_injected += 1
        self.faults_by_kind[kind] = self.faults_by_kind.get(kind, 0) + 1

    def record_task_failure(self, kind: str) -> None:
        if self.telemetry is not None:
            self.telemetry.task_failures.labels(kind).inc()
        if not self.enabled:
            return
        self.task_failures += 1
        self.failures_by_kind[kind] = self.failures_by_kind.get(kind, 0) + 1

    def record_retry(self) -> None:
        if self.telemetry is not None:
            self.telemetry.task_retries.inc()
        if self.enabled:
            self.retries += 1

    def record_task_lost(self) -> None:
        if self.telemetry is not None:
            self.telemetry.tasks_lost.inc()
        if self.enabled:
            self.tasks_lost += 1

    def record_stale_dispatch(self) -> None:
        if self.telemetry is not None:
            self.telemetry.stale_dispatches.inc()
        if self.enabled:
            self.stale_dispatches += 1

    def record_quarantine(self) -> None:
        if self.telemetry is not None:
            self.telemetry.pe_quarantines.inc()
        if self.enabled:
            self.pe_quarantines += 1

    def record_revival(self) -> None:
        if self.telemetry is not None:
            self.telemetry.pe_revivals.inc()
        if self.enabled:
            self.pe_revivals += 1

    def record_recovery(self, seconds: float) -> None:
        """One task recovered: first failure to successful completion."""
        if self.telemetry is not None:
            self.telemetry.task_recovery.observe(seconds)
        if not self.enabled:
            return
        self.recoveries += 1
        self.recovery_time_sum += seconds

    @property
    def mean_time_to_recovery(self) -> float:
        """Average first-failure -> completion interval of recovered tasks."""
        return self.recovery_time_sum / self.recoveries if self.recoveries else 0.0

    @property
    def ready_depth_mean(self) -> float:
        """Average ready-queue depth seen at scheduling rounds."""
        return self.ready_depth_sum / self.sched_rounds if self.sched_rounds else 0.0

    @property
    def events_per_wall_sec(self) -> float:
        """Engine dispatch events per host wall-clock second (throughput)."""
        return self.engine_events / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def snapshot(self) -> dict:
        """JSON-compatible dump for the shutdown log."""
        return {
            "per_pe": {
                name: {"tasks": c.tasks, "busy_seconds": c.busy_seconds, "by_api": dict(c.by_api)}
                for name, c in self.per_pe.items()
            },
            "ready_depth_max": self.ready_depth_max,
            "ready_depth_mean": self.ready_depth_mean,
            "sched_rounds": self.sched_rounds,
            "tasks_completed": self.tasks_completed,
            "apps_completed": self.apps_completed,
            "engine_events": self.engine_events,
            "wall_seconds": self.wall_seconds,
            "events_per_wall_sec": self.events_per_wall_sec,
            "event_core": {
                "kind": self.event_core,
                "late_timers": self.late_timers,
                "timers_fired": self.timers_fired,
                "drain_batches": self.timer_drain_batches,
                "mean_batch": self.timer_mean_batch,
                "occupancy_hwm": self.timer_occupancy_hwm,
                "overflow_spills": self.overflow_spills,
            },
            "faults": {
                "injected": self.faults_injected,
                "by_kind": dict(self.faults_by_kind),
                "task_failures": self.task_failures,
                "failures_by_kind": dict(self.failures_by_kind),
                "retries": self.retries,
                "tasks_lost": self.tasks_lost,
                "stale_dispatches": self.stale_dispatches,
                "pe_quarantines": self.pe_quarantines,
                "pe_revivals": self.pe_revivals,
                "recoveries": self.recoveries,
                "mean_time_to_recovery": self.mean_time_to_recovery,
            },
        }
