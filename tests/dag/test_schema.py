"""DAG schema validation tests."""

import pytest

from repro.dag import DagValidationError, KNOWN_APIS, validate_spec


def minimal_spec(**node_overrides):
    node = {"api": "fft", "params": {"n": 64}, "inputs": ["x"], "output": "y"}
    node.update(node_overrides)
    return {"name": "t", "nodes": {"n0": node}}


def test_known_apis_cover_kernels_and_cpu_op():
    assert {"fft", "ifft", "zip", "gemm", "cpu_op"} <= set(KNOWN_APIS)


def test_minimal_valid_spec_passes():
    validate_spec(minimal_spec())


def test_spec_must_be_mapping():
    with pytest.raises(DagValidationError, match="mapping"):
        validate_spec([1, 2, 3])


def test_spec_needs_name():
    with pytest.raises(DagValidationError, match="name"):
        validate_spec({"nodes": {"a": {}}})


def test_spec_needs_nodes():
    with pytest.raises(DagValidationError, match="nodes"):
        validate_spec({"name": "x", "nodes": {}})


def test_unknown_api_rejected():
    with pytest.raises(DagValidationError, match="unknown api"):
        validate_spec(minimal_spec(api="quantum_fft"))


def test_kernel_node_needs_inputs():
    spec = minimal_spec()
    del spec["nodes"]["n0"]["inputs"]
    with pytest.raises(DagValidationError, match="inputs"):
        validate_spec(spec)


def test_kernel_node_needs_output():
    spec = minimal_spec()
    del spec["nodes"]["n0"]["output"]
    with pytest.raises(DagValidationError, match="output"):
        validate_spec(spec)


def test_dangling_edge_rejected():
    spec = minimal_spec(after=["ghost"])
    with pytest.raises(DagValidationError, match="unknown node"):
        validate_spec(spec)


def test_self_dependency_rejected():
    spec = minimal_spec(after=["n0"])
    with pytest.raises(DagValidationError, match="itself"):
        validate_spec(spec)


def test_cpu_op_requires_work_param():
    spec = {
        "name": "t",
        "nodes": {"c": {"api": "cpu_op", "params": {}}},
    }
    with pytest.raises(DagValidationError, match="work_1ghz"):
        validate_spec(spec)


def test_cpu_op_requires_binding_when_bindings_given():
    spec = {
        "name": "t",
        "nodes": {"c": {"api": "cpu_op", "params": {"work_1ghz": 1e-6}}},
    }
    validate_spec(spec)  # bindings omitted: allowed (timing-only specs)
    with pytest.raises(DagValidationError, match="binding"):
        validate_spec(spec, bindings={})


def test_output_key_race_rejected():
    spec = {
        "name": "t",
        "nodes": {
            "a": {"api": "fft", "params": {"n": 8}, "inputs": ["x"], "output": "y"},
            "b": {"api": "ifft", "params": {"n": 8}, "inputs": ["x"], "output": "y"},
        },
    }
    with pytest.raises(DagValidationError, match="both write"):
        validate_spec(spec)


def test_cycle_rejected():
    spec = {
        "name": "t",
        "nodes": {
            "a": {"api": "fft", "params": {"n": 8}, "inputs": ["x"], "output": "y",
                  "after": ["b"]},
            "b": {"api": "ifft", "params": {"n": 8}, "inputs": ["y"], "output": "z",
                  "after": ["a"]},
        },
    }
    with pytest.raises(DagValidationError, match="cycle"):
        validate_spec(spec)


def test_diamond_is_fine():
    spec = {
        "name": "diamond",
        "nodes": {
            "src": {"api": "fft", "params": {"n": 8}, "inputs": ["x"], "output": "a"},
            "l": {"api": "fft", "params": {"n": 8}, "inputs": ["a"], "output": "b",
                  "after": ["src"]},
            "r": {"api": "ifft", "params": {"n": 8}, "inputs": ["a"], "output": "c",
                  "after": ["src"]},
            "sink": {"api": "zip", "params": {"n": 8}, "inputs": ["b", "c"],
                     "output": "d", "after": ["l", "r"]},
        },
    }
    validate_spec(spec)
