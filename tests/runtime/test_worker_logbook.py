"""Worker behaviour, logbook, and perf-counter tests."""

import numpy as np
import pytest

from repro.platforms import PEKind, zcu102
from repro.runtime import API_MODE, AppInstance, CedrRuntime, RuntimeConfig
from repro.runtime.logbook import AppRecord
from repro.runtime.perf_counters import PerfCounters


def fft_burst_factory(data, count):
    """Main that issues `count` non-blocking FFTs at once."""
    def main(lib):
        from repro.core.handles import wait_all
        reqs = []
        for _ in range(count):
            reqs.append((yield from lib.fft_nb(data)))
        outs = yield from wait_all(reqs)
        return outs
    return main


def run_burst(count=12, n_fft=1, scheduler="rr", seed=4):
    platform = zcu102(n_cpu=3, n_fft=n_fft).build(seed=seed)
    runtime = CedrRuntime(platform, RuntimeConfig(scheduler=scheduler))
    runtime.start()
    rng = np.random.default_rng(seed)
    data = rng.normal(size=256) + 1j * rng.normal(size=256)
    app = AppInstance(name="burst", mode=API_MODE, frame_mb=0.1,
                      main_factory=fft_burst_factory(data, count))
    runtime.submit(app, at=0.0)
    runtime.seal()
    runtime.run()
    return runtime, app, platform


def test_rr_spreads_burst_across_pes():
    runtime, app, platform = run_burst(count=12, scheduler="rr")
    hist = runtime.logbook.tasks_by_pe()
    assert hist.get("fft0", 0) > 0, "accelerator never used"
    assert sum(hist.values()) == 12


def test_accelerator_device_occupied_while_polled():
    runtime, app, platform = run_burst(count=8, scheduler="rr")
    dev = platform.engine.devices[0]
    assert dev.served == runtime.logbook.tasks_by_pe().get("fft0", 0)
    assert dev.busy_time > 0


def test_worker_backlog_feedback_drains_and_learns():
    runtime, _, platform = run_burst(count=12, scheduler="rr")
    used = [pe for pe in platform.pes if pe.tasks_executed > 0]
    assert used
    for pe in used:
        # the backlog estimate must fully drain by shutdown
        assert pe.outstanding_est == pytest.approx(0.0, abs=1e-12)
        assert pe.slowdown > 0
    # the FFT accelerator's polling dispatch contends with CPU work, so its
    # observed slowdown moves above the profile's dedicated-core assumption
    fft_pe = next(pe for pe in platform.pes if pe.kind is PEKind.FFT)
    if fft_pe.tasks_executed:
        assert fft_pe.slowdown > 1.0


def test_results_returned_in_request_order():
    runtime, app, _ = run_burst(count=5)
    assert len(app.result) == 5
    for out in app.result:
        assert out.shape == (256,)


def test_logbook_records_match_counters():
    runtime, _, _ = run_burst(count=10)
    assert len(runtime.logbook.tasks) == runtime.counters.tasks_completed == 10
    for rec in runtime.logbook.tasks:
        assert rec.t_release <= rec.t_scheduled <= rec.t_start <= rec.t_finish
        assert rec.queue_wait >= 0
        assert rec.service_time > 0


def test_logbook_serialization_roundtrip():
    runtime, _, _ = run_burst(count=4)
    dump = runtime.logbook.serialize()
    assert len(dump["tasks"]) == 4
    assert len(dump["apps"]) == 1
    assert dump["apps"][0]["name"] == "burst"
    assert dump["apps"][0]["t_finish"] is not None


def test_logbook_disabled_keeps_no_tasks():
    platform = zcu102(n_cpu=3, n_fft=0).build(seed=1)
    runtime = CedrRuntime(platform, RuntimeConfig(scheduler="rr", log_tasks=False))
    runtime.start()
    rng = np.random.default_rng(0)
    data = rng.normal(size=64) + 0j
    app = AppInstance(name="t", mode=API_MODE, frame_mb=0.1,
                      main_factory=fft_burst_factory(data, 3))
    runtime.submit(app, at=0.0)
    runtime.seal()
    runtime.run()
    assert runtime.logbook.tasks == []
    assert runtime.counters.tasks_completed == 3  # counters stay on


def test_app_record_execution_time_guard():
    rec = AppRecord(app_id=0, name="x", mode="api", t_arrival=0.0)
    with pytest.raises(ValueError, match="never finished"):
        rec.execution_time


def test_perf_counters_aggregation():
    c = PerfCounters()
    c.record_task("cpu0", "fft", 0.01)
    c.record_task("cpu0", "zip", 0.02)
    c.record_task("fft0", "fft", 0.005)
    c.record_round(3)
    c.record_round(5)
    snap = c.snapshot()
    assert snap["per_pe"]["cpu0"]["tasks"] == 2
    assert snap["per_pe"]["cpu0"]["by_api"] == {"fft": 1, "zip": 1}
    assert snap["ready_depth_max"] == 5
    assert c.ready_depth_mean == pytest.approx(4.0)


def test_perf_counters_disabled_noop():
    c = PerfCounters(enabled=False)
    c.record_task("cpu0", "fft", 0.01)
    c.record_round(3)
    assert c.tasks_completed == 0
    assert c.sched_rounds == 0


def test_logbook_save_roundtrip(tmp_path):
    import json

    runtime, _, _ = run_burst(count=3)
    path = runtime.logbook.save(tmp_path / "shutdown.json")
    loaded = json.loads(open(path).read())
    assert len(loaded["tasks"]) == 3
    assert loaded["apps"][0]["mode"] == "api"
