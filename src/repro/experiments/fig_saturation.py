"""Saturation sweep - service throughput and p99 latency vs offered load.

This figure has no counterpart in the paper: it exercises the
``repro.serve`` service tier (open arrival streams, admission control, SLO
accounting - see docs/INTERNALS.md, "Service mode & admission control").

Setup: one tenant mixing the paper's radar/comms applications (Pulse
Doppler + WiFi TX, round-robin) on the ZCU102 with 3 ARM cores and 1 FFT
accelerator, Poisson arrivals, a fixed service window, and the configured
admission policy.  The x-axis sweeps the offered load (arrivals/s):

* ``saturation_throughput`` - completed applications per simulated second;
* ``saturation_p99`` - exact p99 response time over completed arrivals.

Expected shape: throughput tracks the offered load while the platform
keeps up, then flattens at capacity as admission sheds the excess; p99
climbs as queues fill and then plateaus at whatever response time the
in-system cap bounds.  :func:`detect_knee` marks the saturation knee -
the offered load of maximum curvature on the throughput curve - reported
as its own one-point ``saturation_knee`` panel.

Every (offered load, trial) cell is an independent serve run sharded
across the PR-1 process pool and memoized by the content-addressed sweep
cache under the serve codec; re-plotting with extra load points costs only
the new cells.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.apps import PulseDoppler, WifiTx
from repro.metrics import FigureSeries
from repro.platforms import zcu102
from repro.serve import AdmissionConfig, ArrivalSpec, ServeConfig, TenantSpec
from repro.serve.driver import _serve_cells

from .common import resolve_cache, resolve_jobs, trial_seeds

__all__ = [
    "run_fig_saturation",
    "detect_knee",
    "OFFERED_LOADS",
    "SATURATION_DURATION",
]

#: offered loads (arrivals/s) swept on the x-axis; spans well below to
#: well past the ZCU102 3C+1FFT capacity for this mix so the knee is
#: inside the sweep
OFFERED_LOADS = (25.0, 50.0, 100.0, 150.0, 200.0, 300.0, 450.0)

#: service window per cell (simulated seconds)
SATURATION_DURATION = 0.4


def detect_knee(xs: Sequence[float], ys: Sequence[float]) -> Optional[int]:
    """Index of the knee of a saturating curve (kneedle-style), or None.

    The knee is the point of maximum perpendicular distance from the chord
    joining the curve's endpoints - robust for monotone curves that bend
    once, which is exactly the throughput-vs-offered-load shape.  Both
    axes are normalized to [0, 1] first so the answer does not depend on
    units.  Returns ``None`` for degenerate inputs (fewer than three
    points, or a flat/linear curve with no interior point off the chord).
    """
    n = len(xs)
    if n != len(ys):
        raise ValueError(f"length mismatch: {n} xs vs {len(ys)} ys")
    if n < 3:
        return None
    x_span = xs[-1] - xs[0]
    y_span = max(ys) - min(ys)
    if x_span <= 0 or y_span <= 0:
        return None
    xn = [(x - xs[0]) / x_span for x in xs]
    yn = [(y - min(ys)) / y_span for y in ys]
    # distance from (x, y) to the chord through (xn[0], yn[0])-(xn[-1], yn[-1]),
    # up to a constant factor common to every point
    dx, dy = xn[-1] - xn[0], yn[-1] - yn[0]
    best_i, best_d = None, 0.0
    for i in range(1, n - 1):
        d = abs(dy * (xn[i] - xn[0]) - dx * (yn[i] - yn[0]))
        if d > best_d:
            best_i, best_d = i, d
    return best_i


def _serve_config(load: float, duration: float, policy: str, slo_s: float) -> ServeConfig:
    return ServeConfig(
        tenants=(
            TenantSpec(
                "clients",
                ArrivalSpec.make("poisson", rate=load),
                apps=(PulseDoppler(batch=16), WifiTx(n_packets=20, batch=4)),
                slo_s=slo_s,
            ),
        ),
        duration=duration,
        admission=AdmissionConfig(policy=policy),
    )


def run_fig_saturation(
    loads: Optional[Sequence[float]] = None,
    duration: float = SATURATION_DURATION,
    trials: int = 2,
    seed: int = 0,
    policy: str = "shed",
    slo_s: float = 0.05,
    n_jobs: Optional[int] = None,
) -> dict[str, FigureSeries]:
    """Sweep offered load; returns {panel id: FigureSeries}.

    Besides the two swept panels, a one-point ``saturation_knee`` panel
    marks the detected saturation knee (omitted when no knee exists, e.g.
    a sweep entirely below capacity).
    """
    loads = tuple(float(r) for r in (loads if loads is not None else OFFERED_LOADS))
    platform = zcu102(n_cpu=3, n_fft=1)
    setup = (
        f"ZCU102 3C+1FFT, PD+TX mix, Poisson arrivals, "
        f"{duration:g}s window, {policy} admission"
    )
    panels = {
        "saturation_throughput": FigureSeries(
            "saturation_throughput", f"Service throughput vs offered load ({setup})",
            "offered load (apps/s)", "throughput (completed apps/s)",
        ),
        "saturation_p99": FigureSeries(
            "saturation_p99", f"p99 response time vs offered load ({setup})",
            "offered load (apps/s)", "p99 response time (s)",
        ),
    }
    cells = [
        (platform, _serve_config(load, duration, policy, slo_s), s, None)
        for load in loads
        for s in trial_seeds(trials, seed)
    ]
    results = _serve_cells(cells, resolve_jobs(n_jobs), resolve_cache(None))
    throughput_ys, p99_ys = [], []
    for i in range(len(loads)):
        chunk = results[i * trials:(i + 1) * trials]
        throughput_ys.append(sum(r.throughput for r in chunk) / trials)
        p99_ys.append(sum(r.p99_response_s for r in chunk) / trials)
    label = policy.upper()
    panels["saturation_throughput"].add(label, loads, throughput_ys)
    panels["saturation_p99"].add(label, loads, p99_ys)
    knee = detect_knee(loads, throughput_ys)
    if knee is not None:
        knee_panel = FigureSeries(
            "saturation_knee",
            f"Detected saturation knee ({setup})",
            "offered load (apps/s)", "value at the knee",
        )
        knee_panel.add("THROUGHPUT", (loads[knee],), (throughput_ys[knee],))
        knee_panel.add("P99", (loads[knee],), (p99_ys[knee],))
        panels["saturation_knee"] = knee_panel
    return panels
