"""Injection-rate machinery: frames, Mbps, arrival schedules.

Paper Section III: "The amount of data processed by an application is
considered a frame, measured in Megabits (Mb).  Injection rate is defined
as the rate at which frame instances are generated per second and measured
in Mbps.  We use 29 injection rates between 10 and 2000 Mbps, where each
injection rate defines a periodic rate of job along with its associated
input data arrival for the given workload."

So each application stream is periodic with period ``frame_mb / rate``;
instance ``j`` of an application arrives at ``j * period``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "paper_injection_rates",
    "reduced_injection_rates",
    "periodic_arrivals",
    "poisson_arrivals",
]


def paper_injection_rates(
    n: int = 29, lo: float = 10.0, hi: float = 2000.0
) -> np.ndarray:
    """The paper's 29-point sweep from 10 to 2000 Mbps.

    Geometric spacing: the paper's figures use a log-like x axis where the
    interesting transition (saturation near 100-500 Mbps) sits mid-sweep.
    """
    if n < 2:
        raise ValueError("need at least two rates")
    if not 0 < lo < hi:
        raise ValueError(f"bad rate range [{lo}, {hi}]")
    return np.round(np.geomspace(lo, hi, n), 1)


def reduced_injection_rates(n: int = 8) -> np.ndarray:
    """Bench-default reduced grid over the same 10-2000 Mbps span."""
    return paper_injection_rates(n=n)


def periodic_arrivals(frame_mb: float, rate_mbps: float, count: int) -> np.ndarray:
    """Arrival times of ``count`` periodic instances of one application.

    The first instance arrives at t=0; subsequent ones every
    ``frame_mb / rate_mbps`` seconds.
    """
    if frame_mb <= 0:
        raise ValueError(f"frame size must be positive, got {frame_mb}")
    if rate_mbps <= 0:
        raise ValueError(f"injection rate must be positive, got {rate_mbps}")
    if count < 0:
        raise ValueError(f"negative instance count: {count}")
    period = frame_mb / rate_mbps
    return np.arange(count) * period


def poisson_arrivals(
    frame_mb: float,
    rate_mbps: float,
    count: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Arrival times of ``count`` Poisson-process instances at the same
    *mean* rate as :func:`periodic_arrivals`.

    CEDR supports arbitrary workload-injection traces beyond the paper's
    periodic streams; Poisson arrivals are the standard bursty alternative
    and feed the arrival-process ablations.  The first instance arrives
    after an exponential gap (not pinned to t=0), so the mean inter-arrival
    matches the periodic stream's ``frame_mb / rate_mbps``.
    """
    if frame_mb <= 0:
        raise ValueError(f"frame size must be positive, got {frame_mb}")
    if rate_mbps <= 0:
        raise ValueError(f"injection rate must be positive, got {rate_mbps}")
    if count < 0:
        raise ValueError(f"negative instance count: {count}")
    mean_gap = frame_mb / rate_mbps
    gaps = rng.exponential(mean_gap, size=count)
    return np.cumsum(gaps)
