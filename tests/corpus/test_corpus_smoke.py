"""The `corpus` tier: full parity sweep over the in-tree smoke corpus.

Deselected from tier-1 by the default ``-m 'not corpus'`` filter; run it
with ``pytest -m corpus``.  The corpus size scales through
``REPRO_CORPUS_N`` (the nightly job raises it to hundreds of specs); at
the default 8 the whole module finishes in about a minute.
"""

import os
from pathlib import Path

import pytest

from repro.corpus import CorpusConfig, generate_corpus, run_corpus
from repro.scenario import load_scenario

pytestmark = pytest.mark.corpus

SMOKE_DIR = Path(__file__).resolve().parents[2] / "examples" / "corpus"
SMOKE_CONFIG = CorpusConfig(n=8, platforms=("zcu102",))


def _corpus_n() -> int:
    raw = os.environ.get("REPRO_CORPUS_N", "").strip()
    return int(raw) if raw else 8


def test_smoke_corpus_matches_generator():
    """The checked-in documents ARE generate(seed=0) - no drift allowed."""
    specs = generate_corpus(SMOKE_CONFIG, seed=0)
    on_disk = [load_scenario(p) for p in sorted(SMOKE_DIR.glob("*.json"))]
    assert [s.digest() for s in on_disk] == [s.digest() for s in specs]


def test_full_parity_over_scaled_corpus():
    n = _corpus_n()
    cfg = CorpusConfig(n=n, platforms=SMOKE_CONFIG.platforms)
    specs = generate_corpus(cfg, seed=0)
    report = run_corpus(specs, n_jobs=None, seed=0)  # $REPRO_JOBS scales
    assert len(report.cells) == n * len(report.schedulers)
    violations = [c for c in report.cells if c.status == "violation"]
    errors = [c for c in report.cells if c.status == "error"]
    assert not violations, [(c.name, c.scheduler, c.code) for c in violations]
    assert not errors, [(c.name, c.scheduler, c.message) for c in errors]
    doc = report.to_json_dict()
    assert doc["schema"] == "repro.corpus/1"
    assert all(
        not any(counts.values()) for counts in doc["violations"].values()
    )
