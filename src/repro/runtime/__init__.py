"""The CEDR runtime: daemon, workers, tasks, configuration, logging."""

from .app import API_MODE, DAG_MODE, AppInstance
from .config import RuntimeConfig, RuntimeCosts
from .daemon import CedrRuntime, EventQueue, RunMetrics
from .logbook import AppRecord, Logbook, TaskRecord
from .perf_counters import PECounters, PerfCounters
from .task import CompletionHandle, Task, TaskState
from .trace import to_chrome_trace, write_chrome_trace
from .worker import SHUTDOWN, worker_body

__all__ = [
    "AppInstance",
    "DAG_MODE",
    "API_MODE",
    "RuntimeConfig",
    "RuntimeCosts",
    "CedrRuntime",
    "RunMetrics",
    "EventQueue",
    "Task",
    "TaskState",
    "CompletionHandle",
    "Logbook",
    "TaskRecord",
    "AppRecord",
    "PerfCounters",
    "PECounters",
    "SHUTDOWN",
    "worker_body",
    "to_chrome_trace",
    "write_chrome_trace",
]
