"""The libCEDR API surface: blocking and non-blocking heterogeneous calls.

This module is the reproduction's ``cedr.h`` + runtime-linked ``libcedr-rt``
combined.  An application's ``main`` receives a :class:`CedrClient` and
invokes hardware-agnostic kernel APIs on it::

    spec = yield from lib.fft(pulse)            # blocking (Fig. 4 protocol)
    reqs = [(yield from lib.fft_nb(p)) for p in pulses]   # non-blocking
    specs = yield from wait_all(reqs)

Each call builds a :class:`~repro.runtime.task.Task`, initializes the
mutex/condvar completion pair, pushes the task into the CEDR ready queue
*from the application thread* (the overhead transfer the paper credits for
the Fig. 5 reduction), and rings the daemon's doorbell.  The blocking form
then sleeps on the condition variable until the executing worker signals
completion; the non-blocking form returns a :class:`CedrRequest`.

The same application source also runs against
:class:`~repro.core.standalone.StandaloneCedr` ("treating libCEDR like any
other CPU-based library"), which is how users validate functional
correctness before ever involving the runtime.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

import numpy as np

from repro.runtime.task import CompletionHandle, Task
from repro.simcore import Compute, Request

from .handles import CedrRequest

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.app import AppInstance
    from repro.runtime.daemon import CedrRuntime

__all__ = ["CedrClient"]


class CedrClient:
    """Per-application libCEDR handle bound to a running CEDR runtime.

    One instance exists per application thread; it is not shared across
    applications (each keeps its own call counter and bookkeeping), exactly
    like the per-process linkage of the real library.
    """

    #: True when kernels actually execute; timing-only sweeps set the
    #: runtime's ``execute_kernels=False`` and applications may skip local
    #: numpy post-processing when this is False.
    executes: bool

    def __init__(self, runtime: "CedrRuntime", app: "AppInstance") -> None:
        self._runtime = runtime
        self._app = app
        self._calls = 0
        self.executes = runtime.config.execute_kernels

    @property
    def engine(self):
        return self._runtime.engine

    # ------------------------------------------------------------------ #
    # dispatch plumbing
    # ------------------------------------------------------------------ #

    def _submit(
        self, api: str, params: dict, payload: Any
    ) -> Generator[Request, Any, Task]:
        """enqueue_kernel: build the task and hand it to the runtime.

        All three cost constants are charged to the *application thread*
        (processor-shared on the worker-core pool), not the daemon.
        """
        runtime = self._runtime
        costs = runtime.config.costs
        scale = runtime.cost_scale
        self._calls += 1
        name = f"{api}#{self._calls}"
        yield Compute(costs.api_call_us * 1e-6 * scale)  # alloc + cond/mutex init
        copy_cost = self._payload_bytes(api, params) * costs.api_copy_ns_per_byte * 1e-9
        if copy_cost > 0.0:
            yield Compute(copy_cost * scale)  # stage operand buffers
        handle = CompletionHandle(runtime.engine, label=f"app{self._app.app_id}.{name}")
        handle.cond.signal_latency = runtime.config.signal_latency_s
        task = Task(
            api=api,
            params=params,
            app_id=self._app.app_id,
            name=name,
            payload=payload,
            completion=handle,
            rank=runtime.mean_estimate(api, params),
        )
        self._app.tasks_total += 1
        yield Compute(costs.api_push_us * 1e-6 * scale)
        runtime.push_ready_from_app(task)
        yield Compute(costs.api_kick_us * 1e-6 * scale)
        runtime.post(("kick", None))
        return task

    def _call_blocking(self, api: str, params: dict, payload: Any):
        task = yield from self._submit(api, params, payload)
        return (yield from task.completion.wait())

    def _call_nb(self, api: str, params: dict, payload: Any):
        task = yield from self._submit(api, params, payload)
        return CedrRequest(task)

    @staticmethod
    def _fft_params(x: Any) -> dict:
        x = np.asarray(x)
        n = x.shape[-1]
        batch = int(np.prod(x.shape[:-1])) if x.ndim > 1 else 1
        return {"n": int(n), "batch": batch}

    @staticmethod
    def _payload_bytes(api: str, params: dict) -> float:
        """Operand bytes a call marshals (complex128 elements)."""
        if api in ("fft", "ifft"):
            return 16.0 * params["n"] * params.get("batch", 1)
        if api == "zip":
            return 2 * 16.0 * params["n"]
        if api == "gemm":
            return 16.0 * (
                params["m"] * params["k"] + params["k"] * params["n"]
            )
        return 0.0

    # ------------------------------------------------------------------ #
    # blocking APIs (cedr.h declarations, Listing 1)
    # ------------------------------------------------------------------ #

    def fft(self, x):
        """Forward FFT along the last axis; blocks until complete."""
        return self._call_blocking("fft", self._fft_params(x), x)

    def ifft(self, x):
        """Inverse FFT along the last axis; blocks until complete."""
        return self._call_blocking("ifft", self._fft_params(x), x)

    def zip(self, a, b):
        """Element-wise product; blocks until complete."""
        a = np.asarray(a)
        return self._call_blocking("zip", {"n": int(a.size)}, (a, b))

    def gemm(self, a, b):
        """Matrix multiply; blocks until complete."""
        a = np.asarray(a)
        b = np.asarray(b)
        params = {"m": a.shape[0], "k": a.shape[1], "n": b.shape[1]}
        return self._call_blocking("gemm", params, (a, b))

    # ------------------------------------------------------------------ #
    # non-blocking APIs
    # ------------------------------------------------------------------ #

    def fft_nb(self, x):
        """Non-blocking forward FFT; returns a :class:`CedrRequest`."""
        return self._call_nb("fft", self._fft_params(x), x)

    def ifft_nb(self, x):
        """Non-blocking inverse FFT; returns a :class:`CedrRequest`."""
        return self._call_nb("ifft", self._fft_params(x), x)

    def zip_nb(self, a, b):
        """Non-blocking element-wise product."""
        a = np.asarray(a)
        return self._call_nb("zip", {"n": int(a.size)}, (a, b))

    def gemm_nb(self, a, b):
        """Non-blocking matrix multiply."""
        a = np.asarray(a)
        b = np.asarray(b)
        params = {"m": a.shape[0], "k": a.shape[1], "n": b.shape[1]}
        return self._call_nb("gemm", params, (a, b))

    # ------------------------------------------------------------------ #
    # application-local (non-kernel) work
    # ------------------------------------------------------------------ #

    def local_work(self, seconds_at_1ghz: float) -> Generator[Request, Any, None]:
        """Charge non-kernel application code to the application thread.

        This is the code CEDR-API leaves *inside* ``main`` instead of
        carving into DAG nodes; it runs processor-shared on the worker-core
        pool and is the source of the thread-contention effects in the
        paper's Figs 6, 8, and 10.
        """
        if seconds_at_1ghz < 0:
            raise ValueError(f"negative local work: {seconds_at_1ghz}")
        yield Compute(seconds_at_1ghz / self._runtime.platform.timing.cpu_clock_ghz)
