#!/usr/bin/env python
"""The paper's Fig. 2: control flow breaks the DAG format, not the API.

A loop that alternates kernels (``for i: y = ifft(zip(fft(y), h))``) cannot
be expressed as a DAG with per-iteration nodes when the trip count is
data-dependent, so baseline CEDR must collapse the whole loop into ONE
CPU-only node - "benefits of acceleration in this application are reduced".
The API-based model just calls the kernels inside a normal Python/C loop
and every iteration's kernels remain individually schedulable.

This example builds both forms of the same iterated filter, runs them on a
ZCU102 with an FFT accelerator, and prints where the kernels executed:
the collapsed DAG leaves the accelerator idle, the API form uses it.

Run:  python examples/control_flow.py
"""

import numpy as np

from repro.dag import DagBuilder, collapse_subgraph, parse_dag
from repro.platforms import zcu102
from repro.runtime import AppInstance, CedrRuntime, RuntimeConfig

N = 1024
ITERATIONS = 6
SEED = 5


def make_filter(rng) -> np.ndarray:
    return np.exp(-np.linspace(0, 4, N)) * np.exp(1j * rng.normal(0, 0.1, N))


def reference(signal, spectrum_filter):
    y = signal
    for _ in range(ITERATIONS):
        y = np.fft.ifft(np.fft.fft(y) * spectrum_filter)
    return y


def build_collapsed_dag(signal, spectrum_filter):
    """The loop body as per-iteration nodes... then collapsed (Fig. 2)."""
    b = DagBuilder("iterated-filter")
    b.cpu("init", lambda s: None, 1e-6)
    prev = "init"
    loop_members = []
    for i in range(ITERATIONS):
        src = "y" if i == 0 else f"y_{i - 1}"
        f = b.kernel(f"fft_{i}", "fft", {"n": N}, [src], f"F_{i}", after=[prev])
        z = b.kernel(f"zip_{i}", "zip", {"n": N}, [f"F_{i}", "h"], f"P_{i}", after=[f])
        iv = b.kernel(f"ifft_{i}", "ifft", {"n": N}, [f"P_{i}"], f"y_{i}", after=[z])
        loop_members += [f, z, iv]
        prev = iv
    spec, bindings = b.build_raw()
    # The DAG format cannot carry the loop's control flow, so CEDR's
    # frontend must fuse the whole structure into a single CPU-only node:
    platform_timing = zcu102().timing
    spec, bindings = collapse_subgraph(spec, bindings, loop_members, "fused_loop", platform_timing)
    program = parse_dag(spec, bindings)
    state = {"y": signal, "h": spectrum_filter}
    return AppInstance(name="loop-dag", mode="dag", frame_mb=0.1,
                       dag=program, initial_state=state)


def api_main_factory(signal, spectrum_filter):
    def main(lib):
        y = signal
        for _ in range(ITERATIONS):  # ordinary control flow, per-kernel tasks
            spec = yield from lib.fft(y)
            prod = yield from lib.zip(spec, spectrum_filter)
            y = yield from lib.ifft(prod)
        return y
    return main


def run(instance):
    platform = zcu102(n_cpu=3, n_fft=1).build(seed=SEED)
    runtime = CedrRuntime(platform, RuntimeConfig(scheduler="rr"))
    runtime.start()
    runtime.submit(instance, at=0.0)
    runtime.seal()
    runtime.run()
    return runtime


def main() -> None:
    rng = np.random.default_rng(SEED)
    signal = rng.normal(size=N) + 1j * rng.normal(size=N)
    h = make_filter(rng)
    golden = reference(signal, h)

    dag_app = build_collapsed_dag(signal.copy(), h)
    rt_dag = run(dag_app)
    y_dag = dag_app.state[f"y_{ITERATIONS - 1}"]

    api_app = AppInstance(name="loop-api", mode="api", frame_mb=0.1,
                          main_factory=api_main_factory(signal.copy(), h))
    rt_api = run(api_app)

    assert np.allclose(y_dag, golden, atol=1e-8)
    assert np.allclose(api_app.result, golden, atol=1e-8)
    print("both forms compute the identical filtered signal\n")
    print(f"{'form':>22} | {'schedulable tasks':>17} | per-PE placement")
    print("-" * 70)
    print(f"{'DAG (loop collapsed)':>22} | {rt_dag.counters.tasks_completed:17d} | "
          f"{rt_dag.logbook.tasks_by_pe()}")
    print(f"{'API (loop intact)':>22} | {rt_api.counters.tasks_completed:17d} | "
          f"{rt_api.logbook.tasks_by_pe()}")
    print("\nThe collapsed DAG presents one fused CPU-only task, so the FFT "
          "accelerator never sees the loop; the API form keeps all "
          f"{3 * ITERATIONS} kernels independently schedulable.")


if __name__ == "__main__":
    main()
