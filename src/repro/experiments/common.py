"""Shared experiment machinery: single runs, trials, and rate sweeps.

Every figure driver funnels through :func:`run_once`: build the platform,
start a CEDR runtime with the requested scheduler/mode, submit the workload
at the requested injection rate, run the simulation to completion, and
extract a :class:`~repro.metrics.RunResult`.  Sweeps layer trials and rate
grids on top.

Figure benchmarks run timing-only (``execute=False``): kernels are not
numerically evaluated, which changes nothing about queueing or contention
(all costs come from the timing model) but keeps full sweeps fast.
Integration tests run the same paths with ``execute=True`` to pin the
functional behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.metrics import RunResult, TrialStats, aggregate_trials
from repro.platforms import PlatformConfig
from repro.runtime import CedrRuntime, RuntimeConfig
from repro.workload import WorkloadSpec

__all__ = ["run_once", "run_trials", "RateSweep", "sweep_rates"]


def run_once(
    platform: PlatformConfig,
    workload: WorkloadSpec,
    mode: str,
    rate_mbps: float,
    scheduler: str,
    seed: int = 0,
    execute: bool = False,
    config: Optional[RuntimeConfig] = None,
) -> RunResult:
    """One complete simulated run; returns its measurements."""
    if config is None:
        config = RuntimeConfig(scheduler=scheduler, execute_kernels=execute)
    else:
        config = config.with_scheduler(scheduler)
    instance = platform.build(seed=seed)
    runtime = CedrRuntime(instance, config)
    runtime.start()
    for app, arrival in workload.instantiate(mode, rate_mbps, seed):
        runtime.submit(app, at=arrival)
    runtime.seal()
    runtime.run()
    return RunResult.from_runtime(runtime)


def run_trials(
    platform: PlatformConfig,
    workload: WorkloadSpec,
    mode: str,
    rate_mbps: float,
    scheduler: str,
    trials: int = 3,
    base_seed: int = 0,
    execute: bool = False,
    config: Optional[RuntimeConfig] = None,
) -> list[RunResult]:
    """Repeat :func:`run_once` over ``trials`` seeds (paper: 25 trials)."""
    if trials < 1:
        raise ValueError(f"need at least one trial, got {trials}")
    return [
        run_once(
            platform, workload, mode, rate_mbps, scheduler,
            seed=base_seed + 1000 * t, execute=execute, config=config,
        )
        for t in range(trials)
    ]


@dataclass(frozen=True)
class RateSweep:
    """Aggregated metric statistics across an injection-rate grid."""

    rates: tuple[float, ...]
    #: metric name -> per-rate TrialStats, aligned with ``rates``
    stats: dict[str, tuple[TrialStats, ...]]

    def series(self, metric: str) -> tuple[tuple[float, ...], tuple[float, ...]]:
        """(xs, mean ys) for one metric - plot-ready."""
        per_rate = self.stats[metric]
        return self.rates, tuple(s.mean for s in per_rate)


def sweep_rates(
    platform: PlatformConfig,
    workload: WorkloadSpec,
    mode: str,
    rates: Sequence[float],
    scheduler: str,
    trials: int = 3,
    base_seed: int = 0,
    execute: bool = False,
    config: Optional[RuntimeConfig] = None,
) -> RateSweep:
    """Run the workload across an injection-rate grid with trials."""
    rates = tuple(float(r) for r in rates)
    per_metric: dict[str, list[TrialStats]] = {}
    for rate in rates:
        results = run_trials(
            platform, workload, mode, rate, scheduler,
            trials=trials, base_seed=base_seed, execute=execute, config=config,
        )
        for name, stat in aggregate_trials(results).items():
            per_metric.setdefault(name, []).append(stat)
    return RateSweep(
        rates=rates,
        stats={name: tuple(stats) for name, stats in per_metric.items()},
    )
