"""Ablation bench: the full scheduler repertoire on the AV workload.

Beyond the paper's four heuristics this adds MET (queue-blind
minimum-execution-time) and seeded-random mapping from the wider CEDR
scheduler studies, on the stressed Fig. 9(a) configuration.  Expected
ordering: the backlog-aware heuristics (EFT/ETF/HEFT_RT) in front, the
queue-blind-but-type-aware MET in the middle, and the two spreading
policies (RR, random) at the back - they maximize simultaneously active
accelerator-management threads.
"""

from repro.experiments import run_once
from repro.experiments.fig9_versatility import av_workload_scaled
from repro.platforms import zcu102

ALL_SCHEDULERS = ("rr", "eft", "etf", "heft_rt", "met", "random")
RATE = 300.0


def test_scheduler_repertoire(benchmark, ld_batch):
    workload = av_workload_scaled(ld_batch=ld_batch)
    platform = zcu102(n_cpu=3, n_fft=8)

    def sweep():
        return {
            name: run_once(platform, workload, "api", RATE, name, seed=1)
            for name in ALL_SCHEDULERS
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nscheduler repertoire (ZCU102 3C+8FFT, AV workload @300 Mbps):")
    print(f"{'scheduler':>10} | {'exec/app (ms)':>13} | {'sched oh (ms)':>13} | {'q mean':>6}")
    for name in ALL_SCHEDULERS:
        r = results[name]
        print(f"{name:>10} | {r.mean_exec_time*1e3:13.1f} | "
              f"{r.sched_overhead_per_app*1e3:13.3f} | {r.ready_depth_mean:6.1f}")

    exec_of = {name: results[name].mean_exec_time for name in ALL_SCHEDULERS}
    smart_best = min(exec_of["eft"], exec_of["etf"], exec_of["heft_rt"])
    # the spreading policies sit clearly behind the backlog-aware heuristics
    assert exec_of["rr"] > 1.3 * smart_best
    assert exec_of["random"] > 1.3 * smart_best
    # queue-blind MET cannot beat the backlog-aware group under load
    assert exec_of["met"] >= 0.95 * smart_best
    # every scheduler terminates the full workload
    assert all(r.n_apps == 11 for r in results.values())
