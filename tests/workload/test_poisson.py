"""Poisson arrival-process tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import PulseDoppler, WifiTx
from repro.workload import WorkloadEntry, WorkloadSpec, poisson_arrivals


@given(
    frame_mb=st.floats(0.5, 20.0, allow_nan=False),
    rate=st.floats(10.0, 2000.0, allow_nan=False),
    seed=st.integers(0, 2**31),
)
@settings(max_examples=30, deadline=None)
def test_poisson_arrivals_are_sorted_positive(frame_mb, rate, seed):
    rng = np.random.default_rng(seed)
    arrivals = poisson_arrivals(frame_mb, rate, 30, rng)
    assert len(arrivals) == 30
    assert (arrivals > 0).all()
    assert (np.diff(arrivals) >= 0).all()


def test_poisson_mean_rate_matches_periodic():
    rng = np.random.default_rng(0)
    frame_mb, rate, n = 2.0, 100.0, 5000
    arrivals = poisson_arrivals(frame_mb, rate, n, rng)
    mean_gap = arrivals[-1] / n
    assert mean_gap == pytest.approx(frame_mb / rate, rel=0.05)


def test_poisson_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        poisson_arrivals(0.0, 10.0, 5, rng)
    with pytest.raises(ValueError):
        poisson_arrivals(1.0, -1.0, 5, rng)
    with pytest.raises(ValueError):
        poisson_arrivals(1.0, 1.0, -2, rng)


def test_workload_arrival_process_validation():
    with pytest.raises(ValueError, match="arrival process"):
        WorkloadSpec("bad", (WorkloadEntry(PulseDoppler(batch=32), 1),),
                     arrival_process="uniform")


def test_workload_poisson_instantiation_reproducible():
    wl = WorkloadSpec(
        "bursty",
        (WorkloadEntry(PulseDoppler(batch=32), 3), WorkloadEntry(WifiTx(batch=20), 3)),
        arrival_process="poisson",
    )
    a = [t for _, t in wl.instantiate("api", 100.0, seed=5)]
    b = [t for _, t in wl.instantiate("api", 100.0, seed=5)]
    c = [t for _, t in wl.instantiate("api", 100.0, seed=6)]
    assert a == b
    assert a != c
    assert a == sorted(a)


def test_poisson_payloads_match_periodic_payloads():
    """Arrival randomness must not perturb input-data synthesis."""
    periodic = WorkloadSpec(
        "p", (WorkloadEntry(PulseDoppler(batch=32), 2),), arrival_process="periodic"
    )
    poisson = WorkloadSpec(
        "p", (WorkloadEntry(PulseDoppler(batch=32), 2),), arrival_process="poisson"
    )
    inst_per = periodic.instantiate("dag", 100.0, seed=3)
    inst_poi = poisson.instantiate("dag", 100.0, seed=3)
    key = next(k for k in inst_per[0][0].initial_state if k.startswith("pulses"))
    assert np.array_equal(
        inst_per[0][0].initial_state[key], inst_poi[0][0].initial_state[key]
    )


def test_poisson_workload_runs_end_to_end():
    from repro.experiments import run_once
    from repro.platforms import zcu102

    wl = WorkloadSpec(
        "bursty",
        (WorkloadEntry(PulseDoppler(batch=32), 3), WorkloadEntry(WifiTx(batch=20), 3)),
        arrival_process="poisson",
    )
    result = run_once(zcu102(n_cpu=3, n_fft=1), wl, "api", 150.0, "rr", seed=2)
    assert result.n_apps == 6
    assert result.mean_exec_time > 0
