"""Audited mixed-workload integration: all five apps, both platforms.

The heaviest coexistence test in the suite: every ``repro.apps``
application runs *concurrently* in one workload at two injection rates on
both platforms, with the online auditor checking every scheduling round
and completion, and the content-addressed sweep cache layered on top.
Cache bookkeeping is pinned exactly (cold pass = all misses + stores, warm
pass = all hits) and cached results must match the uncached sweep
bit-for-bit - the combination no single-app test exercises.
"""

import pytest

from repro.apps import (
    LaneDetection,
    PulseDoppler,
    TemporalMitigation,
    WifiRx,
    WifiTx,
)
from repro.experiments import SweepCache, run_trials
from repro.platforms import jetson, zcu102
from repro.runtime import RuntimeConfig
from repro.workload import WorkloadEntry, WorkloadSpec

RATES = (100.0, 400.0)  # one relaxed, one saturated injection point


def five_app_workload():
    """One instance of each paper application, mixed into one stream."""
    return WorkloadSpec(
        name="five-app-mix",
        entries=(
            WorkloadEntry(PulseDoppler(batch=16), 1),
            WorkloadEntry(WifiTx(n_packets=20, batch=4), 1),
            WorkloadEntry(WifiRx(n_packets=16, batch=2, snr_db=12.0), 1),
            WorkloadEntry(LaneDetection(height=96, width=128, batch=32), 1),
            WorkloadEntry(TemporalMitigation(n_blocks=12), 1),
        ),
    )


@pytest.mark.parametrize("platform", [
    pytest.param(zcu102(n_cpu=3, n_fft=1, n_mmult=1), id="zcu102"),
    pytest.param(jetson(n_cpu=3, n_gpu=1), id="jetson"),
])
def test_five_app_mix_audited_and_cached(platform, tmp_path):
    workload = five_app_workload()
    config = RuntimeConfig(scheduler="etf", execute_kernels=False, audit=True)

    def sweep(cache=False):
        out = []
        for rate in RATES:
            out.extend(run_trials(
                platform, workload, "dag", rate, "etf",
                trials=1, base_seed=3, config=config, cache=cache,
            ))
        return out

    uncached = sweep()
    n_cells = len(RATES)  # trials=1

    # every app actually shared the machine in every cell
    for result in uncached:
        assert set(result.exec_times_by_app) == {"PD", "TX", "RX", "LD", "TM"}
        assert result.n_apps == 5

    # cold pass: all misses, all stored; results identical to uncached
    cold_cache = SweepCache(tmp_path)
    cold = sweep(cache=cold_cache)
    assert cold_cache.stats.misses == n_cells
    assert cold_cache.stats.stores == n_cells
    assert cold_cache.stats.hits == 0
    assert cold == uncached

    # warm pass: pure hits, nothing simulated, still identical
    warm_cache = SweepCache(tmp_path)
    warm = sweep(cache=warm_cache)
    assert warm_cache.stats.hits == n_cells
    assert warm_cache.stats.misses == 0
    assert warm == uncached
