"""DagBuilder and parse/instantiate tests."""

import numpy as np
import pytest

from repro.dag import DagBuilder, parse_dag
from repro.runtime.task import TaskState


def small_builder():
    b = DagBuilder("demo")
    b.cpu("init", lambda s: s.__setitem__("x", np.ones(8, dtype=complex)), 1e-6)
    b.kernel("f", "fft", {"n": 8}, ["x"], "X", after=["init"])
    b.kernel("g", "ifft", {"n": 8}, ["X"], "y", after=["f"])
    b.cpu("fin", lambda s: None, 1e-6, after=["g"])
    return b


def test_builder_produces_valid_program():
    program = small_builder().build()
    assert program.name == "demo"
    assert program.n_nodes == 4
    assert program.topo_order[0] == "init"
    assert program.topo_order[-1] == "fin"


def test_builder_rejects_duplicate_names():
    b = DagBuilder("dup")
    b.cpu("a", lambda s: None, 1e-6)
    with pytest.raises(ValueError, match="duplicate"):
        b.cpu("a", lambda s: None, 1e-6)


def test_topo_order_respects_edges():
    program = small_builder().build()
    order = {name: i for i, name in enumerate(program.topo_order)}
    spec_nodes = program.spec["nodes"]
    for name, node in spec_nodes.items():
        for pred in node.get("after", []):
            assert order[pred] < order[name]


def test_instantiate_wires_dependencies():
    program = small_builder().build()
    tasks, heads, state = program.instantiate(app_id=7)
    assert len(tasks) == 4
    assert [t.name for t in heads] == ["init"]
    by_name = {t.name: t for t in tasks}
    assert by_name["f"].n_deps == 1
    assert by_name["g"].n_deps == 1
    assert by_name["g"] in by_name["f"].successors
    assert all(t.app_id == 7 for t in tasks)
    assert all(t.state is TaskState.CREATED for t in tasks)


def test_instantiate_copies_initial_state():
    program = small_builder().build()
    initial = {"seed_data": np.arange(3)}
    _, _, state = program.instantiate(0, initial)
    assert "seed_data" in state
    state["extra"] = 1
    assert "extra" not in initial  # instantiation must not alias the input


def test_instantiate_twice_gives_fresh_tasks():
    program = small_builder().build()
    tasks1, _, _ = program.instantiate(0)
    tasks2, _, _ = program.instantiate(1)
    assert {t.tid for t in tasks1}.isdisjoint({t.tid for t in tasks2})


def test_duplicate_after_entries_count_once():
    b = DagBuilder("dups")
    b.cpu("a", lambda s: None, 1e-6)
    b.cpu("b", lambda s: None, 1e-6, after=["a", "a"])
    tasks, heads, _ = b.build().instantiate(0)
    by_name = {t.name: t for t in tasks}
    assert by_name["b"].n_deps == 1


def test_parse_dag_validates():
    from repro.dag import DagValidationError

    with pytest.raises(DagValidationError):
        parse_dag({"name": "bad", "nodes": {"n": {"api": "nope"}}})


def test_build_raw_returns_spec_and_bindings():
    spec, bindings = small_builder().build_raw()
    assert set(bindings) == {"init", "fin"}
    assert spec["nodes"]["f"]["api"] == "fft"
    # raw output is detached from the builder
    spec["nodes"]["f"]["api"] = "mutated"
    spec2, _ = small_builder().build_raw()
    assert spec2["nodes"]["f"]["api"] == "fft"
