"""Exporter tests: the Prometheus text format is pinned by a golden file."""

import json
import pathlib

from repro.telemetry import (
    CedrTelemetry,
    MetricRegistry,
    TelemetryConfig,
    to_json_dict,
    to_prometheus_text,
    write_metrics,
)

GOLDEN = pathlib.Path(__file__).with_name("golden_small.prom")


def small_registry() -> MetricRegistry:
    """Fixed registry exercising every family kind and the label escaper."""
    r = MetricRegistry()
    c = r.counter("demo_events_total", "Events observed")
    c.inc()
    c.inc(2.0)
    g = r.gauge("demo_depth", "Queue depth", labels=("queue",))
    g.labels("ready").set(3)
    g.labels("done").set(1.5)
    g.labels('we"ird\\q').set(2)
    h = r.histogram("demo_latency_seconds", (0.001, 0.01, 0.1), "Latency")
    for v in (0.0005, 0.002, 0.05, 2.0):
        h.observe(v)
    return r


def test_prometheus_text_matches_golden_file():
    text = to_prometheus_text(small_registry())
    assert text == GOLDEN.read_text(encoding="utf-8")


def test_prometheus_text_is_deterministic():
    assert to_prometheus_text(small_registry()) == to_prometheus_text(small_registry())


def test_prometheus_histogram_invariants():
    lines = to_prometheus_text(small_registry()).splitlines()
    buckets = [ln for ln in lines if ln.startswith("demo_latency_seconds_bucket")]
    # one line per finite bound plus the implicit +Inf tail
    assert len(buckets) == 4
    assert buckets[-1].startswith('demo_latency_seconds_bucket{le="+Inf"}')
    counts = [int(ln.rsplit(" ", 1)[1]) for ln in buckets]
    assert counts == sorted(counts)  # cumulative
    assert "demo_latency_seconds_count 4" in lines


def test_json_dump_shape():
    telemetry = CedrTelemetry(TelemetryConfig(), pe_names=("cpu0",))
    telemetry.record_task("cpu0", 0.25)
    telemetry.sample(1.0)
    doc = to_json_dict(telemetry)
    assert doc["schema"] == "repro.telemetry/1"
    assert doc["metrics"]["cedr_tasks_completed"]["series"][0]["value"] == 1.0
    assert doc["samples"][0]["t"] == 1.0
    assert doc["samples"][0]["values"]["cedr_pe_busy_seconds_total{pe=cpu0}"] == 0.25


def test_write_metrics_strips_suffix_and_creates_parents(tmp_path):
    telemetry = CedrTelemetry(TelemetryConfig(), pe_names=("cpu0",))
    base = tmp_path / "deep" / "dir" / "metrics.json"  # suffix should be stripped
    json_path, prom_path = write_metrics(str(base), telemetry)
    assert json_path.endswith("metrics.json") and prom_path.endswith("metrics.prom")
    doc = json.loads(pathlib.Path(json_path).read_text(encoding="utf-8"))
    assert doc["schema"] == "repro.telemetry/1"
    text = pathlib.Path(prom_path).read_text(encoding="utf-8")
    assert text.startswith("# HELP ") and text.endswith("\n")
