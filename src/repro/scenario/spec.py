"""Declarative scenario specs: one TOML/JSON document per experiment.

A :class:`ScenarioSpec` names everything a run needs - platform, workload
or serve tenants, scheduler, faults, admission, telemetry, seeds - as
*data*, validated against the plugin registries and executed through the
exact same :class:`~repro.runtime.RuntimeConfig` / serve paths as the
flag-driven ``repro run`` / ``repro serve`` commands.  The differential
oracle's ``scenario`` variant proves the two routes bit-identical, and
because the builders below construct the same platform/workload/config
objects the flag path does, the PR 4 sweep cache content-addresses
scenario cells for free (a flag-driven sweep warms the cache for the
equivalent scenario and vice versa).

Document shape (TOML; JSON mirrors it)::

    [scenario]
    name = "radar-zcu102"        # required
    kind = "run"                 # "run" (default) or "serve"
    seed = 0
    trials = 1

    [platform]
    name = "zcu102"              # any registered platform
    fft = 1                      # params the platform entry accepts

    [scheduler]
    name = "heft_rt"

    [engine]                     # optional
    event_core = "wheel"         # "heap" or "wheel"
    core_impl = "objects"        # "objects" or "flat"
    audit = false

    [telemetry]                  # optional; presence enables collection
    interval_s = 0.01

    [workload]                   # run kind
    apps = [ {name = "PD", count = 2}, {name = "TX", count = 2} ]
    # or: preset = "radar-comms" (+ params = {n_pd = 5})
    arrival = "periodic"         # any registered arrival process

    [run]                        # run kind
    mode = "api"
    rate_mbps = 200.0
    execute = true

    [faults]                     # optional, run kind
    rate = 25.0
    kinds = ["transient", "hang"]

    [serve]                      # serve kind
    duration = 0.5
    arrival = "poisson:rate=100"
    tenants = 1
    slo_ms = 50.0
    apps = "PD:1,TX:1"

    [serve.admission]
    policy = "shed"
    max_in_system = 32

Unknown sections, unknown keys, and unknown registry names all fail
validation with the available entries and a did-you-mean hint - a typo'd
scheduler name dies at ``repro scenario validate``, not three sweeps in.
"""

from __future__ import annotations

import dataclasses
import difflib
import hashlib
import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Optional, Union

from repro.apps import APPS
from repro.faults import FAULT_KINDS, FaultConfig
from repro.platforms import PLATFORMS, PlatformConfig
from repro.runtime import RuntimeConfig
from repro.sched import SCHEDULERS
from repro.serve import ADMISSION_POLICIES, AdmissionConfig, ArrivalSpec, ServeConfig, TenantSpec
from repro.serve.arrival import ARRIVALS
from repro.simcore import (
    CORE_IMPLS,
    DEFAULT_CORE_IMPL,
    DEFAULT_EVENT_CORE,
    EVENT_CORES,
)
from repro.workload import WORKLOADS, WorkloadEntry, WorkloadSpec

__all__ = [
    "AppCount",
    "ScenarioError",
    "ScenarioSpec",
    "ServeSection",
    "dump_toml",
    "load_scenario",
]

MODES = ("dag", "api")


class ScenarioError(ValueError):
    """A scenario document failed validation (shape or registry names)."""


def _unknown_keys(given, allowed, where: str) -> None:
    unknown = sorted(set(given) - set(allowed))
    if not unknown:
        return
    hints = []
    for key in unknown:
        close = difflib.get_close_matches(key, sorted(allowed), n=1)
        hints.append(f"{key!r}" + (f" (did you mean {close[0]!r}?)" if close else ""))
    raise ScenarioError(
        f"{where}: unknown key(s) {', '.join(hints)}; "
        f"allowed: {', '.join(sorted(allowed))}"
    )


def _toml_scalar(value: Any, where: str) -> str:
    """Render one scalar as TOML.  Floats use ``repr`` - exact round-trip."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if not math.isfinite(value):
            raise ScenarioError(f"{where}: non-finite float {value!r}")
        return repr(value)
    if isinstance(value, str):
        # JSON string escaping is a subset of TOML basic-string syntax
        return json.dumps(value)
    raise ScenarioError(f"{where}: cannot render {type(value).__name__} as TOML")


def dump_toml(doc: Mapping[str, Any]) -> str:
    """Serialize a canonical scenario document as TOML.

    Understands exactly the shapes :meth:`ScenarioSpec.canonical` emits:
    tables of scalars, nested tables, scalar lists (fault kinds), and
    lists of scalar tables (app streams, rendered as arrays of tables).
    ``None`` values are skipped - TOML has no null; an absent key parses
    back to the same default, keeping dump -> parse bit-identical.
    """
    lines: list[str] = []

    def is_scalar_list(value: Any) -> bool:
        return isinstance(value, (list, tuple)) and not any(
            isinstance(item, Mapping) for item in value
        )

    def emit_table(path: str, table: Mapping[str, Any], *, array: bool = False) -> None:
        if path:
            if lines:
                lines.append("")
            lines.append(f"[[{path}]]" if array else f"[{path}]")
        nested: list[tuple[str, Any]] = []
        for key, value in table.items():
            where = f"{path or '<root>'}.{key}"
            if value is None:
                continue
            if isinstance(value, Mapping):
                nested.append((key, value))
            elif is_scalar_list(value):
                items = ", ".join(_toml_scalar(v, where) for v in value)
                lines.append(f"{key} = [{items}]")
            elif isinstance(value, (list, tuple)):
                nested.append((key, value))
            else:
                lines.append(f"{key} = {_toml_scalar(value, where)}")
        for key, value in nested:
            sub = f"{path}.{key}" if path else key
            if isinstance(value, Mapping):
                emit_table(sub, value)
            else:
                for item in value:
                    if not isinstance(item, Mapping):
                        raise ScenarioError(
                            f"{sub}: mixed scalar/table list is not TOML-able"
                        )
                    emit_table(sub, item, array=True)

    emit_table("", doc)
    return "\n".join(lines) + "\n"


def _params_tuple(value, where: str) -> tuple[tuple[str, Any], ...]:
    if value is None:
        return ()
    if not isinstance(value, Mapping):
        raise ScenarioError(f"{where} must be a table of name = value pairs")
    return tuple(sorted((str(k), v) for k, v in value.items()))


@dataclass(frozen=True)
class AppCount:
    """One application stream: registered name, instance count, overrides."""

    name: str
    count: int = 1
    params: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        entry = APPS.get(self.name)  # RegistryError lists + suggests
        object.__setattr__(self, "name", entry.name)
        if self.count < 1:
            raise ScenarioError(
                f"app {self.name!r} count must be >= 1, got {self.count}"
            )
        object.__setattr__(self, "params", tuple(sorted(self.params)))


def _parse_app_list(value, where: str) -> tuple[AppCount, ...]:
    """Parse ``apps`` - a CLI-style string or a list of app tables."""
    if isinstance(value, str):
        out = []
        for part in value.split(","):
            part = part.strip()
            if not part:
                continue
            name, _, count = part.partition(":")
            try:
                n = int(count) if count else 1
            except ValueError:
                raise ScenarioError(f"{where}: bad count in {part!r}") from None
            out.append(AppCount(name.strip(), n))
        if not out:
            raise ScenarioError(f"{where}: empty app list")
        return tuple(out)
    if not isinstance(value, (list, tuple)) or not value:
        raise ScenarioError(
            f"{where}: apps must be a non-empty list of app tables "
            f'or a "NAME:COUNT,..." string'
        )
    out = []
    for i, item in enumerate(value):
        if isinstance(item, AppCount):
            out.append(item)
            continue
        if not isinstance(item, Mapping):
            raise ScenarioError(f"{where}[{i}]: each app must be a table")
        row = dict(item)
        name = row.pop("name", None)
        if name is None:
            raise ScenarioError(f"{where}[{i}]: app table needs a name")
        count = row.pop("count", 1)
        out.append(AppCount(str(name), int(count), tuple(sorted(row.items()))))
    return tuple(out)


@dataclass(frozen=True)
class ServeSection:
    """The serve-kind half of a spec: tenants, window, admission."""

    duration: float = 0.5
    arrival: str = "poisson:rate=100"
    tenants: int = 1
    slo_ms: float = 50.0
    apps: tuple[AppCount, ...] = (AppCount("PD"), AppCount("TX"))
    policy: str = "shed"
    max_in_system: int = 32
    queue_cap: int = 16
    quota_rate: float = 0.0
    quota_burst: float = 8.0
    ready_depth_limit: int = 0
    p99_limit_s: float = 0.0

    def __post_init__(self) -> None:
        ArrivalSpec.parse(self.arrival)  # validates kind + parameter shape
        if self.tenants < 1:
            raise ScenarioError(f"tenants must be >= 1, got {self.tenants}")
        if self.policy not in ADMISSION_POLICIES:
            raise ScenarioError(
                f"unknown admission policy {self.policy!r}; "
                f"options: {', '.join(ADMISSION_POLICIES)}"
            )

    def admission_config(self) -> AdmissionConfig:
        return AdmissionConfig(
            policy=self.policy,
            max_in_system=self.max_in_system,
            queue_cap=self.queue_cap,
            quota_rate=self.quota_rate,
            quota_burst=self.quota_burst,
            ready_depth_limit=self.ready_depth_limit,
            p99_limit_s=self.p99_limit_s,
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully named experiment, validated against the registries."""

    name: str
    kind: str = "run"
    seed: int = 0
    trials: int = 1
    platform: str = "zcu102"
    platform_params: tuple[tuple[str, Any], ...] = ()
    scheduler: str = "heft_rt"
    event_core: str = DEFAULT_EVENT_CORE
    core_impl: str = DEFAULT_CORE_IMPL
    audit: bool = False
    telemetry_interval_s: Optional[float] = None
    # run kind ----------------------------------------------------------- #
    #: RNG label of the workload; "cli" matches the flag-driven ``repro
    #: run`` path bit-for-bit (the name participates in arrival/payload
    #: stream derivation, so it is part of the determinism contract)
    workload_name: str = "cli"
    preset: Optional[str] = None
    preset_params: tuple[tuple[str, Any], ...] = ()
    apps: tuple[AppCount, ...] = (AppCount("PD", 2), AppCount("TX", 2))
    arrival: str = "periodic"
    arrival_params: tuple[tuple[str, Any], ...] = ()
    mode: str = "api"
    rate_mbps: float = 200.0
    execute: bool = True
    faults: Optional[FaultConfig] = None
    # serve kind --------------------------------------------------------- #
    serve: Optional[ServeSection] = None

    def __post_init__(self) -> None:
        if self.kind not in ("run", "serve"):
            raise ScenarioError(
                f"scenario kind must be 'run' or 'serve', got {self.kind!r}"
            )
        if self.trials < 1:
            raise ScenarioError(f"trials must be >= 1, got {self.trials}")
        if self.mode not in MODES:
            raise ScenarioError(
                f"unknown mode {self.mode!r}; options: {', '.join(MODES)}"
            )
        if self.event_core not in EVENT_CORES:
            raise ScenarioError(
                f"unknown event core {self.event_core!r}; "
                f"options: {', '.join(EVENT_CORES)}"
            )
        if self.core_impl not in CORE_IMPLS:
            raise ScenarioError(
                f"unknown core impl {self.core_impl!r}; "
                f"options: {', '.join(CORE_IMPLS)}"
            )
        entry = PLATFORMS.get(self.platform)
        object.__setattr__(
            self, "platform_params", tuple(sorted(self.platform_params))
        )
        unknown = set(dict(self.platform_params)) - set(entry.params)
        if unknown:
            raise ScenarioError(
                f"platform {entry.name!r} does not take parameter(s) "
                f"{sorted(unknown)}; accepts: {', '.join(entry.params)}"
            )
        SCHEDULERS.get(self.scheduler)
        if self.kind == "run":
            if self.rate_mbps <= 0:
                raise ScenarioError(
                    f"rate_mbps must be positive, got {self.rate_mbps}"
                )
            ARRIVALS.get(self.arrival)
            if self.preset is not None:
                WORKLOADS.get(self.preset)
            # AppCount validates each name on construction
        elif self.serve is None:
            object.__setattr__(self, "serve", ServeSection())

    # ------------------------------------------------------------------ #
    # parsing
    # ------------------------------------------------------------------ #

    _SECTIONS = (
        "scenario", "platform", "scheduler", "engine",
        "telemetry", "workload", "run", "faults", "serve",
    )

    @classmethod
    def from_mapping(
        cls, data: Mapping[str, Any], *, source: str = "<mapping>"
    ) -> "ScenarioSpec":
        """Build a validated spec from a parsed TOML/JSON document."""
        if not isinstance(data, Mapping):
            raise ScenarioError(f"{source}: scenario document must be a table")
        _unknown_keys(data, cls._SECTIONS, source)

        def section(name: str) -> dict:
            value = data.get(name)
            if value is None:
                return {}
            if not isinstance(value, Mapping):
                raise ScenarioError(f"{source}: [{name}] must be a table")
            return dict(value)

        scn = section("scenario")
        _unknown_keys(scn, ("name", "kind", "seed", "trials"), f"{source} [scenario]")
        name = scn.get("name")
        if not name:
            raise ScenarioError(f"{source}: [scenario] needs a name")
        kind = str(scn.get("kind", "run"))

        plat = section("platform")
        platform = str(plat.pop("name", "zcu102"))
        # remaining platform keys ARE the factory parameters; the entry
        # validates them in __post_init__
        platform_params = tuple(sorted(plat.items()))

        sched = section("scheduler")
        _unknown_keys(sched, ("name",), f"{source} [scheduler]")
        scheduler = str(sched.get("name", "heft_rt"))

        engine = section("engine")
        _unknown_keys(
            engine, ("event_core", "core_impl", "audit"), f"{source} [engine]"
        )

        telemetry = section("telemetry")
        _unknown_keys(telemetry, ("interval_s",), f"{source} [telemetry]")
        interval = telemetry.get("interval_s") if "telemetry" in data else None
        if interval is not None:
            interval = float(interval)
        elif "telemetry" in data:
            interval = 0.0  # section present, default = final snapshot only

        fields: dict[str, Any] = dict(
            name=str(name),
            kind=kind,
            seed=int(scn.get("seed", 0)),
            trials=int(scn.get("trials", 1)),
            platform=platform,
            platform_params=platform_params,
            scheduler=scheduler,
            event_core=str(engine.get("event_core", DEFAULT_EVENT_CORE)),
            core_impl=str(engine.get("core_impl", DEFAULT_CORE_IMPL)),
            audit=bool(engine.get("audit", False)),
            telemetry_interval_s=interval,
        )

        wl = section("workload")
        run = section("run")
        faults = section("faults")
        srv = section("serve")
        # registry lookups inside section parsing (app names, fault kinds,
        # arrival specs) raise RegistryError/ValueError - surface every one
        # as a ScenarioError so ``repro scenario validate`` reports it
        # instead of crashing with a traceback
        try:
            if kind == "serve":
                for label, body in (
                    ("workload", wl), ("run", run), ("faults", faults)
                ):
                    if body:
                        raise ScenarioError(
                            f"{source}: [{label}] is a run-kind section; "
                            f"this scenario is kind = 'serve'"
                        )
                fields["serve"] = cls._parse_serve(srv, source, fields)
            else:
                if srv:
                    raise ScenarioError(
                        f"{source}: [serve] is a serve-kind section; "
                        f"this scenario is kind = 'run'"
                    )
                cls._parse_run(wl, run, faults, source, fields)
            return cls(**fields)
        except ValueError as exc:
            if isinstance(exc, ScenarioError):
                raise
            raise ScenarioError(f"{source}: {exc}") from exc

    @classmethod
    def _parse_run(cls, wl, run, faults, source, fields) -> None:
        _unknown_keys(
            wl,
            ("name", "preset", "params", "apps", "arrival", "arrival_params"),
            f"{source} [workload]",
        )
        if "preset" in wl and "apps" in wl:
            raise ScenarioError(
                f"{source} [workload]: give either preset or apps, not both"
            )
        fields["workload_name"] = str(wl.get("name", "cli"))
        if "preset" in wl:
            fields["preset"] = str(wl["preset"])
            fields["preset_params"] = _params_tuple(
                wl.get("params"), f"{source} [workload] params"
            )
        elif "apps" in wl:
            fields["apps"] = _parse_app_list(wl["apps"], f"{source} [workload] apps")
        fields["arrival"] = str(wl.get("arrival", "periodic"))
        fields["arrival_params"] = _params_tuple(
            wl.get("arrival_params"), f"{source} [workload] arrival_params"
        )

        _unknown_keys(run, ("mode", "rate_mbps", "execute"), f"{source} [run]")
        fields["mode"] = str(run.get("mode", "api"))
        fields["rate_mbps"] = float(run.get("rate_mbps", 200.0))
        fields["execute"] = bool(run.get("execute", True))

        if faults:
            allowed = tuple(
                f.name for f in dataclasses.fields(FaultConfig) if f.name != "script"
            )
            _unknown_keys(faults, allowed, f"{source} [faults]")
            kinds = faults.pop("kinds", None)
            if kinds is not None:
                if isinstance(kinds, str):
                    kinds = FaultConfig.parse_kinds(kinds)
                else:
                    kinds = tuple(FAULT_KINDS.get(str(k)).kind for k in kinds)
                faults["kinds"] = kinds
            try:
                fields["faults"] = FaultConfig(**faults)
            except ValueError as exc:
                raise ScenarioError(f"{source} [faults]: {exc}") from exc

    @classmethod
    def _parse_serve(cls, srv, source, fields) -> ServeSection:
        allowed = (
            "duration", "arrival", "tenants", "slo_ms", "apps", "mode", "admission",
        )
        _unknown_keys(srv, allowed, f"{source} [serve]")
        if "mode" in srv:
            fields["mode"] = str(srv["mode"])
        admission = srv.get("admission") or {}
        if not isinstance(admission, Mapping):
            raise ScenarioError(f"{source}: [serve.admission] must be a table")
        adm_allowed = tuple(f.name for f in dataclasses.fields(AdmissionConfig))
        _unknown_keys(admission, adm_allowed, f"{source} [serve.admission]")
        kwargs: dict[str, Any] = dict(admission)
        if "duration" in srv:
            kwargs["duration"] = float(srv["duration"])
        if "arrival" in srv:
            kwargs["arrival"] = str(srv["arrival"])
        if "tenants" in srv:
            kwargs["tenants"] = int(srv["tenants"])
        if "slo_ms" in srv:
            kwargs["slo_ms"] = float(srv["slo_ms"])
        if "apps" in srv:
            kwargs["apps"] = _parse_app_list(srv["apps"], f"{source} [serve] apps")
        try:
            return ServeSection(**kwargs)
        except ValueError as exc:
            if isinstance(exc, ScenarioError):
                raise
            raise ScenarioError(f"{source} [serve]: {exc}") from exc

    # ------------------------------------------------------------------ #
    # canonical form
    # ------------------------------------------------------------------ #

    def canonical(self) -> dict:
        """Fully resolved, JSON-able form: every default explicit.

        Two spellings of the same scenario (key order, omitted defaults,
        TOML vs JSON) canonicalize identically, so :meth:`digest` names
        the experiment, not the document.  Only kind-relevant sections
        appear - a run spec's digest does not move when serve defaults do.
        """
        doc: dict[str, Any] = {
            "scenario": {
                "name": self.name,
                "kind": self.kind,
                "seed": self.seed,
                "trials": self.trials,
            },
            "platform": {"name": self.platform, **dict(self.platform_params)},
            "scheduler": {"name": self.scheduler},
            "engine": {
                "event_core": self.event_core,
                "core_impl": self.core_impl,
                "audit": self.audit,
            },
        }
        if self.telemetry_interval_s is not None:
            doc["telemetry"] = {"interval_s": self.telemetry_interval_s}
        if self.kind == "run":
            workload: dict[str, Any] = {"name": self.workload_name}
            if self.preset is not None:
                workload["preset"] = self.preset
                if self.preset_params:
                    workload["params"] = dict(self.preset_params)
            else:
                workload["apps"] = [
                    {"name": a.name, "count": a.count, **dict(a.params)}
                    for a in self.apps
                ]
            workload["arrival"] = self.arrival
            if self.arrival_params:
                workload["arrival_params"] = dict(self.arrival_params)
            doc["workload"] = workload
            doc["run"] = {
                "mode": self.mode,
                "rate_mbps": self.rate_mbps,
                "execute": self.execute,
            }
            if self.faults is not None:
                row = dataclasses.asdict(self.faults)
                row["kinds"] = [k.value for k in self.faults.kinds]
                row.pop("script", None)
                doc["faults"] = row
        else:
            serve = self.serve
            doc["serve"] = {
                "duration": serve.duration,
                "arrival": serve.arrival,
                "tenants": serve.tenants,
                "slo_ms": serve.slo_ms,
                "mode": self.mode,
                "apps": [
                    {"name": a.name, "count": a.count, **dict(a.params)}
                    for a in serve.apps
                ],
                "admission": dataclasses.asdict(serve.admission_config()),
            }
        return doc

    def digest(self) -> str:
        """Content address of the canonical form (sha256 hex)."""
        blob = json.dumps(self.canonical(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------ #
    # serialization: canonical form back out as a document
    # ------------------------------------------------------------------ #

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        """The canonical form as a JSON document (parses back bit-identically)."""
        return json.dumps(self.canonical(), indent=indent, sort_keys=True) + "\n"

    def to_toml(self) -> str:
        """The canonical form as a TOML document (parses back bit-identically).

        ``None`` values (e.g. an unset fault seed) are omitted - TOML has
        no null - and parse back to the same ``None`` default.
        """
        return dump_toml(self.canonical())

    def save(self, path: Union[str, Path]) -> Path:
        """Write the canonical form to ``path`` (.toml or .json by suffix)."""
        path = Path(path)
        suffix = path.suffix.lower()
        if suffix == ".toml":
            text = self.to_toml()
        elif suffix == ".json":
            text = self.to_json()
        else:
            raise ScenarioError(
                f"{path}: unknown scenario format {suffix!r} (use .toml or .json)"
            )
        path.write_text(text, encoding="utf-8")
        return path

    # ------------------------------------------------------------------ #
    # builders: the same objects the flag-driven CLI constructs
    # ------------------------------------------------------------------ #

    def build_platform(self) -> PlatformConfig:
        return PLATFORMS.get(self.platform).build_config(
            **dict(self.platform_params)
        )

    def build_config(self) -> RuntimeConfig:
        telemetry = None
        if self.telemetry_interval_s is not None:
            from repro.telemetry import TelemetryConfig

            telemetry = TelemetryConfig(sample_interval_s=self.telemetry_interval_s)
        return RuntimeConfig(
            scheduler=self.scheduler,
            # serve runs are always timing-only, exactly like ``repro serve``
            execute_kernels=self.execute if self.kind == "run" else False,
            faults=self.faults,
            telemetry=telemetry,
            audit=self.audit,
            event_core=self.event_core,
            core_impl=self.core_impl,
        )

    def build_workload(self) -> WorkloadSpec:
        if self.kind != "run":
            raise ScenarioError(f"scenario {self.name!r} is serve-kind")
        if self.preset is not None:
            return WORKLOADS.get(self.preset)(**dict(self.preset_params))
        entries = tuple(
            WorkloadEntry(APPS.get(a.name).factory(**dict(a.params)), a.count)
            for a in self.apps
        )
        return WorkloadSpec(
            name=self.workload_name,
            entries=entries,
            arrival_process=self.arrival,
            arrival_params=self.arrival_params,
        )

    def build_serve(self) -> ServeConfig:
        if self.kind != "serve":
            raise ScenarioError(f"scenario {self.name!r} is run-kind")
        serve = self.serve
        arrival = ArrivalSpec.parse(serve.arrival)
        apps = tuple(
            APPS.get(a.name).factory(**dict(a.params))
            for a in serve.apps
            for _ in range(a.count)
        )
        # tenant naming matches _serve_config_from_args: "tenant" when
        # single, "tenant<i>" otherwise - names feed RNG labels downstream
        return ServeConfig(
            tenants=tuple(
                TenantSpec(
                    f"tenant{i}" if serve.tenants > 1 else "tenant",
                    arrival,
                    apps=apps,
                    slo_s=serve.slo_ms / 1e3,
                )
                for i in range(serve.tenants)
            ),
            duration=serve.duration,
            admission=serve.admission_config(),
            mode=self.mode,
            scheduler=self.scheduler,
        )

    def describe(self) -> str:
        """One summary line for CLI listings."""
        if self.kind == "serve":
            body = (
                f"{self.serve.arrival} x {self.serve.tenants} tenant(s), "
                f"{self.serve.duration:g} s window"
            )
        else:
            workload = self.preset or ",".join(
                f"{a.name}:{a.count}" for a in self.apps
            )
            body = f"{workload} @ {self.rate_mbps:g} Mbps {self.mode}"
        return (
            f"{self.name} [{self.kind}] {self.platform}/{self.scheduler}: {body}"
        )


def load_scenario(path: Union[str, Path]) -> ScenarioSpec:
    """Load and validate a ``.toml`` or ``.json`` scenario document."""
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise ScenarioError(f"cannot read scenario {path}: {exc}") from exc
    suffix = path.suffix.lower()
    if suffix == ".toml":
        try:
            import tomllib
        except ModuleNotFoundError:  # pragma: no cover - Python 3.10
            raise ScenarioError(
                f"{path}: TOML scenario specs need Python >= 3.11 "
                f"(or rewrite the spec as JSON)"
            ) from None
        try:
            data = tomllib.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, tomllib.TOMLDecodeError) as exc:
            raise ScenarioError(f"{path}: invalid TOML: {exc}") from exc
    elif suffix == ".json":
        try:
            data = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ScenarioError(f"{path}: invalid JSON: {exc}") from exc
    else:
        raise ScenarioError(
            f"{path}: unknown scenario format {suffix!r} (use .toml or .json)"
        )
    return ScenarioSpec.from_mapping(data, source=str(path))
