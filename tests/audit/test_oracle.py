"""Differential-oracle tests: paired configurations agree bit-for-bit.

``diff_results``/``assert_identical`` are the helpers the suite's
bit-identity tests now build on; ``diff_run`` is the full paired-run
driver behind ``repro audit diff``.  The small end-to-end grids here pin
the real property on both platforms: serial, pooled, cached, scalar-path,
telemetry-on, and audit-on sweeps all produce the same RunResults.
"""

import dataclasses

import pytest

from repro.audit import (
    DEFAULT_VARIANTS,
    OracleReport,
    VariantOutcome,
    assert_identical,
    diff_results,
    diff_run,
)
from repro.experiments import run_once
from repro.platforms import jetson, zcu102
from repro.runtime import RuntimeConfig
from repro.workload import radar_comms_workload

TINY = radar_comms_workload(n_pd=1, n_tx=1)


@pytest.fixture(scope="module")
def result_pair():
    a = run_once(zcu102(n_cpu=3, n_fft=1), TINY, "api", 200.0, "eft", seed=2)
    b = run_once(zcu102(n_cpu=3, n_fft=1), TINY, "api", 200.0, "eft", seed=2)
    return a, b


# --------------------------------------------------------------------- #
# diff_results / assert_identical
# --------------------------------------------------------------------- #

def test_diff_results_empty_on_identical_runs(result_pair):
    a, b = result_pair
    assert diff_results(a, b) == []


def test_diff_results_names_the_drifted_fields(result_pair):
    a, b = result_pair
    drifted = dataclasses.replace(b, makespan=b.makespan * 2.0,
                                  sched_rounds=b.sched_rounds + 1)
    # names come back in RunResult declaration order
    assert diff_results(a, drifted) == ["sched_rounds", "makespan"]


def test_diff_results_ignore_excludes_by_design_fields(result_pair):
    a, b = result_pair
    drifted = dataclasses.replace(b, telemetry={"cedr_up": 1.0})
    assert diff_results(a, drifted) == ["telemetry"]
    assert diff_results(a, drifted, ignore=("telemetry",)) == []


def test_diff_results_rejects_unknown_ignore_names(result_pair):
    a, b = result_pair
    with pytest.raises(KeyError, match="unknown RunResult fields"):
        diff_results(a, b, ignore=("no_such_field",))


def test_assert_identical_passes_and_fails_with_context(result_pair):
    a, b = result_pair
    assert_identical([[a], [b]], ["serial", "pooled"])
    drifted = dataclasses.replace(b, makespan=b.makespan + 1.0)
    with pytest.raises(AssertionError, match="pooled drifted .* makespan"):
        assert_identical([[a], [drifted]], ["serial", "pooled"])


def test_assert_identical_reports_length_mismatch(result_pair):
    a, b = result_pair
    with pytest.raises(AssertionError, match="1 results"):
        assert_identical([[a, b], [a]], ["serial", "cached"])


# --------------------------------------------------------------------- #
# report rendering
# --------------------------------------------------------------------- #

def test_variant_outcome_describe_both_ways():
    ok = VariantOutcome(variant="jobs", cells=4)
    assert ok.ok and "ok (4 cells" in ok.describe()
    bad = VariantOutcome(
        variant="cache", cells=4,
        mismatches=((1, ("makespan",)),), notes=("cold pass short",),
    )
    assert not bad.ok
    assert "FAIL" in bad.describe()
    assert "cell 1: makespan" in bad.describe()
    assert "cold pass short" in bad.describe()


def test_oracle_report_summary_lists_every_variant():
    report = OracleReport(
        label="zcu102/tiny/api/etf", cells=4,
        outcomes=(VariantOutcome("jobs", 4), VariantOutcome("scalar", 4)),
    )
    assert report.ok
    text = report.summary()
    assert "4 cells x 2 variants" in text
    assert "jobs" in text and "scalar" in text


# --------------------------------------------------------------------- #
# diff_run end to end
# --------------------------------------------------------------------- #

def test_diff_run_rejects_unknown_variants():
    with pytest.raises(KeyError, match="unknown oracle variant"):
        diff_run(zcu102(n_cpu=3, n_fft=1), TINY, "api", [200.0], "etf",
                 variants=("jobs", "warp"))


@pytest.mark.parametrize("platform", [
    pytest.param(zcu102(n_cpu=3, n_fft=1), id="zcu102"),
    pytest.param(jetson(n_cpu=3, n_gpu=1), id="jetson"),
])
def test_diff_run_all_variants_bit_identical(platform):
    """The acceptance grid: every paired configuration reproduces the
    serial baseline exactly, on both platforms."""
    report = diff_run(
        platform, TINY, "api", [150.0, 400.0], "etf",
        trials=2, base_seed=1, jobs=2, variants=DEFAULT_VARIANTS,
    )
    assert report.cells == 4
    assert set(o.variant for o in report.outcomes) == set(DEFAULT_VARIANTS)
    assert report.ok, report.summary()


def test_scalar_estimate_path_matches_vectorized(result_pair):
    """RuntimeConfig(scalar_estimates=True) forces the schedulers onto the
    scalar reference path; the columnar fast path must price identically."""
    a, _ = result_pair
    scalar = run_once(
        zcu102(n_cpu=3, n_fft=1), TINY, "api", 200.0, "eft", seed=2,
        config=RuntimeConfig(scheduler="eft", execute_kernels=False,
                             scalar_estimates=True),
    )
    assert diff_results(a, scalar) == []


def test_event_core_flip_matches_baseline_bit_for_bit(result_pair):
    """The heap reference event core reproduces the wheel run exactly
    (the (when, seq) ordering contract behind the tentpole)."""
    wheel, _ = result_pair
    heap = run_once(
        zcu102(n_cpu=3, n_fft=1), TINY, "api", 200.0, "eft", seed=2,
        config=RuntimeConfig(scheduler="eft", execute_kernels=False).with_event_core("heap"),
    )
    assert_identical([[wheel], [heap]], ["wheel", "heap"])
