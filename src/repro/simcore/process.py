"""Simulated threads and the request protocol they speak to the engine.

A simulated thread is a Python generator.  The generator *yields* request
objects (:class:`Compute`, :class:`Sleep`, :class:`Block`, ...) to the
:class:`~repro.simcore.engine.Engine`, which charges simulated time for the
request and resumes the generator when it is satisfied.  This mirrors how a
real pthread alternates between running on a core and blocking in the kernel,
and is the standard coroutine-based discrete-event style (compare SimPy),
implemented here from scratch so the core-contention model can be exact.

Thread bodies therefore look like straight-line code::

    def worker(engine, queue):
        while True:
            task = yield from queue.get()       # may block
            yield Compute(task.cost)            # processor-shared core time
            task.mark_done()

Only the engine may resume a thread; user code communicates through the
synchronization primitives in :mod:`repro.simcore.sync`.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Generator, Optional

from .errors import SimStateError, SimTimeError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .cores import Core, Device
    from .engine import Engine

__all__ = [
    "Request",
    "Compute",
    "Sleep",
    "Block",
    "Yield",
    "UseDevice",
    "AcquireDevice",
    "ThreadState",
    "SimThread",
]


class Request:
    """Base class for everything a simulated thread may yield."""

    __slots__ = ()


class Compute(Request):
    """Consume ``work`` seconds of *dedicated-core* time.

    On a core shared by ``k`` runnable threads the request takes
    ``work * k / core.speed`` seconds of simulated wall time (processor
    sharing).  ``core`` overrides the thread's affinity for this one segment,
    which the runtime uses to charge accelerator-management work to the
    management thread's host core.

    Requests are plain slotted classes rather than frozen dataclasses: one
    is allocated per simulated event, and a frozen dataclass ``__init__``
    (one ``object.__setattr__`` per field) is several times the cost of
    ordinary attribute assignment on this path.  Treat instances as
    immutable value objects all the same.
    """

    __slots__ = ("work", "core")

    def __init__(self, work: float, core: "Optional[Core]" = None) -> None:
        if work < 0:
            raise SimTimeError(f"negative compute work: {work}")
        self.work = work
        self.core = core

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Compute(work={self.work!r}, core={self.core!r})"


class Sleep(Request):
    """Suspend for ``duration`` seconds of wall time without using any core."""

    __slots__ = ("duration",)

    def __init__(self, duration: float) -> None:
        if duration < 0:
            raise SimTimeError(f"negative sleep duration: {duration}")
        self.duration = duration

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Sleep(duration={self.duration!r})"


class Block(Request):
    """Park until another thread calls :meth:`Engine.wake` on this thread.

    Used exclusively by the synchronization primitives; application-level
    code should block through a mutex/condition variable instead.
    """

    __slots__ = ()


class Yield(Request):
    """Relinquish control for one dispatch round at the current time."""

    __slots__ = ()


class UseDevice(Request):
    """Occupy an exclusive device (accelerator) for ``duration`` seconds.

    The requesting thread blocks while the device works; requests queue FIFO
    when the device is busy.  This models an interrupt-driven dispatch where
    the management thread truly sleeps while the FPGA/GPU runs.
    """

    __slots__ = ("device", "duration")

    def __init__(self, device: "Device", duration: float) -> None:
        if duration < 0:
            raise SimTimeError(f"negative device duration: {duration}")
        self.device = device
        self.duration = duration

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"UseDevice(device={self.device!r}, duration={self.duration!r})"


class AcquireDevice(Request):
    """Block until exclusive ownership of *device* is granted.

    The owner then runs its own (processor-shared) compute segments while
    holding the device and must call ``device.release(thread)`` when done.
    This is the polling-dispatch model used by CEDR's driverless MMIO
    management threads (see :class:`~repro.simcore.cores.Device`).
    """

    __slots__ = ("device",)

    def __init__(self, device: "Device") -> None:
        self.device = device

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"AcquireDevice(device={self.device!r})"


class ThreadState(enum.Enum):
    """Lifecycle of a simulated thread."""

    READY = "ready"        # queued for dispatch at the current instant
    RUNNING = "running"    # inside a Compute segment on some core
    SLEEPING = "sleeping"  # timer-based suspension
    BLOCKED = "blocked"    # waiting on wake() (mutex/cond/device/join)
    FINISHED = "finished"  # generator exhausted


class SimThread:
    """Bookkeeping for one simulated thread.

    ``affinity`` pins the thread to a core (CEDR worker threads); ``None``
    means floating - the engine places each compute segment on the
    least-loaded core, approximating the Linux load balancer that spreads
    CEDR-API application threads across the CPU pool.

    Slotted (not a dataclass): threads are the hottest objects in the
    simulator - they live as dict keys on every core and are touched on
    every dispatch - so attribute storage and the default identity
    ``__hash__``/``__eq__`` (C-level, unlike a dataclass's generated ones)
    measurably matter.
    """

    __slots__ = (
        "name",
        "gen",
        "engine",
        "affinity",
        "state",
        "result",
        "cpu_time",
        "started_at",
        "finished_at",
        "_joiners",
        "_send",
        "_on_core",
        "_finish_virtual",
    )

    def __init__(
        self,
        name: str,
        gen: Generator[Request, Any, Any],
        engine: "Engine",
        affinity: "Optional[Core]" = None,
    ) -> None:
        self.name = name
        self.gen = gen
        self.engine = engine
        self.affinity = affinity
        self.state: ThreadState = ThreadState.READY
        self.result: Any = None
        self.cpu_time: float = 0.0     # dedicated-core seconds actually delivered
        self.started_at: float = 0.0
        self.finished_at: Optional[float] = None
        self._joiners: list["SimThread"] = []
        #: ``gen.send`` pre-bound at spawn: the engine resumes this thread
        #: up to a million times per run, and the two-attribute lookup per
        #: resume is measurable on the flat-core fast path.
        self._send = gen.send
        #: Core-owned placement bookkeeping (set by Core.add, cleared on
        #: segment completion): which core holds this thread's active
        #: segment, and the virtual-clock instant it finishes.  Storing
        #: these on the thread lets cores drop their per-thread dicts.
        self._on_core: "Optional[Core]" = None
        self._finish_virtual: float = 0.0

    @property
    def alive(self) -> bool:
        return self.state is not ThreadState.FINISHED

    def join(self) -> Generator[Request, Any, Any]:
        """Generator: block until this thread finishes, return its result.

        Usage from another thread body: ``res = yield from t.join()``.
        """
        if self.state is ThreadState.FINISHED:
            return self.result
        caller = self.engine.current
        if caller is None:
            raise SimStateError("join() may only be awaited from inside a simulated thread")
        if caller is self:
            raise SimStateError(f"thread {self.name!r} cannot join itself")
        self._joiners.append(caller)
        yield Block()
        return self.result

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SimThread {self.name} {self.state.value}>"
