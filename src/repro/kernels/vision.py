"""Image-processing kernels for the Lane Detection application.

Lane Detection is the paper's autonomous-vehicle workload: a
"convolution intensive routine" that performs its convolutions in the
frequency domain (FFT + ZIP) per the Abtahi et al. reference.  The kernels
here provide the surrounding pipeline: synthetic road-scene generation (we
have no camera), grayscale conversion, the Gaussian/derivative kernels the
convolutions use, gradient-magnitude thresholding, region-of-interest
masking, and a vectorized Hough-transform line fit that turns the edge map
into left/right lane-line estimates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "synthesize_road_frame",
    "to_grayscale",
    "gaussian_kernel",
    "sobel_kernels",
    "gradient_magnitude",
    "threshold_edges",
    "roi_mask",
    "hough_lines",
    "LaneEstimate",
    "extract_lanes",
]


def synthesize_road_frame(
    height: int,
    width: int,
    rng: np.random.Generator,
    lane_offset: float = 0.25,
    noise: float = 0.05,
) -> np.ndarray:
    """Generate an RGB road scene with two bright lane markings.

    Stand-in for the paper's camera input: a dark roadway with two lane
    lines converging toward a vanishing point near the image center, plus
    sensor noise.  Returns float RGB in [0, 1], shape (height, width, 3).
    """
    if height < 16 or width < 16:
        raise ValueError(f"frame too small: {height}x{width}")
    img = np.full((height, width, 3), 0.18)
    img[: height // 3] = 0.55  # sky
    ys = np.arange(height // 3, height)
    t = (ys - height // 3) / max(1, height - height // 3)  # 0 at horizon
    vanish_x = width / 2.0
    for side in (-1.0, 1.0):
        xs = vanish_x + side * lane_offset * width * t
        xs = np.clip(xs, 1, width - 2).astype(int)
        for dx in (-1, 0, 1):
            img[ys, np.clip(xs + dx, 0, width - 1)] = np.array([0.95, 0.95, 0.85])
    img += rng.normal(0.0, noise, img.shape)
    return np.clip(img, 0.0, 1.0)


def to_grayscale(rgb: np.ndarray) -> np.ndarray:
    """ITU-R BT.601 luma conversion."""
    rgb = np.asarray(rgb, dtype=np.float64)
    if rgb.ndim != 3 or rgb.shape[-1] != 3:
        raise ValueError(f"expected (h, w, 3) RGB image, got {rgb.shape}")
    return rgb @ np.array([0.299, 0.587, 0.114])


def gaussian_kernel(size: int = 5, sigma: float = 1.0) -> np.ndarray:
    """Normalized 2-D Gaussian blur kernel."""
    if size % 2 == 0 or size < 1:
        raise ValueError(f"kernel size must be odd and positive, got {size}")
    ax = np.arange(size) - size // 2
    g = np.exp(-(ax**2) / (2.0 * sigma**2))
    k = np.outer(g, g)
    return k / k.sum()


def sobel_kernels() -> tuple[np.ndarray, np.ndarray]:
    """Horizontal and vertical Sobel derivative kernels (gx, gy)."""
    gx = np.array([[-1.0, 0.0, 1.0], [-2.0, 0.0, 2.0], [-1.0, 0.0, 1.0]])
    return gx, gx.T.copy()


def gradient_magnitude(gx_img: np.ndarray, gy_img: np.ndarray) -> np.ndarray:
    """Euclidean gradient magnitude from the two derivative responses."""
    gx_img = np.asarray(gx_img)
    gy_img = np.asarray(gy_img)
    if gx_img.shape != gy_img.shape:
        raise ValueError(f"gradient shapes differ: {gx_img.shape} vs {gy_img.shape}")
    return np.hypot(gx_img, gy_img)


def threshold_edges(magnitude: np.ndarray, quantile: float = 0.95) -> np.ndarray:
    """Binary edge map keeping the strongest ``1 - quantile`` of pixels."""
    if not 0.0 < quantile < 1.0:
        raise ValueError(f"quantile must be in (0, 1), got {quantile}")
    magnitude = np.asarray(magnitude)
    cut = np.quantile(magnitude, quantile)
    return magnitude >= cut


def roi_mask(shape: tuple[int, int], horizon: float = 0.4) -> np.ndarray:
    """Trapezoidal region-of-interest mask covering the roadway.

    Everything above ``horizon`` (fraction of height) is masked out, and
    the kept region narrows toward the horizon like a camera's view of the
    lane ahead.
    """
    h, w = shape
    ys, xs = np.mgrid[0:h, 0:w]
    t = (ys / max(1, h - 1) - horizon) / max(1e-9, 1.0 - horizon)
    half_width = np.clip(t, 0.0, 1.0) * (w / 2.0)
    center = w / 2.0
    return (ys >= horizon * h) & (np.abs(xs - center) <= half_width + 0.05 * w)


def hough_lines(
    edges: np.ndarray,
    n_theta: int = 90,
    n_rho: int = 256,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized Hough transform of a binary edge map.

    Returns ``(accumulator, thetas, rhos)``; the accumulator has shape
    (n_rho, n_theta).  Implemented with one ``np.add.at`` scatter over all
    edge pixels x all angles - no per-pixel Python loop.
    """
    edges = np.asarray(edges, dtype=bool)
    if edges.ndim != 2:
        raise ValueError(f"edge map must be 2-D, got {edges.shape}")
    h, w = edges.shape
    thetas = np.linspace(-np.pi / 2, np.pi / 2, n_theta, endpoint=False)
    diag = float(np.hypot(h, w))
    rhos = np.linspace(-diag, diag, n_rho)
    ys, xs = np.nonzero(edges)
    acc = np.zeros((n_rho, n_theta), dtype=np.int64)
    if ys.size == 0:
        return acc, thetas, rhos
    rho_vals = xs[:, None] * np.cos(thetas)[None, :] + ys[:, None] * np.sin(thetas)[None, :]
    rho_idx = np.clip(
        np.round((rho_vals + diag) / (2 * diag) * (n_rho - 1)).astype(int), 0, n_rho - 1
    )
    theta_idx = np.broadcast_to(np.arange(n_theta)[None, :], rho_idx.shape)
    np.add.at(acc, (rho_idx.ravel(), theta_idx.ravel()), 1)
    return acc, thetas, rhos


@dataclass(frozen=True)
class LaneEstimate:
    """One detected lane line in (rho, theta) normal form plus its votes."""

    rho: float
    theta: float
    votes: int

    def x_at(self, y: float) -> float:
        """X coordinate of this line at row *y* (for overlay/validation)."""
        s, c = np.sin(self.theta), np.cos(self.theta)
        if abs(c) < 1e-9:
            return float("nan")
        return (self.rho - y * s) / c


def extract_lanes(
    acc: np.ndarray, thetas: np.ndarray, rhos: np.ndarray, min_angle_deg: float = 15.0
) -> tuple[LaneEstimate | None, LaneEstimate | None]:
    """Pick the strongest left-leaning and right-leaning lane candidates.

    Lane lines viewed from a dashboard camera are well away from horizontal
    and vertical; candidates within ``min_angle_deg`` of either are ignored.
    A side with no votes yields ``None``.
    """
    deg = np.degrees(thetas)
    plausible = (np.abs(deg) > min_angle_deg) & (np.abs(deg) < 90.0 - min_angle_deg)
    left: LaneEstimate | None = None
    right: LaneEstimate | None = None
    for side_sel, is_left in ((deg < 0, True), (deg > 0, False)):
        sel = plausible & side_sel
        if not sel.any():
            continue
        sub = acc[:, sel]
        if sub.max() == 0:
            continue
        r_i, t_i = np.unravel_index(int(np.argmax(sub)), sub.shape)
        theta = thetas[np.nonzero(sel)[0][t_i]]
        est = LaneEstimate(rho=float(rhos[r_i]), theta=float(theta), votes=int(sub.max()))
        if is_left:
            left = est
        else:
            right = est
    return left, right
