"""Processor-sharing CPU cores and exclusive accelerator devices.

The contention model is the load-bearing piece of this reproduction: every
headline result in the CEDR-API paper (Figs 5-10) is driven by worker,
application, and accelerator-management threads time-sharing a small pool of
ARM cores.  We model each core as an egalitarian processor-sharing server:
when ``k`` threads are runnable on a core of speed ``s``, each progresses at
rate ``s / k``.  This is the fluid limit of the Linux CFS round-robin that
the real CEDR threads experience, and it makes completion times exactly
computable in an event-driven loop (no quantum discretization noise).

Performance: virtual-time accounting
------------------------------------

A naive processor-sharing core decrements every runnable thread's remaining
work on every clock advance - O(runnable) per event, and the dominant cost
of the whole simulator.  Instead each core keeps a *virtual clock* ``V``:
the dedicated-work seconds delivered to each occupant since the core was
created.  A segment of ``w`` work admitted at virtual time ``V0`` finishes
when ``V`` reaches ``V0 + w``; advancing the wall clock by ``dt`` moves
``V`` by ``dt * rate`` once, regardless of how many threads share the core.
Finish instants live in a per-core min-heap, so an advance costs
O(1 + completions log n) instead of O(runnable).

Because the per-thread rate is constant while the core's composition
(runnable set + spinner count) is unchanged, the *absolute* wall-clock
instant of the earliest completion is also constant.  Each core caches it
(:meth:`Core.completion_at`) and invalidates only when a segment is added,
a segment finishes, or the spinner count changes - the invalidation
protocol the engine's advance loop relies on (see docs/INTERNALS.md,
"Performance").

Devices (FFT/MMULT accelerators, the GPU) are exclusive FIFO servers: one
occupant at a time, queued requests served in arrival order.  The CPU-side
cost of talking to a device (DMA setup, ``cudaMemcpy``) is *not* modelled
here - the runtime charges it as ordinary :class:`Compute` work on the
management thread's host core, which is precisely how the paper explains its
scalability results.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from .errors import SimStateError

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Engine
    from .process import SimThread

__all__ = ["Core", "CompletionIndex", "Device", "completion_instant"]

#: Remaining-work threshold below which a compute segment counts as finished.
#: Guards against float round-off leaving 1e-18 core-seconds of zombie work.
WORK_EPSILON = 1e-12


def completion_instant(core: "Core", now: float) -> Optional[float]:
    """Absolute wall-clock instant of *core*'s earliest completion, or None.

    The one authoritative copy of the virtual-time -> wall-time conversion:
    ``Core.completion_at``, ``CompletionIndex.refresh``, and the flat-core
    fast path (:mod:`repro.simcore.flatcore`) all derive their instants from
    this formula, so the mirrors cannot drift.  The float operations (the
    ``k``-share rate product, then one subtraction, one division, one
    addition - in that order) are the bit-identity contract: every caller
    that inlines this for speed must preserve the exact op order.
    """
    heap = core._finish_heap
    n = len(heap)
    if not n:
        return None
    k = n + core._spinners
    rate = core.speed / (k * (1.0 + core.cs_alpha * (k - 1)))
    return now + (heap[0][0] - core._virtual) / rate


class Core:
    """One processor-sharing CPU core.

    ``speed`` is a dimensionless multiplier; kernel cost tables already fold
    in absolute clock rates, so platforms normally leave it at 1.0 and encode
    cross-platform differences (1.2 GHz ARM A53 vs 2.3 GHz Carmel) in the
    cost model.

    ``cs_alpha`` is the context-switch/cache-thrash penalty: with ``k``
    runnable threads the core's *aggregate* delivery rate degrades to
    ``speed / (1 + cs_alpha * (k - 1))``.  Pure processor sharing is
    work-conserving, which would hide the oversubscription cost the paper's
    scalability analysis (Fig. 10) attributes to "each thread waiting for
    longer periods to get access to the CPU core"; the penalty restores it.

    ``spinners`` is the number of busy-polling threads currently parked on
    this core.  CEDR's worker and accelerator-management threads spin on
    their queues, so an *idle* worker still consumes a full processor-sharing
    slot - the mechanism behind the paper's thread-contention findings (API
    threads squeezed by spinning workers in Fig. 6/8, monotone degradation
    with FFT count in Fig. 10a, the 5-CPU minimum in Fig. 10b).  Spinners
    take a share slot but have no work to finish; they vanish from the core
    the instant their queue delivers a task.
    """

    __slots__ = (
        "name",
        "index",
        "speed",
        "cs_alpha",
        "_spinners",
        "delivered",
        "busy_time",
        "_virtual",
        "_finish_heap",
        "_seq",
        "_completion_at",
        "_completion_dirty",
        "_cidx",
        "_cpos",
        "_flat_min",
    )

    def __init__(
        self,
        name: str,
        index: int,
        speed: float = 1.0,
        cs_alpha: float = 0.0,
        spinners: int = 0,
    ) -> None:
        self.name = name
        self.index = index
        self.speed = speed
        self.cs_alpha = cs_alpha
        self._spinners = spinners
        #: total dedicated-core-seconds delivered (for utilization accounting)
        self.delivered: float = 0.0
        #: wall-seconds during which at least one thread was runnable here
        self.busy_time: float = 0.0
        #: dedicated-work seconds delivered per occupant since creation
        self._virtual: float = 0.0
        #: (finish_virtual, seq, thread, work) min-heap of pending segments.
        #: Doubles as the runnable count: every entry is exactly one active
        #: segment, so ``len(_finish_heap)`` *is* the occupancy - the old
        #: ``_nrun``/``_load`` twin counters were redundant mirrors of it
        #: (and two attribute writes per event on the hot path).  The thread
        #: -> finish-virtual mapping lives on the threads themselves
        #: (``SimThread._on_core`` / ``_finish_virtual``) plus this heap, so
        #: the hot add/complete path never touches a dict.
        self._finish_heap: list[tuple[float, int, "SimThread", float]] = []
        self._seq = 0
        #: cached absolute wall-clock instant of the earliest completion
        #: (None = idle); valid while the runnable set and spinner count are
        #: unchanged, recomputed lazily otherwise.
        self._completion_at: Optional[float] = None
        self._completion_dirty = True
        #: back-reference into the engine's :class:`CompletionIndex` (None
        #: for standalone cores); the dirty-push half of the invalidation
        #: protocol described on :meth:`completion_at`.
        self._cidx: Optional["CompletionIndex"] = None
        self._cpos = 0
        #: flat-core scratch: min pending finish virtual, maintained only
        #: while :func:`repro.simcore.flatcore.flat_run` is driving this
        #: core (its pending list is unordered there, so the heap head
        #: lives here); meaningless - and recomputed on entry - otherwise.
        self._flat_min = math.inf

    # identity semantics: cores are placed in dicts/sets by the engine
    # (plain object hash/eq - no overrides needed on a non-dataclass)

    @property
    def spinners(self) -> int:
        return self._spinners

    @spinners.setter
    def spinners(self, value: int) -> None:
        # A spinner arriving/leaving changes the share count, hence the
        # per-thread rate, hence every pending completion instant.
        if value != self._spinners:
            self._spinners = value
            self._mark_completion_dirty()

    def _mark_completion_dirty(self) -> None:
        """Invalidate the cached completion instant and notify the engine's
        :class:`CompletionIndex` (dirty positions are pushed exactly once
        per clean->dirty transition, so the index refresh touches only the
        cores whose composition actually changed)."""
        if not self._completion_dirty:
            self._completion_dirty = True
            idx = self._cidx
            if idx is not None:
                idx._dirty.append(self._cpos)

    @property
    def load(self) -> int:
        """Threads currently sharing this core: runnable plus busy-polling
        spinners.  Used for floating-thread placement - an application
        thread migrating onto a core occupied by a spinning CEDR worker
        really does land in a contended slot, which is why the 3-core
        ZCU102 squeezes application threads while the Jetson's spare cores
        do not (paper Figs 6 vs 8).  Derived live from the finish heap, so
        it is correct even mid-batch inside the flat-core fast path."""
        return len(self._finish_heap) + self._spinners

    @property
    def running(self) -> dict["SimThread", float]:
        """Snapshot of thread -> finish-virtual for the active segments.

        Rebuilt from the finish heap on access (each heap entry is exactly
        one active segment); the hot path keeps only the heap and the
        per-thread slots, so this is an introspection view, not storage.
        """
        return {entry[2]: entry[0] for entry in self._finish_heap}

    def add(self, thread: "SimThread", work: float) -> None:
        if thread._on_core is not None:
            raise SimStateError(
                f"{thread.name!r} already running on core {thread._on_core.name!r}"
            )
        finish = self._virtual + work
        thread._on_core = self
        thread._finish_virtual = finish
        self._seq += 1
        heapq.heappush(self._finish_heap, (finish, self._seq, thread, work))
        self._mark_completion_dirty()

    def remaining_work(self, thread: "SimThread") -> float:
        """Dedicated-core seconds left in *thread*'s current segment."""
        if thread._on_core is not self:
            raise KeyError(thread)
        return thread._finish_virtual - self._virtual

    def _per_thread_rate(self) -> float:
        """Dedicated-work seconds delivered per wall second to each of the
        ``k`` runnable threads, including busy-polling spinners in the share
        count and the context-switch penalty."""
        k = len(self._finish_heap) + self._spinners
        return self.speed / (k * (1.0 + self.cs_alpha * (k - 1)))

    def next_completion_in(self) -> Optional[float]:
        """Wall-seconds until the earliest segment here finishes, or None.

        Delegates to :func:`completion_instant` (relative form) so the
        wall-time conversion exists in exactly one place."""
        at = completion_instant(self, 0.0)
        return None if at is None else at

    def completion_at(self, now: float) -> Optional[float]:
        """Cached absolute instant of the earliest completion (None = idle).

        While the core's composition is unchanged the per-thread rate is
        constant, so the earliest finish is a fixed wall-clock instant no
        matter when it is queried; the cache is invalidated by :meth:`add`,
        by completions inside :meth:`advance`, and by the ``spinners``
        setter.
        """
        if self._completion_dirty:
            self._completion_at = completion_instant(self, now)
            self._completion_dirty = False
        return self._completion_at

    def advance(self, dt: float) -> list["SimThread"]:
        """Progress all runnable threads by ``dt`` wall-seconds.

        Returns the threads whose segments completed.  The engine guarantees
        ``dt`` never overshoots the earliest completion, so remaining work
        stays non-negative up to :data:`WORK_EPSILON`.
        """
        if dt == 0.0:
            return []
        heap = self._finish_heap
        n = len(heap)
        if not n:
            if self._spinners:
                # a busy-polling thread keeps the core active (and drawing
                # power) even with no work item in flight
                self.busy_time += dt
            return []
        k = n + self._spinners
        rate = self.speed / (k * (1.0 + self.cs_alpha * (k - 1)))
        virtual = self._virtual + dt * rate
        self._virtual = virtual
        self.delivered += dt * rate * n
        self.busy_time += dt
        if heap[0][0] > virtual + WORK_EPSILON:
            return []
        done: list["SimThread"] = []
        limit = virtual + WORK_EPSILON
        while heap and heap[0][0] <= limit:
            _, _, thread, work = heapq.heappop(heap)
            thread._on_core = None
            # Credit the segment's exact work on completion (rather than
            # drip-feeding partial grants every advance): cheaper and free
            # of per-advance rounding drift.
            thread.cpu_time += work
            done.append(thread)
        self._mark_completion_dirty()
        return done

    def utilization(self, elapsed: float) -> float:
        """Fraction of wall time this core had runnable work."""
        return 0.0 if elapsed <= 0 else self.busy_time / elapsed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Core {self.name} load={self.load}>"


class CompletionIndex:
    """Cached absolute completion instants for a fixed set of cores.

    The engine's advance loop needs "when does the earliest compute segment
    anywhere finish?" on every iteration, and the audit/introspection layer
    needs the batched form "which cores complete at or before ``t``?".
    Before this index both were per-core method calls; now each core's
    cached :meth:`Core.completion_at` value is mirrored into one flat table
    and only the *dirty* cores (those whose runnable set or spinner count
    changed since the last query - pushed by
    :meth:`Core._mark_completion_dirty`) are re-read.

    Two mirrors of the same instants are kept deliberately:

    * a plain Python list backing :meth:`min_at` - for the small core
      counts of real platforms (3-8) a bound C-loop ``min`` over a list is
      ~5-9x faster than ``ndarray.min()``'s ufunc dispatch, and ``min_at``
      runs once per engine iteration;
    * :attr:`instants` - a NumPy float array (``inf`` = idle core)
      answering the vectorized :meth:`due` query in one comparison pass.
      It is synced from the list lazily, on access: per-element ndarray
      stores in the per-iteration refresh would cost more than the whole
      refresh loop, and the batched query runs far less often than the
      engine advances.

    Attaching a core to a second index (e.g. sharing ``Core`` objects
    between two engines) re-points its back-reference; only the most
    recently attached index sees its invalidations.
    """

    __slots__ = ("cores", "_instants_np", "_np_stale", "_instants_list", "_dirty")

    def __init__(self, cores: Sequence[Core]) -> None:
        self.cores = list(cores)
        n = len(self.cores)
        self._instants_np = np.full(n, np.inf)
        self._np_stale = False
        self._instants_list: list[float] = [math.inf] * n
        self._dirty = list(range(n))
        for pos, core in enumerate(self.cores):
            core._cidx = self
            core._cpos = pos
            core._completion_dirty = True

    def refresh(self, now: float) -> None:
        """Re-read every dirty core's cached completion instant."""
        dirty = self._dirty
        if dirty:
            cores = self.cores
            lst = self._instants_list
            for pos in dirty:
                core = cores[pos]
                # One shared recompute (completion_instant) instead of the
                # old inlined copy of Core.completion_at: the two versions
                # had drifted once already, and the call cost is paid only
                # per *dirty* core per engine iteration.
                if core._completion_dirty:
                    core._completion_at = completion_instant(core, now)
                    core._completion_dirty = False
                at = core._completion_at
                lst[pos] = math.inf if at is None else at
            dirty.clear()
            self._np_stale = True

    @property
    def instants(self) -> np.ndarray:
        """Absolute completion instants, ``inf`` for idle cores (NumPy
        view; call :meth:`refresh` first to fold in pending changes)."""
        if self._np_stale:
            self._instants_np[:] = self._instants_list
            self._np_stale = False
        return self._instants_np

    def min_at(self, now: float) -> Optional[float]:
        """Earliest completion instant across all cores (None = all idle)."""
        self.refresh(now)
        best = math.inf
        for at in self._instants_list:
            if at < best:
                best = at
        return None if best == math.inf else best

    def due(self, t: float, now: Optional[float] = None) -> np.ndarray:
        """Positions of every core whose earliest completion is ``<= t``:
        one vectorized NumPy pass over the cached instants (``now``
        defaults to ``t`` for the refresh)."""
        self.refresh(t if now is None else now)
        return np.nonzero(self.instants <= t)[0]


class Device:
    """An exclusive, FIFO-queued accelerator device.

    Two occupancy styles, never mixed on one device by the runtime:

    * **Timed** (:class:`~repro.simcore.process.UseDevice`): the thread
      blocks and the device auto-releases after a fixed duration - a
      fire-and-forget interrupt-driven dispatch.
    * **Held** (:class:`~repro.simcore.process.AcquireDevice` +
      :meth:`release`): the thread owns the device across its own compute
      segments.  This is how CEDR's driverless MMIO management threads work:
      the mgmt thread *polls* the accelerator, so the device stays occupied
      for as long as the (processor-shared, possibly slowed-down) polling
      loop takes - the contention coupling the paper's Fig. 10 exposes.

    The wait queue is a :class:`~collections.deque`: accelerator queues grow
    deep at high injection rates (every frame of every app funnels through
    one FFT IP in the Fig. 5 configuration), and a list's ``pop(0)`` would
    make draining an n-deep queue quadratic.
    """

    __slots__ = ("name", "engine", "occupant", "queue", "busy_time", "served", "_busy_since")

    def __init__(self, name: str, engine: "Engine") -> None:
        self.name = name
        self.engine = engine
        self.occupant: Optional["SimThread"] = None
        #: waiting (thread, duration-or-None) pairs; None = held-style acquire
        self.queue: deque[tuple["SimThread", Optional[float]]] = deque()
        self.busy_time: float = 0.0
        self.served: int = 0
        self._busy_since: float = 0.0

    @property
    def busy(self) -> bool:
        return self.occupant is not None

    def request(self, thread: "SimThread", duration: Optional[float]) -> None:
        """Enqueue *thread*; ``duration=None`` means held-style acquire."""
        if self.occupant is None:
            self._start(thread, duration)
        else:
            self.queue.append((thread, duration))

    def _start(self, thread: "SimThread", duration: Optional[float]) -> None:
        self.occupant = thread
        self._busy_since = self.engine.now
        if duration is None:
            # held-style: grant immediately; owner releases explicitly
            self.engine.wake(thread)
        else:
            self.engine._schedule_timer(duration, self._timed_complete)

    def _timed_complete(self) -> None:
        thread = self.occupant
        if thread is None:  # pragma: no cover - engine invariant
            raise SimStateError(f"device {self.name!r} completed with no occupant")
        self._finish()
        self.engine.wake(thread)

    def release(self, thread: "SimThread") -> None:
        """Held-style release by the current occupant (synchronous call)."""
        if self.occupant is not thread:
            raise SimStateError(
                f"{thread.name!r} released device {self.name!r} held by "
                f"{self.occupant.name if self.occupant else None!r}"
            )
        self._finish()

    def _finish(self) -> None:
        self.occupant = None
        self.busy_time += self.engine.now - self._busy_since
        self.served += 1
        if self.queue:
            nxt, dur = self.queue.popleft()
            self._start(nxt, dur)

    def utilization(self, elapsed: float) -> float:
        """Fraction of wall time the device spent occupied."""
        extra = (self.engine.now - self._busy_since) if self.busy else 0.0
        return 0.0 if elapsed <= 0 else (self.busy_time + extra) / elapsed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "busy" if self.busy else "idle"
        return f"<Device {self.name} {state} q={len(self.queue)}>"
