"""Unit tests for processor-sharing cores and accelerator devices."""

import pytest

from repro.simcore import AcquireDevice, Compute, Engine, SimStateError, UseDevice
from repro.simcore.cores import Core


def burn(amount):
    yield Compute(amount)


# --------------------------------------------------------------------- #
# Core math
# --------------------------------------------------------------------- #

def test_core_speed_scales_rate():
    eng = Engine(cores=[Core(name="fast", index=0, speed=2.0)])
    t = eng.spawn(burn(1.0), "t")
    eng.run()
    assert t.finished_at == pytest.approx(0.5)


def test_context_switch_penalty_slows_shared_core():
    core = Core(name="c", index=0, cs_alpha=0.1)
    eng = Engine(cores=[core])
    eng.spawn(burn(1.0), "a")
    eng.spawn(burn(1.0), "b")
    # k=2 -> per-thread rate = 1/(2*(1+0.1)) -> both finish at 2.2
    assert eng.run() == pytest.approx(2.2)


def test_cs_penalty_absent_for_single_thread():
    core = Core(name="c", index=0, cs_alpha=0.5)
    eng = Engine(cores=[core])
    eng.spawn(burn(1.0), "a")
    assert eng.run() == pytest.approx(1.0)


def test_spinner_consumes_a_share_slot():
    core = Core(name="c", index=0)
    eng = Engine(cores=[core])
    core.spinners = 1
    t = eng.spawn(burn(1.0), "t")
    eng.run()
    assert t.finished_at == pytest.approx(2.0)  # half rate next to a spinner


def test_spinner_counts_toward_placement_load():
    eng = Engine(cores=2)
    eng.cores[0].spinners = 2
    t = eng.spawn(burn(1.0), "float")
    eng.run()
    # the floating thread must avoid the spinner-crowded core0
    assert eng.cores[1].delivered == pytest.approx(1.0)
    assert t.finished_at == pytest.approx(1.0)


def test_delivered_excludes_spinner_share():
    core = Core(name="c", index=0)
    eng = Engine(cores=[core])
    core.spinners = 1
    eng.spawn(burn(1.0), "t")
    eng.run()
    # only the real thread's 1.0 work units were delivered over 2.0 seconds
    assert core.delivered == pytest.approx(1.0)
    assert core.busy_time == pytest.approx(2.0)


def test_core_advance_empty_returns_nothing():
    core = Core(name="c", index=0)
    assert core.advance(1.0) == []
    assert core.next_completion_in() is None


def test_double_add_same_thread_rejected():
    eng = Engine(cores=1)

    def t():
        yield Compute(1.0)

    thread = eng.spawn(t(), "t")
    eng.run(until=0.1)
    with pytest.raises(SimStateError):
        eng.cores[0].add(thread, 1.0)


# --------------------------------------------------------------------- #
# Devices: timed (UseDevice) mode
# --------------------------------------------------------------------- #

def test_timed_device_serializes_fifo():
    eng = Engine(cores=1)
    dev = eng.add_device("fft0")
    finishes = {}

    def user(name):
        yield UseDevice(dev, 0.3)
        finishes[name] = eng.now

    eng.spawn(user("a"), "a")
    eng.spawn(user("b"), "b")
    eng.run()
    assert finishes["a"] == pytest.approx(0.3)
    assert finishes["b"] == pytest.approx(0.6)
    assert dev.served == 2
    assert dev.busy_time == pytest.approx(0.6)


def test_deep_device_queue_drains_in_fifo_order():
    """A deep accelerator backlog is served strictly in arrival order.

    Regression guard for the wait queue's deque representation: every frame
    of every app funnels through one FFT IP in the Fig. 5 configuration, so
    the queue genuinely grows hundreds deep and draining it must stay
    linear (a list ``pop(0)`` here is quadratic and silently reorders
    nothing - only order, not cost, is observable, hence this test pins the
    order while the benchmark suite pins the cost).
    """
    n = 300
    eng = Engine(cores=1)
    dev = eng.add_device("fft0")
    order = []

    def user(i):
        yield UseDevice(dev, 1e-3)
        order.append(i)

    for i in range(n):
        eng.spawn(user(i), f"u{i}")
    eng.run()
    assert order == list(range(n))
    assert dev.served == n
    assert eng.now == pytest.approx(n * 1e-3)


def test_device_utilization():
    eng = Engine(cores=1)
    dev = eng.add_device("d")

    def user():
        yield Compute(0.5)
        yield UseDevice(dev, 0.5)

    eng.spawn(user(), "u")
    eng.run()
    assert dev.utilization(eng.now) == pytest.approx(0.5)


# --------------------------------------------------------------------- #
# Devices: held (AcquireDevice) mode - the polling-dispatch model
# --------------------------------------------------------------------- #

def test_held_device_spans_owner_compute():
    eng = Engine(cores=2)
    dev = eng.add_device("d")
    grabbed = {}

    def owner():
        yield AcquireDevice(dev)
        grabbed["at"] = eng.now
        me = eng.current
        yield Compute(0.4)
        dev.release(me)

    def waiter():
        yield AcquireDevice(dev)
        me = eng.current
        grabbed["waiter_at"] = eng.now
        dev.release(me)

    eng.spawn(owner(), "owner", affinity=eng.cores[0])
    eng.spawn(waiter(), "waiter", affinity=eng.cores[1])
    eng.run()
    assert grabbed["at"] == 0.0
    assert grabbed["waiter_at"] == pytest.approx(0.4)


def test_held_device_stretches_with_core_contention():
    """Polling occupancy couples device time to host-core load."""
    eng = Engine(cores=1)
    dev = eng.add_device("d")

    def mgmt():
        yield AcquireDevice(dev)
        me = eng.current
        yield Compute(0.5)  # poll loop, shared with the rival below
        dev.release(me)

    eng.spawn(mgmt(), "mgmt")
    eng.spawn(burn(0.5), "rival")
    eng.run()
    # both share the single core, so the device stays busy ~1.0s for 0.5s
    # of poll work
    assert dev.busy_time == pytest.approx(1.0)


def test_release_by_non_owner_rejected():
    eng = Engine(cores=1)
    dev = eng.add_device("d")

    def owner():
        yield AcquireDevice(dev)
        yield Compute(1.0)
        dev.release(eng.current)

    def rogue():
        yield Compute(0.1)
        dev.release(eng.current)

    eng.spawn(owner(), "owner")
    eng.spawn(rogue(), "rogue")
    with pytest.raises(SimStateError):
        eng.run()
