"""Shared fixtures for the reproduction's test suite.

Besides the platform/application fixtures, this conftest installs the
**suite-wide online auditor**: an autouse fixture rebuilds every
:class:`~repro.runtime.CedrRuntime` constructed by any test with
``RuntimeConfig(audit=True)``, so each of the suite's hundreds of simulated
runs is also an invariant-checking run (causality, exactly-once, PE
support/exclusivity, bookkeeping consistency - see ``repro.audit``).  A
scheduling bug anywhere now fails loudly at its first dispatch instead of
silently skewing a figure.  Tests that must control the audit flag
themselves (e.g. the disabled-run byte-identity pins) opt out with
``@pytest.mark.no_auto_audit``.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.apps import LaneDetection, PulseDoppler, WifiTx
from repro.platforms import jetson, zcu102
from repro.runtime.daemon import CedrRuntime


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "no_auto_audit: build CedrRuntimes with the config's own audit flag "
        "instead of force-enabling the online auditor",
    )


_original_runtime_init = CedrRuntime.__init__


@pytest.fixture(autouse=True)
def _auto_audit(request, monkeypatch):
    """Force the online schedule auditor on for every runtime in the suite.

    In-process only: runtimes built inside ``--jobs`` worker processes keep
    their cell's config (their results are diffed bit-exactly against
    audited in-process runs by the determinism tests, which is its own
    check).  Auditing observes and raises - it never mutates - so forcing
    it on cannot change any result a test asserts about.
    """
    if request.node.get_closest_marker("no_auto_audit"):
        yield
        return

    def audited_init(self, platform, config, *args, **kwargs):
        if not config.audit:
            config = dataclasses.replace(config, audit=True)
        _original_runtime_init(self, platform, config, *args, **kwargs)

    monkeypatch.setattr(CedrRuntime, "__init__", audited_init)
    yield


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def zcu_small():
    """ZCU102 with one FFT accelerator (the Fig. 5 configuration)."""
    return zcu102(n_cpu=3, n_fft=1)


@pytest.fixture
def zcu_fig6():
    """ZCU102 with FFT + MMULT (the Fig. 6/7 configuration)."""
    return zcu102(n_cpu=3, n_fft=1, n_mmult=1)


@pytest.fixture
def jetson_small():
    return jetson(n_cpu=3, n_gpu=1)


@pytest.fixture
def pd_small():
    """Pulse Doppler with coarse task batching (fast to simulate/execute)."""
    return PulseDoppler(batch=16)


@pytest.fixture
def tx_small():
    return WifiTx(n_packets=20, batch=4)


@pytest.fixture
def ld_small():
    """Reduced-frame Lane Detection (tile 256) for functional tests."""
    return LaneDetection(height=96, width=128, batch=32)
