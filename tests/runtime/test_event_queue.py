"""EventQueue tests: the daemon's single-consumer mailbox."""

import pytest

from repro.runtime.daemon import EventQueue
from repro.simcore import Compute, Engine, SimStateError


def test_post_then_get_batch_drains_everything():
    eng = Engine(cores=1)
    q = EventQueue(eng)
    got = []

    def consumer():
        batch = yield from q.get_batch()
        got.extend(batch)

    q.post(("a", 1))
    q.post(("b", 2))
    eng.spawn(consumer(), "daemon")
    eng.run()
    assert got == [("a", 1), ("b", 2)]


def test_get_batch_blocks_until_post():
    eng = Engine(cores=1)
    q = EventQueue(eng)
    woke = {}

    def consumer():
        batch = yield from q.get_batch()
        woke["at"] = eng.now
        woke["batch"] = batch

    eng.spawn(consumer(), "daemon")
    eng.call_at(0.3, lambda: q.post(("late", None)))
    eng.run()
    assert woke["at"] == pytest.approx(0.3)
    assert woke["batch"] == [("late", None)]


def test_posts_during_consumer_work_batch_up():
    eng = Engine(cores=1)
    q = EventQueue(eng)
    batches = []

    def consumer():
        for _ in range(2):
            batch = yield from q.get_batch()
            batches.append(list(batch))
            yield Compute(0.5)  # while busy, more events accumulate

    def producer():
        yield from ()
        return None

    eng.spawn(consumer(), "daemon")
    q.post(("first", None))
    for t in (0.1, 0.2, 0.3):
        eng.call_at(t, lambda t=t: q.post(("during", t)))
    eng.run()
    assert batches[0] == [("first", None)]
    assert [kind for kind, _ in batches[1]] == ["during"] * 3


def test_second_consumer_rejected():
    eng = Engine(cores=2)
    q = EventQueue(eng)

    def consumer():
        yield from q.get_batch()

    eng.spawn(consumer(), "daemon1")
    eng.spawn(consumer(), "daemon2")
    with pytest.raises(SimStateError, match="single consumer"):
        eng.run()
