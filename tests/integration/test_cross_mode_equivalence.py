"""Integration: every app, both modes, both platforms, real execution.

The strongest functional statement in the reproduction: the DAG-based and
API-based runtimes, on either emulated platform and any scheduler, compute
bit-identical results to the single-threaded reference - CEDR's promise
that scheduling freedom never changes program semantics.
"""

import numpy as np
import pytest

from repro.platforms import jetson, zcu102
from repro.runtime import CedrRuntime, RuntimeConfig


def run_app(platform_cfg, app_def, inputs, mode, scheduler, seed=11):
    platform = platform_cfg.build(seed=seed)
    runtime = CedrRuntime(platform, RuntimeConfig(scheduler=scheduler))
    runtime.start()
    inst = app_def.make_instance(mode, np.random.default_rng(seed), inputs=inputs)
    runtime.submit(inst, at=0.0)
    runtime.seal()
    runtime.run()
    return inst


PLATFORMS = [
    pytest.param(zcu102(n_cpu=3, n_fft=2, n_mmult=1), id="zcu102"),
    pytest.param(jetson(n_cpu=4, n_gpu=1), id="jetson"),
]


@pytest.mark.parametrize("platform_cfg", PLATFORMS)
@pytest.mark.parametrize("mode", ["dag", "api"])
def test_pd_equivalence(platform_cfg, mode, pd_small, rng):
    inputs = pd_small.make_input(rng)
    ref = pd_small.reference(inputs)
    inst = run_app(platform_cfg, pd_small, inputs, mode, "heft_rt")
    det = inst.result if mode == "api" else inst.state["detection"]
    assert det.range_bin == ref.range_bin
    assert det.doppler_bin == ref.doppler_bin


@pytest.mark.parametrize("platform_cfg", PLATFORMS)
@pytest.mark.parametrize("mode", ["dag", "api"])
def test_tx_equivalence(platform_cfg, mode, tx_small, rng):
    inputs = tx_small.make_input(rng)
    ref = tx_small.reference(inputs)
    inst = run_app(platform_cfg, tx_small, inputs, mode, "etf")
    out = inst.result if mode == "api" else inst.state["frame"]
    assert np.allclose(out, ref, atol=1e-8)


@pytest.mark.parametrize("platform_cfg", PLATFORMS)
@pytest.mark.parametrize("mode", ["dag", "api"])
def test_ld_equivalence(platform_cfg, mode, ld_small, rng):
    inputs = ld_small.make_input(rng)
    ref = ld_small.reference(inputs)
    inst = run_app(platform_cfg, ld_small, inputs, mode, "rr")
    lanes = inst.result if mode == "api" else inst.state["lanes"]
    assert lanes[0] is not None and lanes[1] is not None
    assert lanes[0].theta == pytest.approx(ref[0].theta)
    assert lanes[1].theta == pytest.approx(ref[1].theta)


def test_mixed_workload_all_apps_complete_and_agree(
    pd_small, tx_small, ld_small, rng
):
    """The AV scenario end to end with real execution on one platform."""
    platform = zcu102(n_cpu=3, n_fft=2).build(seed=13)
    runtime = CedrRuntime(platform, RuntimeConfig(scheduler="heft_rt"))
    runtime.start()
    checks = []
    for app_def in (ld_small, pd_small, tx_small, pd_small):
        inputs = app_def.make_input(rng)
        ref = app_def.reference(inputs)
        inst = app_def.make_instance("api", rng, inputs=inputs)
        runtime.submit(inst, at=0.001 * len(checks))
        checks.append((app_def.name, inst, ref))
    runtime.seal()
    runtime.run()
    for name, inst, ref in checks:
        assert inst.finished, name
        if name == "PD":
            assert inst.result.range_bin == ref.range_bin
        elif name == "TX":
            assert np.allclose(inst.result, ref, atol=1e-8)
        else:
            assert inst.result[0].theta == pytest.approx(ref[0].theta)
