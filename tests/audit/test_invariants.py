"""Negative tests for the invariant catalog: every check must actually fire.

Each test hand-corrupts one aspect of an otherwise-consistent
:class:`AuditView` (synthetic records, or a real run's logbook with one
record rewritten) and asserts the *named* invariant reports it with the
right :class:`AuditViolation` code.  A catalog whose checks never fire is
indistinguishable from no auditing at all - this file is the audit layer's
own audit.
"""

import dataclasses

import numpy as np
import pytest

from repro.apps import PulseDoppler
from repro.audit import (
    CATALOG,
    AuditError,
    AuditView,
    AuditViolation,
    audit_logbook,
    audit_runtime,
    audit_view,
)
from repro.audit.invariants import CoreLoad
from repro.platforms import zcu102
from repro.runtime import CedrRuntime, RuntimeConfig
from repro.runtime.logbook import AppRecord, Logbook, TaskRecord
from repro.runtime.perf_counters import PECounters, PerfCounters

TOKEN = 7       # the synthetic run's one cost-table token
N_ROWS = 64     # and its table size


def rec(tid, **kw):
    """A well-formed synthetic TaskRecord; kwargs override single fields."""
    base = dict(
        tid=tid, app_id=1, api="fft", name=f"t{tid}", pe="cpu0", pe_kind="cpu",
        t_release=0.0, t_scheduled=0.0, t_start=0.0, t_finish=0.1,
        attempts=0, cost_row=tid, cost_token=TOKEN, successors=(),
    )
    base.update(kw)
    return TaskRecord(**base)


def make_view(tasks, apps=(), **kw):
    """An AuditView over synthetic records with a live cost-table identity."""
    defaults = dict(
        cost_table_token=TOKEN,
        cost_table_rows=N_ROWS,
        makespan=max((t.t_finish for t in tasks), default=0.0),
    )
    defaults.update(kw)
    return AuditView(tasks=tuple(tasks), apps=tuple(apps), **defaults)


def _clean_tasks():
    """Three tasks, two PEs, one dependency edge - nothing wrong."""
    return (
        rec(1, pe="fft0", pe_kind="fft",
            t_release=0.0, t_scheduled=0.05, t_start=0.1, t_finish=0.3,
            successors=(3,)),
        rec(2, pe="cpu0", pe_kind="cpu",
            t_release=0.3, t_scheduled=0.35, t_start=0.4, t_finish=0.6),
        rec(3, pe="fft0", pe_kind="fft",
            t_release=0.3, t_scheduled=0.35, t_start=0.4, t_finish=0.5),
    )


def _clean_counters():
    return PerfCounters(
        per_pe={"fft0": PECounters(tasks=2), "cpu0": PECounters(tasks=1)},
        ready_depth_max=2, ready_depth_sum=3, sched_rounds=2,
        tasks_completed=3, apps_completed=1,
    )


def _clean_view(**kw):
    tasks = _clean_tasks()
    apps = (AppRecord(app_id=1, name="app", mode="dag", t_arrival=0.0,
                      t_launch=0.0, t_finish=0.7, n_tasks=3),)
    defaults = dict(rounds=((0.05, 1), (0.35, 2)), makespan=0.7)
    defaults.update(kw)
    return make_view(tasks, apps, **defaults)


# --------------------------------------------------------------------- #
# the positive control
# --------------------------------------------------------------------- #

def test_clean_view_passes_whole_catalog():
    view = _clean_view(
        counters=_clean_counters(),
        telemetry={
            "cedr_tasks_completed": 3, "cedr_sched_rounds": 2,
            "cedr_apps_completed": 1, "cedr_task_retries_total": 0,
            "cedr_pe_dispatch_total{pe=fft0}": 2,
            "cedr_pe_dispatch_total{pe=cpu0}": 1,
        },
        core_loads=(CoreLoad("cpu0", speed=1.0, delivered=0.3, busy_time=0.4),),
    )
    report = audit_view(view)
    assert report.ok and report.codes == set()
    assert report.invariants_checked == len(CATALOG)
    assert report.tasks == 3 and report.apps == 1
    assert "ok" in report.summary()
    report.raise_if_failed()  # no-op on a clean view


def test_empty_view_passes():
    """No instrumentation at all: every invariant skips, none invents."""
    assert audit_view(AuditView()).ok


# --------------------------------------------------------------------- #
# one test per invariant code
# --------------------------------------------------------------------- #

def test_causality_fires_on_child_starting_before_parent_finishes():
    parent = rec(1, pe="fft0", pe_kind="fft",
                 t_start=0.1, t_finish=0.3, successors=(2,))
    child = rec(2, pe="cpu0", t_release=0.1, t_scheduled=0.15,
                t_start=0.2, t_finish=0.25)
    report = audit_view(make_view([parent, child]))
    assert report.codes == {"causality"}
    [v] = report.violations
    assert v.tid == 2 and v.pe == "cpu0"


def test_causality_skips_successors_missing_from_the_log():
    parent = rec(1, t_finish=0.3, successors=(99,))
    assert audit_view(make_view([parent])).ok


def test_exactly_once_fires_on_duplicate_tid():
    a = rec(5, pe="cpu0", t_start=0.0, t_finish=0.1)
    b = rec(5, pe="cpu1", t_start=0.2, t_finish=0.3,
            t_release=0.15, t_scheduled=0.18)
    report = audit_view(make_view([a, b]))
    assert report.codes == {"exactly-once"}
    assert report.violations[0].tid == 5


def test_pe_support_fires_on_unsupported_api():
    bad = rec(1, api="gemm", pe="fft0", pe_kind="fft")
    report = audit_view(make_view([bad]))
    assert report.codes == {"pe-support"}
    assert "supports only" in str(report.violations[0])


def test_pe_support_fires_on_unknown_pe_kind():
    bad = rec(1, pe="npu0", pe_kind="npu")
    report = audit_view(make_view([bad]))
    assert report.codes == {"pe-support"}
    assert "unknown PE kind" in str(report.violations[0])


def test_pe_exclusive_fires_on_overlapping_accelerator_intervals():
    a = rec(1, pe="fft0", pe_kind="fft", t_start=0.1, t_finish=0.3)
    b = rec(2, pe="fft0", pe_kind="fft",
            t_release=0.1, t_scheduled=0.15, t_start=0.2, t_finish=0.4)
    report = audit_view(make_view([a, b]))
    assert report.codes == {"pe-exclusive"}
    assert report.violations[0].pe == "fft0"


def test_pe_exclusive_allows_back_to_back_intervals():
    a = rec(1, pe="fft0", pe_kind="fft", t_start=0.1, t_finish=0.3)
    b = rec(2, pe="fft0", pe_kind="fft",
            t_release=0.1, t_scheduled=0.2, t_start=0.3, t_finish=0.4)
    assert audit_view(make_view([a, b])).ok


def test_core_capacity_fires_on_overdelivered_core():
    view = make_view(_clean_tasks(), makespan=0.7, core_loads=(
        CoreLoad("cpu0", speed=1.0, delivered=1.5, busy_time=0.5),
    ))
    report = audit_view(view)
    assert report.codes == {"core-capacity"}


def test_core_capacity_fires_on_busy_time_beyond_makespan():
    view = make_view(_clean_tasks(), makespan=0.7, core_loads=(
        CoreLoad("cpu0", speed=2.0, delivered=0.5, busy_time=0.9),
    ))
    assert audit_view(view).codes == {"core-capacity"}


def test_clock_monotonic_fires_on_regressing_task_timestamps():
    bad = rec(1, t_release=0.0, t_scheduled=0.4, t_start=0.3, t_finish=0.6)
    report = audit_view(make_view([bad]))
    assert report.codes == {"clock-monotonic"}
    assert "regress" in str(report.violations[0])


def test_clock_monotonic_fires_on_finish_beyond_makespan():
    late = rec(1, t_finish=1.0)
    report = audit_view(make_view([late], makespan=0.7))
    assert report.codes == {"clock-monotonic"}
    assert "makespan" in str(report.violations[0])


def test_clock_monotonic_fires_on_app_launched_before_arrival():
    app = AppRecord(app_id=1, name="a", mode="api",
                    t_arrival=0.5, t_launch=0.1, t_finish=0.9, n_tasks=0)
    report = audit_view(make_view([], [app]))
    assert report.codes == {"clock-monotonic"}


def test_clock_monotonic_excuses_cancelled_apps_from_launch_ordering():
    """A kill can land before launch bookkeeping; only arrival <= finish."""
    app = AppRecord(app_id=1, name="a", mode="dag", t_arrival=0.5,
                    t_launch=0.0, t_finish=0.6, n_tasks=4, cancelled=True)
    assert audit_view(make_view([], [app])).ok


def test_round_monotonic_fires_on_time_travel():
    view = make_view(_clean_tasks(), rounds=((0.5, 1), (0.2, 1)), makespan=0.7)
    assert audit_view(view).codes == {"round-monotonic"}


def test_round_monotonic_fires_on_empty_round():
    view = make_view(_clean_tasks(), rounds=((0.05, 0),), makespan=0.7)
    report = audit_view(view)
    assert report.codes == {"round-monotonic"}
    assert "ready depth" in str(report.violations[0])


def test_round_monotonic_fires_on_round_beyond_makespan():
    view = make_view(_clean_tasks(), rounds=((0.9, 1),), makespan=0.7)
    assert audit_view(view).codes == {"round-monotonic"}


def test_app_accounting_fires_on_lost_task():
    """Drop one completion record: the app's ledger no longer balances."""
    view = _clean_view()
    view.tasks = view.tasks[:-1]
    report = audit_view(view)
    assert report.codes == {"app-accounting"}
    assert "2 completions" in str(report.violations[0])


def test_app_accounting_fires_on_unterminated_app():
    app = AppRecord(app_id=1, name="a", mode="api", t_arrival=0.0, n_tasks=0)
    report = audit_view(make_view([], [app]))
    assert report.codes == {"app-accounting"}
    assert "never terminated" in str(report.violations[0])


def test_app_accounting_skips_cancelled_and_failed_apps():
    apps = (
        AppRecord(app_id=1, name="a", mode="dag", t_arrival=0.0,
                  t_finish=0.5, n_tasks=9, cancelled=True),
        AppRecord(app_id=2, name="b", mode="dag", t_arrival=0.0,
                  t_finish=0.5, n_tasks=9, failed=True),
    )
    assert audit_view(make_view([], apps)).ok


def test_app_accounting_fires_on_counter_mismatch():
    counters = _clean_counters()
    counters.apps_completed = 2
    report = audit_view(_clean_view(counters=counters),
                        codes=["app-accounting"])
    assert report.codes == {"app-accounting"}


def test_task_conservation_fires_on_counter_log_mismatch():
    counters = _clean_counters()
    counters.tasks_completed = 2
    report = audit_view(_clean_view(counters=counters),
                        codes=["task-conservation"])
    assert report.codes == {"task-conservation"}
    assert "lost or" in str(report.violations[0])


def test_task_conservation_fires_on_unbacked_retry_attempts():
    view = _clean_view(counters=_clean_counters())
    view.tasks = (dataclasses.replace(view.tasks[0], attempts=2),
                  *view.tasks[1:])
    report = audit_view(view, codes=["task-conservation"])
    assert report.codes == {"task-conservation"}
    assert "retry attempts" in str(report.violations[0])


def test_task_conservation_fires_on_orphan_lost_task():
    counters = _clean_counters()
    counters.tasks_lost = 1          # ... but no app is marked failed
    counters.task_failures = 1
    report = audit_view(_clean_view(counters=counters),
                        codes=["task-conservation"])
    assert report.codes == {"task-conservation"}
    assert "failed" in str(report.violations[0])


def test_task_conservation_fires_on_short_failure_ledger():
    counters = _clean_counters()
    counters.retries = 2             # retries without recorded failures
    report = audit_view(_clean_view(counters=counters),
                        codes=["task-conservation"])
    assert report.codes == {"task-conservation"}
    assert "ledger short" in str(report.violations[0])


def test_queue_accounting_fires_on_round_count_mismatch():
    counters = _clean_counters()
    counters.sched_rounds = 5
    report = audit_view(_clean_view(counters=counters),
                        codes=["queue-accounting"])
    assert report.codes == {"queue-accounting"}


def test_queue_accounting_fires_on_depth_sum_and_max_mismatch():
    counters = _clean_counters()
    counters.ready_depth_sum = 9
    counters.ready_depth_max = 7
    report = audit_view(_clean_view(counters=counters),
                        codes=["queue-accounting"])
    assert len(report.violations) == 2
    assert report.codes == {"queue-accounting"}


def test_queue_accounting_fires_on_per_pe_histogram_mismatch():
    counters = _clean_counters()
    counters.per_pe["fft0"].tasks = 1
    counters.per_pe["cpu0"].tasks = 2
    report = audit_view(_clean_view(counters=counters),
                        codes=["queue-accounting"])
    assert report.codes == {"queue-accounting"}
    assert any(v.pe == "fft0" for v in report.violations)


def test_telemetry_consistency_fires_on_drifted_gauge():
    view = _clean_view(
        counters=_clean_counters(),
        telemetry={"cedr_tasks_completed": 4},
    )
    report = audit_view(view, codes=["telemetry-consistency"])
    assert report.codes == {"telemetry-consistency"}


def test_telemetry_consistency_fires_on_per_pe_drift():
    view = _clean_view(
        counters=_clean_counters(),
        telemetry={"cedr_pe_dispatch_total{pe=fft0}": 9},
    )
    report = audit_view(view, codes=["telemetry-consistency"])
    assert report.codes == {"telemetry-consistency"}
    assert report.violations[0].pe == "fft0"


def test_cost_row_fresh_fires_on_stale_token():
    stale = rec(1, cost_token=TOKEN - 1)
    report = audit_view(make_view([stale]))
    assert report.codes == {"cost-row-fresh"}
    assert "stale cost token" in str(report.violations[0])


def test_cost_row_fresh_fires_on_uninterned_row():
    bad = rec(1, cost_row=-1)
    report = audit_view(make_view([bad]))
    assert report.codes == {"cost-row-fresh"}
    assert "without an interned" in str(report.violations[0])


def test_cost_row_fresh_fires_on_out_of_range_row():
    bad = rec(1, cost_row=N_ROWS)
    report = audit_view(make_view([bad]))
    assert report.codes == {"cost-row-fresh"}


def test_cost_row_fresh_fires_offline_on_mixed_tokens():
    """An offline dump carries no live table, but one run = one table."""
    a, b = rec(1, cost_token=3), rec(2, cost_token=4, pe="cpu1")
    view = make_view([a, b], cost_table_token=None, cost_table_rows=None)
    report = audit_view(view)
    assert report.codes == {"cost-row-fresh"}
    assert "2 different cost" in str(report.violations[0])


def test_checks_skip_when_task_logging_was_off():
    """log_tasks=False legitimately empties the task stream: the
    count-based invariants must not report the silence as loss."""
    counters = _clean_counters()
    view = _clean_view(counters=counters, log_enabled=False)
    view.tasks = ()
    assert audit_view(view).ok


# --------------------------------------------------------------------- #
# report / selection machinery
# --------------------------------------------------------------------- #

def test_audit_view_subset_runs_only_named_invariants():
    report = audit_view(_clean_view(), codes=["pe-support", "causality"])
    assert report.invariants_checked == 2 and report.ok


def test_audit_view_rejects_unknown_codes():
    with pytest.raises(KeyError, match="unknown invariant"):
        audit_view(_clean_view(), codes=["pe-support", "made-up"])


def test_raise_if_failed_carries_all_violations():
    view = make_view([rec(1, cost_row=-1, pe="npu0", pe_kind="npu")])
    report = audit_view(view)
    assert report.codes == {"cost-row-fresh", "pe-support"}
    with pytest.raises(AuditError) as ei:
        report.raise_if_failed()
    assert len(ei.value.violations) == 2
    assert "2 violation(s)" in str(ei.value)


def test_violation_message_carries_location_fields():
    v = AuditViolation("pe-support", "boom", tid=7, pe="fft0", t=1.5)
    assert v.code == "pe-support"
    assert "[pe-support]" in str(v)
    assert "tid=7" in str(v) and "pe=fft0" in str(v) and "t=1.5" in str(v)


# --------------------------------------------------------------------- #
# corrupting a *real* run's logbook
# --------------------------------------------------------------------- #

@pytest.fixture(scope="module")
def real_run():
    """One deterministic audited run: two Pulse Doppler instances."""
    platform = zcu102(n_cpu=3, n_fft=1).build(seed=11)
    config = RuntimeConfig(scheduler="etf", execute_kernels=False, audit=True)
    runtime = CedrRuntime(platform, config)
    runtime.start()
    rng = np.random.default_rng(11)
    pd = PulseDoppler(batch=16)
    runtime.submit(pd.make_instance("dag", rng), at=0.0)
    runtime.submit(pd.make_instance("api", rng), at=0.002)
    runtime.seal()
    runtime.run()
    return runtime


def _rebuild(runtime, tasks):
    book = Logbook()
    book.tasks = list(tasks)
    book.apps = dict(runtime.logbook.apps)
    book.rounds = list(runtime.logbook.rounds)
    return book


def test_real_run_audits_clean_live_and_offline(real_run):
    assert audit_runtime(real_run).ok
    assert audit_logbook(real_run.logbook).ok


def test_real_logbook_with_overlapping_intervals_fails(real_run):
    tasks = list(real_run.logbook.tasks)
    by_pe = {}
    for i, t in enumerate(tasks):
        by_pe.setdefault(t.pe, []).append(i)
    pe, idxs = next((p, i) for p, i in by_pe.items() if len(i) >= 2)
    first, second = sorted(idxs, key=lambda i: tasks[i].t_start)[:2]
    inside = (tasks[first].t_start + tasks[first].t_finish) / 2
    tasks[second] = dataclasses.replace(
        tasks[second],
        t_release=tasks[first].t_start, t_scheduled=tasks[first].t_start,
        t_start=inside,
    )
    report = audit_logbook(_rebuild(real_run, tasks))
    assert "pe-exclusive" in report.codes
    assert any(v.pe == pe for v in report.violations)


def test_real_logbook_with_lost_task_fails(real_run):
    tasks = list(real_run.logbook.tasks)[:-1]
    report = audit_logbook(_rebuild(real_run, tasks))
    assert "app-accounting" in report.codes


def test_real_logbook_with_stale_cost_token_fails(real_run):
    tasks = list(real_run.logbook.tasks)
    tasks[0] = dataclasses.replace(tasks[0], cost_token=tasks[0].cost_token + 1)
    report = audit_logbook(_rebuild(real_run, tasks))
    assert "cost-row-fresh" in report.codes
