"""Exception hierarchy for the discrete-event simulation core.

Every error raised by :mod:`repro.simcore` derives from :class:`SimError` so
callers can catch simulation-layer failures without masking programming
errors elsewhere in the stack.
"""

from __future__ import annotations


class SimError(Exception):
    """Base class for all simulation-core errors."""


class SimDeadlock(SimError):
    """Raised when the engine runs out of events while threads are blocked.

    A deadlock in simulated time means every live thread is waiting on a
    condition variable, mutex, or join that no runnable thread can ever
    satisfy.  The message lists the blocked threads to aid debugging.
    """


class SimStateError(SimError):
    """Raised on illegal simulation operations.

    Examples: waiting on a condition variable without holding its mutex,
    releasing a mutex the thread does not own, or spawning a thread on an
    unknown core.
    """


class SimTimeError(SimError):
    """Raised when a request would move simulated time backwards or uses a
    negative duration/work amount."""
