"""Round Robin: the paper's fairness baseline.

Assigns ready tasks to supporting PEs in cyclic order with no regard for
expected finish times.  The paper observes (Figs 9-10) that RR degrades as
heterogeneity grows because it "tries to use all of the PEs equally",
maximizing the number of active accelerator-management threads competing
for scarce CPU cores - behaviour this implementation reproduces verbatim.
"""

from __future__ import annotations

from typing import Sequence

from .base import EstimateFn, Scheduler, candidate_mask, register_scheduler

__all__ = ["RoundRobin"]


@register_scheduler
class RoundRobin(Scheduler):
    """O(1)-per-task cyclic assignment."""

    name = "rr"

    def __init__(self, cost_per_task_us: float = 0.18) -> None:
        self._cursor = 0
        self.cost_per_task_us = cost_per_task_us

    def schedule(self, ready, pes: Sequence, now: float, estimate: EstimateFn):
        if not ready:
            return []
        # One candidate matrix per round replaces the old per-task
        # compatible() set rebuild; compatibility still composes the live
        # support matrix *and* the fault subsystem's availability/ban masks,
        # so a ZIP task skips over FFT accelerators and everything skips
        # quarantined or dead PEs exactly like CEDR's dispatch loop.
        mask = candidate_mask(ready, pes, estimate)
        assignments = []
        n = len(pes)
        for i, task in enumerate(ready):
            allowed = mask[i]
            # advance the cursor until a compatible PE comes up
            for _ in range(n):
                j = self._cursor % n
                self._cursor += 1
                if allowed[j]:
                    break
            pe = pes[j]
            assignments.append((task, pe))
            pe.expected_free = max(pe.expected_free, now) + estimate(task, pe)
        return assignments

    def round_cost(self, n_ready: int, n_pes: int) -> float:
        return self.cost_per_task_us * 1e-6 * n_ready
