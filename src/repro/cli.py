"""Command-line interface: run workloads and regenerate paper figures.

The real CEDR ships command-line tools (``sub_dag`` and friends) that
submit applications to the daemon over IPC.  This module is the
reproduction's equivalent front end::

    python -m repro list
    python -m repro run --platform zcu102 --fft 2 --apps PD:3,TX:3 \\
        --mode api --scheduler heft_rt --rate 200
    python -m repro run --platform jetson --apps LD:1,PD:2 --trace out.json
    python -m repro run --apps PD:2 --metrics-out out/metrics --metrics-interval 0.01
    python -m repro scenario run examples/scenarios/radar_zcu102.toml
    python -m repro figure fig5
    python -m repro figure fig10a --trials 2
    python -m repro telemetry

``run`` prints the paper's three metrics for the run (plus optional energy
and a Chrome trace dump); ``scenario`` validates/lists/executes declarative
TOML/JSON experiment documents; ``figure`` prints the regenerated series
tables of the requested evaluation figure; ``telemetry`` prints the metric
catalog the telemetry subsystem exports (names, types, bucket ladders).

Every extension axis the CLI exposes - platforms, applications, workload
presets, schedulers, arrival processes, fault kinds, figures - is driven
by the corresponding :mod:`repro.registry` registry, so argparse choices,
``repro list`` output, and dispatch are all one table, and third-party
plugins appear everywhere at once.
"""

from __future__ import annotations

import argparse
import sys
import warnings
from typing import Optional, Sequence

from repro.apps import APPS, available_apps
from repro.metrics import RunResult
from repro.platforms import (
    PLATFORMS,
    available_platforms,
    estimate_energy,
    make_platform,
)
from repro.runtime import CedrRuntime, RuntimeConfig
from repro.runtime.trace import write_chrome_trace
from repro.sched import available_schedulers
from repro.serve.admission import ADMISSION_POLICIES
from repro.simcore import (
    CORE_IMPLS,
    DEFAULT_CORE_IMPL,
    DEFAULT_EVENT_CORE,
    EVENT_CORES,
)
from repro.workload import WorkloadEntry, WorkloadSpec

__all__ = ["main", "build_parser"]

MODES = ("dag", "api")

#: platform parameters the oracle sweeps use (match the figure configs)
AUDIT_PLATFORM_PARAMS = {
    "zcu102": (("cpu", 3), ("fft", 1)),
    "jetson": (("cpu", 3),),
    "zcu102-biglittle": (("cpu", 3), ("fft", 1), ("little", 4), ("mmult", 0)),
}

_DEPRECATED_ATTRS = {
    "APP_FACTORIES": "repro.apps.APPS",
    "PLATFORM_NAMES": "repro.platforms.available_platforms()",
    "FIGURE_IDS": "repro.experiments.available_figures()",
}


def __getattr__(name: str):
    """Deprecated module constants, now thin views over the registries."""
    if name in _DEPRECATED_ATTRS:
        warnings.warn(
            f"repro.cli.{name} is deprecated; use {_DEPRECATED_ATTRS[name]}",
            DeprecationWarning,
            stacklevel=2,
        )
        if name == "APP_FACTORIES":
            return {app: entry.factory for app, entry in APPS.items()}
        if name == "PLATFORM_NAMES":
            return tuple(available_platforms())
        from repro.experiments import available_figures

        return tuple(available_figures())
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


# --------------------------------------------------------------------- #
# shared option groups (one definition, every subcommand)
# --------------------------------------------------------------------- #


def _add_platform_options(parser, *, params: bool = True,
                          help: str = "") -> None:
    """The ``--platform`` family shared by run/serve/audit."""
    parser.add_argument("--platform", choices=available_platforms(),
                        default="zcu102", help=help or None)
    if not params:
        return
    parser.add_argument("--cpu", type=int, default=None,
                        help="CPU worker PEs (platform default if omitted)")
    parser.add_argument("--fft", type=int, default=1,
                        help="FFT accelerators (ZCU102)")
    parser.add_argument("--mmult", type=int, default=0,
                        help="MMULT accelerators (ZCU102)")
    parser.add_argument("--little", type=int, default=4,
                        help="LITTLE cores (zcu102-biglittle only)")
    parser.add_argument("--gpu", type=int, default=None,
                        help="GPU accelerators (jetson only)")


def _add_mode_option(parser) -> None:
    parser.add_argument("--mode", choices=MODES, default="api")


def _add_event_core_option(parser, *, long_help: bool = False) -> None:
    help_text = "simulator timer-queue implementation"
    if long_help:
        help_text += (": calendar-queue timer wheel (default) or the "
                      "reference binary heap; results are bit-identical "
                      "either way")
    parser.add_argument("--event-core", choices=EVENT_CORES,
                        default=DEFAULT_EVENT_CORE, help=help_text)


def _add_core_impl_option(parser, *, long_help: bool = False) -> None:
    help_text = "engine main-loop implementation"
    if long_help:
        help_text += (": the per-object reference loop (default) or the "
                      "flat structure-of-arrays fast path; results are "
                      "bit-identical either way")
    parser.add_argument("--core-impl", choices=CORE_IMPLS,
                        default=DEFAULT_CORE_IMPL, help=help_text)


def _add_admission_options(parser, *, default: str = "shed",
                           caps: bool = True) -> None:
    """The admission-control block shared by serve and ``audit diff``."""
    parser.add_argument("--admission", choices=ADMISSION_POLICIES,
                        default=default,
                        help="policy for arrivals the system cannot take")
    parser.add_argument("--slo-ms", type=float, default=50.0,
                        help="per-tenant response-time objective, ms")
    if not caps:
        return
    parser.add_argument("--max-in-system", type=int, default=32,
                        help="admitted-but-unfinished cap across tenants")
    parser.add_argument("--queue-cap", type=int, default=16,
                        help="per-tenant hold-queue bound (block policy)")
    parser.add_argument("--quota-rate", type=float, default=0.0,
                        help="per-tenant token-bucket refill, arrivals/s "
                             "(0 = unlimited)")


def _add_cache_options(parser) -> None:
    """The sweep-cache block shared by figure and ``scenario run``."""
    cache = parser.add_mutually_exclusive_group()
    cache.add_argument("--cache", action="store_true",
                       help="reuse previously simulated sweep cells from the "
                            "content-addressed cache (default dir "
                            ".repro-cache/; see also $REPRO_CACHE)")
    cache.add_argument("--no-cache", action="store_true",
                       help="force caching off, overriding $REPRO_CACHE")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="cache directory (implies --cache)")


def build_parser() -> argparse.ArgumentParser:
    from repro.experiments import available_figures

    parser = argparse.ArgumentParser(
        prog="repro",
        description="CEDR-API reproduction: run emulated DSSoC workloads "
                    "and regenerate the paper's figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list every registered plugin axis "
                                "(platforms, apps, schedulers, ...)")

    run = sub.add_parser("run", help="run a workload and print its metrics")
    _add_platform_options(run)
    run.add_argument("--apps", default="PD:2,TX:2",
                     help="comma list of NAME:COUNT (apps: %s)"
                          % ",".join(available_apps()))
    _add_mode_option(run)
    run.add_argument("--scheduler", default="heft_rt")
    run.add_argument("--rate", type=float, default=200.0, help="injection rate, Mbps")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--timing-only", action="store_true",
                     help="skip functional kernel execution")
    _add_event_core_option(run, long_help=True)
    _add_core_impl_option(run, long_help=True)
    run.add_argument("--energy", action="store_true", help="print an energy estimate")
    run.add_argument("--trace", metavar="PATH", default=None,
                     help="write a Chrome trace (chrome://tracing) to PATH")
    run.add_argument("--gantt", action="store_true",
                     help="print an ASCII Gantt chart of the schedule")
    run.add_argument("--verbose", action="store_true",
                     help="also print simulator perf counters "
                          "(events processed per wall second)")
    run.add_argument("--perf-json", metavar="PATH", default=None,
                     help="dump the runtime's PerfCounters snapshot "
                          "(incl. fault/retry counters) as JSON to PATH")
    run.add_argument("--fault-rate", type=float, default=0.0,
                     help="per-PE fault rate, faults per simulated second "
                          "(0 disables fault injection)")
    run.add_argument("--fault-seed", type=int, default=None,
                     help="fault-schedule seed (default: derive from --seed)")
    run.add_argument("--fault-kinds", default="transient,hang,slowdown",
                     help="comma list of fault kinds to inject "
                          "(transient,hang,failstop,slowdown)")
    run.add_argument("--max-retries", type=int, default=3,
                     help="per-task retry budget before the app is failed")
    run.add_argument("--metrics-out", metavar="BASE", default=None,
                     help="enable telemetry and write BASE.json + BASE.prom "
                          "(Prometheus exposition format) at shutdown")
    run.add_argument("--metrics-interval", type=float, default=0.0,
                     help="periodic telemetry snapshot interval, simulated "
                          "seconds (0 = final snapshot only; implies "
                          "telemetry collection even without --metrics-out)")
    run.add_argument("--audit", action="store_true",
                     help="enable the online schedule auditor: every "
                          "scheduling round and task completion is checked "
                          "against the invariant catalog as it happens, and "
                          "the full catalog replays at shutdown")
    run.add_argument("--logbook", metavar="PATH", default=None,
                     help="write the run's logbook dump (schema-versioned "
                          "JSON) to PATH; audit it later with "
                          "'repro audit PATH'")

    serve = sub.add_parser(
        "serve",
        help="run the open-stream service mode for a fixed duration",
        description="Promote the runtime into a service: seeded arrival "
                    "streams feed an admission controller that submits "
                    "applications to the live daemon for --duration "
                    "simulated seconds, then drains gracefully and prints "
                    "the per-tenant SLO ledger.",
    )
    _add_platform_options(serve)
    serve.add_argument("--apps", default="PD:1,TX:1",
                       help="app mix cycled round-robin per tenant, comma "
                            "list of NAME:COUNT (apps: %s)"
                            % ",".join(available_apps()))
    serve.add_argument("--duration", type=float, default=0.5,
                       help="service window, simulated seconds")
    serve.add_argument("--arrival", default="poisson:rate=100",
                       help="arrival process per tenant, KIND:k=v,... "
                            "(kinds: poisson, periodic, bursty, diurnal, "
                            "trace); each tenant gets an independent stream "
                            "of this process")
    serve.add_argument("--tenants", type=int, default=1,
                       help="number of identically configured tenants")
    _add_admission_options(serve, default="shed")
    _add_mode_option(serve)
    serve.add_argument("--scheduler", default="heft_rt")
    serve.add_argument("--seed", type=int, default=0)
    _add_event_core_option(serve)
    _add_core_impl_option(serve)
    serve.add_argument("--audit", action="store_true",
                       help="run with the online schedule auditor enabled")

    audit = sub.add_parser(
        "audit",
        help="audit a saved logbook, or diff paired sweep configurations",
        description="With a logbook path: replay the invariant catalog "
                    "over a saved run ('repro audit out/logbook.json'). "
                    "With the literal target 'diff': run one sweep under "
                    "paired configurations (serial vs --jobs, cached vs "
                    "uncached, scalar vs vectorized estimates, telemetry "
                    "on/off, audit on/off, heap vs wheel event core, "
                    "object vs flat engine core, and optionally flag-built "
                    "vs declarative scenario) and require bit-identical "
                    "results.",
    )
    audit.add_argument("target",
                       help="path to a logbook JSON dump, or 'diff' to run "
                            "the differential oracle")
    _add_platform_options(audit, params=False,
                          help="diff only: platform for the oracle sweep")
    audit.add_argument("--apps", default="PD:1,TX:1",
                       help="diff only: workload, comma list of NAME:COUNT")
    _add_mode_option(audit)
    audit.add_argument("--scheduler", default="etf")
    audit.add_argument("--rates", type=int, default=4,
                       help="diff only: injection-rate grid points")
    audit.add_argument("--trials", type=int, default=2)
    audit.add_argument("--seed", type=int, default=0)
    audit.add_argument("--jobs", type=int, default=2,
                       help="diff only: worker processes for the --jobs "
                            "pairing")
    audit.add_argument("--variants", default=None,
                       help="diff only: comma list of pairings to run "
                            "(default: all of jobs,cache,scalar,telemetry,"
                            "audit,event_core,core_impl)")
    audit.add_argument("--execute", action="store_true",
                       help="diff only: execute kernels functionally "
                            "instead of timing-only")
    audit.add_argument("--scenario", action="store_true",
                       help="diff only: add the 'scenario' pairing - build "
                            "the equivalent declarative ScenarioSpec and "
                            "require it to reproduce the flag-built sweep "
                            "bit-for-bit")
    audit.add_argument("--serve", action="store_true",
                       help="diff only: run the serve-mode oracle instead "
                            "of the batch one (pairings: "
                            "jobs,cache,scalar,audit,event_core,core_impl)")
    audit.add_argument("--duration", type=float, default=0.2,
                       help="diff --serve only: service window, simulated "
                            "seconds")
    audit.add_argument("--arrival", default="poisson:rate=150",
                       help="diff --serve only: arrival process, "
                            "KIND:k=v,...")
    _add_admission_options(audit, default="block", caps=False)

    tel = sub.add_parser(
        "telemetry",
        help="print the telemetry metric catalog (names, types, buckets)",
    )
    tel.add_argument("--json", action="store_true",
                     help="emit the catalog as JSON instead of a table")

    scenario = sub.add_parser(
        "scenario",
        help="validate, list, or run declarative scenario specs",
        description="Scenario documents (.toml/.json) name platform + "
                    "workload + scheduler + faults + admission + telemetry "
                    "+ seeds declaratively; 'run' executes one through the "
                    "exact same code paths as the flag-driven commands "
                    "(bit-identical, per 'repro audit diff --scenario').",
    )
    scn_sub = scenario.add_subparsers(dest="scenario_command", required=True)
    scn_run = scn_sub.add_parser("run", help="execute one scenario document")
    scn_run.add_argument("spec", help="path to a .toml/.json scenario document")
    scn_run.add_argument("--trials", type=int, default=None,
                         help="override the spec's trial count")
    scn_run.add_argument("--seed", type=int, default=None,
                         help="override the spec's base seed")
    scn_run.add_argument("--jobs", type=int, default=None,
                         help="worker processes for the trial sweep "
                              "(-1 = all cores; default: $REPRO_JOBS or "
                              "serial)")
    scn_run.add_argument("--audit", action="store_true",
                         help="force the online schedule auditor on, "
                              "overriding the spec's [engine] audit flag")
    _add_cache_options(scn_run)
    scn_validate = scn_sub.add_parser(
        "validate", help="validate scenario documents without running them")
    scn_validate.add_argument("specs", nargs="+",
                              help="scenario document paths")
    scn_list = scn_sub.add_parser(
        "list", help="list scenario documents with digests")
    scn_list.add_argument("paths", nargs="*", default=["examples/scenarios"],
                          help="spec files or directories to scan "
                               "(default: examples/scenarios)")

    corpus = sub.add_parser(
        "corpus",
        help="adversarial scenario corpus: generate, parity-run, report, "
             "minimize",
        description="A seeded generator emits random-but-valid scenario "
                    "documents (app mixes, PE pools, arrival processes, "
                    "fault storms); 'run' executes every registered "
                    "scheduler over every spec with the online auditor "
                    "armed and reports dominance/violation tables; failing "
                    "cells are shrunk by a delta-debugging minimizer into "
                    "counterexample artifacts.",
    )
    cor_sub = corpus.add_subparsers(dest="corpus_command", required=True)

    def _add_generate_options(p) -> None:
        p.add_argument("--n", type=int, default=None,
                       help="corpus size (default: $REPRO_CORPUS_N or 8)")
        p.add_argument("--seed", type=int, default=0,
                       help="corpus seed - with the config, the whole "
                            "identity of the corpus")
        p.add_argument("--kind", choices=("mixed", "run", "serve"),
                       default="mixed",
                       help="restrict generated spec kinds (default mixed)")
        p.add_argument("--platforms", default=None,
                       help="comma-separated platform subset "
                            "(default: all registered)")

    cor_gen = cor_sub.add_parser(
        "generate", help="emit corpus spec documents (JSON)")
    _add_generate_options(cor_gen)
    cor_gen.add_argument("--out", default=None,
                         help="directory for one .json document per spec "
                              "(default: print digests only)")

    cor_run = cor_sub.add_parser(
        "run", help="run every scheduler over a corpus, auditor armed")
    _add_generate_options(cor_run)
    cor_run.add_argument("--specs", default=None,
                         help="directory (or file) of scenario documents to "
                              "use instead of generating")
    cor_run.add_argument("--schedulers", default=None,
                         help="comma-separated scheduler subset "
                              "(default: all registered)")
    cor_run.add_argument("--jobs", type=int, default=None,
                         help="worker processes, one corpus cell each "
                              "(-1 = all cores; default: $REPRO_JOBS or "
                              "serial)")
    cor_run.add_argument("--report", default="corpus-report.json",
                         help="machine-readable report path")
    cor_run.add_argument("--artifacts", default="corpus-artifacts",
                         help="directory for minimized counterexamples")
    cor_run.add_argument("--anomaly-factor", type=float, default=5.0,
                         help="flag a scheduler doing this many times worse "
                              "than the cell's best (default 5)")
    cor_run.add_argument("--no-minimize", action="store_true",
                         help="skip counterexample minimization of failing "
                              "cells")
    cor_run.add_argument("--minimize-budget", type=int, default=120,
                         help="max probes per minimized counterexample")

    cor_rep = cor_sub.add_parser(
        "report", help="summarize a saved corpus report")
    cor_rep.add_argument("report", help="path to a corpus-report.json")
    cor_rep.add_argument("--json", action="store_true",
                         help="re-emit the normalized JSON instead of the "
                              "summary table")

    cor_min = cor_sub.add_parser(
        "minimize", help="shrink one failing spec to a counterexample")
    cor_min.add_argument("spec", help="path to a .toml/.json scenario "
                                      "document that fails under audit")
    cor_min.add_argument("--scheduler", default=None,
                         help="scheduler to fail under (default: the "
                              "spec's own)")
    cor_min.add_argument("--artifacts", default="corpus-artifacts",
                         help="directory for the minimized counterexample")
    cor_min.add_argument("--budget", type=int, default=200,
                         help="max probes (default 200)")

    fig = sub.add_parser("figure", help="regenerate one evaluation figure")
    fig.add_argument("id", choices=available_figures())
    fig.add_argument("--rates", type=int, default=6, help="injection-rate grid points")
    fig.add_argument("--trials", type=int, default=1)
    fig.add_argument("--seed", type=int, default=0)
    fig.add_argument("--jobs", type=int, default=None,
                     help="worker processes for the sweep (-1 = all cores; "
                          "default: $REPRO_JOBS or serial)")
    fig.add_argument("--fault-seed", type=int, default=None,
                     help="resilience figure only: pin one fault schedule "
                          "across trials (default: derive from trial seeds)")
    fig.add_argument("--duration", type=float, default=None,
                     help="saturation figure only: service window per cell, "
                          "simulated seconds")
    _add_cache_options(fig)
    fig.add_argument("--audit", action="store_true",
                     help="run every sweep cell with the online schedule "
                          "auditor on (sets $REPRO_AUDIT so --jobs worker "
                          "processes inherit it); any invariant violation "
                          "fails the figure")
    return parser


def _parse_apps(spec: str) -> list[tuple[str, int]]:
    out = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, count = part.partition(":")
        name = name.upper()
        if name not in APPS:
            raise SystemExit(
                f"unknown application {name!r}; options: {sorted(APPS.names())}"
            )
        try:
            n = int(count) if count else 1
        except ValueError:
            raise SystemExit(f"bad count in {part!r}") from None
        if n < 1:
            raise SystemExit(f"count must be >= 1 in {part!r}")
        out.append((name, n))
    if not out:
        raise SystemExit("empty --apps specification")
    return out


def _make_platform(args) -> object:
    """Build the platform from the shared ``--platform`` option group.

    Only the flags the registered platform actually accepts are forwarded
    (``--fft`` exists for every subcommand but only reaches platforms that
    declare an ``fft`` parameter), so plugin platforms work with the stock
    option group.
    """
    entry = PLATFORMS.get(args.platform)
    flags = {
        "cpu": args.cpu,
        "fft": args.fft,
        "mmult": args.mmult,
        "little": args.little,
        "gpu": getattr(args, "gpu", None),
    }
    params = {
        k: v for k, v in flags.items() if k in entry.params and v is not None
    }
    try:
        return entry.build_config(**params)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None


def _cmd_list() -> int:
    from repro.experiments import available_figures
    from repro.faults import available_fault_kinds
    from repro.serve import available_arrivals
    from repro.workload import available_workloads

    print("platforms  :", ", ".join(available_platforms()))
    print("apps       :", ", ".join(available_apps()))
    print("workloads  :", ", ".join(available_workloads()))
    print("schedulers :", ", ".join(available_schedulers()))
    print("arrivals   :", ", ".join(available_arrivals()))
    print("fault kinds:", ", ".join(available_fault_kinds()))
    print("admission  :", ", ".join(ADMISSION_POLICIES))
    print("event cores:", ", ".join(EVENT_CORES))
    print("core impls :", ", ".join(CORE_IMPLS))
    print("figures    :", ", ".join(available_figures()))
    return 0


def _cmd_run(args) -> int:
    entries = tuple(
        WorkloadEntry(APPS.get(name).factory(), count)
        for name, count in _parse_apps(args.apps)
    )
    workload = WorkloadSpec(name="cli", entries=entries)
    platform_cfg = _make_platform(args)
    platform = platform_cfg.build(seed=args.seed)
    faults = None
    if args.fault_rate > 0.0:
        from repro.faults import FaultConfig

        try:
            faults = FaultConfig(
                rate=args.fault_rate,
                seed=args.fault_seed,
                kinds=FaultConfig.parse_kinds(args.fault_kinds),
                max_retries=args.max_retries,
            )
        except ValueError as exc:
            raise SystemExit(str(exc)) from None
    telemetry_cfg = None
    if args.metrics_out or args.metrics_interval > 0.0:
        from repro.telemetry import TelemetryConfig

        try:
            telemetry_cfg = TelemetryConfig(sample_interval_s=args.metrics_interval)
        except ValueError as exc:
            raise SystemExit(str(exc)) from None
    runtime = CedrRuntime(
        platform,
        RuntimeConfig(
            scheduler=args.scheduler,
            execute_kernels=not args.timing_only,
            faults=faults,
            telemetry=telemetry_cfg,
            audit=args.audit,
            event_core=args.event_core,
            core_impl=args.core_impl,
        ),
    )
    runtime.start()
    for app, arrival in workload.instantiate(args.mode, args.rate, args.seed):
        runtime.submit(app, at=arrival)
    runtime.seal()
    runtime.run()
    result = RunResult.from_runtime(runtime)

    print(f"platform  : {platform_cfg.name}  mode={args.mode}  "
          f"scheduler={args.scheduler}  rate={args.rate:g} Mbps")
    print(f"apps      : {result.n_apps} completed, {result.tasks_completed} tasks, "
          f"makespan {result.makespan * 1e3:.2f} ms")
    print(f"exec time : {result.mean_exec_time * 1e3:.2f} ms/app  "
          f"(per app type: "
          + ", ".join(f"{k} {result.mean_exec_time_of(k)*1e3:.2f}"
                      for k in sorted(result.exec_times_by_app)) + ")")
    print(f"overheads : runtime {result.runtime_overhead_per_app * 1e3:.3f} ms/app, "
          f"scheduling {result.sched_overhead_per_app * 1e3:.3f} ms/app "
          f"({result.sched_rounds} rounds, ready depth mean "
          f"{result.ready_depth_mean:.1f} / max {result.ready_depth_max})")
    print(f"placement : {result.pe_task_histogram}")
    if faults is not None:
        print(f"faults    : {result.faults_injected} injected, "
              f"{result.task_failures} task failures, {result.retries} retries, "
              f"{result.tasks_lost} tasks lost, {result.n_failed} apps failed "
              f"(goodput {result.goodput:.2f}, MTTR "
              f"{result.mean_time_to_recovery * 1e3:.2f} ms)")
    if args.audit:
        # the run drained without the online auditor raising; count the
        # checks it performed so "nothing fired" is distinguishable from
        # "nothing ran"
        print(f"audit     : ok ({runtime.auditor.checks} online checks, "
              f"full catalog verified at shutdown)")
    if args.logbook:
        path = runtime.logbook.save(args.logbook)
        print(f"logbook   : wrote {path} (audit offline with "
              f"'repro audit {path}')")
    if args.metrics_out:
        from repro.telemetry import write_metrics

        json_path, prom_path = write_metrics(args.metrics_out, runtime.telemetry)
        print(f"metrics   : wrote {json_path} and {prom_path}")
    if args.perf_json:
        import json

        with open(args.perf_json, "w", encoding="utf-8") as fh:
            json.dump(runtime.counters.snapshot(), fh, indent=2, sort_keys=True)
        print(f"perf json : wrote {args.perf_json}")
    if args.verbose:
        counters = runtime.counters
        print(f"perf      : {runtime.engine.events_processed} engine events in "
              f"{counters.wall_seconds * 1e3:.1f} ms wall "
              f"({counters.events_per_wall_sec:,.0f} events/s)")
    if args.energy:
        energy = estimate_energy(platform)
        print(f"energy    : {energy.total_j:.2f} J "
              f"(cpu {energy.cpu_j:.2f} + little {energy.little_j:.2f} + "
              f"accel {energy.accel_j:.2f} + static {energy.static_j:.2f}), "
              f"avg {energy.average_power_w:.2f} W")
    if args.trace:
        path = write_chrome_trace(args.trace, runtime)
        print(f"trace     : wrote {path} (open in chrome://tracing or Perfetto)")
    if args.gantt:
        from repro.metrics import render_gantt

        print()
        print(render_gantt(runtime))
    return 0


def _serve_config_from_args(args):
    """Build the ServeConfig shared by ``repro serve`` and ``audit --serve``."""
    from repro.serve import AdmissionConfig, ArrivalSpec, ServeConfig, TenantSpec

    try:
        arrival = ArrivalSpec.parse(args.arrival)
    except (KeyError, ValueError) as exc:
        raise SystemExit(f"bad --arrival: {exc}") from None
    apps = tuple(
        APPS.get(name).factory()
        for name, count in _parse_apps(args.apps)
        for _ in range(count)
    )
    n_tenants = getattr(args, "tenants", 1)
    if n_tenants < 1:
        raise SystemExit(f"--tenants must be >= 1, got {n_tenants}")
    admission = AdmissionConfig(
        policy=getattr(args, "admission", "shed"),
        max_in_system=getattr(args, "max_in_system", 32),
        queue_cap=getattr(args, "queue_cap", 16),
        quota_rate=getattr(args, "quota_rate", 0.0),
    )
    try:
        return ServeConfig(
            tenants=tuple(
                TenantSpec(
                    f"tenant{i}" if n_tenants > 1 else "tenant",
                    arrival, apps=apps, slo_s=args.slo_ms / 1e3,
                )
                for i in range(n_tenants)
            ),
            duration=args.duration,
            admission=admission,
            mode=getattr(args, "mode", "api"),
            scheduler=getattr(args, "scheduler", "heft_rt"),
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from None


def _cmd_serve(args) -> int:
    """Run one open-stream service window and print the SLO ledger."""
    from repro.serve import serve_once

    serve = _serve_config_from_args(args)
    config = RuntimeConfig(
        scheduler=args.scheduler,
        execute_kernels=False,
        audit=args.audit,
        event_core=args.event_core,
        core_impl=args.core_impl,
    )
    result = serve_once(_make_platform(args), serve, seed=args.seed, config=config)

    print(f"platform  : {args.platform}  mode={args.mode}  "
          f"scheduler={args.scheduler}  window {serve.duration:g} s")
    print(f"arrivals  : {args.arrival} x {len(serve.tenants)} tenant(s), "
          f"{serve.offered_rate:g} apps/s nominal offered load")
    print(f"admission : {serve.admission.policy}, in-system cap "
          f"{serve.admission.max_in_system}, queue cap "
          f"{serve.admission.queue_cap}")
    print(f"service   : {result.offered} offered, {result.admitted} admitted, "
          f"{result.shed} shed, {result.degraded} degraded, "
          f"{result.completed} completed "
          f"({result.throughput:.1f} apps/s, {result.late_arrivals} late)")
    print(f"slo       : p99 response {result.p99_response_s * 1e3:.2f} ms, "
          f"{result.slo_violations} violations, "
          f"goodput {result.goodput:.1f} apps/s within "
          f"{args.slo_ms:g} ms")
    print(f"drain     : graceful (every admitted app completed; "
          f"makespan {result.run.makespan * 1e3:.2f} ms, in-system "
          f"high-water {result.in_system_hwm})")
    for t in result.tenants:
        print(f"  {t.name:<10} offered {t.offered:>4}  admitted "
              f"{t.admitted:>4}  shed {t.shed:>4}  held {t.held:>4}  "
              f"completed {t.completed:>4}  p99 "
              f"{t.p99_response_s * 1e3:8.2f} ms  violations "
              f"{t.slo_violations:>4}")
    return 0


def _cmd_telemetry(args) -> int:
    """Print the metric catalog the telemetry subsystem exports."""
    from repro.telemetry import CedrTelemetry, TelemetryConfig

    telemetry = CedrTelemetry(TelemetryConfig(), pe_names=())
    families = telemetry.registry.families()
    if args.json:
        import json

        catalog = [
            {
                "name": fam.name,
                "type": fam.kind,
                "labels": list(fam.label_names),
                "help": fam.help,
                **({"buckets": list(fam.bounds)} if fam.bounds is not None else {}),
            }
            for fam in families
        ]
        print(json.dumps(catalog, indent=2))
        return 0
    width = max(len(fam.name) for fam in families)
    for fam in families:
        labels = "{%s}" % ",".join(fam.label_names) if fam.label_names else ""
        print(f"{fam.name:<{width}}  {fam.kind:<9}  {labels:<11}  {fam.help}")
        if fam.bounds is not None:
            bounds = ", ".join(f"{b:g}" for b in fam.bounds)
            print(f"{'':<{width}}  {'':<9}  {'':<11}  buckets: {bounds}, +Inf")
    return 0


def _cmd_audit(args) -> int:
    """Dispatch ``repro audit <logbook.json>`` / ``repro audit diff``."""
    if args.target == "diff":
        return _cmd_audit_diff(args)
    from repro.audit import audit_logbook
    from repro.runtime import Logbook

    try:
        logbook = Logbook.load(args.target)
    except FileNotFoundError:
        raise SystemExit(f"no logbook at {args.target!r}") from None
    except ValueError as exc:
        raise SystemExit(f"cannot load {args.target!r}: {exc}") from None
    report = audit_logbook(logbook)
    print(report.summary())
    for violation in report.violations:
        print(f"  - {violation}")
    return 0 if report.ok else 1


def _audit_scenario_template(args):
    """The declarative twin of the flag-built oracle sweep.

    Field-for-field mirror of what ``_cmd_audit_diff`` /
    ``_cmd_audit_diff_serve`` build from flags, as a
    :class:`~repro.scenario.ScenarioSpec` - the oracle's ``scenario``
    variant then proves the two routes bit-identical.
    """
    from repro.scenario import AppCount, ScenarioSpec, ServeSection

    apps = tuple(AppCount(name, count) for name, count in _parse_apps(args.apps))
    common = dict(
        name="audit-diff",
        seed=args.seed,
        trials=args.trials,
        platform=args.platform,
        platform_params=AUDIT_PLATFORM_PARAMS[args.platform],
        scheduler=args.scheduler,
        mode=args.mode,
    )
    if args.serve:
        return ScenarioSpec(
            kind="serve",
            serve=ServeSection(
                duration=args.duration,
                arrival=args.arrival,
                tenants=1,
                slo_ms=args.slo_ms,
                apps=apps,
                policy=args.admission,
            ),
            **common,
        )
    return ScenarioSpec(
        kind="run",
        workload_name="audit-diff",
        apps=apps,
        execute=args.execute,
        **common,
    )


def _cmd_audit_diff(args) -> int:
    """Run the differential oracle and print its per-variant verdicts."""
    from repro.audit import DEFAULT_VARIANTS, SERVE_VARIANTS, diff_run
    from repro.workload import paper_injection_rates

    available = SERVE_VARIANTS if args.serve else DEFAULT_VARIANTS
    if args.scenario:
        available = (*available, "scenario")
    if args.variants is None:
        variants = available
    else:
        variants = tuple(
            v.strip() for v in args.variants.split(",") if v.strip()
        )
        unknown = set(variants) - set(available)
        if unknown:
            raise SystemExit(
                f"unknown variant(s) {sorted(unknown)}; "
                f"options: {','.join(available)}"
            )
        if args.scenario and "scenario" not in variants:
            variants = (*variants, "scenario")
    scenario = _audit_scenario_template(args) if args.scenario else None
    if args.serve:
        return _cmd_audit_diff_serve(args, variants, scenario)
    entries = tuple(
        WorkloadEntry(APPS.get(name).factory(), count)
        for name, count in _parse_apps(args.apps)
    )
    workload = WorkloadSpec(name="audit-diff", entries=entries)
    report = diff_run(
        _make_audit_platform(args.platform),
        workload,
        args.mode,
        list(paper_injection_rates(n=args.rates)),
        args.scheduler,
        trials=args.trials,
        base_seed=args.seed,
        execute=args.execute,
        jobs=args.jobs,
        variants=variants,
        scenario=scenario,
    )
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_audit_diff_serve(args, variants, scenario=None) -> int:
    """The serve-mode leg of ``repro audit diff`` (``--serve``)."""
    from repro.audit import diff_serve

    serve = _serve_config_from_args(args)
    report = diff_serve(
        _make_audit_platform(args.platform),
        serve,
        trials=args.trials,
        base_seed=args.seed,
        jobs=args.jobs,
        variants=variants,
        scenario=scenario,
    )
    print(report.summary())
    return 0 if report.ok else 1


def _make_audit_platform(name: str):
    """Platform defaults for the oracle sweep (match the figure configs)."""
    return make_platform(name, **dict(AUDIT_PLATFORM_PARAMS[name]))


def _scenario_paths(raw_paths) -> list:
    """Expand ``scenario list`` arguments into spec files, sorted."""
    from pathlib import Path

    out = []
    for raw in raw_paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(sorted(p for p in path.iterdir()
                              if p.suffix.lower() in (".toml", ".json")))
        else:
            out.append(path)
    return out


def _cmd_scenario_validate(args) -> int:
    from repro.scenario import ScenarioError, load_scenario

    failed = 0
    for raw in args.specs:
        try:
            spec = load_scenario(raw)
        except ScenarioError as exc:
            print(f"FAIL {raw}: {exc}")
            failed += 1
            continue
        print(f"ok   {raw}: {spec.describe()}  [digest {spec.digest()[:12]}]")
    return 1 if failed else 0


def _cmd_scenario_list(args) -> int:
    from repro.scenario import ScenarioError, load_scenario

    paths = _scenario_paths(args.paths)
    if not paths:
        print(f"no scenario documents found under: {', '.join(args.paths)}")
        return 1
    rc = 0
    for path in paths:
        try:
            spec = load_scenario(path)
        except ScenarioError as exc:
            print(f"{path}: INVALID ({exc})")
            rc = 1
            continue
        print(f"{path}: {spec.describe()}  [digest {spec.digest()[:12]}]")
    return rc


def _cmd_scenario_run(args) -> int:
    import dataclasses

    from repro.experiments import SweepCache, resolve_cache
    from repro.scenario import ScenarioError, load_scenario, run_scenario

    try:
        spec = load_scenario(args.spec)
    except ScenarioError as exc:
        raise SystemExit(str(exc)) from None
    if args.audit:
        spec = dataclasses.replace(spec, audit=True)
    if args.no_cache:
        if args.cache_dir is not None:
            raise SystemExit("--cache-dir conflicts with --no-cache")
        cache = False
    elif args.cache_dir is not None:
        cache = SweepCache(args.cache_dir)
    elif args.cache:
        cache = SweepCache()
    else:
        cache = resolve_cache(None)
    trials = spec.trials if args.trials is None else args.trials
    base_seed = spec.seed if args.seed is None else args.seed
    results = run_scenario(
        spec, trials=trials, base_seed=base_seed, n_jobs=args.jobs, cache=cache
    )
    n = len(results)
    print(f"scenario  : {spec.name} [{spec.kind}]  digest {spec.digest()[:12]}"
          f"  ({args.spec})")
    print(f"platform  : {spec.platform}  mode={spec.mode}  "
          f"scheduler={spec.scheduler}")
    print(f"trials    : {n} (base seed {base_seed}"
          + (", audited" if spec.audit else "") + ")")

    def mean(xs):
        return sum(xs) / n

    if spec.kind == "serve":
        print(f"service   : {spec.serve.arrival} x {spec.serve.tenants} "
              f"tenant(s), {spec.serve.duration:g} s window, "
              f"admission {spec.serve.policy}")
        print(f"per trial : offered {mean([r.offered for r in results]):.1f}, "
              f"admitted {mean([r.admitted for r in results]):.1f}, "
              f"shed {mean([r.shed for r in results]):.1f}, "
              f"completed {mean([r.completed for r in results]):.1f}")
        print(f"slo       : p99 response "
              f"{mean([r.p99_response_s for r in results]) * 1e3:.2f} ms, "
              f"violations {mean([r.slo_violations for r in results]):.1f}, "
              f"goodput {mean([r.goodput for r in results]):.1f} apps/s "
              f"within {spec.serve.slo_ms:g} ms")
    else:
        print(f"workload  : {spec.preset or ','.join(f'{a.name}:{a.count}' for a in spec.apps)}"
              f" @ {spec.rate_mbps:g} Mbps")
        print(f"apps      : {results[0].n_apps} per trial, makespan mean "
              f"{mean([r.makespan for r in results]) * 1e3:.2f} ms")
        print(f"exec time : {mean([r.mean_exec_time for r in results]) * 1e3:.2f}"
              f" ms/app")
        print(f"overheads : runtime "
              f"{mean([r.runtime_overhead_per_app for r in results]) * 1e3:.3f}"
              f" ms/app, scheduling "
              f"{mean([r.sched_overhead_per_app for r in results]) * 1e3:.3f}"
              f" ms/app")
    if cache:
        print(f"cache     : {cache.stats.summary()} "
              f"({cache.stats.stores} stored in {cache.root})")
    return 0


def _cmd_scenario(args) -> int:
    if args.scenario_command == "run":
        return _cmd_scenario_run(args)
    if args.scenario_command == "validate":
        return _cmd_scenario_validate(args)
    if args.scenario_command == "list":
        return _cmd_scenario_list(args)
    raise AssertionError(
        f"unhandled scenario command {args.scenario_command!r}"
    )  # pragma: no cover


CORPUS_N_ENV = "REPRO_CORPUS_N"


def _corpus_config(args):
    """Translate the shared generate options into a CorpusConfig."""
    import os

    from repro.corpus import CorpusConfig

    if args.n is not None:
        n = args.n
    else:
        raw = os.environ.get(CORPUS_N_ENV, "").strip()
        try:
            n = int(raw) if raw else 8
        except ValueError:
            raise SystemExit(
                f"{CORPUS_N_ENV} must be an integer corpus size, got {raw!r}"
            ) from None
    platforms = tuple(
        p.strip() for p in (args.platforms or "").split(",") if p.strip()
    )
    run_fraction = {"mixed": 0.7, "run": 1.0, "serve": 0.0}[args.kind]
    try:
        return CorpusConfig(n=n, run_fraction=run_fraction, platforms=platforms)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None


def _corpus_generate(args):
    from repro.corpus import generate_corpus

    config = _corpus_config(args)
    try:
        return generate_corpus(config, seed=args.seed)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None


def _cmd_corpus_generate(args) -> int:
    from pathlib import Path

    specs = _corpus_generate(args)
    out_dir = Path(args.out) if args.out else None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
    for spec in specs:
        line = f"{spec.digest()[:12]}  {spec.describe()}"
        if out_dir is not None:
            path = spec.save(out_dir / f"{spec.name}.json")
            line += f"  -> {path}"
        print(line)
    return 0


def _corpus_load_specs(path_arg: str):
    from pathlib import Path

    from repro.scenario import ScenarioError, load_scenario

    path = Path(path_arg)
    if path.is_dir():
        paths = sorted(
            p for p in path.iterdir() if p.suffix.lower() in (".toml", ".json")
        )
    else:
        paths = [path]
    if not paths:
        raise SystemExit(f"no scenario documents under {path}")
    specs = []
    for p in paths:
        try:
            specs.append(load_scenario(p))
        except ScenarioError as exc:
            raise SystemExit(str(exc)) from None
    return specs


def _cmd_corpus_run(args) -> int:
    from repro.corpus import minimize_spec, run_corpus, write_artifacts

    if args.specs is not None:
        specs = _corpus_load_specs(args.specs)
        seed = None
    else:
        specs = _corpus_generate(args)
        seed = args.seed
    schedulers = None
    if args.schedulers:
        schedulers = [s.strip() for s in args.schedulers.split(",") if s.strip()]
    try:
        report = run_corpus(
            specs,
            schedulers,
            n_jobs=args.jobs,
            anomaly_factor=args.anomaly_factor,
            seed=seed,
        )
    except ValueError as exc:  # unknown scheduler, bad job count
        raise SystemExit(str(exc)) from None
    path = report.save(args.report)
    print(report.summary())
    print(f"\nreport    : {path}")
    failures = report.failures()
    if failures and not args.no_minimize:
        by_spec = {spec.digest(): spec for spec in specs}
        minimized = set()
        for cell in failures:
            key = (cell.digest, cell.scheduler)
            if key in minimized:
                continue
            minimized.add(key)
            result = minimize_spec(
                by_spec[cell.digest],
                scheduler=cell.scheduler,
                budget=args.minimize_budget,
            )
            cell_dir = write_artifacts(result, args.artifacts)
            print(
                f"minimized : {cell.name} x {cell.scheduler} "
                f"[{result.status} {result.code}] -> {cell_dir}"
            )
    return 1 if failures else 0


def _cmd_corpus_report(args) -> int:
    from repro.corpus import CorpusReport

    try:
        report = CorpusReport.load(args.report)
    except (OSError, ValueError) as exc:
        raise SystemExit(str(exc)) from None
    if args.json:
        print(report.to_json(), end="")
    else:
        print(report.summary())
    return 0 if report.ok else 1


def _cmd_corpus_minimize(args) -> int:
    from repro.corpus import minimize_spec, write_artifacts
    from repro.scenario import ScenarioError, load_scenario

    try:
        spec = load_scenario(args.spec)
    except ScenarioError as exc:
        raise SystemExit(str(exc)) from None
    try:
        result = minimize_spec(
            spec, scheduler=args.scheduler, budget=args.budget
        )
    except ValueError as exc:  # spec does not fail
        raise SystemExit(str(exc)) from None
    cell_dir = write_artifacts(result, args.artifacts)
    print(f"failure   : {result.status} {result.code}")
    print(f"shrunk    : {len(result.steps)} step(s), "
          f"{result.evaluations} probe(s)")
    for step in result.steps:
        print(f"  - {step}")
    print(f"artifacts : {cell_dir}")
    print(f"reproduce : python -m repro scenario run {cell_dir / 'minimized.json'}")
    return 0


def _cmd_corpus(args) -> int:
    if args.corpus_command == "generate":
        return _cmd_corpus_generate(args)
    if args.corpus_command == "run":
        return _cmd_corpus_run(args)
    if args.corpus_command == "report":
        return _cmd_corpus_report(args)
    if args.corpus_command == "minimize":
        return _cmd_corpus_minimize(args)
    raise AssertionError(
        f"unhandled corpus command {args.corpus_command!r}"
    )  # pragma: no cover


def _resolve_figure_cache(args):
    """Translate the figure cache flags into a SweepCache / False / None."""
    from repro.experiments import SweepCache, resolve_cache

    if args.no_cache:
        if args.cache_dir is not None:
            raise SystemExit("--cache-dir conflicts with --no-cache")
        return False
    if args.cache_dir is not None:
        return SweepCache(args.cache_dir)
    if args.cache:
        return SweepCache()
    # no explicit flag: honour $REPRO_CACHE, but pin one handle for the whole
    # figure so hit/miss counters aggregate across its nested sweeps
    return resolve_cache(None)


def _cmd_figure(args) -> int:
    import os

    from repro.experiments import AUDIT_ENV, FIGURES, configure_cache

    cache = _resolve_figure_cache(args)
    # pin the handle process-wide so every sweep a figure driver makes goes
    # through it (and its hit/miss counters), then restore on the way out
    previous_cache = configure_cache(cache)
    previous_audit = os.environ.get(AUDIT_ENV)
    if args.audit:
        # the env var (not a config edit) so --jobs pool workers inherit it
        os.environ[AUDIT_ENV] = "1"
    try:
        code = FIGURES.get(args.id).render(args)
    finally:
        configure_cache(previous_cache)
        if args.audit:
            if previous_audit is None:
                os.environ.pop(AUDIT_ENV, None)
            else:
                os.environ[AUDIT_ENV] = previous_audit
    if cache:
        print(f"\ncache     : {cache.stats.summary()} "
              f"({cache.stats.stores} stored in {cache.root})")
    return code


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "telemetry":
        return _cmd_telemetry(args)
    if args.command == "audit":
        return _cmd_audit(args)
    if args.command == "scenario":
        return _cmd_scenario(args)
    if args.command == "corpus":
        return _cmd_corpus(args)
    if args.command == "figure":
        return _cmd_figure(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
