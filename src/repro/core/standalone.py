"""Standalone CPU mode: libCEDR as "any other CPU-based library".

The paper's workflow (Fig. 3) starts with functional bring-up: link against
the static ``libcedr.a`` whose APIs are plain C/C++ implementations, debug
on the CPU, and only then rebuild as a shared object for the runtime.
:class:`StandaloneCedr` is that static library: every API executes
immediately and synchronously with the CPU kernel implementations, while
keeping the exact generator-based calling convention so the *same
application source* runs under both this and the runtime-backed
:class:`~repro.core.api.CedrClient`.  Integration tests diff the outputs of
the two paths to prove functional equivalence.

Like the runtime client, the per-API method pairs here are generated from
the declarative table in :mod:`repro.core.spec` - each
:class:`~repro.core.spec.ApiSpec` row carries its immediate CPU
implementation, so standalone-mode parity for a new kernel API is the same
one table row that defines its runtime surface.
"""

from __future__ import annotations

from typing import Any, Generator

from .handles import ImmediateRequest
from .spec import ApiSpec, install_api_methods

__all__ = ["StandaloneCedr"]


def _ret(value: Any) -> Generator:
    """A generator that yields nothing and returns *value* - keeps blocking
    API signatures identical between standalone and runtime modes."""
    if False:  # pragma: no cover - generator-function marker
        yield
    return value


def _make_blocking(spec: ApiSpec):
    if spec.arity == 1:
        def method(self, x):
            return _ret(spec.standalone(x))
    else:
        def method(self, a, b):
            return _ret(spec.standalone(a, b))
    method.__doc__ = f"{spec.doc}; executes immediately on the CPU."
    return method


def _make_nonblocking(spec: ApiSpec):
    if spec.arity == 1:
        def method(self, x):
            return _ret(ImmediateRequest(spec.standalone(x), api=spec.name))
    else:
        def method(self, a, b):
            return _ret(ImmediateRequest(spec.standalone(a, b), api=spec.name))
    method.__doc__ = (
        f"Non-blocking {spec.doc[0].lower()}{spec.doc[1:]}; already executed - "
        "returns an :class:`ImmediateRequest`."
    )
    return method


class StandaloneCedr:
    """Immediate-execution implementation of the libCEDR API surface."""

    #: standalone mode always executes real kernels
    executes = True

    # -- local work ----------------------------------------------------------- #

    def local_work(self, seconds_at_1ghz: float):
        """No-op in standalone mode (real CPU time is the cost)."""
        if seconds_at_1ghz < 0:
            raise ValueError(f"negative local work: {seconds_at_1ghz}")
        return _ret(None)


# blocking + non-blocking kernel APIs, generated from the spec table
install_api_methods(StandaloneCedr, _make_blocking, _make_nonblocking)


def run_standalone(main_factory) -> Any:
    """Drive an application ``main`` generator to completion synchronously.

    ``main_factory`` is the same callable an :class:`AppInstance` carries;
    it receives a :class:`StandaloneCedr` and its generator is exhausted
    inline (no simulator involved).  Returns the application's result.
    """
    gen = main_factory(StandaloneCedr())
    try:
        while True:
            next(gen)
    except StopIteration as stop:
        return stop.value


__all__.append("run_standalone")
