"""Flat structure-of-arrays fast path for the simulation engine.

This module is the ``core_impl="flat"`` main loop behind
``Engine(core_impl=...)`` / ``$REPRO_CORE_IMPL`` / ``repro run
--core-impl flat``.  It executes the *same* virtual-time processor-sharing
model as the per-object reference loop in :mod:`repro.simcore.engine`
("objects"), bit-for-bit - the differential oracle's ``core_impl`` variant
(``repro audit diff``) re-runs whole sweeps under both loops and requires
identical results - but restructures the per-event work:

* **Interned hot state.**  Per-core hot state (current per-thread rate,
  a per-occupancy rate memo) lives in parallel lists indexed by the
  core's fixed position - the structure-of-arrays layout - instead of
  being re-derived through attribute chains per event, and the min
  pending finish virtual lives in the ``Core._flat_min`` slot where the
  admission path already holds the core object.  The
  NumPy column views (:class:`FlatColumns`) sync lazily from this state for
  batched queries, following the ``CompletionIndex`` mirror idiom: at the
  3-9 cores of the modelled platforms a bound C ``list`` loop beats ufunc
  dispatch, so the ndarray mirrors are for *batch* consumers, not the
  per-event loop (measured: a NumPy scalar index costs ~5x a slotted
  attribute read on CPython 3.11).
* **Fused completion drain.**  Completions pop straight into a resume
  batch and are re-dispatched inline, skipping the ready-deque round trip,
  the per-event tuple packing, and the RUNNING -> READY -> RUNNING state
  churn of the reference loop.  Heap entries are mutable lists reused
  in place across segments of the same thread (zero allocation on the
  steady-state path), with one engine-global monotone sequence counter
  preserving the reference loop's exact FIFO tie-break order.
* **Unordered pending lists, sort-on-drain.**  Mid-run each core's
  ``_finish_heap`` is an *unordered* list: admissions are plain appends
  (no heap sift), the head is tracked incrementally in ``_flat_min``, and
  a drain sorts the list once before consuming due entries - ``sort``
  yields exactly the ``heappop`` order because ``(finish, seq)`` keys are
  unique.  When the advance covers the whole list (the common case under
  pinned homogeneous load) it is consumed in one batch move.  Heap
  *array* order is not observable through any public API mid-run (only
  the entry multiset, pop order, and length are), and the epilogue
  restores sorted tuple-heap order at every exit.

Why bit-identity holds
----------------------

Float summation order is preserved exactly: ``virtual += dt * rate`` once
per advance, ``delivered += (dt * rate) * n``, completion instants via the
one shared formula (:func:`repro.simcore.cores.completion_instant` - the
per-occupancy rate memo caches *results* of that formula, never reorders
it), pops in ``(finish, seq)`` order per core with cores in index order,
and every pop's ``cpu_time`` credit lands before any resumed thread runs,
exactly as the reference loop's pop-then-drain phases do.

Observability contract (the one deliberate relaxation): *mid-batch*, a
thread between completion and re-dispatch keeps ``state == RUNNING`` and
its ``_on_core`` pointer instead of bouncing through ``READY``/``None``.
Both loops agree again at every timer callback boundary's entry and at
every instant where user code last observed the thread, except that
sibling threads resumed in the same batch see each other pre-, not post-,
pop.  End-of-run state is identical.

``REPRO_JIT`` hook
------------------

Setting ``REPRO_JIT=1`` requests a Numba-compiled kernel for the batched
column refresh.  The import is guarded at module load and **fails soft**:
without ``numba`` installed (the reference container does not ship it) the
pure-Python/NumPy path runs unchanged and nothing else differs - no test
may ever require the JIT.
"""

from __future__ import annotations

import os
from heapq import heappop, heappush
from math import inf
from typing import TYPE_CHECKING, Any, Optional

import numpy as np

from .cores import WORK_EPSILON
from .engine import _INSTANT_EPSILON
from .errors import SimDeadlock, SimStateError, SimTimeError
from .process import Compute, ThreadState

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Engine
    from .process import SimThread

__all__ = ["flat_run", "FlatColumns", "flat_columns", "JIT_ACTIVE"]

_INF = inf

# --------------------------------------------------------------------- #
# optional JIT (fail-soft: numba is NOT a dependency)
# --------------------------------------------------------------------- #

JIT_ACTIVE = False
if os.environ.get("REPRO_JIT", "").strip().lower() in ("1", "true", "on", "numba"):
    try:  # pragma: no cover - exercised only where numba is installed
        from numba import njit as _njit  # type: ignore

        JIT_ACTIVE = True
    except Exception:  # ImportError or a broken install: fall back silently
        JIT_ACTIVE = False


def _maybe_jit(fn):
    """Compile *fn* with numba when ``REPRO_JIT`` is armed and numba is
    importable; otherwise return it unchanged (the pure-Python reference)."""
    if JIT_ACTIVE:  # pragma: no cover - numba absent from the container
        try:
            return _njit(cache=False)(fn)
        except Exception:
            return fn
    return fn


@_maybe_jit
def _batch_instants(head, virtual, occ, spin, speed, alpha, now, out):
    """Vectorizable form of :func:`repro.simcore.cores.completion_instant`
    over core columns: same float ops in the same order, elementwise."""
    for i in range(head.shape[0]):
        n = occ[i]
        if n > 0:
            k = n + spin[i]
            rate = speed[i] / (k * (1.0 + alpha[i] * (k - 1)))
            out[i] = now + (head[i] - virtual[i]) / rate
        else:
            out[i] = np.inf
    return out


# --------------------------------------------------------------------- #
# SoA columns: interned handles + lazily-synced NumPy mirrors
# --------------------------------------------------------------------- #


class FlatColumns:
    """Structure-of-arrays view of an engine's hot thread/core state.

    Cores get fixed column positions (their ``CompletionIndex`` position);
    threads are interned to integer handles from a free-list, so a
    long-lived service run recycles slots instead of growing forever.  The
    columns are *views*: the authoritative per-event state stays on the
    slotted objects and the per-core operational lists inside
    :func:`flat_run` (per-element ndarray stores are slower than the whole
    scalar refresh at platform core counts), and :meth:`sync` pulls a
    coherent snapshot on demand for batch consumers - audits, telemetry
    samplers, tests, and the vectorized queries below.
    """

    __slots__ = (
        "engine",
        "core_speed",
        "core_alpha",
        "core_virtual",
        "core_spinners",
        "core_occupancy",
        "core_head_finish",
        "core_instant",
        "thread_handles",
        "thread_finish_virtual",
        "thread_core_slot",
        "_thread_refs",
        "_free",
        "_cap",
    )

    def __init__(self, engine: "Engine", thread_capacity: int = 64) -> None:
        self.engine = engine
        n = len(engine.cores)
        self.core_speed = np.array([c.speed for c in engine.cores], dtype=np.float64)
        self.core_alpha = np.array([c.cs_alpha for c in engine.cores], dtype=np.float64)
        self.core_virtual = np.zeros(n, dtype=np.float64)
        self.core_spinners = np.zeros(n, dtype=np.int64)
        self.core_occupancy = np.zeros(n, dtype=np.int64)
        self.core_head_finish = np.full(n, np.inf, dtype=np.float64)
        self.core_instant = np.full(n, np.inf, dtype=np.float64)
        #: thread -> handle; handles index the thread columns below.
        self.thread_handles: dict["SimThread", int] = {}
        cap = max(thread_capacity, 1)
        self.thread_finish_virtual = np.zeros(cap, dtype=np.float64)
        self.thread_core_slot = np.full(cap, -1, dtype=np.int64)
        self._thread_refs: list[Optional["SimThread"]] = [None] * cap
        self._free: list[int] = list(range(cap - 1, -1, -1))
        self._cap = cap

    # -- handle lifecycle ---------------------------------------------- #

    def intern(self, thread: "SimThread") -> int:
        """Return *thread*'s stable handle, allocating one on first sight
        (from the free-list when available, doubling the columns when not)."""
        handle = self.thread_handles.get(thread)
        if handle is not None:
            return handle
        if not self._free:
            new_cap = self._cap * 2
            grown_fv = np.zeros(new_cap, dtype=np.float64)
            grown_fv[: self._cap] = self.thread_finish_virtual
            grown_slot = np.full(new_cap, -1, dtype=np.int64)
            grown_slot[: self._cap] = self.thread_core_slot
            self.thread_finish_virtual = grown_fv
            self.thread_core_slot = grown_slot
            self._thread_refs.extend([None] * self._cap)
            self._free = list(range(new_cap - 1, self._cap - 1, -1))
            self._cap = new_cap
        handle = self._free.pop()
        self.thread_handles[thread] = handle
        self._thread_refs[handle] = thread
        return handle

    def release(self, thread: "SimThread") -> None:
        """Recycle a finished thread's handle back onto the free-list."""
        handle = self.thread_handles.pop(thread, None)
        if handle is not None:
            self._thread_refs[handle] = None
            self.thread_core_slot[handle] = -1
            self._free.append(handle)

    # -- snapshot + batched queries ------------------------------------ #

    def sync(self) -> None:
        """Pull a coherent snapshot of the live engine state into the
        columns: interns new threads, releases finished ones, and refreshes
        every core column in one pass."""
        engine = self.engine
        finished = ThreadState.FINISHED
        for thread in engine.threads:
            if thread.state is finished:
                self.release(thread)
            else:
                h = self.intern(thread)
                self.thread_core_slot[h] = -1
        # Thread placement comes from the heap entries themselves, not
        # thread attributes: the flat loop elides the per-event
        # ``_finish_virtual`` store, and mid-run the pending lists are
        # unordered, so the head is a min-scan rather than ``heap[0]``.
        for pos, core in enumerate(engine.cores):
            heap = core._finish_heap
            self.core_virtual[pos] = core._virtual
            self.core_spinners[pos] = core._spinners
            self.core_occupancy[pos] = len(heap)
            head = np.inf
            for entry in heap:
                f = entry[0]
                if f < head:
                    head = f
                h = self.thread_handles.get(entry[2])
                if h is not None:
                    self.thread_finish_virtual[h] = f
                    self.thread_core_slot[h] = pos
            self.core_head_finish[pos] = head

    def completion_instants(self, now: float) -> np.ndarray:
        """Absolute completion instants per core (inf = idle): one batched
        pass over the columns, through the JIT kernel when armed.  Same
        float ops in the same order as the scalar path, hence bit-equal."""
        self.sync()
        return _batch_instants(
            self.core_head_finish,
            self.core_virtual,
            self.core_occupancy,
            self.core_spinners,
            self.core_speed,
            self.core_alpha,
            now,
            np.empty_like(self.core_instant),
        )

    def remaining_work(self) -> np.ndarray:
        """Dedicated-core seconds left per interned handle (0 for threads
        with no active segment): ``finish_virtual - core_virtual[slot]``
        vectorized over the columns."""
        self.sync()
        slots = self.thread_core_slot
        active = slots >= 0
        out = np.zeros(self._cap, dtype=np.float64)
        out[active] = self.thread_finish_virtual[active] - self.core_virtual[
            slots[active]
        ]
        return out


def flat_columns(engine: "Engine") -> FlatColumns:
    """The engine's (lazily created) :class:`FlatColumns` view."""
    cols = getattr(engine, "_flat_columns", None)
    if cols is None:
        cols = FlatColumns(engine)
        engine._flat_columns = cols
    return cols


# --------------------------------------------------------------------- #
# the fused main loop
# --------------------------------------------------------------------- #


def _slow_compute(self: "Engine", thread, request, seq, dirty, cidx):
    """Subclassed-``Compute`` dispatch for the flat loop: the semantics of
    ``Engine._dispatch_slow``'s Compute branch, but appending flat-format
    (list, global-seq) entries so engine-core pending lists stay
    homogeneous.  The caller has already cleared ``thread._on_core``.
    Returns the advanced sequence counter."""
    work = request.work
    if work <= 0.0:
        thread.state = ThreadState.READY
        self._ready.append((thread, None))
        return seq
    core = self._pick_core(thread, request.core)
    thread.state = ThreadState.RUNNING
    if thread._on_core is not None:
        raise SimStateError(
            f"{thread.name!r} already running on core {thread._on_core.name!r}"
        )
    finish = core._virtual + work
    thread._on_core = core
    thread._finish_virtual = finish
    if core._cidx is cidx:
        seq += 1
        core._finish_heap.append([finish, seq, thread, work])
        if finish < core._flat_min:
            core._flat_min = finish
        if not core._completion_dirty:
            core._completion_dirty = True
            dirty.append(core._cpos)
    else:
        # Foreign core (not owned by this engine's completion index): keep
        # the object representation - the flat loop never pops it.
        core._seq += 1
        heappush(core._finish_heap, (finish, core._seq, thread, work))
        core._mark_completion_dirty()
    return seq


def flat_run(self: "Engine", until: Optional[float] = None, strict: bool = True) -> float:
    """Run *self* (an :class:`~repro.simcore.engine.Engine`) to completion
    - the fused flat-core main loop.  Same contract as ``Engine.run``."""
    ready = self._ready
    timerq = self._timerq
    cidx = self._completions
    comp = cidx._instants_list
    dirty = cidx._dirty
    cores = cidx.cores
    ncores = len(cores)
    #: per-core SoA state, indexed by completion-index position (the min
    #: pending finish lives on the core itself as ``_flat_min`` - the add
    #: path already holds the core object, so an attribute beats a
    #: position lookup there):
    rates = [1.0] * ncores          # current per-thread rate (valid when occupied)
    memo: list[dict[int, float]] = [dict() for _ in range(ncores)]  # k -> rate
    ready_state = ThreadState.READY
    running_state = ThreadState.RUNNING
    blocked_state = ThreadState.BLOCKED
    Compute_cls = Compute
    pool_cache: Optional[list] = None
    pool_sorted: list = []
    resumes: list = []
    done_i = -1
    events = 0

    # ---- prologue: intern heap entries as mutable lists (the flat loop
    # keeps each pending list *unordered* - the head lives in `minf` and
    # drains sort on demand, so admissions are plain appends instead of
    # heap sifts), and seed the global sequence counter past every live
    # (finish, seq) key so new segments keep sorting after existing
    # equal-finish ones.
    seq = 0
    for pos, core in enumerate(cores):
        heap = core._finish_heap
        mn = _INF
        if heap:
            if type(heap[0]) is tuple:
                heap[:] = [list(entry) for entry in heap]
            for entry in heap:
                f = entry[0]
                if f < mn:
                    mn = f
                s = entry[1]
                if s > seq:
                    seq = s
        core._flat_min = mn
        if core._seq > seq:
            seq = core._seq
        # Queue every position for the first refresh so `rates`/`comp` get
        # populated - WITHOUT setting the dirty flag: a clean core's cached
        # ``_completion_at`` must survive re-entry bit-for-bit (recomputing
        # the same instant from the advanced ``now``/``_virtual`` lands an
        # ulp away, which the reference loop's cache never does).
        dirty.append(pos)

    try:
        while True:
            # ---- general dispatch drain: object-loop-identical semantics
            # for threads arriving through the ready deque (spawns, wakes,
            # zero-work re-queues, timer wakes).
            while ready:
                thread, value = ready.popleft()
                events += 1
                self.current = thread
                try:
                    request = thread._send(value)
                except StopIteration as stop:
                    self._finish(thread, stop.value)
                    continue
                if request.__class__ is Compute_cls:
                    work = request.work
                    if work <= 0.0:
                        thread.state = ready_state
                        ready.append((thread, None))
                        continue
                    core = request.core
                    if core is not None and core._cidx is not cidx:
                        # Explicit override onto a core this engine's
                        # completion index does not own: keep the object
                        # representation.  Affinity and floating-pool cores
                        # belong to the engine by construction, so only
                        # overrides pay this check.
                        if thread._on_core is not None:
                            raise SimStateError(
                                f"{thread.name!r} already running on core "
                                f"{thread._on_core.name!r}"
                            )
                        core.add(thread, work)
                        thread.state = running_state
                        continue
                    if core is None:
                        core = thread.affinity
                        if core is None:
                            pool = self.floating_pool
                            if pool is not pool_cache:
                                pool_cache = pool
                                pool_sorted = sorted(pool, key=_core_index)
                                if not pool_sorted:
                                    raise SimStateError(
                                        "engine has an empty floating pool"
                                    )
                            core = pool_sorted[0]
                            best_load = len(core._finish_heap) + core._spinners
                            for c in pool_sorted:
                                load = len(c._finish_heap) + c._spinners
                                if load < best_load:
                                    core = c
                                    best_load = load
                    if thread._on_core is not None:
                        raise SimStateError(
                            f"{thread.name!r} already running on core "
                            f"{thread._on_core.name!r}"
                        )
                    finish = core._virtual + work
                    thread._on_core = core
                    seq += 1
                    core._finish_heap.append([finish, seq, thread, work])
                    if finish < core._flat_min:
                        core._flat_min = finish
                    if not core._completion_dirty:
                        core._completion_dirty = True
                        dirty.append(core._cpos)
                    thread.state = running_state
                elif isinstance(request, Compute_cls):
                    seq = _slow_compute(self, thread, request, seq, dirty, cidx)
                else:
                    self._dispatch_slow(thread, request)
            self.current = None
            self._events_processed += events
            events = 0

            # ---- refresh dirty completion instants (shared-formula float
            # ops; the memo caches the rate *result* per occupancy k).
            if dirty:
                now = self.now
                for pos in dirty:
                    core = cores[pos]
                    heap = core._finish_heap
                    n = len(heap)
                    if n:
                        k = n + core._spinners
                        core_memo = memo[pos]
                        rate = core_memo.get(k)
                        if rate is None:
                            rate = core.speed / (k * (1.0 + core.cs_alpha * (k - 1)))
                            core_memo[k] = rate
                        rates[pos] = rate
                        if core._completion_dirty:
                            # _flat_min IS the head finish (the pending list
                            # is unordered; heap[0] would be wrong here)
                            at = now + (core._flat_min - core._virtual) / rate
                            core._completion_at = at
                            core._completion_dirty = False
                        else:
                            # an external completion_at() call already
                            # refreshed the instant; only the rate mirror
                            # needed syncing
                            at = core._completion_at
                        comp[pos] = at
                    else:
                        core._completion_at = None
                        core._completion_dirty = False
                        comp[pos] = _INF
                dirty.clear()
                cidx._np_stale = True

            # ---- pick the next event instant
            compute_at = _INF
            for at in comp:
                if at < compute_at:
                    compute_at = at
            timer_at = self._timer_next
            if timer_at is None:
                if compute_at == _INF:
                    if strict and any(t.state is blocked_state for t in self.threads):
                        blocked = self.blocked_threads()
                        names = ", ".join(t.name for t in blocked[:12])
                        raise SimDeadlock(
                            f"no events remain but {len(blocked)} thread(s) "
                            f"are blocked: {names}"
                        )
                    return self.now
                next_at = compute_at
            elif timer_at <= compute_at:
                next_at = timer_at
            else:
                next_at = compute_at
            if until is not None and next_at > until:
                # hand the partial advance to the reference _advance, which
                # expects heap order: a sorted list is a valid binary heap
                for core in cores:
                    core._finish_heap.sort()
                self._advance(until - self.now)
                return self.now

            # ---- advance: credit the interval to every occupied core and
            # collect due completions into the resume batch, in core order.
            dt = next_at - self.now
            if dt != 0.0:
                if dt < 0:
                    raise SimTimeError(f"attempted to advance time by {dt}")
                # += dt, NOT = next_at: the reference _advance accumulates
                # `now + (next_at - now)`, which differs from `next_at` by
                # an ulp when the subtraction rounds - and bit-identity
                # means reproducing even that.
                self.now += dt
                pos = 0
                for core in cores:
                    heap = core._finish_heap
                    n = len(heap)
                    if n:
                        rate = rates[pos]
                        virtual = core._virtual + dt * rate
                        core._virtual = virtual
                        core.delivered += dt * rate * n
                        core.busy_time += dt
                        limit = virtual + WORK_EPSILON
                        if core._flat_min <= limit:
                            # Due completions: sort the unordered pending
                            # list - sorted order IS heappop order because
                            # (finish, seq) keys are unique - and credit
                            # each pop's cpu_time right here, exactly like
                            # the reference _advance: every completion's
                            # exact work lands before timers fire or any
                            # thread resumes, on exception paths included.
                            heap.sort()
                            if heap[-1][0] <= limit:
                                # whole list due (the common case under
                                # pinned homogeneous load): one batch move
                                for entry in heap:
                                    entry[2].cpu_time += entry[3]
                                resumes.extend(heap)
                                heap.clear()
                                core._flat_min = _INF
                            else:
                                i = 1
                                while heap[i][0] <= limit:
                                    i += 1
                                due = heap[:i]
                                for entry in due:
                                    entry[2].cpu_time += entry[3]
                                resumes.extend(due)
                                del heap[:i]
                                core._flat_min = heap[0][0]
                            if not core._completion_dirty:
                                core._completion_dirty = True
                                dirty.append(pos)
                    elif core._spinners:
                        core.busy_time += dt
                    pos += 1

            # ---- batched same-instant timer drain (identical to the
            # object loop: chained same-instant timers join the drain, and
            # timers fire before any completed thread resumes).
            deadline = self.now + _INSTANT_EPSILON
            if timer_at is not None and timer_at <= deadline:
                fired = 0
                while True:
                    batch = timerq.pop_due(deadline)
                    if not batch:
                        break
                    fired += len(batch)
                    for callback in batch:
                        callback()
                self._timer_next = timerq.peek()
                if fired:
                    self.timers_fired += fired
                    self._drain_batches += 1
                    self._drain_events += fired

            # ---- fused resume drain: completed threads re-dispatch inline.
            if resumes:
                for done_i, entry in enumerate(resumes):
                    thread = entry[2]
                    self.current = thread
                    try:
                        request = thread._send(None)
                    except StopIteration as stop:
                        thread._on_core = None
                        self._finish(thread, stop.value)
                        continue
                    if request.__class__ is Compute_cls:
                        work = request.work
                        if work > 0.0:
                            core = request.core
                            if core is not None and core._cidx is not cidx:
                                # explicit foreign-core override: object
                                # representation (the flat loop never pops
                                # this core)
                                thread._on_core = None
                                core.add(thread, work)
                                thread.state = running_state
                                continue
                            if core is None:
                                core = thread.affinity
                                if core is None:
                                    pool = self.floating_pool
                                    if pool is not pool_cache:
                                        pool_cache = pool
                                        pool_sorted = sorted(pool, key=_core_index)
                                        if not pool_sorted:
                                            raise SimStateError(
                                                "engine has an empty floating pool"
                                            )
                                    core = pool_sorted[0]
                                    best_load = (
                                        len(core._finish_heap) + core._spinners
                                    )
                                    for c in pool_sorted:
                                        load = len(c._finish_heap) + c._spinners
                                        if load < best_load:
                                            core = c
                                            best_load = load
                            finish = core._virtual + work
                            if thread._on_core is not core:
                                thread._on_core = core
                            seq += 1
                            # reuse the popped entry in place: zero
                            # allocation on the steady-state path
                            entry[0] = finish
                            entry[1] = seq
                            entry[3] = work
                            core._finish_heap.append(entry)
                            if finish < core._flat_min:
                                core._flat_min = finish
                            if not core._completion_dirty:
                                core._completion_dirty = True
                                dirty.append(core._cpos)
                        else:
                            thread._on_core = None
                            thread.state = ready_state
                            ready.append((thread, None))
                    elif isinstance(request, Compute_cls):
                        thread._on_core = None
                        seq = _slow_compute(self, thread, request, seq, dirty, cidx)
                    else:
                        thread._on_core = None
                        self._dispatch_slow(thread, request)
                self.current = None
                self._events_processed += len(resumes)
                resumes.clear()
                done_i = -1
    finally:
        # Restore the object-engine representation invariants at every exit
        # (normal return, `until` return, or an exception escaping user
        # code): heap entries back to tuples so a direct Core.add cannot
        # mix representations, per-core seq counters advanced past the
        # global counter, and any popped-but-unresumed threads re-queued
        # exactly as the reference loop would have left them.
        if resumes:
            # done_i is the entry whose resume raised (or -1 when the
            # exception came from a timer callback before the drain began);
            # everything after it was popped but never resumed.
            for entry in resumes[done_i + 1 :]:
                t = entry[2]
                t._on_core = None
                t.state = ready_state
                ready.append((t, None))
            resumes.clear()
        for core in cores:
            heap = core._finish_heap
            if heap and type(heap[0]) is list:
                # sort first: the pending list is unordered mid-run, and a
                # sorted list is a valid binary heap for Core.add/heappop
                heap.sort()
                for e in heap:
                    # the fast-path add elides this per-event store; restore
                    # it so the object engine sees its own invariant
                    e[2]._finish_virtual = e[0]
                heap[:] = [(e[0], e[1], e[2], e[3]) for e in heap]
            if core._seq < seq:
                core._seq = seq


def _core_index(core) -> int:
    return core.index
