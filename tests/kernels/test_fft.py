"""FFT kernel tests: the from-scratch radix-2 transform vs numpy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import fft as F

pow2_sizes = st.sampled_from([2, 4, 8, 16, 64, 128, 256, 1024])


def random_complex(rng, shape):
    return rng.normal(size=shape) + 1j * rng.normal(size=shape)


def test_is_power_of_two():
    assert F.is_power_of_two(1)
    assert F.is_power_of_two(1024)
    assert not F.is_power_of_two(0)
    assert not F.is_power_of_two(3)
    assert not F.is_power_of_two(-4)


def test_bit_reverse_is_a_permutation():
    for n in (2, 8, 64, 256):
        idx = F.bit_reverse_indices(n)
        assert sorted(idx.tolist()) == list(range(n))


def test_bit_reverse_is_an_involution():
    idx = F.bit_reverse_indices(128)
    assert np.array_equal(idx[idx], np.arange(128))


def test_bit_reverse_rejects_non_pow2():
    with pytest.raises(ValueError):
        F.bit_reverse_indices(12)


@given(n=pow2_sizes, seed=st.integers(0, 2**31))
@settings(max_examples=40, deadline=None)
def test_fft_matches_numpy(n, seed):
    x = random_complex(np.random.default_rng(seed), n)
    assert np.allclose(F.fft(x), np.fft.fft(x), atol=1e-8)


@given(n=pow2_sizes, seed=st.integers(0, 2**31))
@settings(max_examples=40, deadline=None)
def test_ifft_roundtrip_is_identity(n, seed):
    x = random_complex(np.random.default_rng(seed), n)
    assert np.allclose(F.ifft(F.fft(x)), x, atol=1e-10)


@given(seed=st.integers(0, 2**31))
@settings(max_examples=20, deadline=None)
def test_fft_linearity(seed):
    rng = np.random.default_rng(seed)
    x = random_complex(rng, 128)
    y = random_complex(rng, 128)
    a, b = 2.5, -1.25 + 0.5j
    assert np.allclose(F.fft(a * x + b * y), a * F.fft(x) + b * F.fft(y), atol=1e-8)


@given(seed=st.integers(0, 2**31))
@settings(max_examples=20, deadline=None)
def test_parseval_energy_preserved(seed):
    x = random_complex(np.random.default_rng(seed), 256)
    time_energy = np.sum(np.abs(x) ** 2)
    freq_energy = np.sum(np.abs(F.fft(x)) ** 2) / 256
    assert np.isclose(time_energy, freq_energy, rtol=1e-10)


def test_batched_transform_matches_per_row(rng):
    x = random_complex(rng, (7, 64))
    batched = F.fft(x)
    rows = np.stack([F.fft(row) for row in x])
    assert np.allclose(batched, rows, atol=1e-10)
    assert np.allclose(batched, np.fft.fft(x, axis=-1), atol=1e-8)


def test_three_dimensional_batch(rng):
    x = random_complex(rng, (2, 3, 32))
    assert np.allclose(F.fft(x), np.fft.fft(x, axis=-1), atol=1e-8)


def test_real_input_promoted(rng):
    x = rng.normal(size=64)
    assert np.allclose(F.fft(x), np.fft.fft(x), atol=1e-8)


def test_dc_impulse_spectra():
    delta = np.zeros(16, dtype=complex)
    delta[0] = 1.0
    assert np.allclose(F.fft(delta), np.ones(16), atol=1e-12)
    const = np.ones(16, dtype=complex)
    spec = F.fft(const)
    assert np.isclose(spec[0], 16)
    assert np.allclose(spec[1:], 0, atol=1e-12)


def test_non_pow2_rejected():
    with pytest.raises(ValueError):
        F.fft(np.zeros(12, dtype=complex))
    with pytest.raises(ValueError):
        F.ifft(np.zeros(7, dtype=complex))


def test_accel_variants_match_reference(rng):
    x = random_complex(rng, (4, 256))
    assert np.allclose(F.fft_accel(x), F.fft(x), atol=1e-8)
    assert np.allclose(F.ifft_accel(x), F.ifft(x), atol=1e-8)


def test_accel_variants_enforce_pow2():
    with pytest.raises(ValueError):
        F.fft_accel(np.zeros(10, dtype=complex))
    with pytest.raises(ValueError):
        F.ifft_accel(np.zeros(10, dtype=complex))
