"""Declarative libCEDR API surface: one spec row per kernel API.

Historically :class:`~repro.core.api.CedrClient` and
:class:`~repro.core.standalone.StandaloneCedr` each hand-wrote a blocking
and a non-blocking (``*_nb``) method per kernel - eight near-identical
bodies that had to agree with each other, with the payload-size table, and
with the kernel registry.  This module replaces all of that with a single
table: each :class:`ApiSpec` row declares how one abstract API builds its
timing-model parameters and payload from the user's arguments, how many
operand bytes a call marshals, and which CPU implementation standalone
mode executes.  Both client classes *generate* their method pairs from the
table (see :func:`install_api_methods`), so

* public call signatures stay byte-identical to the hand-written surface
  (``fft(self, x)``, ``zip(self, a, b)``, ... - pinned by the API-surface
  parity test), and
* a new kernel API added here gets the blocking variant, the ``_nb``
  variant, standalone-mode parity, payload-byte accounting, and telemetry
  instrumentation for free.

The table is deliberately *not* derived from
:data:`repro.kernels.registry.KERNEL_IMPLS` automatically: that registry
maps (API, PE kind) to implementations and knows nothing about Python-side
argument shapes.  Each row instead references the registry's CPU-side
implementations, so the two stay consistent by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.kernels import fft as _fft_mod
from repro.kernels.mmult import gemm as _gemm_kernel
from repro.kernels.zip_ import zip_product as _zip_kernel

__all__ = ["ApiSpec", "API_SPECS", "payload_bytes", "install_api_methods"]


#: complex128 operand element size, bytes (the marshalling unit of the
#: payload-byte model shared by every API).
_ELEM_BYTES = 16.0


@dataclass(frozen=True)
class ApiSpec:
    """Everything the call surface needs to know about one kernel API.

    ``build`` maps the user's positional arguments to ``(params, payload)``:
    ``params`` feeds the platform timing model and the scheduler's profiling
    estimates, ``payload`` is what the executing worker hands the functional
    kernel.  ``bytes_of`` maps ``params`` to the operand bytes the
    application thread stages per call (the ``api_copy_ns_per_byte`` cost).
    ``standalone`` is the immediate CPU implementation used by
    :class:`~repro.core.standalone.StandaloneCedr`.
    """

    name: str
    arity: int
    build: Callable[..., tuple[dict, Any]]
    bytes_of: Callable[[dict], float]
    standalone: Callable[..., Any]
    doc: str


def _fft_build(x: Any) -> tuple[dict, Any]:
    arr = np.asarray(x)
    n = arr.shape[-1]
    batch = int(np.prod(arr.shape[:-1])) if arr.ndim > 1 else 1
    return {"n": int(n), "batch": batch}, x


def _zip_build(a: Any, b: Any) -> tuple[dict, Any]:
    a = np.asarray(a)
    return {"n": int(a.size)}, (a, b)


def _gemm_build(a: Any, b: Any) -> tuple[dict, Any]:
    a = np.asarray(a)
    b = np.asarray(b)
    return {"m": a.shape[0], "k": a.shape[1], "n": b.shape[1]}, (a, b)


#: the cedr.h declaration set (paper Listing 1), in declaration order.
API_SPECS: dict[str, ApiSpec] = {
    spec.name: spec
    for spec in (
        ApiSpec(
            name="fft",
            arity=1,
            build=_fft_build,
            bytes_of=lambda p: _ELEM_BYTES * p["n"] * p.get("batch", 1),
            standalone=lambda x: _fft_mod.fft(np.asarray(x)),
            doc="Forward FFT along the last axis",
        ),
        ApiSpec(
            name="ifft",
            arity=1,
            build=_fft_build,
            bytes_of=lambda p: _ELEM_BYTES * p["n"] * p.get("batch", 1),
            standalone=lambda x: _fft_mod.ifft(np.asarray(x)),
            doc="Inverse FFT along the last axis",
        ),
        ApiSpec(
            name="zip",
            arity=2,
            build=_zip_build,
            bytes_of=lambda p: 2 * _ELEM_BYTES * p["n"],
            standalone=lambda a, b: _zip_kernel(np.asarray(a), np.asarray(b)),
            doc="Element-wise product",
        ),
        ApiSpec(
            name="gemm",
            arity=2,
            build=_gemm_build,
            bytes_of=lambda p: _ELEM_BYTES * (p["m"] * p["k"] + p["k"] * p["n"]),
            standalone=lambda a, b: _gemm_kernel(np.asarray(a), np.asarray(b)),
            doc="Matrix multiply",
        ),
    )
}


def payload_bytes(api: str, params: dict) -> float:
    """Operand bytes one call of *api* marshals (0.0 for unknown APIs).

    Unknown names return 0 rather than raising so DAG-mode ``cpu_op``
    pseudo-APIs flow through the same accounting unharmed.
    """
    spec = API_SPECS.get(api)
    return spec.bytes_of(params) if spec is not None else 0.0


def install_api_methods(cls, make_blocking: Callable, make_nonblocking: Callable):
    """Attach one blocking + one ``_nb`` method per spec row to *cls*.

    ``make_blocking`` / ``make_nonblocking`` are factories mapping an
    :class:`ApiSpec` to a function with the public signature for its arity
    (``(self, x)`` or ``(self, a, b)``); this helper stamps metadata
    (``__name__``, ``__qualname__``, ``__doc__``) and installs both
    variants.  Used as a class decorator argument by both client classes::

        @with_generated_apis
        class CedrClient: ...

    Returns *cls* so factories can be composed decorator-style.
    """
    for spec in API_SPECS.values():
        for suffix, factory in (("", make_blocking), ("_nb", make_nonblocking)):
            method = factory(spec)
            method.__name__ = spec.name + suffix
            method.__qualname__ = f"{cls.__name__}.{spec.name}{suffix}"
            setattr(cls, spec.name + suffix, method)
    return cls
