"""Random mapping: the statistical floor for scheduler comparisons.

Assigns every ready task to a uniformly random supporting PE.  The CEDR
ecosystem's scheduler studies use random mapping as the no-information
baseline; here it doubles as a stress generator for runtime tests (every
legal assignment path gets exercised eventually) and as the floor series in
scheduler-comparison ablations.

The stream is seeded per instance, so runs remain reproducible: the same
(seed, workload) pair yields the same "random" schedule.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .base import EstimateFn, Scheduler, register_scheduler

__all__ = ["RandomScheduler"]


@register_scheduler
class RandomScheduler(Scheduler):
    """O(1) decisions from a seeded RNG."""

    name = "random"

    def __init__(self, seed: int = 0, cost_per_task_us: float = 0.15) -> None:
        self.rng = np.random.default_rng(seed)
        self.cost_per_task_us = cost_per_task_us

    def schedule(self, ready, pes: Sequence, now: float, estimate: EstimateFn):
        assignments = []
        for task in ready:
            candidates = self.compatible(task, pes)
            pe = candidates[int(self.rng.integers(len(candidates)))]
            assignments.append((task, pe))
            pe.expected_free = max(pe.expected_free, now) + estimate(task, pe)
        return assignments

    def round_cost(self, n_ready: int, n_pes: int) -> float:
        return self.cost_per_task_us * 1e-6 * n_ready
