"""Parsed DAG programs and their per-submission instantiation.

A :class:`DagProgram` is the validated, topology-resolved form of a
(spec, bindings) pair - what the CEDR daemon holds after parsing the JSON
it received over IPC.  Each submission instantiates fresh
:class:`~repro.runtime.task.Task` objects plus a private ``state`` dict
seeded with the frame's input arrays; tasks communicate exclusively through
that dict (the analogue of the shared-object's buffers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.platforms.pe import CPU_ONLY_API
from repro.runtime.task import Task

from .schema import validate_spec

__all__ = ["DagProgram", "parse_dag"]


@dataclass
class DagProgram:
    """A validated DAG application, ready to instantiate per submission."""

    name: str
    spec: Mapping[str, Any]
    bindings: Mapping[str, Callable] = field(default_factory=dict)
    #: topological order of node names (computed at parse time)
    topo_order: list[str] = field(default_factory=list)

    @property
    def n_nodes(self) -> int:
        return len(self.spec["nodes"])

    def instantiate(
        self, app_id: int, initial_state: Mapping[str, Any] | None = None
    ) -> tuple[list[Task], list[Task], dict[str, Any]]:
        """Build the task graph for one submission.

        Returns ``(all_tasks, head_tasks, state)`` where heads have no
        unmet dependencies and go straight to the ready queue.
        """
        nodes = self.spec["nodes"]
        state: dict[str, Any] = dict(initial_state or {})
        tasks: dict[str, Task] = {}
        for node_name in self.topo_order:
            node = nodes[node_name]
            api = node["api"]
            task = Task(
                api=api,
                params=dict(node.get("params", {})),
                app_id=app_id,
                name=node_name,
                input_keys=tuple(node.get("inputs", ())),
                output_key=node.get("output"),
                cpu_fn=self.bindings.get(node_name) if api == CPU_ONLY_API else None,
            )
            tasks[node_name] = task
            for pred in set(node.get("after", [])):
                tasks[pred].add_successor(task)
        all_tasks = [tasks[n] for n in self.topo_order]
        heads = [t for t in all_tasks if t.n_deps == 0]
        return all_tasks, heads, state


def parse_dag(spec: Mapping[str, Any], bindings: Mapping[str, Callable] | None = None) -> DagProgram:
    """Validate and parse a (spec, bindings) pair into a :class:`DagProgram`.

    This is the functional half of what the daemon does on an ``arrival``
    event in DAG mode; the *time* it takes is charged separately by the
    runtime from :class:`~repro.runtime.config.RuntimeCosts`.
    """
    # bindings=None skips the binding-presence check (timing-only specs or
    # pure-kernel DAGs); an explicit mapping must cover every cpu_op node.
    validate_spec(spec, bindings)
    bindings = bindings or {}
    nodes = spec["nodes"]
    # Kahn order, deterministic by insertion order of the frontier.
    indeg = {n: len(set(node.get("after", []))) for n, node in nodes.items()}
    succs: dict[str, list[str]] = {n: [] for n in nodes}
    for n, node in nodes.items():
        for pred in set(node.get("after", [])):
            succs[pred].append(n)
    frontier = [n for n, d in indeg.items() if d == 0]
    topo: list[str] = []
    while frontier:
        n = frontier.pop(0)
        topo.append(n)
        for s in succs[n]:
            indeg[s] -= 1
            if indeg[s] == 0:
                frontier.append(s)
    return DagProgram(name=spec["name"], spec=spec, bindings=dict(bindings), topo_order=topo)
