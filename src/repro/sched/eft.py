"""Earliest Finish Time: greedy per-task mapping in FIFO order.

For each ready task (in arrival order) EFT picks the PE minimizing
``max(pe.expected_free, now) + estimate(task, pe)``.  Unlike RR it
concentrates work on the PEs that actually finish tasks soonest, so it
"doesn't force the uniform use of all PEs, rather it focuses on assigning
tasks to a subset of PEs that can finish the tasks earliest" (paper
Section IV-C) - which is why it beats RR once accelerator-management
threads start contending for CPU cores.
"""

from __future__ import annotations

from typing import Sequence

from .base import EstimateFn, Scheduler, greedy_earliest_finish, register_scheduler

__all__ = ["EarliestFinishTime"]


@register_scheduler
class EarliestFinishTime(Scheduler):
    """O(PEs) per task; queue-size-linear round cost."""

    name = "eft"

    def __init__(self, cost_per_eval_us: float = 0.14) -> None:
        self.cost_per_eval_us = cost_per_eval_us

    def schedule(self, ready, pes: Sequence, now: float, estimate: EstimateFn):
        return greedy_earliest_finish(ready, pes, now, estimate)

    def round_cost(self, n_ready: int, n_pes: int) -> float:
        return self.cost_per_eval_us * 1e-6 * n_ready * n_pes
