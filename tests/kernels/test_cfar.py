"""CA-CFAR detector tests."""

import numpy as np
import pytest

from repro.kernels import radar


def make_rd_map(geom, targets, snr_db, rng):
    """Range-Doppler map with several synthetic point targets."""
    pulses = np.zeros((geom.n_pulses, geom.n_fast), dtype=np.complex128)
    ref = np.zeros(geom.n_fast, dtype=np.complex128)
    chirp = radar.lfm_chirp(geom.n_chirp)
    ref[: geom.n_chirp] = chirp
    wavelength = 3e8 / geom.fc
    p = np.arange(geom.n_pulses)
    for range_bin, velocity in targets:
        doppler = np.exp(2j * np.pi * (2 * velocity / wavelength) * p / geom.prf)
        echo = np.zeros_like(pulses)
        echo[:, range_bin : range_bin + geom.n_chirp] = chirp[None, :]
        pulses += echo * doppler[:, None]
    noise_power = 10.0 ** (-snr_db / 10.0)
    pulses += (
        rng.normal(0, np.sqrt(noise_power / 2), pulses.shape)
        + 1j * rng.normal(0, np.sqrt(noise_power / 2), pulses.shape)
    )
    return radar.doppler_process(radar.pulse_compress(pulses, ref))


def test_cfar_finds_multiple_targets(rng):
    geom = radar.PDGeometry()
    targets = [(40, 20.0), (120, -35.0), (170, 0.0)]
    rd = make_rd_map(geom, targets, snr_db=20.0, rng=rng)
    detections = radar.cfar_detect(rd, geom)
    found_bins = {d.range_bin for d in detections}
    for range_bin, _ in targets:
        assert any(abs(range_bin - b) <= 1 for b in found_bins), range_bin


def test_cfar_velocity_signs(rng):
    geom = radar.PDGeometry()
    rd = make_rd_map(geom, [(60, 30.0), (130, -30.0)], snr_db=25.0, rng=rng)
    detections = radar.cfar_detect(rd, geom)
    by_bin = {}
    for det in detections:  # strongest-first: keep the first per range bin
        by_bin.setdefault(det.range_bin, det)
    assert by_bin[60].velocity_ms > 0
    assert by_bin[130].velocity_ms < 0


def test_cfar_noise_only_respects_pfa(rng):
    """Pure noise: the false-alarm count must be in the Pfa ballpark."""
    geom = radar.PDGeometry()
    rd = make_rd_map(geom, [], snr_db=0.0, rng=rng)  # noise only
    detections = radar.cfar_detect(rd, geom, pfa=1e-5, max_detections=1000)
    n_cells = geom.n_pulses * geom.n_fast
    # local-maxima dedup makes this conservative; allow a generous margin
    assert len(detections) <= max(10, 20 * 1e-5 * n_cells)


def test_cfar_agrees_with_argmax_on_single_target(rng):
    geom = radar.PDGeometry()
    pulses, ref = radar.synthesize_returns(geom, 80, 25.0, snr_db=20.0, rng=rng)
    rd = radar.doppler_process(radar.pulse_compress(pulses, ref))
    argmax = radar.detect_target(rd, geom)
    cfar = radar.cfar_detect(rd, geom)
    assert cfar, "CFAR missed a 20 dB target"
    strongest = cfar[0]
    assert strongest.range_bin == argmax.range_bin
    assert strongest.doppler_bin == argmax.doppler_bin


def test_cfar_detections_sorted_strongest_first(rng):
    """'Strongest' means cell power, not local SNR (the noise estimate
    varies cell to cell)."""
    geom = radar.PDGeometry()
    rd = make_rd_map(geom, [(50, 10.0), (150, -20.0)], snr_db=22.0, rng=rng)
    detections = radar.cfar_detect(rd, geom)
    power = np.abs(rd) ** 2
    powers = [power[d.doppler_bin, d.range_bin] for d in detections]
    assert powers == sorted(powers, reverse=True)


def test_cfar_parameter_validation(rng):
    geom = radar.PDGeometry()
    rd = np.ones((geom.n_pulses, geom.n_fast), dtype=complex)
    with pytest.raises(ValueError):
        radar.cfar_detect(rd[0], geom)
    with pytest.raises(ValueError):
        radar.cfar_detect(rd, geom, guard=-1)
    with pytest.raises(ValueError):
        radar.cfar_detect(rd, geom, pfa=2.0)
    with pytest.raises(ValueError):
        radar.cfar_detect(rd, geom, train=200)  # window exceeds map


def test_cfar_max_detections_cap(rng):
    geom = radar.PDGeometry()
    rd = make_rd_map(geom, [(30, 5.0), (90, 15.0), (150, -15.0)], snr_db=25.0, rng=rng)
    detections = radar.cfar_detect(rd, geom, max_detections=2)
    assert len(detections) == 2
