"""Bench: regenerate Fig. 5 - runtime overhead, API vs DAG.

Paper result: both curves fall with injection rate and saturate near
200 Mbps; the API-based runtime's saturated overhead is 19.52% below the
DAG-based one.  The bench asserts the decreasing shape and a saturated
reduction in the 10-35% band, and prints the regenerated series.
"""

from repro.experiments import SATURATION_MBPS, run_fig5, saturated_reduction
from repro.metrics import print_series_table, saturated_mean


def test_fig5_runtime_overhead(benchmark, bench_rates, bench_trials):
    fig = benchmark.pedantic(
        run_fig5,
        kwargs={"rates": bench_rates, "trials": bench_trials},
        rounds=1, iterations=1,
    )
    print_series_table(fig, y_scale=1e3, y_fmt="{:10.4f}")

    for label in ("DAG-based", "API-based"):
        s = fig.get(label)
        # decreasing-to-saturation: the first point is the highest
        assert s.ys[0] == max(s.ys)
        sat = saturated_mean(s.xs, s.ys, SATURATION_MBPS)
        assert s.ys[0] > 1.15 * sat

    reduction = saturated_reduction(fig)
    print(f"\nsaturated-region API-vs-DAG overhead reduction: {reduction:.1%} "
          f"(paper: 19.52%)")
    assert 0.10 < reduction < 0.35
