"""Pulse-Doppler radar kernel tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import radar


def test_chirp_has_unit_amplitude():
    c = radar.lfm_chirp(64)
    assert np.allclose(np.abs(c), 1.0)


def test_chirp_too_short_rejected():
    with pytest.raises(ValueError):
        radar.lfm_chirp(1)


def test_chirp_autocorrelation_peaks_at_zero_lag():
    c = radar.lfm_chirp(128)
    corr = np.abs(np.correlate(c, c, mode="full"))
    assert np.argmax(corr) == 127  # zero lag


def test_geometry_resolutions():
    geom = radar.PDGeometry()
    assert geom.range_resolution == pytest.approx(3e8 / (2 * geom.fs))
    assert geom.velocity_resolution > 0
    assert geom.n_chirp == 64


@given(
    range_bin=st.integers(5, 180),
    velocity=st.floats(-100.0, 100.0, allow_nan=False),
    seed=st.integers(0, 2**31),
)
@settings(max_examples=25, deadline=None)
def test_detection_recovers_planted_target(range_bin, velocity, seed):
    geom = radar.PDGeometry()
    rng = np.random.default_rng(seed)
    pulses, ref = radar.synthesize_returns(geom, range_bin, velocity, snr_db=25.0, rng=rng)
    rd = radar.doppler_process(radar.pulse_compress(pulses, ref))
    det = radar.detect_target(rd, geom)
    assert abs(det.range_bin - range_bin) <= 1
    # velocity is quantized to Doppler bins and aliases at +-prf/2
    wavelength = 3e8 / geom.fc
    v_max = wavelength * geom.prf / 4
    expected = (velocity + v_max) % (2 * v_max) - v_max
    assert abs(det.velocity_ms - expected) <= geom.velocity_resolution


def test_out_of_window_target_rejected(rng):
    geom = radar.PDGeometry()
    with pytest.raises(ValueError):
        radar.synthesize_returns(geom, geom.n_fast - 1, 0.0, 20.0, rng)
    with pytest.raises(ValueError):
        radar.synthesize_returns(geom, -1, 0.0, 20.0, rng)


def test_pulse_compress_shape_checks(rng):
    with pytest.raises(ValueError):
        radar.pulse_compress(np.zeros((4, 64), complex), np.zeros(32, complex))
    with pytest.raises(ValueError):
        radar.doppler_process(np.zeros(64, complex))


def test_pulse_compress_concentrates_energy(rng):
    geom = radar.PDGeometry(n_pulses=16)
    pulses, ref = radar.synthesize_returns(geom, 40, 0.0, snr_db=30.0, rng=rng)
    comp = radar.pulse_compress(pulses, ref)
    peak_bin = int(np.argmax(np.abs(comp[0])))
    assert abs(peak_bin - 40) <= 1


def test_zero_velocity_lands_in_dc_doppler_bin(rng):
    geom = radar.PDGeometry()
    pulses, ref = radar.synthesize_returns(geom, 60, 0.0, snr_db=25.0, rng=rng)
    det = radar.detect_target(radar.doppler_process(radar.pulse_compress(pulses, ref)), geom)
    assert det.doppler_bin == 0
    assert det.velocity_ms == pytest.approx(0.0)


def test_task_counts_match_paper_claim():
    """Paper: PD's FFT instances scale to ~512 per frame."""
    counts = radar.pd_task_counts(radar.PDGeometry())
    total_fft_class = counts["fft"] + counts["ifft"]
    assert total_fft_class == 513  # 128 fwd + 1 ref + 256 doppler + 128 inv
    assert counts["zip"] == 128


def test_detection_reports_physical_units(rng):
    geom = radar.PDGeometry()
    pulses, ref = radar.synthesize_returns(geom, 80, 30.0, snr_db=25.0, rng=rng)
    det = radar.detect_target(radar.doppler_process(radar.pulse_compress(pulses, ref)), geom)
    assert det.range_m == pytest.approx(det.range_bin * geom.range_resolution)
    assert det.snr_estimate_db > 10.0
