"""Scenario-layer fixtures."""

from pathlib import Path

import pytest


@pytest.fixture
def repo_root() -> Path:
    return Path(__file__).resolve().parents[2]
