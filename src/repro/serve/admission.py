"""Admission control for the open-stream service tier.

Between "an application arrived" and "the daemon accepted it over IPC"
sits this controller.  It is what turns an unbounded offered stream into
a bounded system: per-tenant token buckets shape the input, an in-system
cap plus ready-queue-depth and p99-latency backpressure signals detect
saturation, and the configured policy decides what happens to arrivals
the system cannot take right now:

``block``     the arrival waits in its tenant's **bounded** hold queue and
              is released - weighted-fair across tenants - as capacity
              frees; when the hold queue itself is full the arrival sheds.
``shed``      the arrival is rejected immediately (the 429 of the piece);
              the client is expected to retry in a later frame.
``degrade``   the arrival is admitted anyway, flagged best-effort: it
              executes but its response time is excluded from the SLO
              goodput accounting (availability over bounded latency).

Boundedness is by construction, not tuning: with ``block`` or ``shed``
the number of admitted-but-unfinished applications never exceeds
``max_in_system`` and no hold queue ever exceeds ``queue_cap`` - at *any*
overload factor.  The serve tests pin both high-water marks under a 2x
overload.  Everything here is plain deterministic state driven by the
virtual clock, so admission decisions replay bit-identically across
``--jobs`` pools, cache hits, and event-core variants.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Optional

__all__ = [
    "ADMISSION_POLICIES",
    "AdmissionConfig",
    "TokenBucket",
    "AdmissionController",
]

ADMISSION_POLICIES = ("block", "shed", "degrade")


@dataclass(frozen=True)
class AdmissionConfig:
    """Knobs of one service run's admission controller.

    ``quota_rate`` / ``quota_burst`` configure the per-tenant token
    bucket (0 rate = unlimited); ``max_in_system`` caps admitted-but-
    unfinished applications across all tenants; ``ready_depth_limit`` and
    ``p99_limit_s`` are the backpressure signals (0 disables each);
    ``queue_cap`` bounds each tenant's hold queue under ``block``.
    """

    policy: str = "shed"
    max_in_system: int = 32
    queue_cap: int = 16
    quota_rate: float = 0.0
    quota_burst: float = 8.0
    ready_depth_limit: int = 0
    p99_limit_s: float = 0.0

    def __post_init__(self) -> None:
        if self.policy not in ADMISSION_POLICIES:
            raise ValueError(
                f"unknown admission policy {self.policy!r}; "
                f"options: {ADMISSION_POLICIES}"
            )
        if self.max_in_system < 1:
            raise ValueError(
                f"max_in_system must be >= 1, got {self.max_in_system}"
            )
        if self.queue_cap < 0:
            raise ValueError(f"queue_cap must be >= 0, got {self.queue_cap}")
        if self.quota_rate < 0 or self.quota_burst < 0:
            raise ValueError(
                f"token-bucket quota must be nonnegative, got "
                f"rate={self.quota_rate}, burst={self.quota_burst}"
            )
        if self.ready_depth_limit < 0 or self.p99_limit_s < 0:
            raise ValueError("backpressure limits must be nonnegative")


class TokenBucket:
    """Virtual-time token bucket: ``rate`` tokens/s, ``burst`` capacity.

    Refill is computed lazily from elapsed simulated time, so the bucket
    schedules no events and costs nothing when idle.  Starts full.
    """

    __slots__ = ("rate", "burst", "tokens", "_last")

    def __init__(self, rate: float, burst: float) -> None:
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self._last = 0.0

    def take(self, now: float) -> bool:
        """Consume one token if available at simulated instant *now*."""
        if now > self._last:
            self.tokens = min(self.burst, self.tokens + (now - self._last) * self.rate)
            self._last = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class _TenantState:
    __slots__ = ("name", "weight", "bucket", "hold", "hold_hwm", "pass_value")

    def __init__(self, name: str, weight: float, bucket: Optional[TokenBucket]) -> None:
        self.name = name
        self.weight = weight
        self.bucket = bucket
        self.hold: deque[Any] = deque()
        self.hold_hwm = 0
        #: stride-scheduling pass value; the nonempty queue with the lowest
        #: pass releases next, and each release advances it by 1/weight -
        #: long-run releases are proportional to tenant weight.
        self.pass_value = 0.0


class AdmissionController:
    """Deterministic admission state machine for one service run."""

    def __init__(
        self,
        config: AdmissionConfig,
        tenants: list[tuple[str, float]],
    ) -> None:
        if not tenants:
            raise ValueError("admission needs at least one tenant")
        for name, weight in tenants:
            if weight <= 0:
                raise ValueError(f"tenant {name!r} weight must be positive")
        self.config = config
        self._tenants = {
            name: _TenantState(
                name,
                weight,
                TokenBucket(config.quota_rate, config.quota_burst)
                if config.quota_rate > 0
                else None,
            )
            for name, weight in tenants
        }
        #: deterministic tie-break order for equal-pass weighted release
        self._order = {name: i for i, (name, _) in enumerate(tenants)}
        self.in_system = 0
        self.in_system_hwm = 0

    # -- signals -------------------------------------------------------- #

    def _pressured(self, ready_depth: int, p99_s: float) -> bool:
        cfg = self.config
        if self.in_system >= cfg.max_in_system:
            return True
        if cfg.ready_depth_limit and ready_depth > cfg.ready_depth_limit:
            return True
        if cfg.p99_limit_s and p99_s > cfg.p99_limit_s:
            return True
        return False

    # -- the decision --------------------------------------------------- #

    def decide(
        self, tenant: str, now: float, ready_depth: int = 0, p99_s: float = 0.0
    ) -> str:
        """Admission outcome for one arrival: admit | hold | shed | degrade.

        ``admit`` and ``degrade`` must be followed by :meth:`admitted`;
        ``hold`` by :meth:`push`; ``shed`` needs nothing.
        """
        state = self._tenants[tenant]
        quota_ok = state.bucket is None or state.bucket.take(now)
        if quota_ok and not self._pressured(ready_depth, p99_s):
            return "admit"
        policy = self.config.policy
        if policy == "degrade":
            return "degrade"
        if policy == "block" and len(state.hold) < self.config.queue_cap:
            return "hold"
        return "shed"

    # -- bookkeeping ---------------------------------------------------- #

    def admitted(self, tenant: str) -> None:
        self.in_system += 1
        if self.in_system > self.in_system_hwm:
            self.in_system_hwm = self.in_system

    def finished(self, tenant: str) -> None:
        if self.in_system <= 0:
            raise RuntimeError("admission books corrupt: finish without admit")
        self.in_system -= 1

    def push(self, tenant: str, item: Any) -> None:
        """Park one held arrival (only after :meth:`decide` said ``hold``)."""
        state = self._tenants[tenant]
        if len(state.hold) >= self.config.queue_cap:
            raise RuntimeError(
                f"hold queue overflow for {tenant!r}: decide() must gate push()"
            )
        state.hold.append(item)
        if len(state.hold) > state.hold_hwm:
            state.hold_hwm = len(state.hold)

    def release(self) -> list[tuple[str, Any]]:
        """Pop held arrivals, weighted-fair, while in-system capacity frees.

        Called after every completion (and at duration expiry): while the
        in-system count sits below the cap and any hold queue is nonempty,
        the tenant with the lowest stride pass releases its oldest held
        arrival.  Selection depends only on controller state, so the
        release order is deterministic.
        """
        out: list[tuple[str, Any]] = []
        while self.in_system + len(out) < self.config.max_in_system:
            candidates = [s for s in self._tenants.values() if s.hold]
            if not candidates:
                break
            state = min(
                candidates,
                key=lambda s: (s.pass_value, self._order[s.name]),
            )
            state.pass_value += 1.0 / state.weight
            out.append((state.name, state.hold.popleft()))
        return out

    def held(self) -> int:
        """Total arrivals currently parked across all hold queues."""
        return sum(len(s.hold) for s in self._tenants.values())

    def hold_hwm(self, tenant: str) -> int:
        return self._tenants[tenant].hold_hwm
