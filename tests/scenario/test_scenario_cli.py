"""The ``repro scenario`` verbs: validate, list, run, and audit --scenario."""

import pytest

from repro.cli import main

GOOD_TOML = """
[scenario]
name = "cli-smoke"
trials = 1

[scheduler]
name = "etf"

[workload]
apps = "PD:1,TX:1"

[run]
rate_mbps = 250.0
execute = false
"""

BAD_TOML = """
[scenario]
name = "broken"

[scheduler]
name = "no-such-scheduler"
"""


@pytest.fixture
def good_spec(tmp_path):
    path = tmp_path / "good.toml"
    path.write_text(GOOD_TOML)
    return path


@pytest.fixture
def bad_spec(tmp_path):
    path = tmp_path / "bad.toml"
    path.write_text(BAD_TOML)
    return path


def test_scenario_validate_ok(good_spec, capsys):
    assert main(["scenario", "validate", str(good_spec)]) == 0
    out = capsys.readouterr().out
    assert "ok" in out and "cli-smoke" in out and "digest" in out


def test_scenario_validate_reports_failures(good_spec, bad_spec, capsys):
    rc = main(["scenario", "validate", str(good_spec), str(bad_spec)])
    assert rc == 1
    out = capsys.readouterr().out
    assert "ok" in out and "FAIL" in out
    assert "no-such-scheduler" in out


def test_scenario_list_directory(good_spec, bad_spec, capsys):
    rc = main(["scenario", "list", str(good_spec.parent)])
    assert rc == 1  # the broken spec flips the exit code
    out = capsys.readouterr().out
    assert "cli-smoke" in out and "INVALID" in out


def test_scenario_list_checked_in_examples(repo_root, capsys):
    assert main(["scenario", "list", str(repo_root / "examples/scenarios")]) == 0
    out = capsys.readouterr().out
    assert "[run]" in out and "[serve]" in out
    assert "fig5-cell-api-200mbps" in out


def test_scenario_list_empty_dir(tmp_path, capsys):
    assert main(["scenario", "list", str(tmp_path)]) == 1
    assert "no scenario documents found" in capsys.readouterr().out


def test_scenario_run_reports(good_spec, capsys):
    assert main(["scenario", "run", str(good_spec), "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "cli-smoke [run]" in out
    assert "scheduler=etf" in out
    assert "2 per trial" in out
    assert "cache" not in out  # --no-cache silences the cache line


def test_scenario_run_trial_and_seed_overrides(good_spec, capsys):
    rc = main([
        "scenario", "run", str(good_spec),
        "--trials", "2", "--seed", "9", "--no-cache",
    ])
    assert rc == 0
    assert "trials    : 2 (base seed 9)" in capsys.readouterr().out


def test_scenario_run_audited(good_spec, capsys):
    rc = main(["scenario", "run", str(good_spec), "--audit", "--no-cache"])
    assert rc == 0
    assert "audited" in capsys.readouterr().out


def test_scenario_run_cold_then_warm_cache(good_spec, tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    args = ["scenario", "run", str(good_spec), "--cache-dir", cache_dir]
    assert main(args) == 0
    cold = capsys.readouterr().out
    assert "0 hits, 1 misses" in cold and "1 stored" in cold
    assert main(args) == 0
    warm = capsys.readouterr().out
    assert "1 hits, 0 misses" in warm


def test_scenario_run_cache_flag_conflict(good_spec, tmp_path):
    with pytest.raises(SystemExit, match="conflicts"):
        main([
            "scenario", "run", str(good_spec),
            "--no-cache", "--cache-dir", str(tmp_path),
        ])


def test_scenario_run_invalid_spec_exits(bad_spec):
    with pytest.raises(SystemExit, match="no-such-scheduler"):
        main(["scenario", "run", str(bad_spec)])


def test_scenario_run_serve_kind(tmp_path, capsys):
    path = tmp_path / "serve.toml"
    path.write_text(
        """
        [scenario]
        name = "cli-serve"
        kind = "serve"
        trials = 1

        [serve]
        duration = 0.15
        arrival = "poisson:rate=100"
        apps = "PD:1"
        """
    )
    assert main(["scenario", "run", str(path), "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "cli-serve [serve]" in out
    assert "poisson:rate=100" in out
    assert "slo" in out


def test_audit_diff_scenario_variant_run(capsys):
    rc = main([
        "audit", "diff", "--rates", "2", "--trials", "1",
        "--variants", "jobs", "--scenario",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "scenario" in out and "bit-identical" in out


def test_audit_diff_scenario_variant_serve(capsys):
    rc = main([
        "audit", "diff", "--serve", "--duration", "0.15", "--trials", "1",
        "--variants", "jobs", "--scenario",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "scenario" in out and "bit-identical" in out
