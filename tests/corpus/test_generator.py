"""Generator determinism, dedup, validity, and config knobs."""

import pytest

from repro.corpus import CorpusConfig, generate_corpus, generate_spec
from repro.corpus.generator import PLATFORM_PARAM_RANGES
from repro.platforms import PLATFORMS
from repro.scenario import ScenarioSpec


def test_same_seed_is_bit_identical():
    cfg = CorpusConfig(n=8)
    a = generate_corpus(cfg, seed=0)
    b = generate_corpus(cfg, seed=0)
    assert [s.digest() for s in a] == [s.digest() for s in b]
    assert a == b


def test_different_seeds_differ():
    cfg = CorpusConfig(n=8)
    a = {s.digest() for s in generate_corpus(cfg, seed=0)}
    b = {s.digest() for s in generate_corpus(cfg, seed=1)}
    assert a != b


def test_digests_are_unique():
    specs = generate_corpus(CorpusConfig(n=16), seed=0)
    digests = [s.digest() for s in specs]
    assert len(set(digests)) == len(digests) == 16


def test_generate_spec_is_pure():
    cfg = CorpusConfig(n=4)
    assert generate_spec(cfg, 7, 3) == generate_spec(cfg, 7, 3)


def test_every_spec_revalidates_through_canonical():
    for spec in generate_corpus(CorpusConfig(n=12), seed=2):
        rebuilt = ScenarioSpec.from_mapping(spec.canonical())
        assert rebuilt.digest() == spec.digest()


def test_kind_fractions():
    assert all(
        s.kind == "run"
        for s in generate_corpus(CorpusConfig(n=6, run_fraction=1.0), seed=0)
    )
    assert all(
        s.kind == "serve"
        for s in generate_corpus(CorpusConfig(n=6, run_fraction=0.0), seed=0)
    )


def test_platform_restriction():
    specs = generate_corpus(CorpusConfig(n=6, platforms=("jetson",)), seed=0)
    assert all(s.platform == "jetson" for s in specs)


def test_fault_fraction_extremes():
    never = generate_corpus(
        CorpusConfig(n=6, run_fraction=1.0, fault_fraction=0.0), seed=0
    )
    assert all(s.faults is None for s in never)
    always = generate_corpus(
        CorpusConfig(n=6, run_fraction=1.0, fault_fraction=1.0), seed=0
    )
    assert all(s.faults is not None for s in always)


def test_platform_params_within_declared_ranges():
    specs = generate_corpus(CorpusConfig(n=20), seed=4)
    for spec in specs:
        ranges = PLATFORM_PARAM_RANGES[spec.platform]
        for param, value in spec.platform_params:
            lo, hi = ranges[param]
            assert lo <= value <= hi, (spec.platform, param, value)


def test_every_platform_param_range_builds():
    """Both endpoints of every declared range must construct a platform."""
    for platform, ranges in PLATFORM_PARAM_RANGES.items():
        entry = PLATFORMS.get(platform)
        for pick in (0, 1):
            params = {p: bounds[pick] for p, bounds in ranges.items()}
            entry.build_config(**params)  # raises if the pool is invalid


def test_corpus_specs_are_timing_only():
    specs = generate_corpus(CorpusConfig(n=8, run_fraction=1.0), seed=0)
    assert all(not s.execute for s in specs)


def test_config_validation():
    with pytest.raises(ValueError, match="corpus size"):
        CorpusConfig(n=0)
    with pytest.raises(ValueError, match="run_fraction"):
        CorpusConfig(run_fraction=1.5)
    with pytest.raises(ValueError, match="rate range"):
        CorpusConfig(min_rate_mbps=100.0, max_rate_mbps=10.0)
    with pytest.raises(ValueError, match="trials"):
        CorpusConfig(trials=0)


def test_axis_independence_platform_restriction():
    """Restricting the platform pool must not perturb other axes' draws.

    This is the point of the per-axis child streams: the same (seed,
    index) draws the same scheduler/apps/seed whatever the platform menu.
    """
    wide = generate_spec(CorpusConfig(n=1), 11, 0)
    narrow = generate_spec(CorpusConfig(n=1, platforms=(wide.platform,)), 11, 0)
    assert narrow.scheduler == wide.scheduler
    assert narrow.seed == wide.seed
    assert narrow.kind == wide.kind
