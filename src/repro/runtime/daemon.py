"""The CEDR Daemon Process: main event loop, ready queue, scheduling rounds.

This is the heart of the runtime (paper Fig. 1).  One daemon thread runs on
the platform's reserved runtime core and:

* receives application submissions over the IPC channel;
* DAG mode - parses the JSON DAG (paying per-node parse cost), instantiates
  tasks, and pushes head nodes into the ready queue;
* API mode - parses the shared object and spawns the floating application
  thread, whose libCEDR calls later push tasks into the ready queue
  themselves (the overhead transfer behind the paper's Fig. 5);
* runs scheduling rounds: charges the heuristic's decision cost to the
  runtime core, then distributes the assignments to per-worker mailboxes;
* on task completion performs DAG dependency updates and application
  termination, accumulating the *runtime overhead* and *scheduling
  overhead* metrics with exactly the paper's definitions.

The daemon exits once the runtime is sealed (no more submissions) and every
submitted application has completed, then wakes all workers with a shutdown
sentinel and stamps the logbook - the analogue of the shutdown IPC command
followed by log serialization.  With fault injection active the drain
condition additionally waits out retry backoff timers and parked tasks, so
a fault on the final task of an application is recovered rather than
abandoned at shutdown.

Fault detection + recovery (repro.faults)
-----------------------------------------

When the runtime config carries an active :class:`~repro.faults.FaultConfig`
the daemon grows four responsibilities, all gated so fault-free runs stay
bit-identical to the pre-fault runtime:

* every dispatch arms a *watchdog* timer (expected completion + grace +
  ``watchdog_factor x estimate``); if it fires first, the dispatch is
  invalidated via the task's ``dispatch_epoch`` and recovery begins;
* ``task_failed`` events from workers (transient faults, hangs, fail-stop
  bounces) and watchdog expiries feed one *retry policy*: capped
  exponential backoff, optionally excluding the PEs the task failed on,
  until ``max_retries`` is exhausted and the task - and its application -
  is declared lost;
* failed PEs are *quarantined* (``pe.available = False``, revived by
  timer) so schedulers see a live PE mask through
  ``Scheduler.compatible``; fail-stop PEs never revive;
* before each round the ready batch is partitioned: tasks with no live
  candidate PE are *parked* until a revival, tasks whose every supporting
  PE is dead are lost immediately.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator, Optional

import numpy as np

from repro.faults import FaultInjector, TaskLostError
from repro.platforms import PE, PEKind, PlatformInstance
from repro.platforms.timing import CostTable
from repro.sched import SCHEDULERS, Scheduler
from repro.sched.heft_rt import upward_ranks
from repro.simcore import Block, Compute, Request, SimQueue, SimThread, child_rng
from repro.simcore.errors import SimStateError
from repro.telemetry import CedrTelemetry, SnapshotSampler

from .app import DAG_MODE, AppInstance
from .config import RuntimeConfig
from .logbook import AppRecord, Logbook
from .perf_counters import PerfCounters
from .task import Task, TaskState
from .worker import SHUTDOWN, worker_body

if TYPE_CHECKING:  # pragma: no cover
    from repro.simcore import Engine

__all__ = ["CedrRuntime", "RunMetrics", "EventQueue"]


class _ScalarEstimate:
    """Columnar-interface-free view of a :class:`CostTable`.

    Schedulers probe their ``estimate`` argument for ``estimate_rows`` /
    ``support_rows`` and take the vectorized fast path when present; this
    wrapper hides both, forcing the scalar ``estimate(task, pe)`` reference
    path (``RuntimeConfig.scalar_estimates`` - the differential oracle's
    scalar-vs-vectorized pairing).  Same table, same interned rows, same
    floats.
    """

    __slots__ = ("_table",)

    def __init__(self, table: CostTable) -> None:
        self._table = table

    def __call__(self, task: Task, pe: PE) -> float:
        return self._table(task, pe)


@dataclass
class RunMetrics:
    """Run-level aggregates with the paper's metric definitions.

    ``runtime_overhead_s`` is main-thread time spent receiving, managing,
    and terminating applications (excludes scheduling);
    ``sched_overhead_s`` is time spent inside scheduling rounds.
    """

    runtime_overhead_s: float = 0.0
    sched_overhead_s: float = 0.0
    makespan: float = 0.0
    apps_completed: int = 0

    def runtime_overhead_per_app(self) -> float:
        return self.runtime_overhead_s / max(1, self.apps_completed)

    def sched_overhead_per_app(self) -> float:
        return self.sched_overhead_s / max(1, self.apps_completed)


class EventQueue:
    """Single-consumer event mailbox for the daemon.

    Producers (workers, application threads, IPC timers) call :meth:`post`
    as a plain method - the cooperative simulator guarantees atomicity
    within a dispatch - and the daemon drains everything available in one
    :meth:`get_batch`, mirroring how the real main loop services multiple
    pending events per wakeup.
    """

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self._items: list[tuple[str, Any]] = []
        self._waiter: Optional[SimThread] = None

    def post(self, event: tuple[str, Any]) -> None:
        self._items.append(event)
        waiter = self._waiter
        if waiter is not None:
            self._waiter = None
            self.engine.wake(waiter)

    def get_batch(self) -> Generator[Request, Any, list[tuple[str, Any]]]:
        if not self._items:
            if self._waiter is not None:
                raise SimStateError("EventQueue supports a single consumer")
            self._waiter = self.engine.current
            yield Block()
        batch = self._items
        self._items = []
        return batch


class CedrRuntime:
    """The CEDR daemon plus its worker threads over one platform instance."""

    def __init__(self, platform: PlatformInstance, config: RuntimeConfig) -> None:
        self.platform = platform
        self.config = config
        self.engine = platform.engine
        # Select the simulator timer-queue implementation before any timers
        # exist (migration is exact either way, but this keeps it trivial).
        if config.event_core != self.engine.event_core:
            self.engine.set_event_core(config.event_core)
        # Ditto the main-loop implementation: bit-identical either way
        # (the oracle's ``core_impl`` variant is the enforcing proof).
        if config.core_impl != self.engine.core_impl:
            self.engine.set_core_impl(config.core_impl)
        self.scheduler: Scheduler = SCHEDULERS.create(config.scheduler)
        #: bookkeeping costs are referenced to the ZCU102's 1.2 GHz cores
        self.cost_scale = 1.2 / platform.timing.cpu_clock_ghz
        self.events = EventQueue(self.engine)
        self.ready: list[Task] = []
        self.apps: dict[int, AppInstance] = {}
        self.mailboxes: dict[int, SimQueue] = {}
        self.inflight: dict[int, int] = {}
        #: metric registry + instrumentation handles; ``None`` whenever the
        #: config carries no enabled telemetry (the byte-identical fast path).
        self.telemetry: Optional[CedrTelemetry] = (
            CedrTelemetry(config.telemetry, [pe.name for pe in platform.pes])
            if config.telemetry is not None and config.telemetry.enabled
            else None
        )
        self._sampler: Optional[SnapshotSampler] = (
            SnapshotSampler(self.engine, self.telemetry, config.telemetry.sample_interval_s)
            if self.telemetry is not None and config.telemetry.sample_interval_s > 0
            else None
        )
        self.counters = PerfCounters(
            enabled=config.enable_perf_counters, telemetry=self.telemetry
        )
        if self.telemetry is not None:
            # Bridge engine-side late-timer clamps into the metric registry.
            # Plain state mutation (no events), so runs stay bit-identical.
            self.engine.on_late_timer = self.telemetry.late_timers.inc
        self.logbook = Logbook(enabled=config.log_tasks)
        self.metrics = RunMetrics()
        self.noise_rng = (
            child_rng(self.engine.seed, "cost-noise") if config.cost_noise_sigma > 0 else None
        )
        self._noise_sigma = config.cost_noise_sigma
        self._submitted = 0
        self._completed = 0
        self._sealed = False
        self._started = False
        self._last_round_at = -float("inf")
        self._round_timer_pending = False
        self._round_due = False
        #: columnar profile table: every task shape is interned to a row of
        #: per-PE estimates when the task first enters the ready queue, and
        #: the schedulers' batched helpers gather whole rounds from it.  The
        #: table doubles as the scalar estimate(task, pe) callable.
        self.cost_table = CostTable(platform.timing, platform.pes)
        #: what the schedulers see: the table itself (columnar fast paths)
        #: or a wrapper that forces the scalar reference path.
        self._sched_estimate = (
            _ScalarEstimate(self.cost_table)
            if config.scalar_estimates
            else self.cost_table
        )
        self._mean_cache: dict[int, float] = {}
        self.daemon_thread: Optional[SimThread] = None
        #: online invariant checking (repro.audit); ``None`` keeps the
        #: dispatch and completion hot paths on one ``is None`` test each.
        if config.audit:
            # Imported here: repro.audit consumes runtime records, so a
            # module-level import would be circular.
            from repro.audit.online import OnlineAuditor

            self.auditor: Optional[OnlineAuditor] = OnlineAuditor(self)
        else:
            self.auditor = None
        #: True once the daemon drained cleanly (shutdown bookkeeping ran);
        #: gates the end-of-run audit pass in :meth:`run`.
        self._drained = False
        #: fault injection + recovery state; ``None`` whenever the config
        #: carries no active fault model (the bit-identical fast path).
        self.faults: Optional[FaultInjector] = (
            FaultInjector(self, config.faults)
            if config.faults is not None and config.faults.active
            else None
        )
        #: ready tasks with no *live* candidate PE, waiting for a revival.
        self._parked: list[Task] = []
        #: tasks sitting in a retry-backoff timer (failure seen, not yet
        #: re-enqueued); part of the shutdown drain condition.
        self._retry_limbo = 0
        #: service-tier hook: called as ``on_app_finished(app)`` after an
        #: application's completion bookkeeping (normal finish, cancel, or
        #: failure).  The serve driver uses it for response-time accounting
        #: and to release admission hold queues; plain state mutation plus
        #: (pre-seal) re-submission only, so the hook composes with the
        #: drain condition instead of racing it.  ``None`` costs one test.
        self.on_app_finished: Optional[Any] = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Spawn the daemon and one worker thread per PE."""
        if self._started:
            raise RuntimeError("runtime already started")
        self._started = True
        for pe in self.platform.pes:
            self.mailboxes[pe.index] = SimQueue(self.engine, name=f"mbox.{pe.name}")
            self.inflight[pe.index] = 0
        self.daemon_thread = self.engine.spawn(
            self._daemon_body(), name="cedr-daemon", affinity=self.platform.runtime_core
        )
        for pe in self.platform.pes:
            affinity = pe.core if pe.kind is PEKind.CPU else pe.host_core
            self.engine.spawn(worker_body(self, pe), name=f"worker-{pe.name}", affinity=affinity)
        if self.faults is not None:
            self.faults.arm()
        if self._sampler is not None:
            self._sampler.arm()

    def submit(self, app: AppInstance, at: float) -> None:
        """Schedule *app* to arrive over IPC at simulated time ``at``.

        Open-stream submissions (the service tier, trace replays, releases
        from an admission hold queue) may pass an ``at`` that is already in
        the past.  Those are admitted *now* through the engine's
        clamp-to-now timer path: the arrival fires at the current instant,
        strictly **after** any arrival already scheduled at that instant
        (timers pop in ``(when, seq)`` order, and a clamped timer gets a
        fresh seq) - so late submissions never jump ahead of same-instant
        work, and submission order is preserved among them.  Every clamp is
        counted in ``engine.late_timers`` and, with telemetry enabled, the
        ``simcore_late_timers_total`` metric (pinned by the late-submit
        regression tests).
        """
        if self._sealed:
            raise RuntimeError("runtime already sealed; no further submissions")
        self._submitted += 1
        self.apps[app.app_id] = app

        def _arrive(app=app) -> None:
            app.t_arrival = self.engine.now
            self.events.post(("arrival", app))

        self.engine.call_at(at, _arrive)

    def seal(self) -> None:
        """Declare the workload complete: the daemon shuts down once every
        submitted application has finished (the shutdown IPC command)."""
        self._sealed = True
        # Wake the daemon in case everything already completed.
        self.events.post(("kick", None))

    def cancel(self, app: AppInstance, at: float) -> None:
        """Schedule the kill IPC command for *app* at simulated time ``at``.

        Supported for DAG-mode applications (CEDR's kill drops a submitted
        DAG): the app's queued-but-unscheduled tasks are discarded, no
        further successors are released, and the application terminates
        immediately; tasks already handed to workers run to completion
        harmlessly.  API-mode applications run on their own thread and
        cannot be killed mid-call in this reproduction.
        """
        if app.mode != DAG_MODE:
            raise ValueError(
                f"cancel() supports DAG-mode applications only; "
                f"{app.name}#{app.app_id} is {app.mode}-mode"
            )
        if app.app_id not in self.apps:
            raise KeyError(f"app {app.app_id} was never submitted to this runtime")
        self.engine.call_at(at, lambda: self.events.post(("cancel", app)))

    def run(self, until: Optional[float] = None) -> float:
        """Convenience: run the engine to completion; returns final time.

        Also accounts host wall-clock time against the perf counters so
        ``counters.events_per_wall_sec`` reports simulator throughput.
        """
        t0 = time.perf_counter()
        try:
            final_time = self.engine.run(until=until)
        finally:
            self.counters.record_run(
                time.perf_counter() - t0, self.engine.events_processed
            )
            self.counters.record_event_core(self.engine.event_core_stats())
        if self.auditor is not None and self._drained:
            # the daemon drained cleanly: replay the full invariant catalog
            # over the finished run (raises AuditError on damage)
            self.auditor.final_check(self)
        return final_time

    # ------------------------------------------------------------------ #
    # surfaces used by workers / application threads
    # ------------------------------------------------------------------ #

    def post(self, event: tuple[str, Any]) -> None:
        """Producer-side event submission (plain call, no sim cost)."""
        self.events.post(event)

    def push_ready_from_app(self, task: Task) -> None:
        """API mode: the application thread pushes its task directly into
        the ready queue (paper: 'pushing tasks to the ready queue ... is
        handled by the application thread')."""
        self.cost_table.task_row(task)  # intern the shape at creation
        task.state = TaskState.READY
        task.t_release = self.engine.now
        self.ready.append(task)

    def sample_noise(self) -> float:
        """Multiplicative execution-time jitter for one task part."""
        if self.noise_rng is None or self._noise_sigma <= 0.0:
            return 1.0
        return float(np.exp(self.noise_rng.normal(0.0, self._noise_sigma)))

    def mean_estimate(self, api: str, params) -> float:
        """Mean execution estimate over supporting PEs (HEFT_RT ranks).

        Memoized per cost-table row - the profiling-table lookup.
        """
        row = self.cost_table.row(api, params)
        cached = self._mean_cache.get(row)
        if cached is not None:
            return cached
        try:
            value = self.cost_table.mean_estimate(api, params)
        except ValueError:
            raise ValueError(
                f"no PE supports API {api!r} on {self.platform.config.name}"
            ) from None
        self._mean_cache[row] = value
        return value

    # ------------------------------------------------------------------ #
    # daemon internals
    # ------------------------------------------------------------------ #

    def _charge(self, us: float) -> Compute:
        """One runtime-overhead bookkeeping step on the runtime core."""
        seconds = us * self.cost_scale * 1e-6
        self.metrics.runtime_overhead_s += seconds
        return Compute(seconds)

    def _estimate(self, task: Task, pe: PE) -> float:
        """Profiled execution estimate: one columnar-table probe.

        Workloads repeat identical kernel shapes thousands of times; the
        interned row matches how real CEDR consults a static profiling
        table.
        """
        return self.cost_table.lookup(task, pe.index)

    def _daemon_body(self) -> Generator[Request, Any, None]:
        while True:
            batch = yield from self.events.get_batch()
            for kind, payload in batch:
                if kind == "arrival":
                    yield from self._handle_arrival(payload)
                elif kind == "task_done":
                    yield from self._handle_task_done(payload)
                elif kind == "app_done":
                    yield from self._handle_app_done(payload)
                elif kind == "cancel":
                    yield from self._handle_cancel(payload)
                elif kind == "task_failed":
                    yield from self._handle_task_failed(payload)
                elif kind == "watchdog":
                    yield from self._handle_watchdog(payload)
                elif kind == "retry":
                    yield from self._handle_retry(payload)
                elif kind == "pe_dead":
                    yield from self._handle_pe_dead(payload)
                elif kind == "pe_revive":
                    self._handle_pe_revive(payload)
                elif kind == "kick":
                    pass  # doorbell: fall through to the scheduling round
                else:  # pragma: no cover - internal protocol
                    raise SimStateError(f"unknown daemon event {kind!r}")
            # Scheduling rounds are periodic (sched_period_s): tasks batch up
            # between rounds, so the heuristic sees realistic queue depths.
            # When the period has not elapsed yet, a timer forces the next
            # round via the _round_due flag (a flag, not a float comparison:
            # (last + period) - last rounds below period in binary floating
            # point, which would re-arm the timer at the same instant
            # forever).
            period = self.config.sched_period_s
            while self.ready and (
                self._round_due or self.engine.now - self._last_round_at >= period
            ):
                self._round_due = False
                self._last_round_at = self.engine.now
                yield from self._schedule_round()
            if self.ready and not self._round_timer_pending:
                self._round_timer_pending = True

                def _on_round_timer() -> None:
                    self._round_timer_pending = False
                    self._round_due = True
                    self.events.post(("kick", None))

                self.engine.call_at(
                    max(self.engine.now, self._last_round_at + period), _on_round_timer
                )
            if (
                self._sealed
                and self._completed == self._submitted
                and not self._work_in_flight()
                and self._retry_limbo == 0
                and not self._parked
            ):
                # all apps accounted for AND the workers are drained (a
                # killed app's in-flight tasks still produce task_done
                # events the logs must absorb before shutdown) AND no task
                # is sitting in a retry-backoff timer or parked awaiting a
                # PE revival - a fault on the final task of an app must be
                # retried to completion, not abandoned at shutdown
                break
        if self.faults is not None:
            # Stop the infinite per-PE fault streams: without this the
            # one-timer-ahead chain keeps the engine's timer heap populated
            # forever and the simulation never terminates.
            self.faults.disarm()
        if self._sampler is not None:
            # same one-timer-ahead chain, same termination requirement
            self._sampler.disarm()
        self._shutdown_workers()
        self.metrics.makespan = self.engine.now
        self.metrics.apps_completed = self._completed
        if self.telemetry is not None:
            # end-of-run snapshot: always present, even with sampling off
            self.telemetry.sample(self.engine.now)
        # Idle-poll accounting: the main loop spins whenever it is not doing
        # bookkeeping or scheduling.  The runtime core is reserved, so this
        # changes no thread's timing - only the overhead measurement - and
        # can be charged analytically instead of as simulated events.
        idle = max(0.0, self.metrics.makespan - self.platform.runtime_core.delivered)
        self.metrics.runtime_overhead_s += self.config.costs.idle_poll_duty * idle
        self._drained = True

    def _handle_arrival(self, app: AppInstance) -> Generator[Request, Any, None]:
        costs = self.config.costs
        yield self._charge(costs.ipc_receive_us)
        yield self._charge(costs.so_parse_us)
        self.logbook.open_app(
            AppRecord(app_id=app.app_id, name=app.name, mode=app.mode, t_arrival=app.t_arrival)
        )
        if app.mode == DAG_MODE:
            yield self._charge(
                costs.dag_parse_base_us + costs.dag_parse_per_node_us * app.dag.n_nodes
            )
            tasks, heads, state = app.dag.instantiate(app.app_id, app.initial_state)
            app.state = state
            app.tasks_total = len(tasks)
            self._assign_dag_ranks(tasks)
            app.t_launch = self.engine.now
            for task in heads:
                task.state = TaskState.READY
                task.t_release = self.engine.now
                self.ready.append(task)
                yield self._charge(costs.queue_push_us)
        else:
            yield self._charge(costs.app_launch_us)
            app.t_launch = self.engine.now
            self.engine.spawn(self._app_thread(app), name=f"app-{app.app_id}-{app.name}")

    def _assign_dag_ranks(self, tasks: list[Task]) -> None:
        for task in tasks:
            self.cost_table.task_row(task)  # intern every shape at creation
        ranks = upward_ranks(tasks, lambda t: self.mean_estimate(t.api, t.params))
        for task in tasks:
            task.rank = ranks[task]

    def _app_thread(self, app: AppInstance) -> Generator[Request, Any, None]:
        # Imported here: repro.core builds on the runtime package, so a
        # module-level import would be circular.
        from repro.core.api import CedrClient

        client = CedrClient(self, app)
        try:
            app.result = yield from app.main_factory(client)
        except TaskLostError:
            # one of this app's tasks exhausted its retry budget; the
            # daemon already marked the app failed and settled the
            # outstanding handles - the thread just unwinds and terminates
            pass
        self.post(("app_done", app))

    def _handle_cancel(self, app: AppInstance) -> Generator[Request, Any, None]:
        """The kill IPC command: drop the app's queued work, terminate it."""
        costs = self.config.costs
        if app.finished:
            return  # lost the race with normal completion: no-op
        survivors = []
        for task in self.ready:
            if task.app_id == app.app_id:
                yield self._charge(costs.queue_pop_us)  # unlink from queue
            else:
                survivors.append(task)
        self.ready = survivors
        if self._parked:
            self._parked = [t for t in self._parked if t.app_id != app.app_id]
        app.cancelled = True
        yield from self._finish_app(app)

    def _handle_task_done(self, task: Task) -> Generator[Request, Any, None]:
        costs = self.config.costs
        yield self._charge(costs.queue_pop_us)
        app = self.apps[task.app_id]
        app.tasks_done += 1
        if self.faults is not None and task.t_first_failure >= 0.0:
            # the task failed earlier and has now completed successfully:
            # one recovery, measured first-failure -> completion
            self.counters.record_recovery(self.engine.now - task.t_first_failure)
        if app.cancelled or app.failed:
            return  # straggler from a killed/failed app: log-only
        if app.mode == DAG_MODE:
            for succ in task.successors:
                yield self._charge(costs.dep_update_us)
                succ.n_deps -= 1
                if succ.n_deps == 0:
                    succ.state = TaskState.READY
                    succ.t_release = self.engine.now
                    self.ready.append(succ)
                    yield self._charge(costs.queue_push_us)
            if app.tasks_done == app.tasks_total:
                yield from self._finish_app(app)

    def _handle_app_done(self, app: AppInstance) -> Generator[Request, Any, None]:
        yield from self._finish_app(app)

    def _finish_app(self, app: AppInstance) -> Generator[Request, Any, None]:
        yield self._charge(self.config.costs.app_terminate_us)
        app.t_finish = self.engine.now
        record = self.logbook.close_app(app.app_id, self.engine.now)
        record.t_launch = app.t_launch
        record.n_tasks = app.tasks_total
        record.cancelled = app.cancelled
        record.failed = app.failed
        self.counters.apps_completed += 1
        if self.telemetry is not None:
            self.telemetry.record_app_completed()
        self._completed += 1
        if self.on_app_finished is not None:
            self.on_app_finished(app)

    def _schedule_round(self) -> Generator[Request, Any, None]:
        batch, self.ready = self.ready, []
        if self.faults is not None:
            batch = yield from self._filter_schedulable(batch)
            if not batch:
                return
        pes = self.platform.pes
        cost = self.scheduler.round_cost(len(batch), len(pes))
        self.metrics.sched_overhead_s += cost
        self.counters.record_round(len(batch))
        if self.telemetry is not None:
            self.telemetry.record_round(self.engine.now, len(batch), cost)
        if cost > 0.0:
            yield Compute(cost)
        # Rebuild each PE's expected-free instant from its outstanding
        # backlog, scaled by the contention slowdown observed on completed
        # tasks - the runtime analogue of CEDR consulting its execution-time
        # profiles plus the live queue state.
        now = self.engine.now
        self.logbook.record_round(now, len(batch))
        for pe in pes:
            pe.expected_free = now + pe.outstanding_est * pe.slowdown
        assignments = self.scheduler.schedule(batch, pes, now, self._sched_estimate)
        if self.auditor is not None:
            # validate the round before its assignments are committed, so a
            # violation names the scheduler's decision, not its aftermath
            self.auditor.on_round(batch, assignments, now)
        telemetry = self.telemetry
        for task, pe in assignments:
            task.state = TaskState.SCHEDULED
            task.t_scheduled = self.engine.now
            if telemetry is not None:
                # doorbell-to-dispatch: ready-queue entry to PE assignment
                telemetry.record_sched_latency(task.t_scheduled - task.t_release)
            task.est_used = self.cost_table.lookup(task, pe.index)
            pe.outstanding_est += task.est_used
            if self.faults is None:
                self.mailboxes[pe.index].put_nowait(task)
            else:
                # epoch-stamped dispatch: the worker compares its stamp
                # against task.dispatch_epoch to detect invalidation, and
                # the watchdog deadline covers queue wait + execution
                task.pe = pe
                task.dispatch_epoch += 1
                self.mailboxes[pe.index].put_nowait((task, task.dispatch_epoch))
                if task.attempts > 0:
                    self.faults.retry_records.append(
                        (self.engine.now, task.tid, task.attempts, pe.name)
                    )
                self._arm_watchdog(task, pe)

    # ------------------------------------------------------------------ #
    # fault detection + recovery (active only with a fault model armed)
    # ------------------------------------------------------------------ #

    def _filter_schedulable(self, batch: list[Task]) -> Generator[Request, Any, list[Task]]:
        """Partition a ready batch against the live PE mask.

        Tasks of cancelled/failed apps are dropped, tasks with no live
        candidate PE are parked until a revival, tasks whose every
        supporting PE is dead are lost outright.  Only tasks with at least
        one live candidate reach the scheduling heuristic - which is what
        lets ``Scheduler.compatible`` treat an all-unavailable candidate
        set as a runtime bug.
        """
        pes = self.platform.pes
        table = self.cost_table
        live = np.fromiter((pe.available for pe in pes), dtype=bool, count=len(pes))
        alive = np.fromiter((not pe.dead for pe in pes), dtype=bool, count=len(pes))
        runnable: list[Task] = []
        for task in batch:
            app = self.apps[task.app_id]
            if app.cancelled or app.failed:
                yield from self._drop_task(task)
                continue
            # support is one interned-table row; quarantine/death triage is
            # a mask-row AND instead of rebuilding supporter lists per task
            support = table.support_row(task)
            if (support & live).any():
                runnable.append(task)
            elif (support & alive).any():
                self._parked.append(task)
            else:
                yield from self._task_lost(task)
        # a lost task fails its whole application, which may invalidate
        # batch-mates already deemed runnable above
        out: list[Task] = []
        for task in runnable:
            app = self.apps[task.app_id]
            if app.cancelled or app.failed:
                yield from self._drop_task(task)
            else:
                out.append(task)
        return out

    def _arm_watchdog(self, task: Task, pe: PE) -> None:
        """Per-dispatch deadline: expected drain + grace + factor x estimate.

        The slack doubles with every retry the task has already consumed:
        a deadline miss is only a *suspicion* of failure, and a task that
        keeps missing escalating deadlines is far more likely queued behind
        genuinely degraded PEs than hung itself - geometric patience keeps
        false positives from exhausting the retry budget while still
        detecting real hangs quickly on the first dispatch.
        """
        cfg = self.faults.config
        slack = (
            cfg.watchdog_grace_s
            + cfg.watchdog_factor * task.est_used * max(1.0, pe.slowdown)
        )
        deadline = (
            max(pe.expected_free, self.engine.now)
            + slack * (1 << min(task.attempts, 8))
        )
        epoch = task.dispatch_epoch
        self.engine.call_at(
            deadline, lambda: self.events.post(("watchdog", (task, epoch)))
        )

    def _handle_task_failed(self, payload: tuple) -> Generator[Request, Any, None]:
        """A worker detected a failed attempt (transient/hang/fail-stop)."""
        task, pe, epoch, kind = payload
        yield self._charge(self.config.costs.queue_pop_us)
        if task.dispatch_epoch != epoch or task.state is TaskState.DONE:
            # the watchdog got here first and already re-dispatched
            self.counters.record_stale_dispatch()
            return
        yield from self._recover(task, pe, kind)

    def _handle_watchdog(self, payload: tuple) -> Generator[Request, Any, None]:
        """A per-dispatch deadline expired; recover unless already settled."""
        task, epoch = payload
        if task.dispatch_epoch != epoch or task.state not in (
            TaskState.SCHEDULED,
            TaskState.RUNNING,
        ):
            return  # completed, failed, or re-dispatched in time: benign
        yield self._charge(self.config.costs.queue_pop_us)
        if task.dispatch_epoch != epoch or task.state not in (
            TaskState.SCHEDULED,
            TaskState.RUNNING,
        ):
            # The charge above is simulated time: the worker can complete
            # (or fail) the very dispatch this deadline suspects while the
            # daemon pays the queue-pop cost.  Recovering anyway would arm
            # a retry for a settled task and complete it twice once the
            # dispatch loop re-stamps its state.  Found by corpus spec
            # c0266248427d (rr + transient faults); _handle_task_failed is
            # immune because it charges before its guard.
            return
        pe = task.pe
        # invalidate the in-flight/queued dispatch: the worker holding the
        # stale epoch discards silently, and this side reclaims the backlog
        task.dispatch_epoch += 1
        if pe is not None:
            pe.outstanding_est = max(0.0, pe.outstanding_est - task.est_used)
        yield from self._recover(task, pe, "watchdog")

    def _recover(self, task: Task, pe: Optional[PE], kind: str) -> Generator[Request, Any, None]:
        """Shared failure tail: quarantine the PE, then retry or give up."""
        cfg = self.faults.config
        now = self.engine.now
        self.counters.record_task_failure(kind)
        if task.t_first_failure < 0.0:
            task.t_first_failure = now
        if pe is not None and not pe.dead and kind != "watchdog":
            # Quarantine only on worker-confirmed faults.  A watchdog expiry
            # is a suspicion - most often a task queued behind a hung or
            # slowed PE - and pulling a merely-busy PE out of the live mask
            # shrinks capacity exactly when the backlog is worst, cascading
            # further deadline misses.  The re-dispatch already bans the
            # suspect PE for this task, which is enough to route around it.
            self._quarantine(pe)
        app = self.apps[task.app_id]
        if app.cancelled or app.failed:
            yield from self._drop_task(task)
            return
        if task.attempts >= cfg.max_retries:
            yield from self._task_lost(task)
            return
        task.attempts += 1
        self.counters.record_retry()
        if cfg.exclude_failed_pe and pe is not None:
            task.banned_pes = task.banned_pes | frozenset((pe.index,))
        task.state = TaskState.CREATED  # retry limbo until the backoff fires
        self._retry_limbo += 1
        self.engine.call_at(
            now + cfg.backoff(task.attempts),
            lambda: self.events.post(("retry", task)),
        )

    def _handle_retry(self, task: Task) -> Generator[Request, Any, None]:
        """Backoff elapsed: re-enqueue the task for the next round."""
        self._retry_limbo -= 1
        app = self.apps[task.app_id]
        if app.cancelled or app.failed:
            yield from self._drop_task(task)
            return
        yield self._charge(self.config.costs.queue_push_us)
        task.state = TaskState.READY
        task.t_release = self.engine.now
        self.ready.append(task)
        self._round_due = True

    def _quarantine(self, pe: PE) -> None:
        """Pull *pe* out of the live mask; revive after ``quarantine_s``."""
        cfg = self.faults.config
        pe.quarantine_epoch += 1
        epoch = pe.quarantine_epoch
        if pe.available:
            pe.available = False
            self.counters.record_quarantine()
        self.engine.call_at(
            self.engine.now + cfg.quarantine_s,
            lambda: self.events.post(("pe_revive", (pe, epoch))),
        )

    def _handle_pe_revive(self, payload: tuple) -> None:
        pe, epoch = payload
        if pe.dead or pe.quarantine_epoch != epoch:
            return  # died meanwhile, or re-quarantined (newer timer owns it)
        if not pe.available:
            pe.available = True
            self.counters.record_revival()
        if self._parked:
            # parked tasks get another shot now that the mask grew back
            self.ready.extend(self._parked)
            self._parked = []
            self._round_due = True

    def _handle_pe_dead(self, pe: PE) -> Generator[Request, Any, None]:
        """A fail-stop fault landed; re-triage every parked task."""
        parked, self._parked = self._parked, []
        pes = self.platform.pes
        for task in parked:
            app = self.apps[task.app_id]
            if app.cancelled or app.failed:
                yield from self._drop_task(task)
                continue
            supporters = [p for p in pes if p.supports(task.api)]
            if all(p.dead for p in supporters):
                yield from self._task_lost(task)
            else:
                self._parked.append(task)

    def _task_lost(self, task: Task) -> Generator[Request, Any, None]:
        """Retry budget exhausted (or no PE left): fail the application.

        The app's still-queued sibling tasks are dropped with their handles
        settled, so an API-mode application thread blocked anywhere in its
        call sequence wakes up, observes :class:`TaskLostError`, and
        unwinds; DAG-mode applications terminate immediately.
        """
        app = self.apps[task.app_id]
        if app.cancelled or app.failed or app.finished:
            yield from self._drop_task(task)
            return
        self.counters.record_task_lost()
        app.failed = True
        costs = self.config.costs
        error = TaskLostError(
            f"task {task.tid} ({task.api}:{task.name}) of app "
            f"{app.name}#{app.app_id} lost after {task.attempts} retries"
        )
        dropped = [t for t in self.ready if t.app_id == app.app_id]
        self.ready = [t for t in self.ready if t.app_id != app.app_id]
        dropped.extend(t for t in self._parked if t.app_id == app.app_id)
        self._parked = [t for t in self._parked if t.app_id != app.app_id]
        for t in dropped:
            yield self._charge(costs.queue_pop_us)
            if t.completion is not None and not t.completion.done:
                yield from t.completion.fail(error)
        if app.mode == DAG_MODE:
            yield from self._finish_app(app)
        elif task.completion is not None and not task.completion.done:
            # wake the application thread wherever it blocks; _app_thread
            # catches the raise and posts app_done
            yield from task.completion.fail(error)

    def _drop_task(self, task: Task) -> Generator[Request, Any, None]:
        """Drop a task of a cancelled/failed app, settling any open handle."""
        if task.completion is not None and not task.completion.done:
            yield from task.completion.fail(
                TaskLostError(
                    f"task {task.tid} ({task.api}:{task.name}) dropped: "
                    f"application {task.app_id} was cancelled or failed"
                )
            )

    def _work_in_flight(self) -> bool:
        """Tasks still queued at or executing on any worker."""
        return any(
            self.inflight[pe.index] > 0 or len(self.mailboxes[pe.index]) > 0
            for pe in self.platform.pes
        )

    def _shutdown_workers(self) -> None:
        for pe in self.platform.pes:
            self.mailboxes[pe.index].put_nowait(SHUTDOWN)
