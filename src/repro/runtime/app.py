"""Application instances as the runtime sees them.

An :class:`AppInstance` is one submission over the IPC channel: either a
DAG-based application (a parsed :class:`~repro.dag.DagProgram` plus its
initial state buffers) or an API-based application (a factory producing the
``main()`` generator that will run on its own application thread).  The
same record carries lifecycle bookkeeping used by the metrics layer.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

if TYPE_CHECKING:  # pragma: no cover - repro.dag builds on repro.runtime.task
    from repro.dag.app import DagProgram

__all__ = ["AppInstance", "DAG_MODE", "API_MODE"]

DAG_MODE = "dag"
API_MODE = "api"

_app_ids = itertools.count()


@dataclass
class AppInstance:
    """One submitted application (a single frame's worth of work).

    Exactly one of ``dag`` or ``main_factory`` must be set, matching
    ``mode``.  ``frame_mb`` is the application's frame size in megabits,
    used by the workload injector to convert injection rate (Mbps) into an
    arrival period.
    """

    name: str
    mode: str
    frame_mb: float
    dag: Optional["DagProgram"] = None
    initial_state: Optional[dict[str, Any]] = None
    #: API mode: called with the app's CedrClient, returns the main generator.
    main_factory: Optional[Callable[[Any], Generator]] = None

    # runtime-assigned lifecycle fields
    app_id: int = field(default_factory=lambda: next(_app_ids))
    t_arrival: float = 0.0
    t_launch: float = 0.0
    t_finish: Optional[float] = None
    tasks_total: int = 0
    tasks_done: int = 0
    state: dict[str, Any] = field(default_factory=dict)
    result: Any = None
    #: set by the kill IPC command (DAG mode); a cancelled app counts as
    #: finished but executed only the tasks already in flight.
    cancelled: bool = False
    #: set by the fault subsystem when one of the app's tasks exhausts its
    #: retry budget; the app terminates early and counts against goodput.
    failed: bool = False

    def __post_init__(self) -> None:
        if self.mode not in (DAG_MODE, API_MODE):
            raise ValueError(f"unknown app mode {self.mode!r}")
        if self.mode == DAG_MODE and self.dag is None:
            raise ValueError(f"DAG-mode app {self.name!r} needs a DagProgram")
        if self.mode == API_MODE and self.main_factory is None:
            raise ValueError(f"API-mode app {self.name!r} needs a main_factory")

    @property
    def finished(self) -> bool:
        return self.t_finish is not None

    @property
    def execution_time(self) -> float:
        """Arrival-to-completion time (the paper's per-app metric)."""
        if self.t_finish is None:
            raise ValueError(f"app {self.app_id} ({self.name}) has not finished")
        return self.t_finish - self.t_arrival

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<AppInstance {self.app_id} {self.name} ({self.mode})>"
